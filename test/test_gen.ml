open Ssmst_graph

let test_shapes () =
  let st = Gen.rng 1 in
  Alcotest.(check int) "path edges" 9 (Graph.num_edges (Gen.path st 10));
  Alcotest.(check int) "ring edges" 10 (Graph.num_edges (Gen.ring st 10));
  Alcotest.(check int) "star edges" 9 (Graph.num_edges (Gen.star st 10));
  Alcotest.(check int) "complete edges" 45 (Graph.num_edges (Gen.complete st 10));
  Alcotest.(check int) "grid nodes" 12 (Graph.n (Gen.grid st 3 4));
  Alcotest.(check int) "grid edges" 17 (Graph.num_edges (Gen.grid st 3 4));
  Alcotest.(check int) "binary tree edges" 9 (Graph.num_edges (Gen.binary_tree st 10))

let test_connectivity () =
  let st = Gen.rng 2 in
  for n = 2 to 40 do
    Alcotest.(check bool) "random graph connected" true
      (Graph.is_connected (Gen.random_connected st n))
  done

let test_distinct_weights () =
  let st = Gen.rng 3 in
  let g = Gen.random_connected st 30 in
  let ws = List.map (fun (_, _, w) -> w) (Graph.edges g) in
  Alcotest.(check int) "weights distinct" (List.length ws) (List.length (List.sort_uniq compare ws))

let test_hypertree_properties () =
  let st = Gen.rng 4 in
  let g, t = Gen.hypertree_like st 4 in
  Alcotest.(check int) "node count" 31 (Graph.n g);
  Alcotest.(check bool) "H(G) is the MST" true (Mst.is_mst g (Graph.plain_weight_fn g) t);
  (* every node touches at most one non-tree edge; root touches none *)
  for v = 0 to Graph.n g - 1 do
    let non_tree =
      Array.to_list (Graph.neighbours g v)
      |> List.filter (fun u -> not (Tree.is_tree_edge t v u))
    in
    Alcotest.(check bool) "at most one cross edge" true (List.length non_tree <= 1);
    if v = Tree.root t then Alcotest.(check int) "root has no cross edge" 0 (List.length non_tree)
  done

let test_subdivide_preserves_mst () =
  let st = Gen.rng 5 in
  let g, t = Gen.hypertree_like st 3 in
  let tau = 2 in
  let g', t' = Gen.subdivide ~tau g t in
  Alcotest.(check bool) "positive instance stays an MST" true
    (Mst.is_mst g' (Graph.plain_weight_fn g') t');
  (* node count: n + 2*tau per edge *)
  Alcotest.(check int) "node count" (Graph.n g + (2 * tau * Graph.num_edges g)) (Graph.n g')

let test_subdivide_negative () =
  (* break minimality in G by swapping a cross edge weight below its cycle,
     then check the subdivided instance is not an MST either *)
  let st = Gen.rng 6 in
  let g, t = Gen.hypertree_like st 3 in
  (* make a non-tree edge the lightest edge of the graph: its subdivided
     image must then violate minimality too *)
  let cross =
    Graph.edges g |> List.find (fun (u, v, _) -> not (Tree.is_tree_edge t u v))
  in
  let u0, v0, _ = cross in
  let edges' =
    Graph.edges g |> List.map (fun (u, v, w) -> if (u, v) = (u0, v0) then (u, v, 0) else (u, v, w))
  in
  let g2 = Graph.of_edges ~n:(Graph.n g) edges' in
  let t2 = Tree.of_parents g2 (Array.init (Graph.n g) (fun v -> match Tree.parent t v with None -> -1 | Some p -> p)) in
  Alcotest.(check bool) "base instance not an MST" false (Mst.is_mst g2 (Graph.plain_weight_fn g2) t2);
  let g2', t2' = Gen.subdivide ~tau:2 g2 t2 in
  Alcotest.(check bool) "subdivided instance not an MST" false
    (Mst.is_mst g2' (Graph.plain_weight_fn g2') t2')

let qcheck_subdivide_iff =
  QCheck.Test.make ~name:"subdivision preserves MST-ness in both directions" ~count:40
    QCheck.(pair (int_range 2 3) (int_range 0 100))
    (fun (h, seed) ->
      let st = Gen.rng seed in
      let g, t = Gen.hypertree_like st h in
      let g', t' = Gen.subdivide ~tau:1 g t in
      Mst.is_mst g (Graph.plain_weight_fn g) t = Mst.is_mst g' (Graph.plain_weight_fn g') t')

(* ---------------- streaming builders ---------------- *)

let test_feistel_bijection () =
  List.iter
    (fun m ->
      let p = Gen.feistel ~seed:42 ~m in
      let seen = Array.make m false in
      for i = 0 to m - 1 do
        let y = p i in
        Alcotest.(check bool) "in range" true (y >= 0 && y < m);
        Alcotest.(check bool) "not seen" false seen.(y);
        seen.(y) <- true
      done)
    [ 1; 2; 3; 7; 64; 1000; 4097 ]

let check_stream name g expected_n =
  Alcotest.(check int) (name ^ " nodes") expected_n (Graph.n g);
  Alcotest.(check bool) (name ^ " connected") true (Graph.is_connected g);
  let ws = Graph.fold_edges (fun l _ _ w -> w :: l) [] g in
  Alcotest.(check int)
    (name ^ " distinct weights")
    (List.length ws)
    (List.length (List.sort_uniq compare ws))

let test_stream_builders () =
  check_stream "grid" (Gen.stream_grid ~seed:7 20 30) 600;
  Alcotest.(check int) "grid edges" ((20 * 29) + (30 * 19))
    (Graph.num_edges (Gen.stream_grid ~seed:7 20 30));
  check_stream "random" (Gen.stream_random ~seed:7 500) 500;
  check_stream "hypertree" (Gen.stream_hypertree ~seed:7 8) 511;
  (* repeatable from the seed alone *)
  Alcotest.(check bool) "random repeatable" true
    (Graph.edges (Gen.stream_random ~seed:9 300) = Graph.edges (Gen.stream_random ~seed:9 300))

let test_stream_hypertree_is_lower_bound_family () =
  let g = Gen.stream_hypertree ~seed:11 4 in
  let n = Graph.n g in
  let parent = Array.init n (fun v -> if v = 0 then -1 else (v - 1) / 2) in
  let t = Tree.of_parents g parent in
  Alcotest.(check bool) "H(G) is the MST" true (Mst.is_mst g (Graph.plain_weight_fn g) t);
  for v = 0 to n - 1 do
    let non_tree =
      Array.to_list (Graph.neighbours g v)
      |> List.filter (fun u -> not (Tree.is_tree_edge t v u))
    in
    Alcotest.(check bool) "at most one cross edge" true (List.length non_tree <= 1);
    if v = Tree.root t then Alcotest.(check int) "root has no cross edge" 0 (List.length non_tree)
  done

let qcheck_stream_random =
  QCheck.Test.make ~name:"stream_random: connected, distinct weights, no parallel edges"
    ~count:60
    QCheck.(pair (int_range 2 120) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Gen.stream_random ~seed n in
      Graph.is_connected g
      &&
      let ws = Graph.fold_edges (fun l _ _ w -> w :: l) [] g in
      List.length ws = List.length (List.sort_uniq compare ws))

let suite =
  [
    Alcotest.test_case "generator shapes" `Quick test_shapes;
    Alcotest.test_case "feistel bijection" `Quick test_feistel_bijection;
    Alcotest.test_case "streaming builders" `Quick test_stream_builders;
    Alcotest.test_case "streaming hypertree properties" `Quick
      test_stream_hypertree_is_lower_bound_family;
    QCheck_alcotest.to_alcotest qcheck_stream_random;
    Alcotest.test_case "random graphs connected" `Quick test_connectivity;
    Alcotest.test_case "distinct weights" `Quick test_distinct_weights;
    Alcotest.test_case "hypertree family properties" `Quick test_hypertree_properties;
    Alcotest.test_case "subdivision preserves MST" `Quick test_subdivide_preserves_mst;
    Alcotest.test_case "subdivision preserves non-MST" `Quick test_subdivide_negative;
    QCheck_alcotest.to_alcotest qcheck_subdivide_iff;
  ]
