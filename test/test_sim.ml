open Ssmst_graph
open Ssmst_sim

(* A toy protocol for exercising the simulator: flooding the maximum
   identity.  Stabilizes in diameter rounds synchronously. *)
module Flood = struct
  type state = { best : int; alarmed : bool }

  let init g v = { best = Graph.id g v; alarmed = false }

  let step g v (s : state) read =
    let best = Graph.fold_ports g v (fun acc _ u -> max acc (read u).best) s.best in
    { s with best }

  let alarm s = s.alarmed
  let equal (a : state) (b : state) = a = b
  let bits s = Memory.of_int s.best + Memory.of_bool
  let corrupt st _ _ s = { s with best = Random.State.int st 1000 }
  let corrupt_field st _ _ s = { s with best = Random.State.int st 1000 }
  let field_names = [| "best"; "alarmed" |]
  let encode (s : state) = [| s.best; Bool.to_int s.alarmed |]
end

module Net = Network.Make (Flood)

let all_agree net g =
  let target = Array.fold_left max 0 (Array.init (Graph.n g) (Graph.id g)) in
  Array.for_all (fun (s : Flood.state) -> s.best = target) (Net.states net)

let test_sync_convergence () =
  let st = Gen.rng 10 in
  let g = Gen.path st 16 in
  let net = Net.create g in
  let d = Dist.diameter g in
  Net.run net Scheduler.Sync ~rounds:d;
  Alcotest.(check bool) "max id flooded in diameter rounds" true (all_agree net g);
  Alcotest.(check int) "rounds counted" d (Net.rounds net)

let test_async_convergence () =
  let st = Gen.rng 11 in
  let g = Gen.random_connected st 24 in
  let daemon = Scheduler.Async_random (Gen.rng 12) in
  let net = Net.create g in
  let executed, reached = Net.run_until net daemon ~max_rounds:200 (fun n -> all_agree n g) in
  Alcotest.(check bool) "converged under async daemon" true reached;
  Alcotest.(check bool) "within fair bound" true (executed <= Dist.diameter g + 1)

let test_adversarial_convergence () =
  let st = Gen.rng 13 in
  let g = Gen.random_connected st 24 in
  let daemon = Scheduler.Async_adversarial (Gen.rng 14) in
  let net = Net.create g in
  let _, reached = Net.run_until net daemon ~max_rounds:200 (fun n -> all_agree n g) in
  Alcotest.(check bool) "converged under adversarial daemon" true reached

let test_neighbour_read_guard () =
  (* reading a non-neighbour must be rejected by the harness *)
  let module Bad = struct
    include Flood

    let step g v (s : state) read =
      ignore (read ((v + 2) mod Graph.n g));
      ignore g;
      s
  end in
  let module BadNet = Network.Make (Bad) in
  let st = Gen.rng 15 in
  let g = Gen.path st 8 in
  let net = BadNet.create g in
  Alcotest.check_raises "guard" (Invalid_argument "Network.step: reading a non-neighbour")
    (fun () -> BadNet.sync_round net)

let test_fault_injection () =
  let st = Gen.rng 16 in
  let g = Gen.path st 12 in
  let net = Net.create g in
  Net.run net Scheduler.Sync ~rounds:12;
  let faults = Net.inject_faults net (Gen.rng 17) ~count:3 in
  Alcotest.(check int) "three distinct faults" 3 (List.length faults);
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare faults))

let test_detection_distance () =
  let st = Gen.rng 18 in
  let g = Gen.path st 10 in
  let net = Net.create g in
  (* plant an alarm manually at node 9 and a fault at node 0 *)
  Net.set_state net 9 { Flood.best = 0; alarmed = true };
  match Net.detection_distance net ~faults:[ 0 ] with
  | Some d -> Alcotest.(check int) "distance measured along hops" 9 d
  | None -> Alcotest.fail "expected an alarming node"

let test_memory_accounting () =
  let st = Gen.rng 19 in
  let g = Gen.path st 6 in
  let net = Net.create g in
  Alcotest.(check bool) "peak bits positive" true (Net.peak_bits net > 0)

let suite =
  [
    Alcotest.test_case "sync convergence in diameter rounds" `Quick test_sync_convergence;
    Alcotest.test_case "async fair daemon converges" `Quick test_async_convergence;
    Alcotest.test_case "adversarial daemon converges" `Quick test_adversarial_convergence;
    Alcotest.test_case "non-neighbour reads rejected" `Quick test_neighbour_read_guard;
    Alcotest.test_case "fault injection" `Quick test_fault_injection;
    Alcotest.test_case "detection distance" `Quick test_detection_distance;
    Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
  ]
