open Ssmst_graph
open Ssmst_sim
open Ssmst_protocols
open Ssmst_core

(* Differential testing of the event-driven engine ({!Network.Make}) against
   the naive reference engine ({!Network.Naive}): on the same graph, daemon
   (twin RNGs) and fault schedule, states and round counts must be identical
   after every round.  This is the soundness argument for the dirty-set rule
   made executable. *)

(* a silent protocol with plenty of churn before quiescence *)
module Flood = struct
  type state = { best : int; hops : int }

  let init g v = { best = Graph.id g v; hops = 0 }

  let step g v (s : state) read =
    Graph.fold_ports g v
      (fun acc _ u ->
        let su = read u in
        if su.best > acc.best then { best = su.best; hops = su.hops + 1 } else acc)
      s

  let alarm _ = false
  let equal (a : state) (b : state) = a = b
  let bits s = Ssmst_sim.Memory.of_int s.best + Ssmst_sim.Memory.of_nat s.hops
  let corrupt st _ _ (s : state) = { s with best = Random.State.int st 4096 }

  let corrupt_field st _ _ (s : state) =
    if Random.State.bool st then { s with best = Random.State.int st 4096 }
    else { s with hops = Random.State.int st 64 }

  let field_names = [| "best"; "hops" |]
  let encode (s : state) = [| s.best; s.hops |]
end

module Diff (P : Protocol.S) = struct
  module N = Network.Naive (P)
  module E = Network.Make (P)

  let daemon_of kind seed =
    match kind with
    | 0 -> Scheduler.Sync
    | 1 -> Scheduler.Async_random (Gen.rng seed)
    | _ -> Scheduler.Async_adversarial (Gen.rng seed)

  let check ~ctx naive engine =
    if N.rounds naive <> E.rounds engine then
      failwith
        (Fmt.str "%s: round counts diverge (naive %d, engine %d)" ctx (N.rounds naive)
           (E.rounds engine));
    if N.any_alarm naive <> E.any_alarm engine then
      failwith (Fmt.str "%s: alarm predicates diverge" ctx);
    Array.iteri
      (fun v s ->
        if not (P.equal s (E.state engine v)) then
          failwith (Fmt.str "%s: states diverge at node %d" ctx v))
      (N.states naive)

  (* Run both engines in lock-step for [rounds], inject [faults] identical
     faults, run again; compare after every round. *)
  let run_one ?(n = 20) ?(rounds = 25) ?(faults = 2) ~seed ~kind () =
    let g = Gen.random_connected (Gen.rng seed) n in
    let naive = N.create g and engine = E.create g in
    let dn = daemon_of kind (seed + 1) and de = daemon_of kind (seed + 1) in
    check ~ctx:"init" naive engine;
    for r = 1 to rounds do
      N.round naive dn;
      E.round engine de;
      check ~ctx:(Fmt.str "round %d (daemon %d, seed %d)" r kind seed) naive engine
    done;
    if faults > 0 then begin
      let fn = N.inject_faults naive (Gen.rng (seed + 2)) ~count:faults in
      let fe = E.inject_faults engine (Gen.rng (seed + 2)) ~count:faults in
      if fn <> fe then failwith (Fmt.str "fault sets diverge (seed %d)" seed);
      if fn <> List.sort compare fn then
        failwith (Fmt.str "fault set not sorted (seed %d)" seed);
      check ~ctx:"post-injection" naive engine;
      for r = 1 to rounds do
        N.round naive dn;
        E.round engine de;
        check
          ~ctx:(Fmt.str "post-fault round %d (daemon %d, seed %d)" r kind seed)
          naive engine
      done
    end

  (* Every placement x severity combination the fault subsystem offers:
     after each injection the engines must stay bit-identical (this is
     what guards the dirty-marking of the event-driven engine on the
     fault path). *)
  let all_models n root =
    [
      Fault.uniform ~count:2;
      Fault.make ~placement:(Clustered { center = Some root; radius = 2 }) ~count:3 ();
      Fault.make ~placement:(Clustered { center = None; radius = 1 }) ~count:2 ();
      Fault.make ~placement:(Near_root { root }) ~count:2 ();
      Fault.make ~placement:(Targeted [ 0; n / 2; n - 1 ]) ~count:3 ();
      Fault.make ~severity:Crash_reset ~count:3 ();
      Fault.make ~severity:Bit_flip ~count:3 ();
      Fault.make ~severity:Bit_flip
        ~cadence:(Intermittent { period = 5; repeats = 2 })
        ~count:2 ();
    ]

  let run_models ?(n = 20) ?(rounds = 15) ~seed ~kind () =
    let g = Gen.random_connected (Gen.rng seed) n in
    let naive = N.create g and engine = E.create g in
    let dn = daemon_of kind (seed + 1) and de = daemon_of kind (seed + 1) in
    for r = 1 to rounds do
      N.round naive dn;
      E.round engine de;
      check ~ctx:(Fmt.str "warmup round %d (seed %d)" r seed) naive engine
    done;
    List.iteri
      (fun i model ->
        let ctx = Fmt.str "model %s (daemon %d, seed %d)" (Fault.to_string model) kind seed in
        let fn = N.inject naive (Gen.rng (seed + 100 + i)) model in
        let fe = E.inject engine (Gen.rng (seed + 100 + i)) model in
        if fn <> fe then failwith (Fmt.str "%s: fault sets diverge" ctx);
        if fn <> List.sort compare fn then failwith (Fmt.str "%s: fault set not sorted" ctx);
        check ~ctx:(ctx ^ " post-injection") naive engine;
        for r = 1 to 5 do
          N.round naive dn;
          E.round engine de;
          check ~ctx:(Fmt.str "%s round %d" ctx r) naive engine
        done)
      (all_models (Graph.n g) (seed mod n))
end

module Diff_flood = Diff (Flood)
module Diff_bfs = Diff (Ss_bfs.P)

(* ---------------- QCheck sweeps: >= 100 random instances ---------------- *)

let qcheck_diff name (run : seed:int -> kind:int -> unit) =
  QCheck.Test.make ~count:120 ~name
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, kind) ->
      run ~seed ~kind;
      true)

let flood_diff =
  qcheck_diff "engine = naive: max-id flood" (fun ~seed ~kind ->
      Diff_flood.run_one ~seed ~kind ())

let bfs_diff =
  qcheck_diff "engine = naive: ss-bfs leader election" (fun ~seed ~kind ->
      Diff_bfs.run_one ~rounds:30 ~faults:3 ~seed ~kind ())

let qcheck_models name count (run : seed:int -> kind:int -> unit) =
  QCheck.Test.make ~count ~name
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, kind) ->
      run ~seed ~kind;
      true)

let flood_models =
  qcheck_models "engine = naive: every fault model (flood)" 40 (fun ~seed ~kind ->
      Diff_flood.run_models ~seed ~kind ())

let bfs_models =
  qcheck_models "engine = naive: every fault model (ss-bfs)" 25 (fun ~seed ~kind ->
      Diff_bfs.run_models ~seed ~kind ())

(* ---------------- the real verifier, sync and async ---------------- *)

let verifier_diff kind () =
  let n = 16 in
  List.iter
    (fun seed ->
      let g = Gen.random_connected (Gen.rng (8200 + seed)) n in
      let m = Marker.run g in
      let mode = if kind = 0 then Verifier.Passive else Verifier.Handshake in
      let module C = struct
        let marker = m
        let mode = mode
      end in
      let module P = Verifier.Make (C) in
      let module D = Diff (P) in
      D.run_one ~n ~rounds:120 ~faults:1 ~seed:(8200 + seed) ~kind ())
    [ 0; 1 ]

(* the real verifier under every fault model *)
let verifier_models () =
  let n = 16 and seed = 9100 in
  let g = Gen.random_connected (Gen.rng seed) n in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module D = Diff (P) in
  List.iter (fun kind -> D.run_models ~n ~rounds:60 ~seed ~kind ()) [ 0; 1 ]

let suite =
  [
    QCheck_alcotest.to_alcotest flood_diff;
    QCheck_alcotest.to_alcotest bfs_diff;
    QCheck_alcotest.to_alcotest flood_models;
    QCheck_alcotest.to_alcotest bfs_models;
    Alcotest.test_case "engine = naive: verifier, synchronous" `Quick (verifier_diff 0);
    Alcotest.test_case "engine = naive: verifier, async daemon" `Quick (verifier_diff 1);
    Alcotest.test_case "engine = naive: verifier, every fault model" `Quick verifier_models;
  ]
