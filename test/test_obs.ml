open Ssmst_graph
open Ssmst_sim
open Ssmst_protocols
open Ssmst_obs
open Ssmst_core

(* The runtime observatory: log-bucketed histograms, the phase-span
   profiler, the online invariant monitors, the report renderers — plus the
   compactness audit matrix over every protocol in the repo and the
   engine≡naive differential check with monitors attached. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---------------- Hist ---------------- *)

let test_hist_basics () =
  let h = Hist.create () in
  Alcotest.(check bool) "empty" true (Hist.is_empty h);
  Alcotest.(check int) "empty p99" 0 (Hist.p99 h);
  List.iter (Hist.record h) [ 1; 2; 3; 100 ];
  Alcotest.(check int) "count" 4 (Hist.count h);
  Alcotest.(check int) "min exact" 1 (Hist.min_value h);
  Alcotest.(check int) "max exact" 100 (Hist.max_value h);
  Alcotest.(check int) "p50 at bucket resolution" 3 (Hist.p50 h);
  Alcotest.(check int) "p99 clamps to the observed max" 100 (Hist.p99 h);
  Alcotest.(check (float 0.01)) "mean" 26.5 (Hist.mean h);
  Alcotest.(check int) "quantile 1.0 = max" 100 (Hist.quantile h 1.0);
  Hist.record h (-5);
  Alcotest.(check int) "negatives clamp to 0" 0 (Hist.min_value h);
  Hist.clear h;
  Alcotest.(check bool) "clear empties" true (Hist.is_empty h)

let test_hist_quantile_sandwich () =
  (* the quantile never under-reports and stays within one bucket (a factor
     of two) of the exact order statistic *)
  let st = Random.State.make [| 91 |] in
  for _ = 1 to 20 do
    let values = List.init 200 (fun _ -> Random.State.int st 100000) in
    let h = Hist.create () in
    List.iter (Hist.record h) values;
    let sorted = List.sort compare values in
    List.iter
      (fun q ->
        let rank = max 1 (int_of_float (ceil (q *. 200.))) in
        let exact = List.nth sorted (rank - 1) in
        let approx = Hist.quantile h q in
        Alcotest.(check bool)
          (Fmt.str "q%.2f: exact %d <= approx %d" q exact approx)
          true (approx >= exact);
        Alcotest.(check bool)
          (Fmt.str "q%.2f: approx %d <= 2*exact" q approx)
          true
          (approx <= max (Hist.min_value h) (2 * exact)))
      [ 0.5; 0.9; 0.99 ];
    Alcotest.(check bool) "quantiles monotone" true
      (Hist.p50 h <= Hist.p90 h && Hist.p90 h <= Hist.p99 h && Hist.p99 h <= Hist.max_value h)
  done

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.record a) [ 1; 7; 7 ];
  List.iter (Hist.record b) [ 0; 900 ];
  let c = Hist.merge a b in
  Alcotest.(check int) "merged count" 5 (Hist.count c);
  Alcotest.(check int) "merged min" 0 (Hist.min_value c);
  Alcotest.(check int) "merged max" 900 (Hist.max_value c);
  Alcotest.(check (float 0.01)) "merged mean" 183.0 (Hist.mean c);
  Hist.merge_into a b;
  Alcotest.(check int) "merge_into count" 5 (Hist.count a);
  Alcotest.(check int) "merge_into max" 900 (Hist.max_value a);
  (* the per-bucket shape survives the merge *)
  Alcotest.(check (list (pair int int))) "bucket rows" (Hist.nonzero c) (Hist.nonzero a)

let test_hist_json () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 3; 3; 12 ];
  let j = Hist.to_json ~label:{|q"x|} h in
  Alcotest.(check bool) "label escaped" true (contains j {|"label":"q\"x"|})

let test_hist_merge_quantiles () =
  (* Merging must commute with recording: quantiles of [merge a b] equal
     the quantiles of one histogram fed the union of the samples (exactly,
     not approximately — same log buckets either way). *)
  let xs = [ 1; 2; 2; 5; 9; 40; 41; 1000 ] and ys = [ 0; 3; 8; 8; 700; 7000 ] in
  let a = Hist.create () and b = Hist.create () and u = Hist.create () in
  List.iter (Hist.record a) xs;
  List.iter (Hist.record b) ys;
  List.iter (Hist.record u) (xs @ ys);
  let m = Hist.merge a b in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q=%.2f merged = union" q)
        (Hist.quantile u q) (Hist.quantile m q))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  Alcotest.(check (list (pair int int))) "same buckets" (Hist.nonzero u) (Hist.nonzero m)

(* ---------------- Json_lite ---------------- *)

let test_json_lite_roundtrip () =
  let src = {|{"a":[1,-2.5,true,false,null],"s":"x\"\\\n\tz","o":{"k":3e2}}|} in
  let j = Json_lite.parse src in
  let o = match Json_lite.mem "o" j with Some o -> o | None -> Alcotest.fail "o missing" in
  Alcotest.(check (option (float 1e-9))) "nested num" (Some 300.)
    (Json_lite.num_opt (Json_lite.mem "k" o));
  Alcotest.(check (option string)) "escapes decode" (Some "x\"\\\n\tz")
    (Json_lite.str_opt (Json_lite.mem "s" j));
  Alcotest.(check int) "array length" 5 (List.length (Json_lite.arr (Json_lite.mem "a" j)));
  (* print-then-parse is the identity on the parsed value *)
  Alcotest.(check bool) "round trip" true
    (Json_lite.parse (Json_lite.to_string j) = j)

let test_json_lite_malformed () =
  List.iter
    (fun s ->
      match Json_lite.parse s with
      | _ -> Alcotest.failf "parse accepted malformed %S" s
      | exception Json_lite.Bad _ -> ())
    [
      "";
      "tru";
      {|{"a":1|};
      {|[1,2,]|};
      {|{} x|} (* trailing garbage *);
      {|"\q"|} (* unsupported escape *);
      {|[1e]|};
      {|"unterminated|};
      {|{"a" 1}|};
    ]

(* ---------------- Telemetry ---------------- *)

(* A little workload against an explicit [t]: nested phases plus a worker
   span, enough to exercise every accumulator and the event buffer. *)
let telemetry_workload (t : Telemetry.t) =
  Telemetry.enter t "round";
  Telemetry.enter t "compute";
  Telemetry.leave t "compute";
  Telemetry.enter t "apply";
  Telemetry.leave t "apply";
  Telemetry.leave t "round";
  Telemetry.span t ~tid:1 "worker" 0.002 0.004;
  Telemetry.span t ~tid:1 "worker" 0.004 0.005

let test_telemetry_fake_deterministic () =
  let render t =
    ( Telemetry.to_markdown t,
      Telemetry.to_csv t,
      Telemetry.to_json t,
      Telemetry.to_chrome_trace t )
  in
  let t1 = Telemetry.fake () and t2 = Telemetry.fake () in
  telemetry_workload t1;
  telemetry_workload t2;
  let m1, c1, j1, x1 = render t1 and m2, c2, j2, x2 = render t2 in
  Alcotest.(check string) "markdown byte-identical" m1 m2;
  Alcotest.(check string) "csv byte-identical" c1 c2;
  Alcotest.(check string) "json byte-identical" j1 j2;
  Alcotest.(check string) "chrome trace byte-identical" x1 x2;
  Alcotest.(check bool) "chrome trace has complete events" true (contains x1 {|"ph":"X"|});
  Alcotest.(check bool) "trace json parses" true
    (match Json_lite.parse x1 with _ -> true | exception Json_lite.Bad _ -> false);
  Alcotest.(check bool) "report json parses" true
    (match Json_lite.parse j1 with _ -> true | exception Json_lite.Bad _ -> false)

let test_telemetry_accumulation () =
  let ticks = ref 0 in
  let clock () =
    incr ticks;
    float_of_int !ticks *. 0.001
  in
  let minor = ref 0. in
  let gc () =
    Telemetry.
      { minor_words = !minor; major_words = 0.; minor_collections = 0.; major_collections = 0. }
  in
  let t = Telemetry.create ~clock ~gc () in
  Telemetry.enter t "work";
  minor := 500.;
  Telemetry.leave t "work";
  Telemetry.span t ~tid:2 "worker" 0.010 0.025;
  Telemetry.span t ~tid:2 "worker" 0.030 0.035;
  let find name = List.find (fun (p : Telemetry.phase) -> p.name = name) (Telemetry.phases t) in
  let w = find "work" in
  Alcotest.(check int) "phase calls" 1 w.calls;
  Alcotest.(check (float 1e-9)) "phase gc delta" 500. w.minor_words;
  Alcotest.(check bool) "phase wall positive" true (w.wall_s > 0.);
  let d2 = find "worker.d2" in
  Alcotest.(check int) "span calls accumulate per track" 2 d2.calls;
  Alcotest.(check (float 1e-9)) "span wall sums" 0.020 d2.wall_s

let test_telemetry_event_cap () =
  let ticks = ref 0 in
  let clock () =
    incr ticks;
    float_of_int !ticks *. 0.001
  in
  let gc () =
    Telemetry.{ minor_words = 0.; major_words = 0.; minor_collections = 0.; major_collections = 0. }
  in
  let t = Telemetry.create ~clock ~gc ~max_events:2 () in
  for _ = 1 to 4 do
    Telemetry.enter t "p";
    Telemetry.leave t "p"
  done;
  Alcotest.(check int) "events past the cap are counted dropped" 2 (Telemetry.dropped_events t);
  (* accumulation never stops: all four calls are still charged *)
  let p = List.hd (Telemetry.phases t) in
  Alcotest.(check int) "phase accumulation survives the cap" 4 p.calls;
  Alcotest.(check bool) "trace reports the drop" true
    (contains (Telemetry.to_chrome_trace t) {|"dropped":2|})

let test_telemetry_probe_wiring () =
  let t = Telemetry.fake () in
  Telemetry.install t;
  Fun.protect ~finally:Telemetry.uninstall (fun () ->
      Ssmst_parallel.Probe.with_ "outer" (fun () ->
          Ssmst_parallel.Probe.with_ "inner" Fun.id));
  let names = List.map (fun (p : Telemetry.phase) -> p.name) (Telemetry.phases t) in
  Alcotest.(check (list string)) "probes feed the installed sink (entry order)"
    [ "inner"; "outer" ] names;
  Alcotest.(check bool) "uninstalled probes are inert" true
    (Ssmst_parallel.Probe.get () = None)

(* ---------------- Span ---------------- *)

let test_span_sampling_and_nesting () =
  let m = Metrics.create () in
  let sp = Span.create ~sample:(Span.sampler_of_metrics m) () in
  m.Metrics.rounds <- 5;
  Span.open_ sp (Span.Fragment_level 0);
  m.Metrics.rounds <- 12;
  m.Metrics.activations <- 40;
  Span.open_ sp Span.Wave_sweep;
  m.Metrics.rounds <- 20;
  m.Metrics.peak_bits <- 33;
  Span.close sp;
  m.Metrics.rounds <- 23;
  Span.close sp;
  let root = Span.finish sp in
  Alcotest.(check int) "root rounds = full window" 23 root.Span.rounds;
  (match Span.children root with
  | [ frag ] ->
      Alcotest.(check string) "tag label" "fragment-level 0" (Span.tag_label frag.Span.tag);
      Alcotest.(check int) "fragment rounds (inclusive)" 18 frag.Span.rounds;
      Alcotest.(check int) "fragment activations" 40 frag.Span.activations;
      (match Span.children frag with
      | [ wave ] ->
          Alcotest.(check int) "wave rounds" 8 wave.Span.rounds;
          Alcotest.(check int) "wave peak bits sampled at close" 33 wave.Span.peak_bits
      | l -> Alcotest.fail (Fmt.str "expected one wave child, got %d" (List.length l)))
  | l -> Alcotest.fail (Fmt.str "expected one fragment child, got %d" (List.length l)));
  Alcotest.(check int) "depth_first visits all" 3 (List.length (Span.depth_first root))

let test_span_charge_is_inclusive () =
  let sp = Span.create () in
  Span.open_ sp (Span.Epoch 1);
  Span.open_ sp Span.Detect;
  Span.charge sp ~rounds:7 ~activations:2 ~peak_bits:99 ();
  Span.close sp;
  Span.close sp;
  let root = Span.finish sp in
  let all = Span.depth_first root in
  Alcotest.(check int) "three nodes" 3 (List.length all);
  List.iter
    (fun (_, (n : Span.node)) ->
      Alcotest.(check int) (Span.tag_label n.Span.tag ^ " rounds") 7 n.Span.rounds;
      Alcotest.(check int) (Span.tag_label n.Span.tag ^ " peak") 99 n.Span.peak_bits)
    all

let test_span_exception_safety_and_finish () =
  let sp = Span.create () in
  (try
     Span.with_ sp Span.Settle (fun () ->
         Span.charge sp ~rounds:3 ();
         failwith "boom")
   with Failure _ -> ());
  Span.open_ sp Span.Inject;
  Span.open_ sp Span.Verify;
  (* finish closes the two dangling spans and settles the root *)
  let root = Span.finish sp in
  Alcotest.(check int) "settle closed by with_, inject+verify by finish" 3
    (List.length (Span.depth_first root) - 1);
  Alcotest.(check int) "charge survived the exception" 3 root.Span.rounds;
  Alcotest.(check bool) "close on empty stack raises" true
    (try
       Span.close sp;
       false
     with Invalid_argument _ -> true)

let test_span_trace_marks () =
  let tr = Trace.create () in
  let sp = Span.create ~trace:tr () in
  Span.with_ sp (Span.Campaign_trial 2) (fun () -> ());
  let marks =
    List.filter_map
      (function Trace.Span_mark { label; enter; _ } -> Some (label, enter) | _ -> None)
      (Trace.to_list tr)
  in
  Alcotest.(check (list (pair string bool)))
    "enter/exit pair recorded"
    [ ("campaign-trial 2", true); ("campaign-trial 2", false) ]
    marks

(* ---------------- Trace: JSON round-trip (satellite) ---------------- *)

let nasty = "a\"b\\c,\nend\ttab\001ctl"

let all_variants =
  [
    Trace.Activation { round = 1; node = 2 };
    Trace.Register_write { round = 3; node = 4; bits = 99; prov = None };
    Trace.Alarm_raised { round = 5; node = 6 };
    Trace.Alarm_cleared { round = 6; node = 6 };
    Trace.Fault_injected { round = 7; node = 0; fault = None };
    Trace.Convergence { round = 8; reached = false };
    Trace.Convergence { round = 9; reached = true };
    Trace.Span_mark { round = 10; label = nasty; enter = true };
    Trace.Span_mark { round = 11; label = ""; enter = false };
    Trace.Invariant_violation { round = 12; node = None; monitor = "compactness"; detail = nasty };
    Trace.Invariant_violation
      { round = 13; node = Some 5; monitor = "forest"; detail = "cycle at node 5" };
  ]

let test_trace_json_roundtrip () =
  List.iter
    (fun e ->
      let j = Trace.event_to_json e in
      (* the encoding is a single clean line: no raw control bytes *)
      String.iter
        (fun ch ->
          Alcotest.(check bool) (Fmt.str "no control byte in %s" j) true (Char.code ch >= 0x20))
        j;
      match Trace.event_of_json j with
      | None -> Alcotest.fail (Fmt.str "unparseable: %s" j)
      | Some e' ->
          Alcotest.(check bool) (Fmt.str "round-trip: %s" j) true (e = e'))
    all_variants;
  Alcotest.(check bool) "garbage rejected" true (Trace.event_of_json "{nope" = None);
  Alcotest.(check bool) "unknown event rejected" true
    (Trace.event_of_json {|{"event":"warp","round":1}|} = None)

let test_trace_csv_escaping () =
  let row =
    Trace.event_to_csv (Trace.Span_mark { round = 1; label = "a,b\"c"; enter = true })
  in
  Alcotest.(check bool) "comma-bearing label is quoted" true (contains row {|"a,b""c"|})

(* ---------------- Metrics: full reset (satellite) ---------------- *)

let test_metrics_reset_restores_every_field () =
  let m = Metrics.create () in
  m.Metrics.rounds <- 1;
  m.Metrics.activations <- 2;
  m.Metrics.register_writes <- 3;
  m.Metrics.wasted_steps <- 4;
  m.Metrics.skipped_activations <- 5;
  m.Metrics.last_write_round <- 6;
  m.Metrics.faults_injected <- 7;
  m.Metrics.alarms_raised <- 8;
  m.Metrics.alarms_cleared <- 9;
  m.Metrics.peak_bits <- 10;
  m.Metrics.monitor_violations <- 11;
  Metrics.reset m;
  let z = Metrics.create () in
  Alcotest.(check int) "rounds" z.Metrics.rounds m.Metrics.rounds;
  Alcotest.(check int) "activations" z.Metrics.activations m.Metrics.activations;
  Alcotest.(check int) "register_writes" z.Metrics.register_writes m.Metrics.register_writes;
  Alcotest.(check int) "wasted_steps" z.Metrics.wasted_steps m.Metrics.wasted_steps;
  Alcotest.(check int) "skipped_activations" z.Metrics.skipped_activations
    m.Metrics.skipped_activations;
  Alcotest.(check int) "last_write_round" z.Metrics.last_write_round m.Metrics.last_write_round;
  Alcotest.(check int) "faults_injected" z.Metrics.faults_injected m.Metrics.faults_injected;
  Alcotest.(check int) "alarms_raised" z.Metrics.alarms_raised m.Metrics.alarms_raised;
  Alcotest.(check int) "alarms_cleared" z.Metrics.alarms_cleared m.Metrics.alarms_cleared;
  Alcotest.(check int) "peak_bits" z.Metrics.peak_bits m.Metrics.peak_bits;
  Alcotest.(check int) "monitor_violations" z.Metrics.monitor_violations
    m.Metrics.monitor_violations;
  (* the structural equality seals it: reset m = create () *)
  Alcotest.(check bool) "reset m = create ()" true (z = m)

(* ---------------- Monitor: synthetic views ---------------- *)

(* a fully controllable view for unit-testing each monitor in isolation *)
type sandbox = {
  view : Monitor.view;
  set_parent : int -> int option -> unit;
  set_alarm : int -> bool -> unit;
  set_bits : int -> int -> unit;
  touch : unit -> unit;  (* bump the change counter *)
}

let sandbox n =
  let g = Gen.ring (Gen.rng 5) n in
  let parent = Array.make n None in
  let alarm = Array.make n false in
  let bits = Array.make n 1 in
  let version = ref 0 in
  {
    view =
      {
        Monitor.graph = g;
        parent = (fun v -> parent.(v));
        bits = (fun v -> bits.(v));
        alarm = (fun v -> alarm.(v));
        peak_bits = (fun () -> Array.fold_left max 0 bits);
        any_alarm = (fun () -> Array.exists Fun.id alarm);
        change_counter = (fun () -> !version);
      };
    set_parent = (fun v p -> parent.(v) <- p);
    set_alarm = (fun v a -> alarm.(v) <- a);
    set_bits = (fun v b -> bits.(v) <- b);
    touch = (fun () -> incr version);
  }

let verdict_of mon name =
  match List.assoc_opt name (Monitor.results mon) with
  | Some v -> v
  | None -> Alcotest.fail (Fmt.str "unknown monitor %s" name)

let is_violation = function Monitor.Violation _ -> true | Monitor.Ok -> false

let test_monitor_caching () =
  let sb = sandbox 8 in
  let mon = Monitor.create sb.view in
  sb.touch ();
  Monitor.check mon ~round:1;
  Monitor.check mon ~round:2;
  Monitor.check mon ~round:3;
  Alcotest.(check int) "unchanged rounds skip evaluation" 1 (Monitor.evaluations mon);
  sb.touch ();
  Monitor.check mon ~round:4;
  Alcotest.(check int) "changed round re-evaluates" 2 (Monitor.evaluations mon);
  Alcotest.(check bool) "all ok on a sane view" true (Monitor.all_ok mon)

let test_monitor_forest_cycle () =
  let sb = sandbox 8 in
  let tr = Trace.create () in
  let m = Metrics.create () in
  let mon = Monitor.create ~trace:tr ~metrics:m sb.view in
  (* a 3-cycle among 2 -> 3 -> 4 -> 2, everything else floating *)
  sb.set_parent 2 (Some 3);
  sb.set_parent 3 (Some 4);
  sb.set_parent 4 (Some 2);
  sb.touch ();
  Monitor.check mon ~round:17;
  (match verdict_of mon "forest" with
  | Monitor.Violation { round; node; _ } ->
      Alcotest.(check int) "violation pinpoints the round" 17 round;
      Alcotest.(check bool) "violating node named" true
        (match node with Some v -> List.mem v [ 2; 3; 4 ] | None -> false)
  | Monitor.Ok -> Alcotest.fail "cycle not caught");
  Alcotest.(check int) "metrics counter bumped" 1 m.Metrics.monitor_violations;
  Alcotest.(check int) "one trace event" 1
    (List.length
       (List.filter
          (function Trace.Invariant_violation { monitor = "forest"; _ } -> true | _ -> false)
          (Trace.to_list tr)));
  (* the verdict latches: later rounds keep the first occurrence *)
  sb.touch ();
  Monitor.check mon ~round:40;
  (match verdict_of mon "forest" with
  | Monitor.Violation { round; _ } -> Alcotest.(check int) "latched" 17 round
  | Monitor.Ok -> Alcotest.fail "latch lost");
  Alcotest.(check int) "no double count" 1 m.Metrics.monitor_violations

let test_monitor_forest_ok_on_forest () =
  let sb = sandbox 8 in
  let mon = Monitor.create sb.view in
  (* a path 7 -> 6 -> ... -> 0, plus out-of-range rejection separately *)
  for v = 1 to 7 do
    sb.set_parent v (Some (v - 1))
  done;
  sb.touch ();
  Monitor.check mon ~round:1;
  Alcotest.(check bool) "chains are fine" false (is_violation (verdict_of mon "forest"));
  sb.set_parent 0 (Some 99);
  sb.touch ();
  Monitor.check mon ~round:2;
  Alcotest.(check bool) "out-of-range parent is a violation" true
    (is_violation (verdict_of mon "forest"))

let test_monitor_compactness () =
  let sb = sandbox 16 in
  let m = Metrics.create () in
  let mon = Monitor.create ~metrics:m ~compact_c:2 sb.view in
  sb.touch ();
  Monitor.check mon ~round:1;
  Alcotest.(check bool) "small registers ok" false (is_violation (verdict_of mon "compactness"));
  (* bound = 2 * ceil(log2 16) = 8 bits; node 11 blows it *)
  sb.set_bits 11 80;
  sb.touch ();
  Monitor.check mon ~round:9;
  (match verdict_of mon "compactness" with
  | Monitor.Violation { round; node; _ } ->
      Alcotest.(check int) "round" 9 round;
      Alcotest.(check (option int)) "offending node found" (Some 11) node
  | Monitor.Ok -> Alcotest.fail "oversized register not caught")

let test_monitor_alarm_monotonicity_and_distance () =
  let sb = sandbox 8 in
  let mon = Monitor.create ~distance_c:0 sb.view in
  sb.touch ();
  Monitor.check mon ~round:1;
  Monitor.note_injection mon ~round:2 ~faults:[ 0 ];
  Monitor.check mon ~round:2;
  Alcotest.(check bool) "armed, no alarm yet: ok" true (Monitor.all_ok mon);
  (* alarm fires at hop distance 4 on the 8-ring; distance_c = 0 makes the
     bound 0, so the detection-distance monitor must flag this round *)
  sb.set_alarm 4 true;
  sb.touch ();
  Monitor.check mon ~round:7;
  (match verdict_of mon "detection-distance" with
  | Monitor.Violation { round; _ } ->
      Alcotest.(check int) "distance violation pinpoints the detection round" 7 round
  | Monitor.Ok -> Alcotest.fail "too-low distance bound not caught");
  (* the alarm vanishing before the reset is a monotonicity violation *)
  sb.set_alarm 4 false;
  sb.touch ();
  Monitor.check mon ~round:11;
  (match verdict_of mon "alarm-monotonicity" with
  | Monitor.Violation { round; _ } -> Alcotest.(check int) "mono round" 11 round
  | Monitor.Ok -> Alcotest.fail "alarm loss not caught");
  (* after a reset the monitors disarm: a fresh quiet state is fine *)
  Monitor.note_reset mon ~round:12;
  sb.touch ();
  Monitor.check mon ~round:13;
  Alcotest.(check int) "latched violations stay" 2
    (List.length (List.filter (fun (_, v) -> is_violation v) (Monitor.results mon)))

let test_monitor_alarm_monotonicity_honest () =
  let sb = sandbox 8 in
  let mon = Monitor.create ~distance_c:3 sb.view in
  Monitor.note_injection mon ~round:1 ~faults:[ 2 ];
  sb.set_alarm 2 true;
  sb.touch ();
  Monitor.check mon ~round:3;
  sb.touch ();
  Monitor.check mon ~round:4;
  Monitor.note_reset mon ~round:5;
  sb.set_alarm 2 false;
  sb.touch ();
  Monitor.check mon ~round:6;
  Alcotest.(check bool) "alarm cleared after reset is fine" true (Monitor.all_ok mon)

(* ---------------- Monitor on the real verifier ---------------- *)

type harness = {
  mon : Monitor.t;
  tr : Trace.t;
  settle : unit -> unit;
  inject : int -> int -> int list;  (* seed, count -> victims *)
  inject_at : int -> int -> int list;  (* seed, node: targeted bit-flip *)
  alarm_of : int -> bool;
  detect : Scheduler.t -> int option;
  ddist : int list -> int option;
  rounds : unit -> int;
}

let verifier_harness ?(compact_c = Monitor.default_compact_c)
    ?(distance_c = Monitor.default_distance_c) ~seed n =
  let g = Gen.random_connected (Gen.rng seed) n in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  let tr = Trace.create () in
  let view =
    {
      Monitor.graph = g;
      parent = Tree.parent m.Marker.tree;
      bits = (fun v -> P.bits (Net.state net v));
      alarm = (fun v -> P.alarm (Net.state net v));
      peak_bits = (fun () -> Net.peak_bits net);
      any_alarm = (fun () -> Net.any_alarm net);
      change_counter =
        (fun () ->
          let mm = Net.metrics net in
          mm.Metrics.register_writes + mm.Metrics.faults_injected);
    }
  in
  let mon = Monitor.create ~trace:tr ~metrics:(Net.metrics net) ~compact_c ~distance_c view in
  Net.set_round_hook net (fun () -> Monitor.check mon ~round:(Net.rounds net));
  {
    mon;
    tr;
    settle =
      (fun () ->
        Net.run net Scheduler.Sync ~rounds:(8 * Verifier.window_bound m.Marker.labels.(0)));
    inject =
      (fun iseed count ->
        let fs = Net.inject_faults net (Gen.rng iseed) ~count in
        Monitor.note_injection mon ~round:(Net.rounds net) ~faults:fs;
        fs);
    inject_at =
      (fun iseed v ->
        let model =
          Fault.make ~placement:(Fault.Targeted [ v ]) ~severity:Fault.Bit_flip ~count:1 ()
        in
        let fs = Net.inject net (Gen.rng iseed) model in
        Monitor.note_injection mon ~round:(Net.rounds net) ~faults:fs;
        fs);
    alarm_of = (fun v -> P.alarm (Net.state net v));
    detect = (fun daemon -> Net.detection_time net daemon ~max_rounds:20000);
    ddist = (fun faults -> Net.detection_distance net ~faults);
    rounds = (fun () -> Net.rounds net);
  }

let test_monitors_ok_on_honest_run () =
  let h = verifier_harness ~seed:1207 48 in
  h.settle ();
  let fs = h.inject 77 1 in
  (match h.detect Scheduler.Sync with
  | Some _ -> ()
  | None -> Alcotest.fail "fault not detected");
  ignore fs;
  Alcotest.(check bool) "all four monitors ok across settle+inject+detect" true
    (Monitor.all_ok h.mon);
  Alcotest.(check bool) "monitors actually evaluated" true (Monitor.evaluations h.mon > 10)

(* the acceptance scenario: a deliberately-too-low detection-distance bound
   must produce a violation that pinpoints the detection round *)
let test_too_low_distance_bound_pinpoints_round () =
  let n = 48 in
  let tried = ref 0 in
  (* a targeted bit-flip the victim silently repairs (its own alarm stays
     off) while a neighbour observes the corrupt snapshot and raises —
     detection at hop distance >= 1, which the zeroed bound must flag *)
  let attempt (seed, victim) =
    let h = verifier_harness ~distance_c:0 ~seed n in
    h.settle ();
    let fs = h.inject_at (seed * 13) victim in
    if h.alarm_of victim then false
    else
      match h.detect Scheduler.Sync with
      | None -> false
      | Some _ -> (
          incr tried;
          match h.ddist fs with
          | Some d when d > 0 -> (
              let detection_round = h.rounds () in
              (match verdict_of h.mon "detection-distance" with
              | Monitor.Violation { round; _ } ->
                  Alcotest.(check int)
                    (Fmt.str "seed %d: violation names the detection round" seed)
                    detection_round round
              | Monitor.Ok ->
                  Alcotest.fail (Fmt.str "seed %d: distance %d > 0 yet no violation" seed d));
              (* and the violation landed in the trace *)
              match
                List.find_opt
                  (function
                    | Trace.Invariant_violation { monitor = "detection-distance"; _ } -> true
                    | _ -> false)
                  (Trace.to_list h.tr)
              with
              | Some (Trace.Invariant_violation { round; _ }) ->
                  Alcotest.(check int) "trace event carries the round" detection_round round;
                  true
              | _ -> Alcotest.fail "violation missing from the trace")
          | _ -> false)
  in
  let candidates =
    List.concat_map
      (fun seed -> List.map (fun v -> (seed, v)) [ n / 4; n / 2; (3 * n) / 4 ])
      [ 3301; 3302; 3303; 3304; 3305; 3306; 3307; 3308 ]
  in
  if not (List.exists attempt candidates) then
    Alcotest.fail
      (Fmt.str "no candidate yielded a positive detection distance (%d detections tried)"
         !tried)

(* ---------------- engine = naive with monitors attached ---------------- *)

let test_engine_diff_with_monitors () =
  List.iter
    (fun (seed, kind) ->
      let n = 16 in
      let g = Gen.random_connected (Gen.rng seed) n in
      let m = Marker.run g in
      let module C = struct
        let marker = m
        let mode = if kind = 0 then Verifier.Passive else Verifier.Handshake
      end in
      let module P = Verifier.Make (C) in
      let module N = Network.Naive (P) in
      let module E = Network.Make (P) in
      let naive = N.create g and engine = E.create g in
      let view =
        {
          Monitor.graph = g;
          parent = Tree.parent m.Marker.tree;
          bits = (fun v -> P.bits (E.state engine v));
          alarm = (fun v -> P.alarm (E.state engine v));
          peak_bits = (fun () -> E.peak_bits engine);
          any_alarm = (fun () -> E.any_alarm engine);
          change_counter =
            (fun () ->
              let mm = E.metrics engine in
              mm.Metrics.register_writes + mm.Metrics.faults_injected);
        }
      in
      let mon = Monitor.create ~metrics:(E.metrics engine) view in
      E.set_round_hook engine (fun () -> Monitor.check mon ~round:(E.rounds engine));
      let dn =
        if kind = 0 then Scheduler.Sync else Scheduler.Async_random (Gen.rng (seed + 1))
      in
      let de =
        if kind = 0 then Scheduler.Sync else Scheduler.Async_random (Gen.rng (seed + 1))
      in
      let check ctx =
        Array.iteri
          (fun v s ->
            if not (P.equal s (E.state engine v)) then
              Alcotest.fail (Fmt.str "%s: states diverge at node %d (seed %d)" ctx v seed))
          (N.states naive);
        Alcotest.(check bool) (ctx ^ ": alarms agree") (N.any_alarm naive)
          (E.any_alarm engine)
      in
      for r = 1 to 80 do
        N.round naive dn;
        E.round engine de;
        check (Fmt.str "round %d" r)
      done;
      let fn = N.inject_faults naive (Gen.rng (seed + 2)) ~count:2 in
      let fe = E.inject_faults engine (Gen.rng (seed + 2)) ~count:2 in
      Alcotest.(check (list int)) "fault sets agree" fn fe;
      Monitor.note_injection mon ~round:(E.rounds engine) ~faults:fe;
      for r = 1 to 80 do
        N.round naive dn;
        E.round engine de;
        check (Fmt.str "post-fault round %d" r)
      done;
      Alcotest.(check bool) "monitor rode along" true (Monitor.evaluations mon > 0))
    [ (4401, 0); (4402, 1) ]

(* ---------------- the compactness audit matrix (satellite) ---------------- *)

let audit_sizes = [ 16; 64; 256 ]

(* record every node's register size after [rounds] of execution and assert
   the peak stays within [bound_of logn] bits *)
let assert_compact name g ~bound_of ~bits_of ~peak =
  let n = Graph.n g in
  let logn = Memory.of_nat n in
  let h = Hist.create () in
  for v = 0 to n - 1 do
    Hist.record h (bits_of v)
  done;
  let observed = max peak (Hist.max_value h) in
  let bound = bound_of logn in
  Alcotest.(check bool)
    (Fmt.str "%s n=%d: peak %d bits <= %d" name n observed bound)
    true (observed <= bound)

let run_network_audit (type s) name
    (module P : Protocol.S with type state = s) g ~rounds ~bound_of =
  let module Net = Network.Make (P) in
  let net = Net.create g in
  Net.run net Scheduler.Sync ~rounds;
  assert_compact name g ~bound_of
    ~bits_of:(fun v -> P.bits (Net.state net v))
    ~peak:(Net.peak_bits net)

let test_compactness_matrix () =
  List.iter
    (fun n ->
      let g = Gen.random_connected (Gen.rng (6000 + n)) n in
      let rounds = min (4 * n) 700 in
      (* self-stabilizing BFS election: O(log n) bits *)
      run_network_audit "ss-bfs" (module Ss_bfs.P) g ~rounds ~bound_of:(fun l -> 8 * l);
      (* register-level wave&echo over the MST: O(log n) bits *)
      let t = (Sync_mst.run g).Sync_mst.tree in
      let parent =
        Array.init n (fun v -> match Tree.parent t v with None -> -1 | Some p -> p)
      in
      let module W = Dist_wave.Make (struct
        let parent = parent
        let value _ = 1
        let combine = ( + )
      end) in
      run_network_audit "dist-wave" (module W) g ~rounds ~bound_of:(fun l -> 12 * l);
      (* reset service wrapping the election: O(log n) bits *)
      let module R = Reset.Make (Ss_bfs.P) in
      run_network_audit "reset" (module R) g ~rounds ~bound_of:(fun l -> 20 * l);
      (* alpha synchronizer wrapping the election: O(log n) bits for
         bounded runs (the pulse counter is log(rounds)) *)
      let module S = Synchronizer.Make (Ss_bfs.P) in
      run_network_audit "synchronizer" (module S) g ~rounds ~bound_of:(fun l -> 24 * l);
      (* the paper's verifier: O(log n) bits (Section 2.4) *)
      let m = Marker.run g in
      let module C = struct
        let marker = m
        let mode = Verifier.Passive
      end in
      let module V = Verifier.Make (C) in
      run_network_audit "verifier" (module V) g ~rounds:(min rounds 300)
        ~bound_of:(fun l -> Monitor.default_compact_c * l);
      (* the KKP 1-proof labeling checker: Theta(log^2 n) bits — the paper's
         contrast, audited against the quadratic envelope *)
      let scheme = Ssmst_pls.Kkp_pls.mark m in
      let module KC = struct
        let scheme = scheme
      end in
      let module K = Ssmst_pls.Kkp_protocol.Make (KC) in
      run_network_audit "kkp-1-proof" (module K) g ~rounds:8 ~bound_of:(fun l -> 8 * l * l))
    audit_sizes

let test_compactness_baselines () =
  (* the baselines report their own measured memory; audit the claims they
     are labelled with (they are not Protocol.S instances) *)
  List.iter
    (fun n ->
      let g = Gen.random_connected (Gen.rng (6100 + n)) n in
      let logn = Memory.of_nat n in
      let hl = Ssmst_baselines.Higham_liang.run g in
      Alcotest.(check bool)
        (Fmt.str "higham-liang n=%d: %d bits <= %d" n hl.Ssmst_baselines.Higham_liang.memory_bits
           (16 * logn))
        true
        (hl.Ssmst_baselines.Higham_liang.memory_bits <= 16 * logn);
      let bl = Ssmst_baselines.Blin.run g in
      Alcotest.(check bool)
        (Fmt.str "blin n=%d: %d bits <= %d" n bl.Ssmst_baselines.Blin.memory_bits
           (16 * logn * logn))
        true
        (bl.Ssmst_baselines.Blin.memory_bits <= 16 * logn * logn))
    [ 16; 64 ]

(* ---------------- reports end to end ---------------- *)

let test_report_construct () =
  let p = { Observatory.default_params with Observatory.n = 32; seed = 11 } in
  let r = Observatory.construct p in
  Alcotest.(check bool) "monitors ok" true (Report.all_monitors_ok r);
  let md = Report.to_markdown r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "markdown mentions %S" needle) true (contains md needle))
    [ "fragment-level 0"; "wave-sweep"; "per-node label bits"; "## Span tree"; "| forest | ok |" ]

let test_report_stabilize () =
  let p =
    { Observatory.default_params with Observatory.n = 48; seed = 3; epochs = 2; faults = 1 }
  in
  let r = Observatory.stabilize p in
  Alcotest.(check bool) "monitors ok" true (Report.all_monitors_ok r);
  let md = Report.to_markdown r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "markdown mentions %S" needle) true (contains md needle))
    [ "epoch 0"; "epoch 1"; "construct"; "detect"; "alarm latency"; "per-node register bits" ];
  let j = Report.to_json r in
  Alcotest.(check bool) "json object shaped" true
    (String.length j > 2 && j.[0] = '{' && j.[String.length j - 1] = '}');
  Alcotest.(check bool) "json says monitors ok" true (contains j {|"monitors_ok":true|})

let suite =
  [
    Alcotest.test_case "hist: record/min/max/quantiles" `Quick test_hist_basics;
    Alcotest.test_case "hist: quantile sandwich vs exact" `Quick test_hist_quantile_sandwich;
    Alcotest.test_case "hist: merge" `Quick test_hist_merge;
    Alcotest.test_case "hist: json label escaping" `Quick test_hist_json;
    Alcotest.test_case "hist: merge commutes with quantiles" `Quick test_hist_merge_quantiles;
    Alcotest.test_case "json_lite: round trip" `Quick test_json_lite_roundtrip;
    Alcotest.test_case "json_lite: malformed inputs raise Bad" `Quick test_json_lite_malformed;
    Alcotest.test_case "telemetry: fake clock is byte-deterministic" `Quick
      test_telemetry_fake_deterministic;
    Alcotest.test_case "telemetry: phase + span accumulation" `Quick
      test_telemetry_accumulation;
    Alcotest.test_case "telemetry: event cap counts drops" `Quick test_telemetry_event_cap;
    Alcotest.test_case "telemetry: probe install/uninstall wiring" `Quick
      test_telemetry_probe_wiring;
    Alcotest.test_case "span: sampling + nesting" `Quick test_span_sampling_and_nesting;
    Alcotest.test_case "span: charge is inclusive" `Quick test_span_charge_is_inclusive;
    Alcotest.test_case "span: exception safety + finish" `Quick
      test_span_exception_safety_and_finish;
    Alcotest.test_case "span: trace marks" `Quick test_span_trace_marks;
    Alcotest.test_case "trace: every variant round-trips through JSON" `Quick
      test_trace_json_roundtrip;
    Alcotest.test_case "trace: csv escaping" `Quick test_trace_csv_escaping;
    Alcotest.test_case "metrics: reset restores every field" `Quick
      test_metrics_reset_restores_every_field;
    Alcotest.test_case "monitor: change-counter caching" `Quick test_monitor_caching;
    Alcotest.test_case "monitor: forest cycle detection" `Quick test_monitor_forest_cycle;
    Alcotest.test_case "monitor: forest accepts forests" `Quick test_monitor_forest_ok_on_forest;
    Alcotest.test_case "monitor: compactness bound" `Quick test_monitor_compactness;
    Alcotest.test_case "monitor: alarm monotonicity + detection distance" `Quick
      test_monitor_alarm_monotonicity_and_distance;
    Alcotest.test_case "monitor: honest alarm lifecycle" `Quick
      test_monitor_alarm_monotonicity_honest;
    Alcotest.test_case "monitor: all ok on an honest verifier run" `Quick
      test_monitors_ok_on_honest_run;
    Alcotest.test_case "monitor: too-low distance bound pinpoints the round" `Quick
      test_too_low_distance_bound_pinpoints_round;
    Alcotest.test_case "engine = naive with monitors attached" `Quick
      test_engine_diff_with_monitors;
    Alcotest.test_case "compactness audit matrix (protocols)" `Slow test_compactness_matrix;
    Alcotest.test_case "compactness audit (baselines)" `Quick test_compactness_baselines;
    Alcotest.test_case "report: construct scenario" `Quick test_report_construct;
    Alcotest.test_case "report: stabilize scenario" `Quick test_report_stabilize;
  ]
