open Ssmst_graph
open Ssmst_sim
open Ssmst_core
open Ssmst_pls
open Ssmst_protocols

(* The flat-core contract, made executable:

   1. codec round trips — [unpack (pack s)] is [P.equal]-identical to [s]
      for every engine-reachable state (init, stepped, corrupted under both
      severities), [pack] is deterministic and stays inside its slice;
   2. layout descriptors — [field_offsets] is aligned index-for-index with
      [field_names], monotone and within the word budget;
   3. the three-way differential — {!Network.Flat} stays bit-identical to
      {!Network.Make} and {!Network.Naive} under every daemon and every
      fault model, which is the soundness argument for running the scale
      experiments on the packed engine. *)

(* ---------------- codec round trips ---------------- *)

module Codec_check (P : Protocol.PACKED) = struct
  let check_layout g =
    let w = P.words g in
    let offs = P.field_offsets g in
    Alcotest.(check int)
      "field_offsets aligned with field_names"
      (Array.length P.field_names) (Array.length offs);
    Alcotest.(check bool) "budget positive" true (w > 0);
    Alcotest.(check int) "first field at word 0" 0 offs.(0);
    for i = 1 to Array.length offs - 1 do
      if offs.(i) < offs.(i - 1) then Alcotest.fail "field offsets not monotone";
      if offs.(i) >= w then Alcotest.fail "field offset outside the budget"
    done

  (* Pack at a non-zero offset into a sentinel-filled buffer: catches both
     failed round trips and out-of-slice writes. *)
  let round_trip g v s =
    let w = P.words g in
    let off = 2 + (v mod 3) in
    let buf = Array.make (off + w + 2) (-77) in
    P.pack g v s buf off;
    for j = 0 to off - 1 do
      if buf.(j) <> -77 then Alcotest.fail "pack wrote below its slice"
    done;
    if buf.(off + w) <> -77 || buf.(off + w + 1) <> -77 then
      Alcotest.fail "pack wrote past its slice";
    let s' = P.unpack g v buf off in
    if not (P.equal s s') then Alcotest.failf "round trip not identity at node %d" v;
    let buf2 = Array.make (off + w + 2) (-77) in
    P.pack g v s' buf2 off;
    if buf <> buf2 then Alcotest.failf "pack not deterministic at node %d" v

  (* Sweep the engine-reachable state space: clean runs, then alternating
     scrambling and targeted-field faults. *)
  let exhaustive ?(rounds = 10) ?(fault_bursts = 6) g seed =
    check_layout g;
    let module Net = Network.Make (P) in
    let net = Net.create g in
    let n = Graph.n g in
    let check_all () =
      for v = 0 to n - 1 do
        round_trip g v (Net.state net v)
      done
    in
    check_all ();
    for _ = 1 to rounds do
      Net.sync_round net;
      check_all ()
    done;
    let st = Gen.rng (seed + 1) in
    for _ = 1 to fault_bursts do
      ignore (Net.inject net st (Fault.uniform ~count:2));
      check_all ();
      ignore (Net.inject net st (Fault.make ~severity:Bit_flip ~count:2 ()));
      check_all ();
      Net.sync_round net;
      check_all ()
    done
end

module Bfs_codec = Codec_check (Ss_bfs.P)

let test_bfs_round_trip () =
  List.iter
    (fun n -> Bfs_codec.exhaustive (Gen.random_connected (Gen.rng (100 + n)) n) (100 + n))
    [ 2; 9; 24; 50 ]

let qcheck_bfs_round_trip =
  QCheck.Test.make ~count:60 ~name:"flat codec: ss-bfs round trips on random instances"
    QCheck.(pair (int_range 2 40) (int_bound 100_000))
    (fun (n, seed) ->
      Bfs_codec.exhaustive ~rounds:6 ~fault_bursts:3
        (Gen.random_connected (Gen.rng seed) n)
        seed;
      true)

let test_kkp_round_trip () =
  List.iter
    (fun n ->
      let scheme = Kkp_pls.mark (Marker.run (Gen.random_connected (Gen.rng (300 + n)) n)) in
      let module C = struct
        let scheme = scheme
      end in
      let module K = Codec_check (Kkp_protocol.Make (C)) in
      K.exhaustive scheme.Kkp_pls.marker.Marker.graph (300 + n))
    [ 2; 8; 24; 48 ]

let test_verifier_round_trip () =
  List.iter
    (fun (n, mode) ->
      let g = Gen.random_connected (Gen.rng (500 + n)) n in
      let module C = struct
        let marker = Marker.run g
        let mode = mode
      end in
      let module V = Codec_check (Verifier.Make (C)) in
      V.exhaustive ~rounds:25 g (500 + n))
    [ (2, Verifier.Passive); (12, Verifier.Passive); (16, Verifier.Handshake); (24, Verifier.Passive) ]

(* ---------------- measured word budgets ---------------- *)

(* The packed budgets realize the paper's memory claims in 64-bit words:
   O(log n) words for the verifier (label + trains + comparison module are
   all O(log n) bits) and O(1) words for ss-bfs. *)
let test_word_budgets () =
  List.iter
    (fun n ->
      let g = Gen.random_connected (Gen.rng (700 + n)) n in
      Alcotest.(check int) "ss-bfs budget is constant" 3 (Ss_bfs.P.words g);
      Alcotest.(check bool) "ss-bfs within 64 * ceil(log n) bits" true
        (Memory.within_log_budget ~c:64 ~n ~words:(Ss_bfs.P.words g));
      let module C = struct
        let marker = Marker.run g
        let mode = Verifier.Passive
      end in
      let module V = Verifier.Make (C) in
      (* O(log n) words = O(log² n) bits measured; the modeled count is
         O(log n · log W) bits, so gate words against c · ⌈log n⌉ *)
      Alcotest.(check bool)
        (Fmt.str "verifier words O(log n) at n=%d" n)
        true
        (V.words g <= 40 * Memory.log2_ceil n))
    [ 8; 16; 64 ]

(* ---------------- the three-way engine differential ---------------- *)

module Diff3 (P : Protocol.PACKED) = struct
  module N = Network.Naive (P)
  module E = Network.Make (P)
  module F = Network.Flat (P)

  (* CI's multicore job sets MSST_TEST_DOMAINS=2: every differential below
     then drives the domain-parallel sync rounds of both the event-driven
     and the flat engine against the sequential naive oracle.  Unset (the
     default), everything runs sequentially as before. *)
  let test_domains =
    Ssmst_parallel.Domain_pool.domains_from_env ~var:"MSST_TEST_DOMAINS" ~default:1 ()

  let daemon_of kind seed =
    match kind with
    | 0 -> Scheduler.Sync
    | 1 -> Scheduler.Async_random (Gen.rng seed)
    | _ -> Scheduler.Async_adversarial (Gen.rng seed)

  let check ~ctx naive engine flat =
    if N.rounds naive <> E.rounds engine || N.rounds naive <> F.rounds flat then
      failwith
        (Fmt.str "%s: round counts diverge (naive %d, engine %d, flat %d)" ctx
           (N.rounds naive) (E.rounds engine) (F.rounds flat));
    if N.any_alarm naive <> E.any_alarm engine || N.any_alarm naive <> F.any_alarm flat then
      failwith (Fmt.str "%s: alarm predicates diverge" ctx);
    Array.iteri
      (fun v s ->
        if not (P.equal s (E.state engine v)) then
          failwith (Fmt.str "%s: naive/engine states diverge at node %d" ctx v);
        if not (P.equal s (F.state flat v)) then
          failwith (Fmt.str "%s: naive/flat states diverge at node %d" ctx v))
      (N.states naive)

  let run_one ?g ?(n = 20) ?(rounds = 25) ?(faults = 2) ?(domains = test_domains) ~seed ~kind
      () =
    let g = match g with Some g -> g | None -> Gen.random_connected (Gen.rng seed) n in
    let naive = N.create g
    and engine = E.create ~domains g
    and flat = F.create ~domains g in
    let dn = daemon_of kind (seed + 1)
    and de = daemon_of kind (seed + 1)
    and df = daemon_of kind (seed + 1) in
    check ~ctx:"init" naive engine flat;
    for r = 1 to rounds do
      N.round naive dn;
      E.round engine de;
      F.round flat df;
      check ~ctx:(Fmt.str "round %d (daemon %d, seed %d)" r kind seed) naive engine flat
    done;
    if faults > 0 then begin
      let fn = N.inject_faults naive (Gen.rng (seed + 2)) ~count:faults in
      let fe = E.inject_faults engine (Gen.rng (seed + 2)) ~count:faults in
      let ff = F.inject_faults flat (Gen.rng (seed + 2)) ~count:faults in
      if fn <> fe || fn <> ff then failwith (Fmt.str "fault sets diverge (seed %d)" seed);
      check ~ctx:"post-injection" naive engine flat;
      for r = 1 to rounds do
        N.round naive dn;
        E.round engine de;
        F.round flat df;
        check
          ~ctx:(Fmt.str "post-fault round %d (daemon %d, seed %d)" r kind seed)
          naive engine flat
      done
    end

  (* Every placement x severity combination, as in the two-way suite. *)
  let all_models n root =
    [
      Fault.uniform ~count:2;
      Fault.make ~placement:(Clustered { center = Some root; radius = 2 }) ~count:3 ();
      Fault.make ~placement:(Clustered { center = None; radius = 1 }) ~count:2 ();
      Fault.make ~placement:(Near_root { root }) ~count:2 ();
      Fault.make ~placement:(Targeted [ 0; n / 2; n - 1 ]) ~count:3 ();
      Fault.make ~severity:Crash_reset ~count:3 ();
      Fault.make ~severity:Bit_flip ~count:3 ();
      Fault.make ~severity:Bit_flip
        ~cadence:(Intermittent { period = 5; repeats = 2 })
        ~count:2 ();
    ]

  let run_models ?g ?(n = 20) ?(rounds = 15) ?(domains = test_domains) ~seed ~kind () =
    let g = match g with Some g -> g | None -> Gen.random_connected (Gen.rng seed) n in
    let naive = N.create g
    and engine = E.create ~domains g
    and flat = F.create ~domains g in
    let dn = daemon_of kind (seed + 1)
    and de = daemon_of kind (seed + 1)
    and df = daemon_of kind (seed + 1) in
    for r = 1 to rounds do
      N.round naive dn;
      E.round engine de;
      F.round flat df;
      check ~ctx:(Fmt.str "warmup round %d (seed %d)" r seed) naive engine flat
    done;
    List.iteri
      (fun i model ->
        let ctx = Fmt.str "model %s (daemon %d, seed %d)" (Fault.to_string model) kind seed in
        let fn = N.inject naive (Gen.rng (seed + 100 + i)) model in
        let fe = E.inject engine (Gen.rng (seed + 100 + i)) model in
        let ff = F.inject flat (Gen.rng (seed + 100 + i)) model in
        if fn <> fe || fn <> ff then failwith (Fmt.str "%s: fault sets diverge" ctx);
        check ~ctx:(ctx ^ " post-injection") naive engine flat;
        for r = 1 to 5 do
          N.round naive dn;
          E.round engine de;
          F.round flat df;
          check ~ctx:(Fmt.str "%s round %d" ctx r) naive engine flat
        done)
      (all_models (Graph.n g) (seed mod n))
end

module Diff3_bfs = Diff3 (Ss_bfs.P)

let bfs_diff3 =
  QCheck.Test.make ~count:100 ~name:"flat = engine = naive: ss-bfs"
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, kind) ->
      Diff3_bfs.run_one ~rounds:30 ~faults:3 ~seed ~kind ();
      true)

let bfs_models3 =
  QCheck.Test.make ~count:25 ~name:"flat = engine = naive: every fault model (ss-bfs)"
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, kind) ->
      Diff3_bfs.run_models ~seed ~kind ();
      true)

let kkp_diff3 () =
  List.iter
    (fun (seed, kind) ->
      let scheme =
        Kkp_pls.mark (Marker.run (Gen.random_connected (Gen.rng seed) 18))
      in
      let module C = struct
        let scheme = scheme
      end in
      let module D = Diff3 (Kkp_protocol.Make (C)) in
      D.run_one ~g:scheme.Kkp_pls.marker.Marker.graph ~rounds:20 ~faults:2 ~seed ~kind ())
    [ (4100, 0); (4200, 1); (4300, 2) ]

let verifier_diff3 kind () =
  let n = 16 in
  List.iter
    (fun seed ->
      let g = Gen.random_connected (Gen.rng (8600 + seed)) n in
      let mode = if kind = 0 then Verifier.Passive else Verifier.Handshake in
      let module C = struct
        let marker = Marker.run g
        let mode = mode
      end in
      let module D = Diff3 (Verifier.Make (C)) in
      D.run_one ~g ~rounds:120 ~faults:1 ~seed:(8600 + seed) ~kind ())
    [ 0; 1 ]

let verifier_models3 () =
  let n = 16 and seed = 9400 in
  let g = Gen.random_connected (Gen.rng seed) n in
  let module C = struct
    let marker = Marker.run g
    let mode = Verifier.Passive
  end in
  let module D = Diff3 (Verifier.Make (C)) in
  List.iter (fun kind -> D.run_models ~g ~rounds:60 ~seed ~kind ()) [ 0; 1 ]

let suite =
  [
    Alcotest.test_case "flat codec: ss-bfs round trips" `Quick test_bfs_round_trip;
    QCheck_alcotest.to_alcotest qcheck_bfs_round_trip;
    Alcotest.test_case "flat codec: kkp round trips" `Quick test_kkp_round_trip;
    Alcotest.test_case "flat codec: verifier round trips" `Quick test_verifier_round_trip;
    Alcotest.test_case "flat codec: word budgets" `Quick test_word_budgets;
    QCheck_alcotest.to_alcotest bfs_diff3;
    QCheck_alcotest.to_alcotest bfs_models3;
    Alcotest.test_case "flat = engine = naive: kkp checker" `Quick kkp_diff3;
    Alcotest.test_case "flat = engine = naive: verifier, synchronous" `Quick (verifier_diff3 0);
    Alcotest.test_case "flat = engine = naive: verifier, async daemon" `Quick (verifier_diff3 1);
    Alcotest.test_case "flat = engine = naive: verifier, every fault model" `Quick
      verifier_models3;
  ]
