open Ssmst_graph
open Ssmst_sim
open Ssmst_parallel
open Ssmst_protocols

(* The domain-parallel contract, made executable:

   1. the pool itself — [Domain_pool.map] is [List.map] for every domain
      count (content, order, exceptions), and [slice] tiles [0..n-1]
      exactly with balanced contiguous ranges;
   2. byte-identity — a {!Network.Flat} run at -d 2/4 produces the same
      register file, metrics CSV row, last-write stamps, alarm set and
      write-hook event sequence as -d 1, across grid/random/hypertree
      instances under repeated fault bursts; {!Network.Make} at -d k stays
      state-identical to {!Network.Naive};
   3. canonical write order — the (round, node) sequence of Flat's write
      hook matches {!Network.Make}'s [Register_write] trace events exactly
      on a faulted grid, at -d 1 and -d 2 alike (the PR 5 ascending-order
      fix, now asserted on the flat engine too). *)

(* ---------------- the pool ---------------- *)

let qcheck_map_matches =
  QCheck.Test.make ~count:200 ~name:"Domain_pool.map = List.map at every domain count"
    QCheck.(pair (list small_int) (int_range 1 6))
    (fun (xs, d) ->
      let f x = (x * 7) - 3 in
      Domain_pool.map ~domains:d f xs = List.map f xs)

exception Boom of int

let test_map_exception () =
  match
    Domain_pool.map ~domains:3 (fun x -> if x >= 10 then raise (Boom x) else x)
      [ 1; 2; 10; 3; 11 ]
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x ->
      (* worker slots re-raise in ascending order: element 10 (worker 1)
         beats element 11 (worker 2); the sequential fallback raises at
         the first offending element — 10 either way *)
      Alcotest.(check int) "first offender propagates" 10 x

let test_run_exception_order () =
  match Domain_pool.run ~domains:4 (fun w -> if w = 1 || w = 3 then raise (Boom w)) with
  | () -> Alcotest.fail "expected Boom"
  | exception Boom w -> Alcotest.(check int) "ascending worker wins" 1 w

let test_slice () =
  for n = 0 to 40 do
    for k = 1 to 8 do
      let parts = List.init k (Domain_pool.slice ~domains:k n) in
      let cursor = ref 0 in
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !cursor lo;
          Alcotest.(check bool) "non-negative length" true (hi >= lo);
          cursor := hi)
        parts;
      Alcotest.(check int) "tiles 0..n-1 exactly" n !cursor;
      let sizes = List.map (fun (lo, hi) -> hi - lo) parts in
      let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
      if n > 0 && k > 1 && mx - mn > 1 then
        Alcotest.failf "unbalanced slices at n=%d k=%d (min %d, max %d)" n k mn mx
    done
  done

let test_run_covers_all_workers () =
  let hits = Array.make 6 0 in
  Domain_pool.run ~domains:6 (fun w -> hits.(w) <- hits.(w) + 1);
  Array.iteri (fun w c -> Alcotest.(check int) (Fmt.str "worker %d ran once" w) 1 c) hits

(* ---------------- Flat byte-identity at -d 1/2/4 ---------------- *)

module F = Network.Flat (Ss_bfs.P)
module E = Network.Make (Ss_bfs.P)
module N = Network.Naive (Ss_bfs.P)

(* Two interleaved fault cadences keep the frontier wide and the alarm
   flags churning while the election re-converges between bursts. *)
let drive_flat ~domains ~seed g =
  let net = F.create ~domains g in
  let hooks = ref [] in
  F.set_write_hook net (fun ~round ~node -> hooks := (round, node) :: !hooks);
  for r = 1 to 18 do
    if r mod 5 = 1 then ignore (F.inject net (Gen.rng (seed + r)) (Fault.uniform ~count:3));
    if r mod 7 = 0 then
      ignore (F.inject net (Gen.rng (seed + 50 + r)) (Fault.make ~severity:Bit_flip ~count:2 ()));
    F.round net Scheduler.Sync
  done;
  let m = F.metrics net in
  ( F.registers net,
    Metrics.to_csv_row m,
    F.rounds net,
    F.peak_bits net,
    List.sort compare (F.alarming_nodes net),
    Array.init (Graph.n g) (F.last_write_round net),
    List.rev !hooks,
    (* named, not only via the CSV row: the sequential and parallel
       branches of sync_round must account wasted/skipped identically *)
    (m.Metrics.wasted_steps, m.Metrics.skipped_activations) )

let flat_families seed =
  [
    ("grid", Gen.grid (Gen.rng seed) 6 6);
    ("random", Gen.random_connected (Gen.rng (seed + 1)) 40);
    ("hypertree", fst (Gen.hypertree_like (Gen.rng (seed + 2)) 4));
  ]

let test_flat_identity () =
  List.iter
    (fun (family, g) ->
      let regs1, csv1, rounds1, peak1, alarms1, lw1, hooks1, acct1 =
        drive_flat ~domains:1 ~seed:4400 g
      in
      List.iter
        (fun d ->
          let regs, csv, rounds, peak, alarms, lw, hooks, acct =
            drive_flat ~domains:d ~seed:4400 g
          in
          let ctx what = Fmt.str "%s, -d %d: %s identical" family d what in
          Alcotest.(check bool) (ctx "register file") true (regs = regs1);
          Alcotest.(check string) (ctx "metrics CSV row") csv1 csv;
          Alcotest.(check int) (ctx "round count") rounds1 rounds;
          Alcotest.(check int) (ctx "peak bits") peak1 peak;
          Alcotest.(check bool) (ctx "alarm set") true (alarms = alarms1);
          Alcotest.(check bool) (ctx "last-write stamps") true (lw = lw1);
          Alcotest.(check bool) (ctx "write-hook sequence") true (hooks = hooks1);
          Alcotest.(check (pair int int)) (ctx "wasted/skipped accounting") acct1 acct)
        [ 2; 4 ])
    (flat_families 4400)

(* Telemetry is specified strictly out-of-band: attaching a live profiler
   (real clock, real GC sampler) must leave every observable of the run —
   registers, metrics CSV, rounds, peak bits, alarms, last-write stamps,
   hook sequence — byte-identical to the unprofiled -d 1 baseline, at
   every domain count.  Same seven observables as test_flat_identity,
   with the probes actually firing. *)
let test_flat_identity_with_telemetry () =
  List.iter
    (fun (family, g) ->
      let baseline = drive_flat ~domains:1 ~seed:4400 g in
      List.iter
        (fun d ->
          let tel = Ssmst_obs.Telemetry.create () in
          Ssmst_obs.Telemetry.install tel;
          let profiled =
            Fun.protect ~finally:Ssmst_obs.Telemetry.uninstall (fun () ->
                drive_flat ~domains:d ~seed:4400 g)
          in
          Alcotest.(check bool)
            (Fmt.str "%s, -d %d: observables unchanged under telemetry" family d)
            true (profiled = baseline);
          Alcotest.(check bool)
            (Fmt.str "%s, -d %d: the profiler actually saw the run" family d)
            true
            (Ssmst_obs.Telemetry.phases tel <> []))
        [ 1; 2; 4 ])
    (flat_families 4400)

(* ---------------- Make(-d k) = Naive ---------------- *)

let qcheck_make_domains =
  QCheck.Test.make ~count:60 ~name:"Make(-d k) = Naive: sync rounds with fault bursts"
    QCheck.(pair (int_bound 100_000) (int_range 2 4))
    (fun (seed, d) ->
      let g = Gen.random_connected (Gen.rng seed) 24 in
      let naive = N.create g and eng = E.create ~domains:d g in
      for r = 1 to 20 do
        if r mod 6 = 1 then begin
          let a = N.inject_faults naive (Gen.rng (seed + r)) ~count:2 in
          let b = E.inject_faults eng (Gen.rng (seed + r)) ~count:2 in
          if a <> b then failwith "fault sets diverge"
        end;
        N.round naive Scheduler.Sync;
        E.round eng Scheduler.Sync
      done;
      let ok = ref (N.rounds naive = E.rounds eng && N.any_alarm naive = E.any_alarm eng) in
      Array.iteri
        (fun v s -> if not (Ss_bfs.P.equal s (E.state eng v)) then ok := false)
        (N.states naive);
      !ok)

(* ---------------- canonical write order vs Make's trace ---------------- *)

let drive_make_trace ~seed g =
  let tr = Trace.create ~capacity:200_000 () in
  let net = E.create ~trace:tr g in
  for r = 1 to 15 do
    if r mod 4 = 1 then ignore (E.inject net (Gen.rng (seed + r)) (Fault.uniform ~count:3));
    E.round net Scheduler.Sync
  done;
  let acc = ref [] in
  Trace.iter
    (function
      | Trace.Register_write { round; node; _ } -> acc := (round, node) :: !acc
      | _ -> ())
    tr;
  List.rev !acc

let drive_flat_order ~domains ~seed g =
  let net = F.create ~domains g in
  let acc = ref [] in
  F.set_write_hook net (fun ~round ~node -> acc := (round, node) :: !acc);
  for r = 1 to 15 do
    if r mod 4 = 1 then ignore (F.inject net (Gen.rng (seed + r)) (Fault.uniform ~count:3));
    F.round net Scheduler.Sync
  done;
  List.rev !acc

let test_write_order_matches_make () =
  let g = Gen.grid (Gen.rng 4500) 6 6 in
  let reference = drive_make_trace ~seed:4500 g in
  Alcotest.(check bool) "the faulted grid produces writes" true (List.length reference > 0);
  List.iter
    (fun d ->
      let flat = drive_flat_order ~domains:d ~seed:4500 g in
      if flat <> reference then
        Alcotest.failf
          "write order diverges from Make's trace at -d %d (%d flat writes, %d traced)" d
          (List.length flat) (List.length reference))
    [ 1; 2 ]

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_map_matches;
    Alcotest.test_case "pool: exception propagation through map" `Quick test_map_exception;
    Alcotest.test_case "pool: run re-raises ascending" `Quick test_run_exception_order;
    Alcotest.test_case "pool: slices tile and balance" `Quick test_slice;
    Alcotest.test_case "pool: run covers every worker exactly once" `Quick
      test_run_covers_all_workers;
    Alcotest.test_case "flat: -d 1/2/4 byte-identical across families" `Quick
      test_flat_identity;
    Alcotest.test_case "flat: telemetry attached changes no observable" `Quick
      test_flat_identity_with_telemetry;
    QCheck_alcotest.to_alcotest qcheck_make_domains;
    Alcotest.test_case "write order: flat hook = Make trace on a faulted grid" `Quick
      test_write_order_matches_make;
  ]
