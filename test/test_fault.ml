open Ssmst_graph
open Ssmst_sim
open Ssmst_core

(* The fault-model subsystem: deterministic victim choice per placement,
   severity semantics, intermittent cadence, and the detection-distance
   fix for alarms unreachable from every fault. *)

let rng = Gen.rng
let graph seed n = Gen.random_connected (rng seed) n

let is_sorted_distinct l =
  let rec go = function a :: (b :: _ as rest) -> a < b && go rest | _ -> true in
  go l

(* ---------------- victim choice ---------------- *)

let placements n root =
  [
    Fault.Uniform;
    Fault.Clustered { center = Some root; radius = 2 };
    Fault.Clustered { center = None; radius = 1 };
    Fault.Near_root { root };
    Fault.Targeted [ 0; n / 2; n - 1 ];
  ]

let victims_deterministic () =
  let g = graph 11 24 in
  List.iter
    (fun placement ->
      let m = Fault.make ~placement ~count:4 () in
      let a = Fault.choose_victims (rng 7) g m in
      let b = Fault.choose_victims (rng 7) g m in
      Alcotest.(check (list int)) (Fault.to_string m ^ ": same seed, same victims") a b;
      Alcotest.(check bool) (Fault.to_string m ^ ": sorted, distinct") true (is_sorted_distinct a);
      Alcotest.(check bool)
        (Fault.to_string m ^ ": in range")
        true
        (List.for_all (fun v -> v >= 0 && v < Graph.n g) a))
    (placements 24 5)

(* Regression for the Hashtbl.fold order leak: the uniform sampler must
   return a sorted list no matter the internal fold order, and both
   engines must agree on it (they share the chooser). *)
let uniform_sorted_regression () =
  for seed = 0 to 19 do
    let g = graph (300 + seed) 30 in
    let vs = Fault.choose_victims (rng seed) g (Fault.uniform ~count:6) in
    Alcotest.(check int) "six victims" 6 (List.length vs);
    Alcotest.(check bool) "sorted and distinct" true (is_sorted_distinct vs)
  done

let clustered_radius () =
  let g = graph 23 40 in
  let center = 7 and radius = 2 in
  let d = Dist.bfs g center in
  let m = Fault.make ~placement:(Clustered { center = Some center; radius }) ~count:6 () in
  let vs = Fault.choose_victims (rng 3) g m in
  Alcotest.(check bool) "some victims" true (vs <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Fmt.str "victim %d within radius %d of %d" v radius center)
        true
        (d.(v) >= 0 && d.(v) <= radius))
    vs

let near_root_closest () =
  let g = graph 29 24 in
  let root = 3 in
  let d = Dist.bfs g root in
  let count = 5 in
  let expected =
    List.init (Graph.n g) Fun.id
    |> List.sort (fun u v -> compare (d.(u), u) (d.(v), v))
    |> List.filteri (fun i _ -> i < count)
    |> List.sort compare
  in
  let m = Fault.make ~placement:(Near_root { root }) ~count () in
  Alcotest.(check (list int)) "the f closest nodes" expected (Fault.choose_victims (rng 1) g m);
  (* fully deterministic: different RNG states agree *)
  Alcotest.(check (list int))
    "consumes no randomness" expected
    (Fault.choose_victims (rng 999) g m)

let targeted_dedup () =
  let g = graph 31 12 in
  let m = Fault.make ~placement:(Targeted [ 5; 1; 3; 1; 5 ]) ~count:99 () in
  Alcotest.(check (list int)) "sorted dedup" [ 1; 3; 5 ] (Fault.choose_victims (rng 0) g m);
  Alcotest.check_raises "out of range rejected" (Invalid_argument "Fault.choose_victims: targeted victim out of range")
    (fun () -> ignore (Fault.choose_victims (rng 0) g (Fault.make ~placement:(Targeted [ 12 ]) ~count:1 ())))

(* ---------------- severity semantics ---------------- *)

module Toy = struct
  type state = { a : int; b : int }

  let init g v = { a = Graph.id g v; b = 0 }
  let step _ _ s _ = s
  let alarm _ = false
  let equal (x : state) (y : state) = x = y
  let bits s = Memory.of_int s.a + Memory.of_nat s.b
  let corrupt st _ _ _ = { a = Random.State.int st 4096; b = Random.State.int st 4096 }
  let corrupt_field st _ _ s = { s with b = 1 + Random.State.int st 64 }
  let field_names = [| "a"; "b" |]
  let encode s = [| s.a; s.b |]
end

module ToyApply = Fault.Apply (Toy)

let severity_semantics () =
  let g = graph 41 16 in
  let run severity =
    let states = Array.init (Graph.n g) (fun v -> { Toy.a = 100 + v; b = 100 + v }) in
    let vs =
      ToyApply.apply (rng 5) g
        (Fault.make ~severity ~count:4 ())
        ~get:(fun v -> states.(v))
        ~set:(fun v s -> states.(v) <- s)
    in
    (vs, states)
  in
  let vs, states = run Fault.Crash_reset in
  List.iter
    (fun v ->
      Alcotest.(check bool) "crash resets to init" true (Toy.equal states.(v) (Toy.init g v)))
    vs;
  let vs, states = run Fault.Bit_flip in
  List.iter
    (fun v ->
      Alcotest.(check int) "bit-flip leaves field a" (100 + v) states.(v).Toy.a;
      Alcotest.(check bool) "bit-flip perturbs field b" true (states.(v).Toy.b <> 100 + v))
    vs;
  (* untouched nodes keep their registers under every severity *)
  List.iter
    (fun severity ->
      let vs, states = run severity in
      Array.iteri
        (fun v s ->
          if not (List.mem v vs) then
            Alcotest.(check bool) "non-victim untouched" true (Toy.equal s { Toy.a = 100 + v; b = 100 + v }))
        states)
    [ Fault.Corrupt_random; Fault.Crash_reset; Fault.Bit_flip ]

(* ---------------- intermittent cadence (Campaign.drive) ---------------- *)

let intermittent_cadence () =
  let g = graph 53 10 in
  let period = 25 and repeats = 3 in
  let model =
    Fault.make ~cadence:(Intermittent { period; repeats }) ~count:2 ()
  in
  let r = ref 0 and bursts = ref [] in
  let outcome =
    Campaign.drive ~rng:(rng 2) ~model ~max_rounds:120
      ~round:(fun () -> incr r)
      ~any_alarm:(fun () -> false)
      ~inject:(fun st m ->
        bursts := !r :: !bursts;
        Fault.choose_victims st g m)
      ~distance:(fun ~faults:_ -> None)
  in
  let bursts = List.rev !bursts in
  Alcotest.(check int) "initial burst + repeats" (repeats + 1) (List.length bursts);
  (match bursts with
  | first :: _ -> Alcotest.(check int) "first burst before any round" 0 first
  | [] -> Alcotest.fail "no bursts");
  List.iteri
    (fun i b -> Alcotest.(check int) (Fmt.str "burst %d on the period" i) (i * period) b)
    bursts;
  Alcotest.(check int) "two victims per burst" (2 * (repeats + 1)) outcome.Campaign.injections;
  Alcotest.(check (option int)) "never detected" None outcome.Campaign.detection_rounds;
  Alcotest.(check int) "ran to the horizon" 120 outcome.Campaign.rounds_run

(* one-shot never re-injects even across a long horizon *)
let one_shot_cadence () =
  let g = graph 59 10 in
  let count = ref 0 in
  let outcome =
    Campaign.drive ~rng:(rng 4) ~model:(Fault.uniform ~count:3) ~max_rounds:90
      ~round:(fun () -> ())
      ~any_alarm:(fun () -> false)
      ~inject:(fun st m ->
        incr count;
        Fault.choose_victims st g m)
      ~distance:(fun ~faults:_ -> None)
  in
  Alcotest.(check int) "exactly one burst" 1 !count;
  Alcotest.(check int) "three victims" 3 outcome.Campaign.injections

(* ---------------- detection distance: unreachable alarms ---------------- *)

module Watcher = struct
  type state = bool

  let init _ _ = false
  let step _ _ s _ = s
  let alarm s = s
  let equal = Bool.equal
  let bits _ = 1
  let corrupt _ _ _ _ = true
  let corrupt_field _ _ _ (_ : state) = true
  let field_names = [| "alarmed" |]
  let encode (s : state) = [| Bool.to_int s |]
end

let two_components () = Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ]

let detection_distance_unreachable () =
  let g = two_components () in
  Alcotest.(check (option int))
    "alarm in the other component" None
    (Dist.detection_distance g ~faults:[ 0 ] ~alarms:[ 3 ]);
  Alcotest.(check (option int))
    "alarm next door" (Some 1)
    (Dist.detection_distance g ~faults:[ 0 ] ~alarms:[ 1 ]);
  Alcotest.(check (option int))
    "nearest reachable alarm wins" (Some 1)
    (Dist.detection_distance g ~faults:[ 0 ] ~alarms:[ 1; 3 ]);
  Alcotest.(check (option int))
    "no alarms" None
    (Dist.detection_distance g ~faults:[ 0 ] ~alarms:[]);
  (* one fault sees only an unreachable alarm: the whole measurement is
     undefined, not max_int (the old bug) *)
  Alcotest.(check (option int))
    "any unreachable fault poisons the max" None
    (Dist.detection_distance g ~faults:[ 0; 2 ] ~alarms:[ 1 ])

let net_detection_distance_unreachable () =
  let module Net = Network.Naive (Watcher) in
  let g = two_components () in
  let net = Net.create g in
  Net.set_state net 3 true;
  Alcotest.(check (option int))
    "engine-level: None, not Some max_int" None
    (Net.detection_distance net ~faults:[ 0 ]);
  Alcotest.(check (option int))
    "engine-level: reachable alarm measured" (Some 1)
    (Net.detection_distance net ~faults:[ 2 ])

(* ---------------- transformer epoch re-injection ---------------- *)

let transformer_inject_model () =
  let g = graph 61 14 in
  let t = Transformer.create g in
  let before = t.Transformer.reconstructions in
  let faults =
    Transformer.inject_model t (rng 8)
      (Fault.make ~placement:(Clustered { center = None; radius = 2 }) ~count:3 ())
  in
  Alcotest.(check bool) "victims chosen" true (faults <> []);
  Transformer.advance t ~rounds:20_000;
  Alcotest.(check bool)
    "detection triggered a reconstruction" true
    (t.Transformer.reconstructions > before);
  Alcotest.(check bool)
    "output is a spanning tree again" true
    (Tree.n (Transformer.tree t) = Graph.n g)

(* ---------------- campaign determinism + the O(f log n) bound ---------------- *)

let sweep () =
  Verifier_campaign.sweep ~families:[ "random" ] ~sizes:[ 16 ] ~fault_counts:[ 1; 2 ]
    ~models:[ "uniform"; "clustered" ] ~seeds:2 ~seed:4242 ~max_rounds:50_000 ()

let campaign_seed_deterministic () =
  let rows ts = List.map Campaign.trial_to_csv ts in
  let a = sweep () and b = sweep () in
  Alcotest.(check (list string)) "identical CSV for identical seed" (rows a) (rows b);
  Alcotest.(check int) "full grid" (2 * 2 * 2) (List.length a);
  List.iter
    (fun (t : Campaign.trial) ->
      Alcotest.(check bool)
        "every trial detected" true
        (t.outcome.detection_rounds <> None))
    a

let campaign_distance_bound () =
  let trials =
    Verifier_campaign.sweep ~families:[ "random" ] ~sizes:[ 32 ] ~fault_counts:[ 1; 2; 4 ]
      ~models:[ "uniform" ] ~seeds:2 ~seed:7100 ~max_rounds:100_000 ()
  in
  let log2n = int_of_float (ceil (Float.log2 32.)) in
  List.iter
    (fun (t : Campaign.trial) ->
      match t.outcome.detection_distance with
      | None -> Alcotest.fail "uniform trial undetected or unreachable"
      | Some d ->
          Alcotest.(check bool)
            (Fmt.str "f=%d: distance %d within 3 f log n" t.spec.faults d)
            true
            (d <= 3 * t.spec.faults * log2n))
    trials

(* ---------------- actual n vs requested n ---------------- *)

(* grid and hypertree round the requested size; campaign rows must record
   the size that was actually built (the n the f·log n bound reads), with
   the request preserved in its own column. *)
let family_actual_n () =
  let n_of family req = Graph.n (Verifier_campaign.graph_of_family family (rng 1) req) in
  Alcotest.(check int) "grid 32 -> 5x5" 25 (n_of "grid" 32);
  Alcotest.(check int) "grid 64 -> 8x8" 64 (n_of "grid" 64);
  Alcotest.(check int) "hypertree 5 -> minimum 7" 7 (n_of "hypertree" 5);
  Alcotest.(check int) "hypertree 15 exact" 15 (n_of "hypertree" 15);
  Alcotest.(check int) "hypertree 20 rounds down" 15 (n_of "hypertree" 20);
  Alcotest.(check int) "hypertree 31 exact" 31 (n_of "hypertree" 31);
  Alcotest.(check int) "random is exact" 18 (n_of "random" 18)

let campaign_records_actual_n () =
  let trials =
    Verifier_campaign.sweep ~families:[ "grid"; "hypertree" ] ~sizes:[ 32 ] ~fault_counts:[ 1 ]
      ~models:[ "uniform" ] ~seeds:1 ~seed:5150 ~max_rounds:50_000 ()
  in
  List.iter
    (fun (t : Campaign.trial) ->
      Alcotest.(check int) "requested_n is the grid size" 32 t.spec.requested_n;
      let expect = match t.spec.family with "grid" -> 25 | _ -> 31 in
      Alcotest.(check int) (t.spec.family ^ ": n is the built size") expect t.spec.n)
    trials;
  (* both columns survive the serializers *)
  let row = Campaign.trial_to_csv (List.hd trials) in
  Alcotest.(check bool) "csv carries n,requested_n" true
    (String.length row > 0 && String.sub row 0 8 = "grid,25,")

(* ---------------- restore is metrics/trace-neutral ---------------- *)

(* The campaign-trial rewind: installing a snapshot must not count
   register writes, stamp last-write rounds, or emit trace events — the
   old [set_state] loop did all three, poisoning every per-trial metric
   read before the injection. *)
let restore_neutral () =
  let g = graph 71 16 in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let settle = Net.create g in
  Net.run settle Scheduler.Sync ~rounds:(8 * Verifier.window_bound m.Marker.labels.(0));
  let snapshot = Array.copy (Net.states settle) in
  let tr = Trace.create () in
  let net = Net.create ~trace:tr g in
  Net.restore net snapshot;
  Alcotest.(check int) "no register writes" 0 (Net.metrics net).Metrics.register_writes;
  Alcotest.(check int) "no alarms raised" 0 (Net.metrics net).Metrics.alarms_raised;
  Alcotest.(check int) "no trace events" 0 (Trace.total tr);
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check int) "last_write untouched" 0 (Net.last_write_round net v);
    Alcotest.(check bool) "state installed" true (P.equal (Net.state net v) snapshot.(v))
  done;
  Alcotest.(check bool) "settled snapshot is silent" false (Net.any_alarm net);
  (* from here on, writes are protocol work and must count again *)
  let victims = Net.inject net (rng 9) (Fault.uniform ~count:1) in
  Alcotest.(check int) "one victim" 1 (List.length victims);
  Alcotest.(check int)
    "injection is the first counted write" 1
    (Net.metrics net).Metrics.register_writes;
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Network.restore: snapshot size does not match the network") (fun () ->
      Net.restore net (Array.sub snapshot 0 3))

(* restore must still rebuild the alarm flags it does not trace: a
   snapshot with a latched alarm makes [any_alarm] true immediately,
   while [alarms_raised] (a transition counter) stays 0. *)
let restore_rebuilds_alarms () =
  let module Net = Network.Make (Watcher) in
  let g = graph 73 8 in
  let net = Net.create g in
  let snapshot = Array.init (Graph.n g) (fun v -> v = 3) in
  Net.restore net snapshot;
  Alcotest.(check bool) "alarm visible" true (Net.any_alarm net);
  Alcotest.(check int) "but not counted as a transition" 0
    (Net.metrics net).Metrics.alarms_raised;
  Alcotest.(check (option int))
    "detection distance reads the restored flags" (Some 1)
    (Net.detection_distance net ~faults:[ 2 ])

(* ---------------- sync-round write order ---------------- *)

(* Deferred writes must be applied (and traced) in ascending node id —
   the canonical activation order — not in the reverse-frontier order an
   implementation detail used to leak. *)
let sync_writes_ascending () =
  let module Net = Network.Make (Test_engine_diff.Flood) in
  let g = graph 79 24 in
  let tr = Trace.create () in
  let net = Net.create ~trace:tr g in
  Net.run net Scheduler.Sync ~rounds:12;
  let per_round = Hashtbl.create 16 in
  Trace.iter
    (function
      | Trace.Register_write { round; node; _ } ->
          let prev = try Hashtbl.find per_round round with Not_found -> [] in
          Hashtbl.replace per_round round (node :: prev)
      | _ -> ())
    tr;
  Alcotest.(check bool) "some writes happened" true (Hashtbl.length per_round > 0);
  Hashtbl.iter
    (fun round nodes ->
      let nodes = List.rev nodes in
      Alcotest.(check (list int))
        (Fmt.str "round %d writes ascend" round)
        (List.sort compare nodes) nodes)
    per_round

(* ---------------- monomorphic comparator regressions ---------------- *)

(* Near-root selection sorts (distance, id) lexicographically; the PR-10
   rewrite replaced the polymorphic tuple compare with a hand-rolled int
   comparator, so pin the tie-break explicitly: on a star every leaf is
   equidistant from the hub, and the f closest must be the root plus the
   lowest-id leaves, in ascending order, independent of the RNG. *)
let near_root_tie_break () =
  let n = 12 in
  let star = Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1, i + 1))) in
  let m = Fault.make ~placement:(Near_root { root = 0 }) ~count:5 () in
  Alcotest.(check (list int))
    "equidistant ties break to the lowest ids, ascending" [ 0; 1; 2; 3; 4 ]
    (Fault.choose_victims (rng 4) star m);
  Alcotest.(check (list int))
    "independent of RNG state" [ 0; 1; 2; 3; 4 ]
    (Fault.choose_victims (rng 12345) star m)

(* Campaign quantiles sort detection values with [Int.compare] (previously
   polymorphic [compare]): unsorted input with duplicates must aggregate to
   the same (min, lower-median, ceiling-p95) triple regardless of trial
   order. *)
let campaign_percentiles_sorted () =
  let spec =
    { Campaign.family = "grid"; n = 16; requested_n = 16; faults = 1; model = "uniform"; seed = 0 }
  in
  let trial dt =
    {
      Campaign.spec;
      outcome =
        {
          Campaign.victims = [ 0 ];
          injections = 1;
          detection_rounds = Some dt;
          detection_distance = Some dt;
          rounds_run = dt;
        };
    }
  in
  let check values (min_, med, p95) =
    match Campaign.aggregate (List.map trial values) with
    | [ a ] ->
        Alcotest.(check int) "dt_min" min_ a.Campaign.dt_min;
        Alcotest.(check int) "dt_med" med a.Campaign.dt_med;
        Alcotest.(check int) "dt_p95" p95 a.Campaign.dt_p95
    | aggs -> Alcotest.failf "expected one aggregate row, got %d" (List.length aggs)
  in
  check [ 9; 2; 7; 2; 5 ] (2, 5, 9);
  (* order-independence: a permutation aggregates identically *)
  check [ 2; 5; 9; 7; 2 ] (2, 5, 9);
  check [ 4 ] (4, 4, 4);
  check [ 3; 3; 3; 3 ] (3, 3, 3)

let suite =
  [
    Alcotest.test_case "victim choice is seed-deterministic" `Quick victims_deterministic;
    Alcotest.test_case "uniform victims come back sorted" `Quick uniform_sorted_regression;
    Alcotest.test_case "clustered victims stay in the ball" `Quick clustered_radius;
    Alcotest.test_case "near-root picks the f closest nodes" `Quick near_root_closest;
    Alcotest.test_case "targeted dedups and validates" `Quick targeted_dedup;
    Alcotest.test_case "severity semantics" `Quick severity_semantics;
    Alcotest.test_case "intermittent cadence re-injects on the period" `Quick intermittent_cadence;
    Alcotest.test_case "one-shot cadence fires once" `Quick one_shot_cadence;
    Alcotest.test_case "detection distance: unreachable alarm is None" `Quick
      detection_distance_unreachable;
    Alcotest.test_case "network detection distance across components" `Quick
      net_detection_distance_unreachable;
    Alcotest.test_case "transformer epoch re-injection" `Quick transformer_inject_model;
    Alcotest.test_case "campaign is seed-deterministic" `Quick campaign_seed_deterministic;
    Alcotest.test_case "uniform detection distance within O(f log n)" `Quick
      campaign_distance_bound;
    Alcotest.test_case "grid/hypertree build their rounded sizes" `Quick family_actual_n;
    Alcotest.test_case "campaign rows record actual n and requested n" `Quick
      campaign_records_actual_n;
    Alcotest.test_case "restore is metrics/trace-neutral" `Quick restore_neutral;
    Alcotest.test_case "restore rebuilds alarm flags without counting them" `Quick
      restore_rebuilds_alarms;
    Alcotest.test_case "sync-round writes apply in ascending node id" `Quick
      sync_writes_ascending;
    Alcotest.test_case "near-root ties break to the lowest ids" `Quick near_root_tie_break;
    Alcotest.test_case "campaign percentiles sort their input" `Quick
      campaign_percentiles_sorted;
  ]
