open Ssmst_core
open Ssmst_parallel

(* The fork pool: map must agree with List.map for every job count, a
   crashed worker must surface as a typed error (never a hang) with the
   shard recovered sequentially, and the campaign sweep built on top must
   produce byte-identical CSV/JSONL for -j 1, 2 and 4 — the determinism
   contract [msst campaign -j] advertises. *)

(* ---------------- map = List.map ---------------- *)

let map_matches_sequential () =
  let tasks = List.init 23 (fun i -> i - 4) in
  let f x = (x * x) - (3 * x) + 1 in
  let expected = List.map f tasks in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Fmt.str "jobs=%d" jobs)
        expected
        (Pool.map ~jobs f tasks))
    [ 1; 2; 3; 4; 8 ]

let map_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map ~jobs:4 (fun x -> x * x) [ 3 ]);
  (* more workers than tasks *)
  Alcotest.(check (list string))
    "jobs > tasks"
    [ "0"; "1"; "2" ]
    (Pool.map ~jobs:16 string_of_int [ 0; 1; 2 ]);
  (* results bigger than one pipe buffer still come back intact *)
  let big = Pool.map ~jobs:2 (fun i -> String.make 300_000 (Char.chr (65 + i))) [ 0; 1; 2; 3 ] in
  Alcotest.(check (list int))
    "large frames survive framing"
    [ 300_000; 300_000; 300_000; 300_000 ]
    (List.map String.length big);
  List.iteri
    (fun i s -> Alcotest.(check char) "payload" (Char.chr (65 + i)) s.[0])
    big

(* ---------------- worker crash: typed error + sequential retry -------- *)

(* Shard 5 kills its own worker process mid-run.  With 3 workers and
   static sharding, worker 2 owns shards 2, 5, 8, 11 in that order: shard
   2 streams back before the crash, shards 5, 8 and 11 are lost with the
   worker and must each surface as a typed error and be retried in the
   parent (where the guard sees the parent pid and the task succeeds). *)
let contains ~sub s =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let crash_recovers () =
  (* once another test has spawned a domain (MSST_TEST_DOMAINS >= 2), the
     runtime forbids fork and Pool.map runs sequentially — there are no
     workers to kill, so the crash semantics under test don't exist *)
  if not (Pool.fork_available ()) then Alcotest.skip ();
  let parent = Unix.getpid () in
  let errors = ref [] in
  let f i =
    if i = 5 && Unix.getpid () <> parent then Unix.kill (Unix.getpid ()) Sys.sigkill;
    i * 10
  in
  let tasks = List.init 12 Fun.id in
  let got = Pool.map ~jobs:3 ~on_error:(fun e -> errors := e :: !errors) f tasks in
  Alcotest.(check (list int)) "all shards recovered" (List.map (fun i -> i * 10) tasks) got;
  let errors = List.rev !errors in
  Alcotest.(check (list int))
    "exactly the crashed worker's pending shards, in order"
    [ 5; 8; 11 ]
    (List.map (fun (e : Pool.error) -> e.shard) errors);
  List.iter
    (fun (e : Pool.error) ->
      Alcotest.(check int) "blamed on worker 2" 2 e.worker;
      Alcotest.(check bool)
        (Fmt.str "reason names the signal: %s" e.reason)
        true
        (contains ~sub:"signal" e.reason || contains ~sub:"killed" e.reason))
    errors

(* A task exception is not a pool failure: it is reported, retried in the
   parent, and re-raised there exactly as List.map would have raised it. *)
let task_exception_propagates () =
  if not (Pool.fork_available ()) then Alcotest.skip ();
  let errors = ref 0 in
  Alcotest.check_raises "retry reproduces the exception" (Failure "boom") (fun () ->
      ignore
        (Pool.map ~jobs:2
           ~on_error:(fun _ -> incr errors)
           (fun i -> if i = 3 then failwith "boom" else i)
           (List.init 6 Fun.id)));
  Alcotest.(check int) "the failing shard was reported" 1 !errors

(* ---------------- jobs_from_env ---------------- *)

let jobs_from_env () =
  let var = "MSST_TEST_POOL_JOBS_PROBE" in
  Unix.putenv var "6";
  Alcotest.(check int) "parses" 6 (Pool.jobs_from_env ~var ());
  Unix.putenv var "not-a-number";
  Alcotest.(check int) "unparsable -> default" 2 (Pool.jobs_from_env ~var ~default:2 ());
  Unix.putenv var "-3";
  Alcotest.(check int) "clamped to 1" 1 (Pool.jobs_from_env ~var ());
  Alcotest.(check int)
    "unset -> default" 4
    (Pool.jobs_from_env ~var:"MSST_TEST_POOL_JOBS_UNSET" ~default:4 ());
  Alcotest.(check bool) "cpu_count positive" true (Pool.cpu_count () >= 1)

(* ---------------- golden determinism of the campaign sweep ------------ *)

(* The user-facing contract: the bytes [msst campaign] writes are
   invariant in -j.  Render the full CSV and JSONL documents from sweeps
   at jobs 1, 2 and 4 and compare them as strings.  The grid includes
   both size-rounding families so the requested_n plumbing is under the
   same golden. *)
let sweep jobs =
  Verifier_campaign.sweep ~jobs
    ~families:[ "random"; "grid"; "hypertree" ]
    ~sizes:[ 12; 16 ] ~fault_counts:[ 1; 2 ] ~models:[ "uniform"; "near-root" ] ~seeds:2
    ~seed:6100 ~max_rounds:50_000 ()

let csv_doc trials =
  String.concat "\n" (Ssmst_sim.Campaign.csv_header :: List.map Ssmst_sim.Campaign.trial_to_csv trials)

let jsonl_doc trials = String.concat "\n" (List.map Ssmst_sim.Campaign.trial_to_json trials)

let golden_determinism () =
  let seq = sweep 1 in
  Alcotest.(check int) "full grid" (3 * 2 * 2 * 2 * 2) (List.length seq);
  let csv1 = csv_doc seq and json1 = jsonl_doc seq in
  List.iter
    (fun jobs ->
      let t = sweep jobs in
      Alcotest.(check string) (Fmt.str "CSV bytes, -j %d" jobs) csv1 (csv_doc t);
      Alcotest.(check string) (Fmt.str "JSONL bytes, -j %d" jobs) json1 (jsonl_doc t))
    [ 2; 4 ]

(* ---------------- opt-in parallel differential driver ----------------- *)

(* The engine = naive QCheck suites in [Test_engine_diff] are embarrassingly
   parallel: each (seed, daemon) cell is self-contained.  MSST_TEST_JOBS
   (default 1, so tier-1 stays in-process) shards the grid across a pool;
   a divergence inside a worker raises, comes back as a typed error, and
   the sequential retry re-raises it here with its message intact. *)
let parallel_engine_diff () =
  let jobs = Pool.jobs_from_env ~var:"MSST_TEST_JOBS" ~default:1 () in
  let cells =
    List.concat_map (fun kind -> List.init 8 (fun i -> (41_000 + (17 * i), kind))) [ 0; 1; 2 ]
  in
  let results =
    Pool.map ~jobs
      (fun (seed, kind) ->
        Test_engine_diff.Diff_flood.run_one ~seed ~kind ();
        Test_engine_diff.Diff_bfs.run_one ~rounds:20 ~faults:2 ~seed ~kind ();
        (seed, kind))
      cells
  in
  Alcotest.(check int) "every cell ran" (List.length cells) (List.length results);
  Alcotest.(check bool) "order preserved" true (results = cells)

(* ---------------- container-aware CPU counting ---------------- *)

(* The pure parsers behind [Pool.cpu_count]: an affinity mask popcount and
   a cgroup quota ceiling.  The container-overcounting bug was nproc-style
   /proc/cpuinfo counting inside a 2-CPU cgroup on a 64-core host; these
   pin down the signals that now bound it. *)
let cpu_detection_parsers () =
  let mask = Alcotest.(check (option int)) in
  mask "ff = 8 cpus" (Some 8) (Pool.count_of_mask "ff");
  mask "1 = 1 cpu" (Some 1) (Pool.count_of_mask "1");
  mask "comma-separated 36-bit mask" (Some 36) (Pool.count_of_mask "f,ffffffff");
  mask "all-zero mask is no signal" None (Pool.count_of_mask "0,00000000");
  mask "garbage is no signal" None (Pool.count_of_mask "not-a-mask");
  mask "empty is no signal" None (Pool.count_of_mask "");
  let quota = Alcotest.(check (option int)) in
  quota "2 full cpus" (Some 2) (Pool.count_of_quota "200000 100000");
  quota "1.5 cpus rounds up" (Some 2) (Pool.count_of_quota "150000 100000");
  quota "half a cpu still counts as 1" (Some 1) (Pool.count_of_quota "50000 100000");
  quota "cgroup v2 unlimited" None (Pool.count_of_quota "max 100000");
  quota "cgroup v1 unlimited" None (Pool.count_of_quota "-1 100000");
  quota "malformed is no signal" None (Pool.count_of_quota "100000");
  (* whatever the host looks like, the composed detector stays sane *)
  Alcotest.(check bool) "cpu_count >= 1" true (Pool.cpu_count () >= 1)

let suite =
  [
    Alcotest.test_case "pool map = List.map for every job count" `Quick map_matches_sequential;
    Alcotest.test_case "pool map edge cases and large frames" `Quick map_edge_cases;
    Alcotest.test_case "killed worker: typed errors + sequential retry" `Quick crash_recovers;
    Alcotest.test_case "task exception is reported then re-raised" `Quick
      task_exception_propagates;
    Alcotest.test_case "jobs_from_env parsing and clamping" `Quick jobs_from_env;
    Alcotest.test_case "campaign CSV/JSONL byte-identical for -j 1/2/4" `Quick
      golden_determinism;
    Alcotest.test_case "engine = naive grid under MSST_TEST_JOBS" `Quick parallel_engine_diff;
    Alcotest.test_case "cpu detection: mask + quota parsers" `Quick cpu_detection_parsers;
  ]
