let () =
  Alcotest.run "ssmst"
    [
      ("weight", Test_weight.suite);
      ("graph", Test_graph.suite);
      ("tree", Test_tree.suite);
      ("mst", Test_mst.suite);
      ("gen", Test_gen.suite);
      ("simulator", Test_sim.suite);
      ("protocols", Test_protocols.suite);
      ("fragment", Test_fragment.suite);
      ("sync-mst", Test_sync_mst.suite);
      ("labels", Test_labels.suite);
      ("partition", Test_partition.suite);
      ("verifier", Test_verifier.suite);
      ("pls", Test_pls.suite);
      ("baselines", Test_baselines.suite);
      ("transformer", Test_transformer.suite);
      ("lower-bound", Test_lower_bound.suite);
      ("multi-wave", Test_multi_wave.suite);
      ("train", Test_train.suite);
      ("kkp-protocol", Test_kkp_protocol.suite);
      ("fuzz", Test_fuzz.suite);
      ("message-passing", Test_mp.suite);
      ("sync-reset", Test_sync_reset.suite);
      ("detection-matrix", Test_detection_matrix.suite);
      ("dist-wave", Test_dist_wave.suite);
      ("forge", Test_forge.suite);
      ("figure-1", Test_fig1.suite);
      ("engine-diff", Test_engine_diff.suite);
      ("flat-core", Test_flat.suite);
      ("fault", Test_fault.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("replay", Test_replay.suite);
      ("parallel", Test_parallel.suite);
      ("domains", Test_domains.suite);
    ]
