open Ssmst_graph
open Ssmst_sim
open Ssmst_protocols
open Ssmst_core
open Ssmst_replay

(* The flight recorder, end to end:

   - round-exact time travel: for every protocol, [Recorder.state_at r]
     equals a fresh lock-step re-execution paused at round r, at sampled
     rounds under the synchronous and adversarial daemons (plus a QCheck
     sweep over random instances);
   - the first-divergence bisector pinpoints a deliberately perturbed
     write to its exact (round, node, field);
   - ring wraparound stays sound: drops are counted, [sound_from] moves
     past the drop horizon, views before it are flagged inexact;
   - causal explain walks an alarm back to its fault injection with the
     right hop count, and reports a broken chain when the fault delta was
     dropped;
   - Hist edge cases feeding the recorder reports. *)

(* a silent protocol with plenty of churn before quiescence *)
module Flood = struct
  type state = { best : int; hops : int }

  let init g v = { best = Graph.id g v; hops = 0 }

  let step g v (s : state) read =
    Graph.fold_ports g v
      (fun acc _ u ->
        let su = read u in
        if su.best > acc.best then { best = su.best; hops = su.hops + 1 } else acc)
      s

  let alarm _ = false
  let equal (a : state) (b : state) = a = b
  let bits s = Memory.of_int s.best + Memory.of_nat s.hops
  let corrupt st _ _ (s : state) = { s with best = Random.State.int st 4096 }

  let corrupt_field st _ _ (s : state) =
    if Random.State.bool st then { s with best = Random.State.int st 4096 }
    else { s with hops = Random.State.int st 64 }

  let field_names = [| "best"; "hops" |]
  let encode (s : state) = [| s.best; s.hops |]
end

(* an alarming protocol with a deterministic fault, for provenance walks *)
module Watch = struct
  type state = { value : int; alarmed : bool }

  let init _ _ = { value = 0; alarmed = false }

  let step g v (s : state) read =
    let disagree = Graph.exists_ports g v (fun _ u -> (read u).value <> s.value) in
    if disagree && not s.alarmed then { s with alarmed = true } else s

  let alarm s = s.alarmed
  let equal (a : state) (b : state) = a = b
  let bits s = Memory.of_int s.value + 1
  let corrupt _ _ _ (s : state) = { value = s.value + 1; alarmed = false }
  let corrupt_field = corrupt
  let field_names = [| "value"; "alarmed" |]
  let encode (s : state) = [| s.value; Bool.to_int s.alarmed |]
end

let daemon_of kind seed =
  match kind with
  | 0 -> Scheduler.Sync
  | 1 -> Scheduler.Async_random (Gen.rng seed)
  | _ -> Scheduler.Async_adversarial (Gen.rng seed)

(* ---------------- round-exact replay vs a fresh re-execution ---------------- *)

module Replayer (P : Protocol.S) = struct
  module Net = Network.Make (P)
  module R = Recorder.Make (P)

  (* Record a run of [a]; a twin [b] (same graph, twin daemon RNGs, same
     fault schedule) re-executes from scratch, snapshotting the sampled
     rounds as it passes them; every snapshot must equal [state_at]. *)
  let run ?(interval = 8) ?capacity ?(rounds = 30) ?(faults = 2) ~samples ~ctx g ~kind
      ~seed () =
    let a = Net.create g and b = Net.create g in
    let da = daemon_of kind (seed + 1) and db = daemon_of kind (seed + 1) in
    let rec_ = R.create ~interval ?capacity ~round0:0 g (Net.states a) in
    Net.set_write_hook a (R.engine_hook rec_ (Net.states a));
    let mid = rounds / 2 in
    let snaps = ref [] in
    let maybe_snap () =
      let r = Net.rounds b in
      if List.mem r samples && not (List.mem_assoc r !snaps) then
        snaps := (r, Array.copy (Net.states b)) :: !snaps
    in
    maybe_snap ();
    for r = 1 to rounds do
      Net.round a da;
      Net.round b db;
      if r = mid && faults > 0 then begin
        ignore (Net.inject_faults a (Gen.rng (seed + 2)) ~count:faults);
        ignore (Net.inject_faults b (Gen.rng (seed + 2)) ~count:faults)
      end;
      maybe_snap ()
    done;
    let check_round (r, states) =
      let v = R.state_at rec_ r in
      if not v.R.exact then
        Alcotest.fail (Fmt.str "%s: replay at round %d is inexact" ctx r);
      Array.iteri
        (fun i s ->
          if not (P.equal s v.R.states.(i)) then
            Alcotest.fail
              (Fmt.str "%s: replay at round %d diverges at node %d" ctx r i))
        states
    in
    List.iter check_round ((Net.rounds b, Array.copy (Net.states b)) :: !snaps);
    rec_
end

(* ten pseudo-random sampled rounds in [0, rounds] *)
let sample_rounds ~seed ~rounds =
  let st = Gen.rng (seed * 7 + 13) in
  List.sort_uniq compare (List.init 10 (fun _ -> Random.State.int st (rounds + 1)))

let run_matrix_instance (type s) name (module P : Protocol.S with type state = s) g ~kind
    ~seed =
  let module RP = Replayer (P) in
  let rounds = 30 in
  let ctx = Fmt.str "%s n=%d daemon=%d" name (Graph.n g) kind in
  ignore
    (RP.run ~rounds ~samples:(sample_rounds ~seed ~rounds) ~ctx g ~kind ~seed ())

(* every protocol x n in {16, 64, 256} x {sync, adversarial} *)
let test_replay_matrix () =
  List.iter
    (fun n ->
      let g = Gen.random_connected (Gen.rng (9000 + n)) n in
      List.iter
        (fun kind ->
          let seed = (10 * n) + kind in
          run_matrix_instance "ss-bfs" (module Ss_bfs.P) g ~kind ~seed;
          (let t = (Sync_mst.run g).Sync_mst.tree in
           let parent =
             Array.init n (fun v ->
                 match Tree.parent t v with None -> -1 | Some p -> p)
           in
           let module W = Dist_wave.Make (struct
             let parent = parent
             let value _ = 1
             let combine = ( + )
           end) in
           run_matrix_instance "dist-wave" (module W) g ~kind ~seed);
          (let module R = Reset.Make (Ss_bfs.P) in
           run_matrix_instance "reset" (module R) g ~kind ~seed);
          (let module S = Synchronizer.Make (Ss_bfs.P) in
           run_matrix_instance "synchronizer" (module S) g ~kind ~seed);
          let m = Marker.run g in
          let module C = struct
            let marker = m
            let mode = Verifier.Passive
          end in
          let module V = Verifier.Make (C) in
          run_matrix_instance "verifier" (module V) g ~kind ~seed)
        [ 0; 2 ])
    [ 16; 64; 256 ]

(* the QCheck differential: random instance, random daemon, ten sampled
   rounds each — replay must equal the fresh re-execution everywhere *)
let qcheck_replay =
  QCheck.Test.make ~count:60 ~name:"replay equals fresh re-execution (random instances)"
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, kind) ->
      let n = 8 + (seed mod 25) in
      let g = Gen.random_connected (Gen.rng seed) n in
      let module RP = Replayer (Flood) in
      let rounds = 24 in
      ignore
        (RP.run ~rounds ~samples:(sample_rounds ~seed ~rounds)
           ~ctx:(Fmt.str "flood seed=%d daemon=%d" seed kind)
           g ~kind ~seed ());
      true)

(* ---------------- the first-divergence bisector ---------------- *)

module FR = Recorder.Make (Flood)
module FNet = Network.Make (Flood)

(* record a run, then rebuild it write-by-write into a second recorder,
   perturbing exactly one write; the bisector must name that write *)
let test_bisector_exact () =
  let seed = 71 in
  let g = Gen.random_connected (Gen.rng seed) 16 in
  let net = FNet.create g in
  let init = Array.copy (FNet.states net) in
  let rec_a = FR.create ~interval:4 ~round0:0 g init in
  FNet.set_write_hook net (FR.engine_hook rec_a (FNet.states net));
  FNet.run net Scheduler.Sync ~rounds:10;
  ignore (FNet.inject_faults net (Gen.rng (seed + 2)) ~count:2);
  FNet.run net Scheduler.Sync ~rounds:10;
  let ws = FR.writes rec_a in
  Alcotest.(check bool) "recorded some writes" true (List.length ws > 4);
  let rebuild perturb =
    let rec_b = FR.create ~interval:4 ~round0:0 g init in
    let mirror = Array.copy init in
    List.iteri
      (fun i (w : FR.write) ->
        let s' =
          if Some i = perturb then { w.state with Flood.best = w.state.Flood.best + 777 }
          else w.state
        in
        FR.record_write rec_b ~round:w.round ~node:w.node ~old:mirror.(w.node)
          ~cause:w.cause s';
        mirror.(w.node) <- s')
      ws;
    rec_b
  in
  (* a faithful rebuild does not diverge — from itself or from the source *)
  Alcotest.(check bool) "no self-divergence" true
    (FR.first_divergence rec_a rec_a = None);
  Alcotest.(check bool) "faithful rebuild agrees" true
    (FR.first_divergence rec_a (rebuild None) = None);
  let k = List.length ws / 2 in
  let wk = List.nth ws k in
  match FR.first_divergence rec_a (rebuild (Some k)) with
  | None -> Alcotest.fail "perturbed rebuild reported no divergence"
  | Some (r, v, field) ->
      Alcotest.(check int) "divergence round" wk.FR.round r;
      Alcotest.(check int) "divergence node" wk.FR.node v;
      Alcotest.(check string) "divergence field" "best" field

(* ---------------- ring wraparound ---------------- *)

let test_ring_wraparound () =
  let seed = 83 in
  let n = 32 in
  let g = Gen.random_connected (Gen.rng seed) n in
  let a = FNet.create g and b = FNet.create g in
  let rec_ = FR.create ~interval:2 ~capacity:24 ~round0:0 g (FNet.states a) in
  FNet.set_write_hook a (FR.engine_hook rec_ (FNet.states a));
  let rounds = 20 in
  let snaps = ref [] in
  for _ = 1 to rounds do
    FNet.round a Scheduler.Sync;
    FNet.round b Scheduler.Sync;
    snaps := (FNet.rounds b, Array.copy (FNet.states b)) :: !snaps
  done;
  Alcotest.(check bool) "ring overflowed" true (FR.dropped rec_ > 0);
  let sound =
    match FR.sound_from rec_ with
    | None -> Alcotest.fail "no checkpoint survives the drop horizon"
    | Some r -> r
  in
  Alcotest.(check bool) "soundness horizon moved" true (sound > 0);
  (* before the horizon: flagged inexact, never silently wrong *)
  let early = FR.state_at rec_ (max 0 (sound - 1)) in
  Alcotest.(check bool) "pre-horizon view is flagged" false early.FR.exact;
  (* at or past the horizon: exact and equal to the fresh twin *)
  List.iter
    (fun (r, states) ->
      if r >= sound then begin
        let v = FR.state_at rec_ r in
        Alcotest.(check bool) (Fmt.str "round %d exact" r) true v.FR.exact;
        Array.iteri
          (fun i s ->
            if not (Flood.equal s v.FR.states.(i)) then
              Alcotest.fail (Fmt.str "wraparound replay diverges at round %d node %d" r i))
          states
      end)
    !snaps

(* ---------------- causal explain ---------------- *)

module WNet = Network.Make (Watch)
module WR = Recorder.Make (Watch)

(* path graph, one targeted deterministic fault at node 2: nodes 1 and 3
   alarm one round later at graph distance 1, node 2 at distance 0 *)
let record_watch ?(capacity = 4096) () =
  let g = Gen.path (Gen.rng 5) 6 in
  let net = WNet.create g in
  let rec_ = WR.create ~interval:4 ~capacity ~round0:0 g (WNet.states net) in
  WNet.set_write_hook net (WR.engine_hook rec_ (WNet.states net));
  let model = Fault.make ~placement:(Targeted [ 2 ]) ~count:1 () in
  let victims = WNet.inject net (Gen.rng 7) model in
  Alcotest.(check (list int)) "victim" [ 2 ] victims;
  WNet.run net Scheduler.Sync ~rounds:4;
  (rec_, List.sort compare (WNet.alarming_nodes net))

let test_explain_path () =
  let rec_, alarms = record_watch () in
  Alcotest.(check (list int)) "alarm set" [ 1; 2; 3 ] alarms;
  let hop_count node expect =
    match WR.explain rec_ ~node () with
    | Error e -> Alcotest.fail (Provenance.error_to_string e)
    | Ok (p : Provenance.path) ->
        Alcotest.(check int) (Fmt.str "node %d hops" node) expect p.node_changes;
        (* the chain terminates at the injection into node 2 *)
        (match p.hops with
        | first :: _ -> Alcotest.(check int) "chain starts at the victim" 2 first.Provenance.node
        | [] -> Alcotest.fail "empty witness path");
        (* the alarm write is the last hop and belongs to the queried node *)
        (match List.rev p.hops with
        | last :: _ -> Alcotest.(check int) "chain ends at the alarm" node last.Provenance.node
        | [] -> ())
  in
  hop_count 1 1;
  hop_count 3 1;
  hop_count 2 0;
  (* a node that never alarmed has no witness *)
  (match WR.explain rec_ ~node:5 () with
  | Error Provenance.No_such_write -> ()
  | Error e -> Alcotest.fail (Provenance.error_to_string e)
  | Ok _ -> Alcotest.fail "explained an alarm that never fired")

(* capacity 2 retains only the newest alarm writes: the fault delta is
   dropped, so every retained witness chain must surface as broken *)
let test_explain_broken_chain () =
  let rec_, alarms = record_watch ~capacity:2 () in
  Alcotest.(check bool) "deltas were dropped" true (WR.dropped rec_ > 0);
  let outcomes = List.map (fun node -> WR.explain rec_ ~node ()) alarms in
  Alcotest.(check bool) "no fabricated witness" true
    (List.for_all (function Ok _ -> false | Error _ -> true) outcomes);
  Alcotest.(check bool) "at least one broken chain" true
    (List.exists
       (function Error (Provenance.Broken_chain _) -> true | _ -> false)
       outcomes)

(* ---------------- the Flight drivers (CLI backends) ---------------- *)

let test_flight_verify () =
  let p = { Flight.default_params with n = 24; seed = 11; faults = 2 } in
  let r = Flight.record_verify p in
  Alcotest.(check bool) "faults detected" true (r.Flight.detection <> None);
  Alcotest.(check bool) "nothing dropped" true (r.Flight.dropped = 0);
  Alcotest.(check bool) "replayed end state equals live" true r.Flight.end_equal;
  Alcotest.(check bool) "alarms raised" true (r.Flight.alarms <> []);
  Alcotest.(check bool) "every alarm witnessed within the bound" true
    (Flight.all_witnessed r)

let test_flight_replay () =
  let p = { Flight.default_params with n = 24; seed = 13; faults = 2; interval = 8 } in
  let r = Flight.replay_probe p ~seek:0 ~steps:6 ~diff:true in
  Alcotest.(check bool) "engines agree at the end" true r.Flight.end_equal;
  Alcotest.(check bool) "no divergence between engines" true (r.Flight.divergence = None);
  Alcotest.(check bool) "views were produced" true (List.length r.Flight.views > 1);
  Alcotest.(check bool) "views are exact" true
    (List.for_all (fun (v : Flight.view) -> v.Flight.exact) r.Flight.views)

(* ---------------- Hist edge cases ---------------- *)

let test_hist_edges () =
  let open Ssmst_obs in
  let h = Hist.create () in
  Alcotest.(check bool) "empty" true (Hist.is_empty h);
  Alcotest.(check int) "empty p50" 0 (Hist.p50 h);
  Alcotest.(check int) "empty p99" 0 (Hist.p99 h);
  Alcotest.(check int) "empty quantile 1.0" 0 (Hist.quantile h 1.0);
  (* single sample: every quantile is that sample *)
  Hist.record h 42;
  Alcotest.(check int) "single p50" 42 (Hist.p50 h);
  Alcotest.(check int) "single p99" 42 (Hist.p99 h);
  Alcotest.(check int) "single min" 42 (Hist.min_value h);
  Alcotest.(check int) "single max" 42 (Hist.max_value h);
  (* max_int lands in the top bucket and quantiles clamp to it *)
  let m = Hist.create () in
  Hist.record m max_int;
  Hist.record m (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Hist.min_value m);
  Alcotest.(check int) "max_int preserved" max_int (Hist.max_value m);
  Alcotest.(check int) "top quantile clamps to max_int" max_int (Hist.quantile m 1.0);
  Alcotest.(check int) "count" 2 (Hist.count m);
  match List.rev (Hist.nonzero m) with
  | (upper, 1) :: _ ->
      Alcotest.(check bool) "top bucket upper bound >= 2^62" true (upper >= 1 lsl 62)
  | _ -> Alcotest.fail "max_int did not land in its own bucket"

let suite =
  [
    Alcotest.test_case "round-exact replay matrix (protocols x n x daemon)" `Slow
      test_replay_matrix;
    QCheck_alcotest.to_alcotest qcheck_replay;
    Alcotest.test_case "bisector pinpoints a perturbed write" `Quick test_bisector_exact;
    Alcotest.test_case "ring wraparound stays sound and flagged" `Quick
      test_ring_wraparound;
    Alcotest.test_case "explain walks alarm back to the fault" `Quick test_explain_path;
    Alcotest.test_case "explain surfaces broken chains" `Quick test_explain_broken_chain;
    Alcotest.test_case "flight verify: witnesses within the bound" `Quick
      test_flight_verify;
    Alcotest.test_case "flight replay: seek/step/diff" `Quick test_flight_replay;
    Alcotest.test_case "hist edge cases" `Quick test_hist_edges;
  ]
