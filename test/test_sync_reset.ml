open Ssmst_graph
open Ssmst_sim
open Ssmst_protocols

(* ---------------- the alpha synchronizer ---------------- *)

(* a pulse-sensitive protocol: BFS distance computation that is only
   correct under synchronous semantics (it counts rounds explicitly) *)
module Sync_bfs = struct
  type state = { dist : int; round : int }

  let init g v = { dist = (if Graph.id g v = 0 then 0 else max_int); round = 0 }

  let step g v (s : state) read =
    let best =
      Graph.fold_ports g v
        (fun acc _ u ->
          let d = (read u).dist in
          if d < max_int then min acc (d + 1) else acc)
        s.dist
    in
    ignore v;
    { dist = best; round = s.round + 1 }

  let alarm _ = false
  let equal (a : state) (b : state) = a = b
  let bits s = Memory.of_int (min s.dist 1000000) + Memory.of_nat s.round
  let corrupt _ _ _ s = s
  let corrupt_field _ _ _ s = s
  let field_names = [| "dist"; "round" |]
  let encode (s : state) = [| s.dist; s.round |]
end

module S = Synchronizer.Make (Sync_bfs)
module SNet = Network.Make (S)
module Plain = Network.Make (Sync_bfs)

let test_synchronizer_matches_sync () =
  let st = Gen.rng 2900 in
  let g = Gen.random_connected st 24 in
  (* reference: plain synchronous run *)
  let refnet = Plain.create g in
  Plain.run refnet Scheduler.Sync ~rounds:30;
  (* synchronized run under the adversarial daemon *)
  let net = SNet.create g in
  let daemon = Scheduler.Async_adversarial (Gen.rng 2901) in
  (* run until every pulse reaches 30 *)
  let _, reached =
    SNet.run_until net daemon ~max_rounds:2000 (fun net ->
        Array.for_all (fun s -> S.pulse s >= 30) (SNet.states net))
  in
  Alcotest.(check bool) "all pulses reached 30" true reached;
  (* states at pulse 30 must match the synchronous round-30 states *)
  Array.iteri
    (fun v (s : S.state) ->
      let expected = (Plain.state refnet v).Sync_bfs.dist in
      (* pulses may exceed 30; dist is monotone and stabilizes before 30
         rounds on a 24-node graph, so compare directly *)
      Alcotest.(check int) (Fmt.str "dist at node %d" v) expected (S.current s).Sync_bfs.dist)
    (SNet.states net)

let test_pulse_skew_bounded () =
  let st = Gen.rng 2902 in
  let g = Gen.random_connected st 20 in
  let net = SNet.create g in
  let daemon = Scheduler.Async_random (Gen.rng 2903) in
  for _ = 1 to 100 do
    SNet.round net daemon;
    (* neighbouring pulses never differ by more than 1 *)
    Graph.fold_edges
      (fun () u v _ ->
        let pu = S.pulse (SNet.state net u) and pv = S.pulse (SNet.state net v) in
        if abs (pu - pv) > 1 then
          Alcotest.failf "pulse skew %d-%d at edge (%d,%d)" pu pv u v)
      () g
  done

(* ---------------- the reset service ---------------- *)

(* an application that alarms once at a designated node, then behaves *)
module Alarmer = struct
  type state = { id : int; steps : int; alarmed : bool }

  let init g v = { id = Graph.id g v; steps = 0; alarmed = false }

  let step _ _ s _ = { s with steps = s.steps + 1; alarmed = s.alarmed }
  let alarm s = s.alarmed
  let equal (a : state) (b : state) = a = b
  let bits s = Memory.of_int s.id + Memory.of_nat s.steps + 1
  let corrupt _ _ _ s = { s with alarmed = true }
  let corrupt_field _ _ _ s = { s with alarmed = true }
  let field_names = [| "id"; "steps"; "alarmed" |]
  let encode (s : state) = [| s.id; s.steps; Bool.to_int s.alarmed |]
end

module R = Reset.Make (Alarmer)
module RNet = Network.Make (R)

let test_reset_on_request () =
  let st = Gen.rng 2910 in
  let g = Gen.random_connected st 20 in
  let net = RNet.create g in
  (* let the BFS tree stabilize *)
  RNet.run net Scheduler.Sync ~rounds:100;
  let epochs_before = Array.map R.epoch (RNet.states net) in
  Alcotest.(check bool) "epochs agree after stabilization" true
    (Array.for_all (( = ) epochs_before.(0)) epochs_before);
  let steps_before = Array.map (fun s -> (R.app s).Alarmer.steps) (RNet.states net) in
  (* raise an alarm at node 7 *)
  let s7 = RNet.state net 7 in
  RNet.set_state net 7 { s7 with R.app = { (R.app s7) with Alarmer.alarmed = true } };
  RNet.run net Scheduler.Sync ~rounds:100;
  let epochs_after = Array.map R.epoch (RNet.states net) in
  (* the leader may bump several times while the request burst drains (each
     re-initialization is idempotent); all nodes must converge on a strictly
     newer epoch *)
  Alcotest.(check bool) "epochs agree and advanced" true
    (Array.for_all (fun e -> e = epochs_after.(0) && e > epochs_before.(0)) epochs_after);
  (* application state was re-initialized: step counters restarted *)
  Array.iteri
    (fun v s ->
      Alcotest.(check bool)
        (Fmt.str "app restarted at %d" v)
        true
        ((R.app s).Alarmer.steps < steps_before.(v) + 100))
    (RNet.states net)

let test_reset_self_stabilizes () =
  let st = Gen.rng 2911 in
  let g = Gen.random_connected st 16 in
  let net = RNet.create g in
  ignore (RNet.inject_faults net (Gen.rng 2912) ~count:8);
  RNet.run net Scheduler.Sync ~rounds:300;
  (* some corrupt alarms may trigger resets; but eventually all epochs agree *)
  let epochs = Array.map R.epoch (RNet.states net) in
  Alcotest.(check bool) "epochs converge from arbitrary state" true
    (Array.for_all (( = ) epochs.(0)) epochs)

let test_reset_async () =
  let st = Gen.rng 2913 in
  let g = Gen.random_connected st 16 in
  let net = RNet.create g in
  RNet.run net (Scheduler.Async_random (Gen.rng 2914)) ~rounds:200;
  let s3 = RNet.state net 3 in
  RNet.set_state net 3 { s3 with R.app = { (R.app s3) with Alarmer.alarmed = true } };
  RNet.run net (Scheduler.Async_random (Gen.rng 2915)) ~rounds:300;
  let epochs = Array.map R.epoch (RNet.states net) in
  Alcotest.(check bool) "async reset completes" true (Array.for_all (( = ) epochs.(0)) epochs)

let suite =
  [
    Alcotest.test_case "synchronizer = synchronous semantics" `Quick test_synchronizer_matches_sync;
    Alcotest.test_case "synchronizer pulse skew <= 1" `Quick test_pulse_skew_bounded;
    Alcotest.test_case "reset on request" `Quick test_reset_on_request;
    Alcotest.test_case "reset self-stabilizes" `Quick test_reset_self_stabilizes;
    Alcotest.test_case "reset under async daemon" `Quick test_reset_async;
  ]
