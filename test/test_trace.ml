open Ssmst_graph
open Ssmst_sim

(* Unit tests for the observability layer: the {!Trace} ring buffer and
   sinks, and the {!Metrics} counters as maintained by the event-driven
   engine. *)

(* ---------------- the ring buffer ---------------- *)

let ev r = Trace.Activation { round = r; node = r }

let test_ring_buffer () =
  let t = Trace.create ~capacity:4 () in
  Alcotest.(check int) "empty length" 0 (Trace.length t);
  for r = 1 to 6 do
    Trace.record t (ev r)
  done;
  Alcotest.(check int) "length capped at capacity" 4 (Trace.length t);
  Alcotest.(check int) "total counts everything" 6 (Trace.total t);
  Alcotest.(check int) "dropped = total - retained" 2 (Trace.dropped t);
  Alcotest.(check (list int)) "oldest-first retained window" [ 3; 4; 5; 6 ]
    (List.map Trace.event_round (Trace.to_list t));
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.total t)

let test_json_csv () =
  let a = Trace.Alarm_raised { round = 12; node = 5 } in
  Alcotest.(check string)
    "alarm json" {|{"event":"alarm_raised","round":12,"node":5}|} (Trace.event_to_json a);
  let c = Trace.Convergence { round = 20; reached = true } in
  Alcotest.(check string)
    "convergence json" {|{"event":"convergence","round":20,"reached":true}|}
    (Trace.event_to_json c);
  let w = Trace.Register_write { round = 3; node = 1; bits = 17; prov = None } in
  Alcotest.(check string)
    "write json" {|{"event":"register_write","round":3,"node":1,"bits":17}|}
    (Trace.event_to_json w);
  let prov =
    Some
      {
        Trace.cause = Trace.Neighbor_read [ 0; 2 ];
        changes = [ { Trace.field = "dist"; old_enc = 3; new_enc = 4 } ];
      }
  in
  let wp = Trace.Register_write { round = 3; node = 1; bits = 17; prov } in
  Alcotest.(check string)
    "write json with provenance"
    {|{"event":"register_write","round":3,"node":1,"bits":17,"cause":"read:0,2","changes":"dist:3>4"}|}
    (Trace.event_to_json wp);
  Alcotest.(check string) "write csv" "register_write,3,1,17,,,,,,," (Trace.event_to_csv w);
  Alcotest.(check string)
    "write csv with provenance" "register_write,3,1,17,,,,,,\"read:0,2\",dist:3>4"
    (Trace.event_to_csv wp);
  Alcotest.(check string) "convergence csv" "convergence,20,,,true,,,,,," (Trace.event_to_csv c);
  (* every event's CSV row matches the header's arity (quoted cells hold no
     commas here except the cause, handled above) *)
  let arity s = List.length (String.split_on_char ',' s) in
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Fmt.str "csv arity: %s" (Trace.event_to_csv e))
        (arity Trace.csv_header) (arity (Trace.event_to_csv e)))
    [
      a; c; w;
      Trace.Fault_injected { round = 2; node = 7; fault = Some 0 };
      Trace.Span_mark { round = 4; label = "plain"; enter = true };
      Trace.Invariant_violation
        { round = 9; node = Some 3; monitor = "forest"; detail = "plain detail" };
    ]

(* both trace shapes round-trip through JSON: provenance-carrying events
   from this engine, and pre-provenance lines from old traces *)
let test_prov_roundtrip () =
  let roundtrips e =
    Alcotest.(check bool)
      (Fmt.str "round-trips: %s" (Trace.event_to_json e))
      true
      (Trace.event_of_json (Trace.event_to_json e) = Some e)
  in
  List.iter roundtrips
    [
      Trace.Register_write { round = 3; node = 1; bits = 17; prov = None };
      Trace.Register_write
        {
          round = 3;
          node = 1;
          bits = 17;
          prov = Some { Trace.cause = Trace.Init; changes = [] };
        };
      Trace.Register_write
        {
          round = 5;
          node = 2;
          bits = 9;
          prov =
            Some
              {
                Trace.cause = Trace.Neighbor_read [ 0; 1; 3 ];
                changes =
                  [
                    { Trace.field = "dist"; old_enc = -1; new_enc = 4 };
                    { Trace.field = "parent"; old_enc = 2; new_enc = -7 };
                  ];
              };
        };
      Trace.Register_write
        {
          round = 6;
          node = 0;
          bits = 4;
          prov = Some { Trace.cause = Trace.Fault 3; changes = [] };
        };
      Trace.Fault_injected { round = 2; node = 7; fault = None };
      Trace.Fault_injected { round = 2; node = 7; fault = Some 11 };
    ];
  (* an old-format line (no cause/changes fields) still parses *)
  Alcotest.(check bool)
    "pre-provenance line parses with prov = None" true
    (Trace.event_of_json {|{"event":"register_write","round":3,"node":1,"bits":17}|}
    = Some (Trace.Register_write { round = 3; node = 1; bits = 17; prov = None }));
  Alcotest.(check bool)
    "pre-provenance fault line parses with fault = None" true
    (Trace.event_of_json {|{"event":"fault_injected","round":4,"node":2}|}
    = Some (Trace.Fault_injected { round = 4; node = 2; fault = None }));
  (* a garbled cause makes the whole line ill-formed, not silently untagged *)
  Alcotest.(check bool)
    "garbled cause rejected" true
    (Trace.event_of_json
       {|{"event":"register_write","round":3,"node":1,"bits":17,"cause":"nonsense"}|}
    = None)

(* ---------------- a fault-detecting toy protocol ---------------- *)

(* legal configurations have all values equal; a node seeing a disagreeing
   neighbour latches its alarm on the next activation *)
module Watch = struct
  type state = { value : int; alarmed : bool }

  let init _ _ = { value = 0; alarmed = false }

  let step g v (s : state) read =
    let disagree = Graph.exists_ports g v (fun _ u -> (read u).value <> s.value) in
    { s with alarmed = s.alarmed || disagree }

  let alarm s = s.alarmed
  let equal (a : state) (b : state) = a = b
  let bits s = Memory.of_int s.value + 1
  let corrupt st _ _ (s : state) = { s with value = 1 + Random.State.int st 100 }
  let corrupt_field st _ _ (s : state) = { s with value = 1 + Random.State.int st 100 }
  let field_names = [| "value"; "alarmed" |]
  let encode (s : state) = [| s.value; Bool.to_int s.alarmed |]
end

module Net = Network.Make (Watch)

let path_graph n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1, 1)))

let test_alarm_events_at_detection () =
  let g = path_graph 10 in
  let tr = Trace.create () in
  let net = Net.create ~trace:tr g in
  (* legal initial configuration: run a while, nothing happens *)
  Net.run net Scheduler.Sync ~rounds:5;
  Alcotest.(check bool) "no alarm on legal config" false (Net.any_alarm net);
  Alcotest.(check int) "no alarm events yet" 0
    (List.length
       (List.filter
          (fun e -> match e with Trace.Alarm_raised _ -> true | _ -> false)
          (Trace.to_list tr)));
  let injected_at = Net.rounds net in
  let faults = Net.inject_faults net (Gen.rng 77) ~count:1 in
  let f = List.hd faults in
  (match Net.detection_time net Scheduler.Sync ~max_rounds:10 with
  | None -> Alcotest.fail "fault must be detected"
  | Some dt ->
      Alcotest.(check int) "disagreement detected in one round" 1 dt;
      let events = Trace.to_list tr in
      let fault_events =
        List.filter_map
          (fun e -> match e with Trace.Fault_injected { round; node; _ } -> Some (round, node) | _ -> None)
          events
      in
      Alcotest.(check (list (pair int int)))
        "fault event at injection round" [ (injected_at, f) ] fault_events;
      let alarm_rounds =
        List.filter_map
          (fun e -> match e with Trace.Alarm_raised { round; _ } -> Some round | _ -> None)
          events
      in
      Alcotest.(check bool) "alarms fired" true (alarm_rounds <> []);
      List.iter
        (fun r ->
          Alcotest.(check int) "alarm raised exactly at detection round" (injected_at + dt) r)
        alarm_rounds);
  let m = Net.metrics net in
  Alcotest.(check int) "one fault counted" 1 m.Metrics.faults_injected;
  Alcotest.(check bool) "alarm transitions counted" true (m.Metrics.alarms_raised >= 1)

(* ---------------- quiescence accounting ---------------- *)

module Flood = struct
  type state = { best : int }

  let init g v = { best = Graph.id g v }

  let step g v (s : state) read =
    Graph.fold_ports g v (fun acc _ u -> { best = max acc.best (read u).best }) s

  let alarm _ = false
  let equal (a : state) (b : state) = a = b
  let bits s = Memory.of_int s.best
  let corrupt st _ _ _ = { best = Random.State.int st 64 }
  let corrupt_field st _ _ _ = { best = Random.State.int st 64 }
  let field_names = [| "best" |]
  let encode (s : state) = [| s.best |]
end

module FNet = Network.Make (Flood)

let test_rounds_to_quiescence () =
  let g = path_graph 12 in
  let tr = Trace.create () in
  let net = FNet.create ~trace:tr g in
  let all_agree net =
    Array.for_all (fun (s : Flood.state) -> s.Flood.best = 11) (FNet.states net)
  in
  let executed, reached = FNet.run_until net Scheduler.Sync ~max_rounds:50 all_agree in
  Alcotest.(check bool) "converged" true reached;
  let m = FNet.metrics net in
  Alcotest.(check int) "rounds-to-quiescence matches run_until" executed
    (Metrics.rounds_to_quiescence m);
  (* the convergence event carries the stopping round *)
  (match List.rev (Trace.to_list tr) with
  | Trace.Convergence { round; reached } :: _ ->
      Alcotest.(check int) "convergence event round" executed round;
      Alcotest.(check bool) "convergence event reached" true reached
  | _ -> Alcotest.fail "last event must be Convergence");
  (* one flush round re-steps the last writers (confirming their no-ops);
     after that the dirty set is empty and rounds cost zero activations *)
  FNet.run net Scheduler.Sync ~rounds:1;
  let before = m.Metrics.activations in
  FNet.run net Scheduler.Sync ~rounds:10;
  Alcotest.(check int) "quiescent rounds execute no steps" before m.Metrics.activations;
  Alcotest.(check int) "but ideal time still advances" (executed + 11) (FNet.rounds net)

let test_metrics_rows () =
  let m = Metrics.create () in
  m.Metrics.rounds <- 7;
  m.Metrics.activations <- 5;
  m.Metrics.last_write_round <- 4;
  Alcotest.(check int) "csv row arity matches header"
    (List.length (String.split_on_char ',' Metrics.csv_header))
    (List.length (String.split_on_char ',' (Metrics.to_csv_row m)));
  let j = Metrics.to_json ~label:"x" m in
  Alcotest.(check bool) "json row shaped" true
    (String.length j > 2 && j.[0] = '{' && j.[String.length j - 1] = '}')

let suite =
  [
    Alcotest.test_case "ring buffer drops oldest" `Quick test_ring_buffer;
    Alcotest.test_case "json and csv event encodings" `Quick test_json_csv;
    Alcotest.test_case "provenance round-trips both shapes" `Quick test_prov_roundtrip;
    Alcotest.test_case "alarm events fire at detection time" `Quick test_alarm_events_at_detection;
    Alcotest.test_case "rounds-to-quiescence = run_until" `Quick test_rounds_to_quiescence;
    Alcotest.test_case "metrics csv/json rows" `Quick test_metrics_rows;
  ]
