open Ssmst_graph
open Ssmst_sim
open Ssmst_protocols

(* The dense frontier's contract, made executable:

   1. model equivalence — under random mark/unmark/drain/compact
      interleavings, a {!Frontier.t} behaves exactly like a bool array:
      drains return the live set in strictly ascending node id, compact
      keeps flags while dropping stale entries, and the entry count never
      diverges from the live count at a quiescent point;
   2. compact regression — a node dirty-marked k times within one round
      contributes exactly one live entry after compaction, in the
      structure itself and through both engines' async rounds (stale
      entries must not accumulate across rounds);
   3. golden traces — the per-round event order of {!Network.Make} is
      byte-identical to the list-frontier engine this structure replaced:
      the (round, node) register-write sequences of a fixed faulted-grid
      scenario under all three daemons match digests captured on the
      pre-dense-frontier engine;
   4. accounting parity — [wasted_steps]/[skipped_activations] are
      identical between the sequential and domain-parallel branches of
      [sync_round], read directly off the counters (not just through the
      metrics CSV). *)

(* ---------------- 1. model-based QCheck ---------------- *)

let qcheck_frontier_model =
  QCheck.Test.make ~count:500 ~name:"Frontier = bool-array model; drains strictly ascending"
    QCheck.(pair (int_range 1 40) (small_list (pair (int_bound 3) (int_bound 1000))))
    (fun (n, raw_ops) ->
      let f = Frontier.create ~all_dirty:false n in
      let model = Array.make n false in
      let ok = ref true in
      let check_flags () =
        for v = 0 to n - 1 do
          if Frontier.mem f v <> model.(v) then ok := false
        done;
        let live = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 model in
        if Frontier.live f <> live then ok := false
      in
      List.iter
        (fun (kind, x) ->
          let v = x mod n in
          (match kind with
          | 0 ->
              Frontier.mark f v;
              model.(v) <- true
          | 1 ->
              Frontier.unmark f v;
              model.(v) <- false
          | 2 ->
              let expected = List.filter (fun v -> model.(v)) (List.init n Fun.id) in
              let members, m = Frontier.drain f in
              let got = List.init m (Array.get members) in
              (* [expected] is ascending by construction, so equality is
                 both the set check and the strict-ascent check *)
              if got <> expected then ok := false;
              if not (Frontier.is_empty f) then ok := false;
              Array.fill model 0 n false
          | _ ->
              Frontier.compact f;
              (* after compact every entry is live, exactly once *)
              if Frontier.length f <> Frontier.live f then ok := false);
          check_flags ())
        raw_ops;
      !ok)

(* the drain's two internal paths (sorted sparse collection vs ordered
   dense flag scan) must be unobservable: same members, same order *)
let qcheck_drain_paths_agree =
  QCheck.Test.make ~count:200 ~name:"Frontier: sparse-sort and dense-scan drains agree"
    QCheck.(pair (int_range 8 200) (small_list (int_bound 10_000)))
    (fun (n, marks) ->
      let sparse = Frontier.create ~all_dirty:false n in
      (* force the dense path by padding with stale entries: mark+unmark
         churn bloats [length] without changing the live set *)
      let dense = Frontier.create ~all_dirty:false n in
      for v = 0 to n - 1 do
        Frontier.mark dense v;
        Frontier.unmark dense v
      done;
      List.iter
        (fun x ->
          let v = x mod n in
          Frontier.mark sparse v;
          Frontier.mark dense v)
        marks;
      let ms, s = Frontier.drain sparse in
      let md, d = Frontier.drain dense in
      List.init s (Array.get ms) = List.init d (Array.get md))

let test_sort () =
  let check a =
    let m = Array.length a in
    let expected = Array.copy a in
    Array.sort compare expected;
    Frontier.sort a m;
    Alcotest.(check bool) "sorted prefix" true (a = expected)
  in
  check [||];
  check [| 3 |];
  check [| 5; 1; 4; 2; 3 |];
  check (Array.init 1000 (fun i -> (i * 7919) mod 10007));
  check (Array.init 100 (fun i -> 99 - i));
  check (Array.init 100 Fun.id)

(* ---------------- 2. compact regression ---------------- *)

let test_compact_dedup () =
  let f = Frontier.create ~all_dirty:false 8 in
  (* dirty-mark node 3 five times within one round, each but the last
     followed by the firing that clears its flag *)
  for _ = 1 to 4 do
    Frontier.mark f 3;
    Frontier.unmark f 3
  done;
  Frontier.mark f 3;
  Alcotest.(check int) "five buffered entries before compaction" 5 (Frontier.length f);
  Alcotest.(check int) "one live node" 1 (Frontier.live f);
  Frontier.compact f;
  Alcotest.(check int) "exactly one live entry after compaction" 1 (Frontier.length f);
  Alcotest.(check bool) "the node is still dirty" true (Frontier.mem f 3);
  Frontier.compact f;
  Alcotest.(check int) "compaction is idempotent" 1 (Frontier.length f);
  let members, m = Frontier.drain f in
  Alcotest.(check int) "drains once" 1 m;
  Alcotest.(check int) "drains the right node" 3 members.(0)

module E = Network.Make (Ss_bfs.P)
module F = Network.Flat (Ss_bfs.P)

(* Across many adversarial async rounds (nodes fire several times per
   round, so flags churn within the round), the engines' frontiers must
   end every round fully compacted: every buffered entry live, and the
   entry count bounded by n — stale entries cannot accumulate. *)
let test_async_rounds_stay_compact () =
  let g = Gen.grid (Gen.rng 8800) 6 6 in
  let n = Graph.n g in
  let eng = E.create g and flat = F.create g in
  let daemon_e = Scheduler.Async_adversarial (Gen.rng 881) in
  let daemon_f = Scheduler.Async_adversarial (Gen.rng 881) in
  for r = 1 to 30 do
    if r mod 5 = 1 then begin
      ignore (E.inject eng (Gen.rng (8800 + r)) (Fault.uniform ~count:3));
      ignore (F.inject flat (Gen.rng (8800 + r)) (Fault.uniform ~count:3))
    end;
    E.round eng daemon_e;
    F.round flat daemon_f;
    List.iter
      (fun (name, fr) ->
        let len = Frontier.length fr and live = Frontier.live fr in
        if len <> live then
          Alcotest.failf "%s round %d: %d entries but %d live (stale survived compact)" name r
            len live;
        if len > n then Alcotest.failf "%s round %d: %d entries > n=%d" name r len n)
      [ ("make", eng.E.frontier); ("flat", flat.F.frontier) ]
  done

(* ---------------- 3. golden traces vs the list frontier ---------------- *)

(* (round, node) write sequences folded into an order-sensitive digest.
   The expected values were captured by running this exact scenario on the
   pre-PR-10 engine (int-list frontier, List.filter + List.sort compare):
   the dense frontier must reproduce the event order byte for byte. *)
let digest l =
  List.fold_left (fun h (r, v) -> ((h * 1000003) + (r * 65599) + v) land 0x3FFFFFFF) 17 l

let golden =
  [
    ("sync", (fun () -> Scheduler.Sync), 295, 871490833);
    ("async_random", (fun () -> Scheduler.Async_random (Gen.rng 777)), 173, 712610458);
    ( "async_adversarial",
      (fun () -> Scheduler.Async_adversarial (Gen.rng 778)),
      285,
      1051043249 );
  ]

let test_golden_traces () =
  List.iter
    (fun (name, daemon_of, expect_len, expect_digest) ->
      let g = Gen.grid (Gen.rng 6600) 5 5 in
      let tr = Trace.create ~capacity:200_000 () in
      let net = E.create ~trace:tr g in
      let daemon = daemon_of () in
      for r = 1 to 12 do
        if r mod 4 = 1 then
          ignore (E.inject net (Gen.rng (6600 + r)) (Fault.uniform ~count:3));
        E.round net daemon
      done;
      let acc = ref [] in
      Trace.iter
        (function
          | Trace.Register_write { round; node; _ } -> acc := (round, node) :: !acc
          | _ -> ())
        tr;
      let l = List.rev !acc in
      Alcotest.(check int) (name ^ ": write count matches the list frontier") expect_len
        (List.length l);
      Alcotest.(check int) (name ^ ": write order matches the list frontier") expect_digest
        (digest l))
    golden

(* Sync-round activations must come out strictly ascending within every
   round, whatever interleaving of async rounds, fault injections (which
   mark neighbourhoods in arbitrary order) and sync rounds preceded it. *)
let qcheck_sync_activations_ascend =
  QCheck.Test.make ~count:60 ~name:"sync activations strictly ascend after random mark churn"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Gen.random_connected (Gen.rng seed) 24 in
      let tr = Trace.create ~capacity:200_000 () in
      let net = E.create ~trace:tr g in
      let st = Gen.rng (seed + 1) in
      for r = 1 to 16 do
        if r mod 3 = 0 then ignore (E.inject net (Gen.rng (seed + r)) (Fault.uniform ~count:2));
        (* async rounds churn the flags and leave stale entries behind *)
        let daemon =
          match Random.State.int st 3 with
          | 0 -> Scheduler.Sync
          | 1 -> Scheduler.Async_random (Gen.rng (seed + (100 * r)))
          | _ -> Scheduler.Async_adversarial (Gen.rng (seed + (100 * r)))
        in
        E.round net daemon
      done;
      (* one final churn + sync round, then audit every sync round seen *)
      ignore (E.inject net (Gen.rng (seed + 999)) (Fault.uniform ~count:3));
      E.round net Scheduler.Sync;
      (* activations are emitted per (round, node); within a sync round
         the node ids must strictly increase.  Async rounds follow the
         daemon's schedule, so only audit rounds with >= 2 activations
         whose order claims to be canonical: collect per-round sequences
         and check the sync ones.  Sync rounds are exactly those where
         the engine drained the frontier — conservatively, audit every
         round that is strictly ascending in the reference semantics:
         here we re-run the same seeds and compare against Naive order
         would be circular, so instead assert the *final* sync round
         (known sync by construction) ascends. *)
      let final_round = E.rounds net in
      let seq = ref [] in
      Trace.iter
        (function
          | Trace.Activation { round; node } when round = final_round ->
              seq := node :: !seq
          | _ -> ())
        tr;
      let seq = List.rev !seq in
      let rec ascends = function
        | a :: (b :: _ as rest) -> a < b && ascends rest
        | _ -> true
      in
      seq <> [] && ascends seq)

(* ---------------- 4. accounting parity across sync branches ------------- *)

(* wasted_steps / skipped_activations must not depend on which branch of
   sync_round ran.  Forcing the domain-parallel branch needs a multicore
   runtime; on a sequential backend both runs take the k = 1 path and the
   check degenerates to determinism — still worth asserting. *)
let test_accounting_parity () =
  let g = Gen.grid (Gen.rng 9100) 8 8 in
  let run_flat d =
    let net = F.create ~domains:d g in
    for r = 1 to 14 do
      if r mod 4 = 1 then ignore (F.inject net (Gen.rng (9100 + r)) (Fault.uniform ~count:4));
      F.round net Scheduler.Sync
    done;
    let m = F.metrics net in
    (m.Metrics.wasted_steps, m.Metrics.skipped_activations, m.Metrics.activations)
  in
  let run_make d =
    let net = E.create ~domains:d g in
    for r = 1 to 14 do
      if r mod 4 = 1 then ignore (E.inject net (Gen.rng (9100 + r)) (Fault.uniform ~count:4));
      E.round net Scheduler.Sync
    done;
    let m = E.metrics net in
    (m.Metrics.wasted_steps, m.Metrics.skipped_activations, m.Metrics.activations)
  in
  let fw, fs, fa = run_flat 1 and mw, ms, ma = run_make 1 in
  List.iter
    (fun d ->
      let w, s, a = run_flat d in
      Alcotest.(check int) (Fmt.str "flat -d %d: wasted_steps" d) fw w;
      Alcotest.(check int) (Fmt.str "flat -d %d: skipped_activations" d) fs s;
      Alcotest.(check int) (Fmt.str "flat -d %d: activations" d) fa a;
      let w, s, a = run_make d in
      Alcotest.(check int) (Fmt.str "make -d %d: wasted_steps" d) mw w;
      Alcotest.(check int) (Fmt.str "make -d %d: skipped_activations" d) ms s;
      Alcotest.(check int) (Fmt.str "make -d %d: activations" d) ma a)
    [ 2; 4 ];
  (* the two engines also agree with each other on the sequential branch *)
  Alcotest.(check int) "flat = make: wasted_steps" mw fw;
  Alcotest.(check int) "flat = make: skipped_activations" ms fs;
  Alcotest.(check int) "flat = make: activations" ma fa

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_frontier_model;
    QCheck_alcotest.to_alcotest qcheck_drain_paths_agree;
    Alcotest.test_case "monomorphic prefix sort" `Quick test_sort;
    Alcotest.test_case "compact: k marks -> one live entry" `Quick test_compact_dedup;
    Alcotest.test_case "async rounds leave no stale entries (both engines)" `Quick
      test_async_rounds_stay_compact;
    Alcotest.test_case "golden traces: event order = list frontier" `Quick test_golden_traces;
    QCheck_alcotest.to_alcotest qcheck_sync_activations_ascend;
    Alcotest.test_case "wasted/skipped parity across sync branches" `Quick
      test_accounting_parity;
  ]
