(* The Section 9 reduction, live: verification time cannot be free when
   labels are compact.

   We build hypertree-family instances (the black-box properties of the
   [54] lower-bound graphs), subdivide their edges with the G -> G'
   transform, and compare two verification schemes on broken instances:

   - the compact O(log n)-bit scheme of this paper: detection takes
     multiple rounds (it must move pieces around);
   - the KKP O(log² n)-bit 1-proof labeling scheme: detection in one round.

   Lemma 9.1 says a τ-round scheme on G' yields a 1-round scheme with
   τ·ℓ-bit labels on G, and [54] bounds that product below by Ω(log² n) —
   so the compact scheme's extra rounds are not an implementation artefact
   but a theorem.

   Run with: dune exec examples/lower_bound_demo.exe *)

open Ssmst_core
open Ssmst_pls

let () =
  Fmt.pr "%-4s %-4s %-6s | %-22s | %-22s@." "h" "tau" "n" "compact (bits, rounds)"
    "KKP 1-PLS (bits, rounds)";
  Fmt.pr "%s@." (String.make 64 '-');
  List.iter
    (fun (h, tau) ->
      let c = Lower_bound.measure ~seed:(100 + h + tau) ~h ~tau ~positive:false in
      let k, _ = Kkp_pls.measure_lower_bound ~seed:(100 + h + tau) ~h ~tau ~positive:false in
      Fmt.pr "%-4d %-4d %-6d | %6d bits %a rounds | %6d bits %a rounds@." h tau
        c.Lower_bound.n c.Lower_bound.label_bits
        Fmt.(option ~none:(any "-") int)
        c.Lower_bound.detection_rounds k.Lower_bound.label_bits
        Fmt.(option ~none:(any "-") int)
        k.Lower_bound.detection_rounds)
    [ (3, 0); (4, 0); (5, 0); (3, 1); (3, 2); (4, 1) ];
  Fmt.pr "@.positive instances are accepted by both schemes:@.";
  List.iter
    (fun h ->
      let c = Lower_bound.measure ~seed:(200 + h) ~h ~tau:0 ~positive:true in
      let _, kkp_rejects = Kkp_pls.measure_lower_bound ~seed:(200 + h) ~h ~tau:0 ~positive:true in
      Fmt.pr "  h=%d: compact alarm=%b, KKP alarm=%b@." h
        (c.Lower_bound.detection_rounds <> None)
        kkp_rejects)
    [ 3; 4; 5 ]
