examples/quickstart.ml: Fmt Gen Graph List Marker Memory Mst Network Scheduler Ssmst_core Ssmst_graph Ssmst_sim Tree Verifier
