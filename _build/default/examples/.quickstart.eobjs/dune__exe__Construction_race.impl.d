examples/construction_race.ml: Fmt Gen Graph List Mst Ssmst_baselines Ssmst_core Ssmst_graph Ssmst_mp Sync_mst
