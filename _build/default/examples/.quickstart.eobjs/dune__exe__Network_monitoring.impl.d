examples/network_monitoring.ml: Fmt Gen Graph List Mst Ssmst_core Ssmst_graph Transformer Tree
