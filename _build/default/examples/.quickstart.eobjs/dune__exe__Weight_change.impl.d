examples/weight_change.ml: Array Fmt Gen Graph List Marker Mst Network Scheduler Ssmst_core Ssmst_graph Ssmst_sim Tree Verifier
