examples/lower_bound_demo.ml: Fmt Kkp_pls List Lower_bound Ssmst_core Ssmst_pls String
