examples/construction_race.mli:
