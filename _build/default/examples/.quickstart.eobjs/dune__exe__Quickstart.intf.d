examples/quickstart.mli:
