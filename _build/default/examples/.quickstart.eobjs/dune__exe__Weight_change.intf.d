examples/weight_change.mli:
