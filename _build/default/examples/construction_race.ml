(* Construction race: the four MST constructions of this repository on the
   same network, including the fully event-driven GHS running on the
   message-passing emulation of Section 2.2.

   Run with: dune exec examples/construction_race.exe *)

open Ssmst_graph
open Ssmst_core

let () =
  let st = Gen.rng 31 in
  let g = Gen.random_connected st 48 in
  let w = Graph.plain_weight_fn g in
  Fmt.pr "network: %d nodes, %d edges@." (Graph.n g) (Graph.num_edges g);
  let reference = List.sort compare (Mst.kruskal g w) in
  let check t = List.sort compare (Mst.edge_set_of_tree t) = reference in

  let sm = Sync_mst.run g in
  Fmt.pr "%-34s %6d rounds   (MST: %b)@." "SYNC_MST (Section 4, timetable)" sm.Sync_mst.rounds
    (check sm.Sync_mst.tree);

  let ghs = Ssmst_baselines.Ghs.run g in
  Fmt.pr "%-34s %6d rounds   (MST: %b)@." "GHS (level-synchronised shape)"
    ghs.Ssmst_baselines.Ghs.rounds
    (check ghs.Ssmst_baselines.Ghs.tree);

  let mp = Ssmst_mp.Ghs_mp.run g in
  Fmt.pr "%-34s %6d rounds   (MST: %b, %d messages over toggle links)@."
    "GHS (event-driven, message passing)" mp.Ssmst_mp.Ghs_mp.rounds
    (check mp.Ssmst_mp.Ghs_mp.tree)
    mp.Ssmst_mp.Ghs_mp.messages;

  let hl = Ssmst_baselines.Higham_liang.run g in
  Fmt.pr "%-34s %6d rounds   (MST: %b, %d swaps)@." "Higham-Liang-style (self-stab.)"
    hl.Ssmst_baselines.Higham_liang.rounds
    (check hl.Ssmst_baselines.Higham_liang.tree)
    hl.Ssmst_baselines.Higham_liang.swaps;

  let bl = Ssmst_baselines.Blin.run g in
  Fmt.pr "%-34s %6d rounds   (MST: %b)@." "Blin-et-al-style (self-stab.)"
    bl.Ssmst_baselines.Blin.rounds
    (check bl.Ssmst_baselines.Blin.tree);

  Fmt.pr "@.All five constructions agree on the unique MST; their round costs embody\n\
          the paper's Table 1 trade-offs (see EXPERIMENTS.md, T1 and F-CT).@."
