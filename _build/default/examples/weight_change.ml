(* Link-cost change: the deployed MST goes stale when an operator re-prices
   a link; the verification layer notices without any global recomputation
   being scheduled.

   We build an MST with its labels, then drop the cost of a non-tree link
   below the heaviest tree edge on its cycle.  The old labels are now a
   proof of a *wrong* statement: the verifier's C2 check rejects, and a
   reconstruction installs the new MST.

   Run with: dune exec examples/weight_change.exe *)

open Ssmst_graph
open Ssmst_sim
open Ssmst_core

let () =
  let st = Gen.rng 21 in
  let g = Gen.random_connected st 36 in
  let m = Marker.run g in
  Fmt.pr "initial MST weight: %d@." (Tree.total_base_weight m.tree);

  (* find a non-tree edge and make it the lightest link in the network *)
  let u0, v0, w0 =
    Graph.edges g |> List.find (fun (u, v, _) -> not (Tree.is_tree_edge m.tree u v))
  in
  let g' =
    Graph.reweight g (fun u v w -> if (min u v, max u v) = (u0, v0) then 0 else w)
  in
  Fmt.pr "link %d-%d re-priced: %d -> 0 (old tree now stale)@." u0 v0 w0;
  assert (
    not
      (Mst.is_mst g'
         (Graph.plain_weight_fn g')
         (Tree.of_parents g'
            (Array.init (Graph.n g) (fun v ->
                 match Tree.parent m.tree v with None -> -1 | Some p -> p)))));

  (* the old labels run against the new weights: verification must reject *)
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g' in
  (match Net.detection_time net Scheduler.Sync ~max_rounds:5000 with
  | Some rounds ->
      Fmt.pr "stale MST detected after %d rounds at node(s) %a@." rounds
        Fmt.(list ~sep:comma int)
        (Net.alarming_nodes net)
  | None -> failwith "BUG: stale MST not detected");

  (* reconstruction over the new weights *)
  let m' = Marker.run g' in
  Fmt.pr "reconstructed MST weight: %d (was %d)@."
    (Tree.total_base_weight m'.tree)
    (Tree.total_base_weight m.tree);
  assert (Mst.is_mst g' (Graph.plain_weight_fn g') m'.tree);
  Fmt.pr "new tree uses the re-priced link: %b@." (Tree.is_tree_edge m'.tree u0 v0)
