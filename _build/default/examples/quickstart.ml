(* Quickstart: construct an MST with its proof labels, verify it with the
   compact self-stabilizing verifier, inject a fault, and watch a nearby
   node raise the alarm.

   Run with: dune exec examples/quickstart.exe *)

open Ssmst_graph
open Ssmst_sim
open Ssmst_core

let () =
  (* 1. a random connected weighted network of 48 nodes *)
  let st = Gen.rng 7 in
  let g = Gen.random_connected st 48 in
  Fmt.pr "network: %d nodes, %d edges, max degree %d@." (Graph.n g) (Graph.num_edges g)
    (Graph.max_degree g);

  (* 2. the marker: SYNC_MST + labels + partitions + trains, all O(n) time *)
  let m = Marker.run g in
  Fmt.pr "marker: MST of total weight %d, hierarchy height %d@."
    (Tree.total_base_weight m.tree) m.hierarchy.height;
  Fmt.pr "        construction charged %d rounds (%.1f per node)@." m.construction_rounds
    (float_of_int m.construction_rounds /. float_of_int (Graph.n g));
  Fmt.pr "        max label size %d bits (log2 n = %d)@." m.label_bits (Memory.of_nat (Graph.n g));
  assert (Mst.is_mst g (Graph.plain_weight_fn g) m.tree);

  (* 3. run the verifier: it must stay silent on a correct instance *)
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  Net.run net Scheduler.Sync ~rounds:400;
  Fmt.pr "verifier: %d synchronous rounds, alarms: %b (expected: false)@." (Net.rounds net)
    (Net.any_alarm net);

  (* 4. corrupt one node's label and measure the detection *)
  let faults = Net.inject_faults net (Gen.rng 8) ~count:1 in
  Fmt.pr "fault injected at node %d@." (List.hd faults);
  (match Net.detection_time net Scheduler.Sync ~max_rounds:5000 with
  | Some rounds ->
      let dist = Net.detection_distance net ~faults in
      Fmt.pr "detected after %d rounds, %a hops from the fault@." rounds
        Fmt.(option ~none:(any "?") int)
        dist
  | None -> Fmt.pr "fault was semantically null (no observable corruption)@.");
  Fmt.pr "done.@."
