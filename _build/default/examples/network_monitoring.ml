(* Network monitoring: the ARPANET scenario from the paper's introduction.

   A long-running network maintains an MST (its routing backbone) with the
   self-stabilizing construction of Section 10.  Node memory occasionally
   gets corrupted (the kind of single-node fault that famously crashed the
   ARPANET by contaminating its neighbours); the verifier detects each
   fault close to where it happened and the transformer rebuilds, so the
   corruption never spreads silently.

   Run with: dune exec examples/network_monitoring.exe *)

open Ssmst_graph
open Ssmst_core

let () =
  let st = Gen.rng 11 in
  let g = Gen.random_connected ~extra_factor:1.5 st 40 in
  Fmt.pr "backbone network: %d nodes, %d links@." (Graph.n g) (Graph.num_edges g);
  let t = Transformer.create g in
  Fmt.pr "initial stabilization: %d rounds, output weight %d@."
    (Transformer.stabilization_rounds t)
    (Tree.total_base_weight (Transformer.tree t));
  let fault_rng = Gen.rng 12 in
  for epoch = 1 to 5 do
    (* quiet operation *)
    Transformer.advance t ~rounds:300;
    (* a memory fault hits some routers *)
    let faults = Transformer.inject_faults t fault_rng ~count:(1 + (epoch mod 2)) in
    Fmt.pr "epoch %d: fault at nodes %a@." epoch Fmt.(list ~sep:comma int) faults;
    Transformer.advance t ~rounds:6000;
    let recovered = Mst.is_mst g (Graph.plain_weight_fn g) (Transformer.tree t) in
    Fmt.pr "         output is the MST again: %b@." recovered;
    assert recovered
  done;
  Fmt.pr "history (most recent first):@.";
  List.iteri
    (fun i e ->
      if i < 12 then
        match e with
        | Transformer.Constructed r -> Fmt.pr "  construction (%d rounds)@." r
        | Transformer.Detected { rounds; distance } ->
            Fmt.pr "  detection after %d rounds at distance %a@." rounds
              Fmt.(option ~none:(any "?") int)
              distance
        | Transformer.Quiescent r -> Fmt.pr "  quiet for %d rounds@." r)
    t.Transformer.history;
  Fmt.pr "total: %d reconstructions over %d charged rounds@." t.Transformer.reconstructions
    t.Transformer.total_rounds;
  Fmt.pr "peak node memory: %d bits@." (Transformer.memory_bits t)
