open Ssmst_graph
open Ssmst_core

(* Direct unit tests of the train protocol (Section 7.1), driven by hand
   over single parts extracted from marked instances. *)

let marked seed n =
  let st = Gen.rng seed in
  Marker.run (Gen.random_connected st n)

(* A standalone synchronous executor for one part's train. *)
type sim = {
  part : Partition.part;
  labels : (int -> Partition.node_part_label);
  tree : Tree.t;
  mutable states : (int * Train.state) list;  (* node -> state *)
}

let mk_sim (m : Marker.t) (part : Partition.part) =
  let which = part.Partition.kind in
  let labels v =
    if which = `Top then m.assignment.Partition.top_label.(v)
    else m.assignment.Partition.bot_label.(v)
  in
  {
    part;
    labels;
    tree = m.tree;
    states = List.map (fun v -> (v, Train.init)) part.Partition.members;
  }

let state_of sim v = List.assoc v sim.states

let sync_round (m : Marker.t) sim ~member_flags =
  let in_part v = List.mem_assoc v sim.states in
  let snapshot = sim.states in
  let read v = List.assoc v snapshot in
  let g = m.graph in
  let new_states =
    List.map
      (fun (v, st) ->
        let lbl = sim.labels v in
        let parent =
          match Tree.parent sim.tree v with
          | Some p when in_part p -> Some { Train.lbl = sim.labels p; st = read p }
          | Some _ | None -> None
        in
        let children =
          Tree.children sim.tree v
          |> List.filter_map (fun c ->
                 if in_part c then Some { Train.lbl = sim.labels c; st = read c } else None)
        in
        let strings = m.labels.(v).Marker.strings in
        let flag_rule (pc : Pieces.t) ~parent_flag =
          if pc.Pieces.level >= strings.Labels.len then false
          else
            match strings.Labels.roots.(pc.Pieces.level) with
            | Labels.R1 -> Graph.id g v = pc.Pieces.root_id
            | Labels.R0 -> parent_flag
            | Labels.RStar -> false
        in
        let member (pc : Pieces.t) ~flag = if member_flags then flag else pc.Pieces.level >= 0 in
        ( v,
          Train.step ~lbl ~parent ~children ~flag_rule ~member ~required:0 ~ordered:false
            ~hold:false st ))
      sim.states
  in
  sim.states <- new_states

(* every node of the part sees every piece index within O(k + D) rounds *)
let test_full_delivery () =
  let m = marked 2200 48 in
  Array.iter
    (fun (part : Partition.part) ->
      let k = Array.length part.Partition.pieces in
      if k > 0 then begin
        let sim = mk_sim m part in
        let seen = Hashtbl.create 16 in
        let budget = 6 * (k + part.Partition.diameter + 4) in
        for _ = 1 to budget do
          sync_round m sim ~member_flags:false;
          List.iter
            (fun (v, (st : Train.state)) ->
              match st.Train.bc with
              | Some c -> Hashtbl.replace seen (v, c.Train.idx) ()
              | None -> ())
            sim.states
        done;
        List.iter
          (fun v ->
            for i = 0 to k - 1 do
              if not (Hashtbl.mem seen (v, i)) then
                Alcotest.failf "part %d: node %d never saw piece %d of %d (budget %d)"
                  part.Partition.id v i k budget
            done)
          part.Partition.members
      end)
    m.assignment.Partition.parts

(* pieces arrive at every node in cyclic index order once warmed up *)
let test_cyclic_order () =
  let m = marked 2201 32 in
  let part =
    Array.to_list m.assignment.Partition.parts
    |> List.filter (fun (p : Partition.part) -> Array.length p.Partition.pieces >= 3)
    |> List.hd
  in
  let k = Array.length part.Partition.pieces in
  let sim = mk_sim m part in
  (* warm up one full cycle, then record transitions *)
  for _ = 1 to 4 * (k + part.Partition.diameter + 4) do
    sync_round m sim ~member_flags:false
  done;
  let last = Hashtbl.create 8 in
  for _ = 1 to 4 * (k + part.Partition.diameter + 4) do
    sync_round m sim ~member_flags:false;
    List.iter
      (fun (v, (st : Train.state)) ->
        match st.Train.bc with
        | Some c ->
            (match Hashtbl.find_opt last v with
            | Some prev when prev <> c.Train.idx ->
                Alcotest.(check int)
                  (Fmt.str "node %d: consecutive delivery" v)
                  ((prev + 1) mod k) c.Train.idx
            | _ -> ());
            Hashtbl.replace last v c.Train.idx
        | None -> ())
      sim.states
  done

(* membership flags: flagged deliveries at a node happen exactly for the
   bottom fragments containing it *)
let test_flags () =
  let m = marked 2202 40 in
  let g = m.graph in
  Array.iter
    (fun (part : Partition.part) ->
      if part.Partition.kind = `Bottom && Array.length part.Partition.pieces > 0 then begin
        let sim = mk_sim m part in
        let flagged = Hashtbl.create 16 in
        for _ = 1 to 8 * (Array.length part.Partition.pieces + part.Partition.diameter + 4) do
          sync_round m sim ~member_flags:true;
          List.iter
            (fun (v, (st : Train.state)) ->
              match st.Train.bc with
              | Some c when c.Train.flag ->
                  Hashtbl.replace flagged (v, c.Train.piece.Pieces.root_id, c.Train.piece.Pieces.level) ()
              | _ -> ())
            sim.states
        done;
        (* expected: v gets flag for piece of F iff v in F *)
        List.iter
          (fun v ->
            Array.iter
              (fun (pc : Pieces.t) ->
                let f =
                  Array.to_list m.hierarchy.Fragment.frags
                  |> List.find_opt (fun (f : Fragment.t) ->
                         f.Fragment.level = pc.Pieces.level
                         && Graph.id g f.Fragment.root = pc.Pieces.root_id)
                in
                match f with
                | Some f ->
                    let expected = Fragment.mem f v in
                    let got = Hashtbl.mem flagged (v, pc.Pieces.root_id, pc.Pieces.level) in
                    Alcotest.(check bool)
                      (Fmt.str "flag for F@%d at node %d" pc.Pieces.level v)
                      expected got
                | None -> Alcotest.fail "piece without fragment")
              part.Partition.pieces)
          part.Partition.members
      end)
    m.assignment.Partition.parts

(* cycle time is O(k + D): measure rounds per full cycle at the root *)
let test_cycle_time () =
  let m = marked 2203 64 in
  Array.iter
    (fun (part : Partition.part) ->
      let k = Array.length part.Partition.pieces in
      if k >= 2 then begin
        let sim = mk_sim m part in
        (* warm up *)
        for _ = 1 to 4 * (k + part.Partition.diameter + 4) do
          sync_round m sim ~member_flags:false
        done;
        (* time wraps at the root *)
        let root = part.Partition.root in
        let wraps = ref 0 and rounds = ref 0 in
        let budget = 20 * (k + part.Partition.diameter + 4) in
        let last = ref (-1) in
        while !wraps < 3 && !rounds < budget do
          sync_round m sim ~member_flags:false;
          incr rounds;
          (match (state_of sim root).Train.bc with
          | Some c ->
              if c.Train.idx = 0 && !last <> 0 then incr wraps;
              last := c.Train.idx
          | None -> ())
        done;
        Alcotest.(check bool)
          (Fmt.str "part %d: 3 cycles within %d rounds (k=%d D=%d)" part.Partition.id budget k
             part.Partition.diameter)
          true (!wraps >= 3)
      end)
    m.assignment.Partition.parts

(* self-stabilization: garbage train state is flushed and delivery resumes *)
let test_recovers_from_garbage () =
  let m = marked 2204 32 in
  let part =
    Array.to_list m.assignment.Partition.parts
    |> List.filter (fun (p : Partition.part) -> Array.length p.Partition.pieces >= 2)
    |> List.hd
  in
  let k = Array.length part.Partition.pieces in
  let sim = mk_sim m part in
  for _ = 1 to 2 * (k + part.Partition.diameter + 4) do
    sync_round m sim ~member_flags:false
  done;
  (* corrupt every node's train state *)
  let rng = Gen.rng 2205 in
  sim.states <- List.map (fun (v, st) -> (v, Train.corrupt rng st)) sim.states;
  let seen = Hashtbl.create 16 in
  for _ = 1 to 8 * (k + part.Partition.diameter + 4) do
    sync_round m sim ~member_flags:false;
    List.iter
      (fun (v, (st : Train.state)) ->
        match st.Train.bc with
        | Some c when c.Train.idx < k && Pieces.equal c.Train.piece part.Partition.pieces.(c.Train.idx) ->
            Hashtbl.replace seen (v, c.Train.idx) ()
        | _ -> ())
      sim.states
  done;
  List.iter
    (fun v ->
      for i = 0 to k - 1 do
        Alcotest.(check bool)
          (Fmt.str "node %d re-sees genuine piece %d after corruption" v i)
          true
          (Hashtbl.mem seen (v, i))
      done)
    part.Partition.members

let suite =
  [
    Alcotest.test_case "full delivery in O(k+D)" `Quick test_full_delivery;
    Alcotest.test_case "cyclic index order" `Quick test_cyclic_order;
    Alcotest.test_case "membership flags" `Quick test_flags;
    Alcotest.test_case "cycle time O(k+D)" `Quick test_cycle_time;
    Alcotest.test_case "recovers from garbage state" `Quick test_recovers_from_garbage;
  ]
