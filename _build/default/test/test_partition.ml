open Ssmst_graph
open Ssmst_core

let setup seed n =
  let st = Gen.rng seed in
  let g = Gen.random_connected st n in
  let r = Sync_mst.run g in
  (g, r, Partition.compute r.hierarchy)

let check_cover (a : Partition.assignment) n =
  (* every node belongs to exactly one part of each partition *)
  let top_seen = Array.make n 0 and bot_seen = Array.make n 0 in
  Array.iter
    (fun (p : Partition.part) ->
      List.iter
        (fun v ->
          match p.kind with
          | `Top -> top_seen.(v) <- top_seen.(v) + 1
          | `Bottom -> bot_seen.(v) <- bot_seen.(v) + 1)
        p.members)
    a.parts;
  Array.for_all (( = ) 1) top_seen && Array.for_all (( = ) 1) bot_seen

let test_partitions_cover () =
  List.iter
    (fun n ->
      let _, _, a = setup (100 + n) n in
      Alcotest.(check bool) (Fmt.str "cover n=%d" n) true (check_cover a n))
    [ 2; 3; 4; 5; 8; 16; 31; 64 ]

let test_lemmas () =
  List.iter
    (fun n ->
      let _, _, a = setup (200 + n) n in
      Alcotest.(check bool) (Fmt.str "lemma 6.4 n=%d" n) true (Partition.lemma_6_4 a ~n);
      Alcotest.(check bool) (Fmt.str "lemma 6.5 n=%d" n) true (Partition.lemma_6_5 a))
    [ 4; 8; 16; 32; 64; 128 ]

(* Claim 6.3 consequence: a Top part's train carries at most one piece per
   level, sorted strictly increasing. *)
let test_top_pieces_sorted () =
  let _, _, a = setup 300 64 in
  Array.iter
    (fun (p : Partition.part) ->
      if p.kind = `Top then
        Array.iteri
          (fun i (pc : Pieces.t) ->
            if i > 0 then
              Alcotest.(check bool) "levels strictly increase" true
                (pc.level > p.pieces.(i - 1).level))
          p.pieces)
    a.parts

(* Completeness: for every node v and level j in J(v), the piece of F_j(v)
   is carried by one of the two trains of v's parts. *)
let test_pieces_reachable () =
  List.iter
    (fun (seed, n) ->
      let g, r, a = setup seed n in
      let h = r.hierarchy in
      for v = 0 to n - 1 do
        List.iter
          (fun fi ->
            let f = h.frags.(fi) in
            match f.candidate with
            | None -> ()
            | Some _ ->
                let expected_id = Graph.id g f.root in
                let carried (p : Partition.part) =
                  Array.exists
                    (fun (pc : Pieces.t) -> pc.root_id = expected_id && pc.level = f.level)
                    p.pieces
                in
                let top = a.parts.(a.top_of.(v)) and bot = a.parts.(a.bot_of.(v)) in
                Alcotest.(check bool)
                  (Fmt.str "piece of F_%d(%d) reachable (n=%d)" f.level v n)
                  true
                  (carried top || carried bot))
          h.of_node.(v)
      done)
    [ (301, 16); (302, 40); (303, 97) ]

(* The delimiter splits J(v) correctly: top levels are >= delim, bottom
   levels below. *)
let test_delimiter () =
  let _, r, a = setup 304 80 in
  let h = r.hierarchy in
  for v = 0 to 79 do
    List.iter
      (fun fi ->
        let f = h.frags.(fi) in
        let top = Fragment.size f >= a.threshold in
        Alcotest.(check bool) "delim splits J(v)" true (top = (f.level >= a.delim.(v))))
      h.of_node.(v)
  done

(* Per-node storage: at most two pieces, and the pair placement follows the
   part's DFS order. *)
let test_piece_placement () =
  let _, _, a = setup 305 60 in
  Array.iter
    (fun (p : Partition.part) ->
      let seen = ref [] in
      List.iter
        (fun v ->
          let l = if p.kind = `Top then a.top_label.(v) else a.bot_label.(v) in
          Alcotest.(check bool) "at most a pair" true (Array.length l.own <= 2);
          Array.iteri (fun i pc -> seen := ((2 * l.dfs_rank) + i, pc) :: !seen) l.own)
        p.members;
      let seen = List.sort (fun (a, _) (b, _) -> Int.compare a b) !seen in
      Alcotest.(check int) "all pieces placed" (Array.length p.pieces) (List.length seen);
      List.iteri
        (fun i (ix, pc) ->
          Alcotest.(check int) "contiguous indices" i ix;
          Alcotest.(check bool) "right piece" true (Pieces.equal pc p.pieces.(i)))
        seen)
    a.parts

let qcheck_partition =
  QCheck.Test.make ~name:"partition invariants on random graphs" ~count:30
    QCheck.(pair (int_range 2 80) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let r = Sync_mst.run g in
      let a = Partition.compute r.hierarchy in
      check_cover a n && Partition.lemma_6_4 a ~n && Partition.lemma_6_5 a)

let suite =
  [
    Alcotest.test_case "partitions cover all nodes" `Quick test_partitions_cover;
    Alcotest.test_case "lemmas 6.4 and 6.5" `Quick test_lemmas;
    Alcotest.test_case "top pieces sorted by level" `Quick test_top_pieces_sorted;
    Alcotest.test_case "every needed piece reachable" `Quick test_pieces_reachable;
    Alcotest.test_case "delimiter" `Quick test_delimiter;
    Alcotest.test_case "piece placement by DFS" `Quick test_piece_placement;
    QCheck_alcotest.to_alcotest qcheck_partition;
  ]
