open Ssmst_graph

let test_kruskal_simple () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (1, 2, 2); (2, 3, 3); (0, 3, 9); (0, 2, 8) ] in
  let w = Graph.plain_weight_fn g in
  Alcotest.(check (list (pair int int)))
    "kruskal picks the light edges"
    [ (0, 1); (1, 2); (2, 3) ]
    (List.sort compare (Mst.kruskal g w))

let test_prim_equals_kruskal () =
  let st = Gen.rng 42 in
  for _ = 1 to 20 do
    let n = 2 + Random.State.int st 60 in
    let g = Gen.random_connected st n in
    let w = Graph.plain_weight_fn g in
    let k = List.sort compare (Mst.kruskal g w) in
    let p = List.sort compare (Mst.edge_set_of_tree (Mst.prim g w)) in
    Alcotest.(check (list (pair int int))) "prim = kruskal" k p
  done

let test_is_mst () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 2); (0, 2, 3) ] in
  let w = Graph.plain_weight_fn g in
  let good = Tree.of_parents g [| -1; 0; 1 |] in
  let bad = Tree.of_parents g [| -1; 0; 0 |] in
  Alcotest.(check bool) "accepts the MST" true (Mst.is_mst g w good);
  Alcotest.(check bool) "rejects a heavier tree" false (Mst.is_mst g w bad)

let test_min_outgoing () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 4); (1, 2, 1); (0, 3, 2); (2, 3, 7) ] in
  let w = Graph.plain_weight_fn g in
  (match Mst.min_outgoing g w ~in_set:(fun v -> v = 0) with
  | Some (0, 3, _) -> ()
  | _ -> Alcotest.fail "expected edge (0,3)");
  (match Mst.min_outgoing g w ~in_set:(fun _ -> true) with
  | None -> ()
  | Some _ -> Alcotest.fail "spanning set has no outgoing edge")

(* Cut property: for any node subset, the min outgoing edge is in the MST. *)
let qcheck_cut_property =
  QCheck.Test.make ~name:"cut property: min outgoing edge is in the MST" ~count:100
    QCheck.(pair (int_range 3 40) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let w = Graph.plain_weight_fn g in
      let mst = List.sort compare (Mst.kruskal g w) in
      let in_set v = v mod 3 = seed mod 3 in
      if (not (Array.exists in_set (Array.init n Fun.id)))
         || Array.for_all in_set (Array.init n Fun.id)
      then true
      else
        match Mst.min_outgoing g w ~in_set with
        | None -> true
        | Some (u, v, _) -> List.mem (min u v, max u v) mst)

(* The ω′ transform (footnote 1): T is an MST under ω iff under ω′. *)
let qcheck_weight_transform =
  QCheck.Test.make ~name:"omega' transform preserves MST-ness of the candidate" ~count:100
    QCheck.(int_range 3 30)
    (fun n ->
      let st = Gen.rng (n * 13) in
      (* duplicate weights on purpose *)
      let skeleton = Gen.random_connected_skeleton st n ~extra:n in
      let edges = List.map (fun (u, v) -> (u, v, 1 + Random.State.int st 4)) skeleton in
      let g = Graph.of_edges ~n edges in
      let wp = Graph.plain_weight_fn g in
      let t = Mst.prim g wp in
      let in_tree u v = Tree.is_tree_edge t u v in
      let w' = Graph.weight_fn g ~in_tree in
      (* t is minimal under plain tie-broken weights; under ω′ with t's own
         indicator, t must still be the unique MST *)
      Mst.is_mst g w' t)

let suite =
  [
    Alcotest.test_case "kruskal on a diamond" `Quick test_kruskal_simple;
    Alcotest.test_case "prim equals kruskal" `Quick test_prim_equals_kruskal;
    Alcotest.test_case "is_mst" `Quick test_is_mst;
    Alcotest.test_case "min outgoing edge" `Quick test_min_outgoing;
    QCheck_alcotest.to_alcotest qcheck_cut_property;
    QCheck_alcotest.to_alcotest qcheck_weight_transform;
  ]
