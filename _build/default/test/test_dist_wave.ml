open Ssmst_graph
open Ssmst_sim
open Ssmst_protocols

(* Register-level Wave&Echo (the Section 4.2 shared-memory implementation)
   validated against the functional Wave_echo cost model. *)

let tree_setup seed n =
  let st = Gen.rng seed in
  let g = Gen.random_connected st n in
  let t = Mst.prim g (Graph.plain_weight_fn g) in
  let parent = Array.init n (fun v -> match Tree.parent t v with None -> -1 | Some p -> p) in
  (g, t, parent)

let run_wave (g : Graph.t) parent daemon ~value ~combine ~max_rounds =
  let module W = Dist_wave.Make (struct
    let parent = parent
    let value = value
    let combine = combine
  end) in
  let module Net = Network.Make (W) in
  let net = Net.create g in
  let root = ref (-1) in
  Array.iteri (fun v p -> if p < 0 then root := v) parent;
  let root = !root in
  let _, reached =
    Net.run_until net daemon ~max_rounds (fun net ->
        (Net.state net root).Dist_wave.result <> None)
  in
  ((if reached then (Net.state net root).Dist_wave.result else None), Net.rounds net)

let test_count_matches_functional () =
  let g, t, parent = tree_setup 3200 40 in
  let expected = (Wave_echo.count ~children:(Tree.children t) (Tree.root t)).Wave_echo.value in
  let result, rounds =
    run_wave g parent Scheduler.Sync ~value:(fun _ -> 1) ~combine:( + ) ~max_rounds:500
  in
  Alcotest.(check (option int)) "count = n" (Some expected) result;
  (* completed within c * height rounds *)
  Alcotest.(check bool)
    (Fmt.str "%d rounds vs height %d" rounds (Tree.height t))
    true
    (rounds <= 4 * (Tree.height t + 2))

let test_sum_and_max () =
  let g, _, parent = tree_setup 3201 24 in
  let result, _ =
    run_wave g parent Scheduler.Sync ~value:(fun v -> v) ~combine:( + ) ~max_rounds:500
  in
  Alcotest.(check (option int)) "sum of indices" (Some (24 * 23 / 2)) result;
  let result, _ =
    run_wave g parent Scheduler.Sync ~value:(fun v -> v) ~combine:max ~max_rounds:500
  in
  Alcotest.(check (option int)) "max index" (Some 23) result

let test_async_wave () =
  let g, _, parent = tree_setup 3202 30 in
  let result, _ =
    run_wave g parent
      (Scheduler.Async_adversarial (Gen.rng 3203))
      ~value:(fun _ -> 1) ~combine:( + ) ~max_rounds:2000
  in
  Alcotest.(check (option int)) "async count" (Some 30) result

let test_repeated_waves () =
  (* the root keeps launching waves: results stay correct across cycles *)
  let g, _, parent = tree_setup 3204 20 in
  let module W = Dist_wave.Make (struct
    let parent = parent
    let value = fun _ -> 1
    let combine = ( + )
  end) in
  let module Net = Network.Make (W) in
  let net = Net.create g in
  let root = ref (-1) in
  Array.iteri (fun v p -> if p < 0 then root := v) parent;
  Net.run net Scheduler.Sync ~rounds:600;
  let s = Net.state net !root in
  Alcotest.(check (option int)) "latest result" (Some 20) s.Dist_wave.result;
  Alcotest.(check bool) "several waves completed" true (s.Dist_wave.seq > 3)

let test_recovers_from_corruption () =
  let g, _, parent = tree_setup 3205 20 in
  let module W = Dist_wave.Make (struct
    let parent = parent
    let value = fun _ -> 1
    let combine = ( + )
  end) in
  let module Net = Network.Make (W) in
  let net = Net.create g in
  Net.run net Scheduler.Sync ~rounds:100;
  ignore (Net.inject_faults net (Gen.rng 3206) ~count:6);
  (* corrupt sequence numbers / echoes are flushed by later waves *)
  Net.run net Scheduler.Sync ~rounds:600;
  let root = ref (-1) in
  Array.iteri (fun v p -> if p < 0 then root := v) parent;
  Alcotest.(check (option int)) "correct result after corruption" (Some 20)
    (Net.state net !root).Dist_wave.result

let suite =
  [
    Alcotest.test_case "count = functional model" `Quick test_count_matches_functional;
    Alcotest.test_case "sum and max commands" `Quick test_sum_and_max;
    Alcotest.test_case "asynchronous wave" `Quick test_async_wave;
    Alcotest.test_case "repeated waves" `Quick test_repeated_waves;
    Alcotest.test_case "recovers from corruption" `Quick test_recovers_from_corruption;
  ]
