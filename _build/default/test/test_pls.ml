open Ssmst_graph
open Ssmst_core
open Ssmst_pls

let marker_for seed n =
  let st = Gen.rng seed in
  Marker.run (Gen.random_connected st n)

(* ---------------- simple schemes ---------------- *)

let test_spanning_scheme () =
  let m = marker_for 1200 24 in
  let labels = Simple_pls.Spanning.mark m.Marker.tree in
  let comp = Tree.to_components m.Marker.tree in
  Alcotest.(check bool) "accepts the marked tree" true
    (Simple_pls.Spanning.accepts m.Marker.graph comp labels);
  (* corrupt a distance *)
  labels.(5) <- { (labels.(5)) with Simple_pls.Spanning.dist = labels.(5).Simple_pls.Spanning.dist + 3 };
  Alcotest.(check bool) "rejects a corrupted distance" false
    (Simple_pls.Spanning.accepts m.Marker.graph comp labels)

let test_spanning_rejects_forest () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (1, 2, 2); (2, 3, 3); (0, 3, 4) ] in
  let t = Tree.of_parents g [| -1; 0; 1; 2 |] in
  let labels = Simple_pls.Spanning.mark t in
  (* break the structure: point 3 at 0 instead, creating a second subtree
     inconsistent with the distances *)
  let comp = Tree.to_components t in
  comp.(3) <- Some (Graph.port_to g 3 0);
  Alcotest.(check bool) "rejects" false (Simple_pls.Spanning.accepts g comp labels)

let test_size_scheme () =
  let m = marker_for 1201 20 in
  let t = m.Marker.tree in
  let labels = Simple_pls.Size.mark t in
  let parent v = Tree.parent t v in
  let children v = Tree.children t v in
  Alcotest.(check bool) "accepts" true
    (Simple_pls.Size.accepts m.Marker.graph ~parent ~children labels);
  labels.(3) <- { (labels.(3)) with Simple_pls.Size.claimed_n = 21 };
  Alcotest.(check bool) "rejects wrong n" false
    (Simple_pls.Size.accepts m.Marker.graph ~parent ~children labels)

let test_height_scheme () =
  let m = marker_for 1202 20 in
  let t = m.Marker.tree in
  let parent v = Tree.parent t v in
  let labels = Simple_pls.Height_bound.mark t ~bound:(Tree.height t) in
  Alcotest.(check bool) "accepts a true bound" true
    (Simple_pls.Height_bound.accepts m.Marker.graph ~parent labels);
  let low = Simple_pls.Height_bound.mark t ~bound:(Tree.height t - 1) in
  Alcotest.(check bool) "rejects an undershot bound" false
    (Simple_pls.Height_bound.accepts m.Marker.graph ~parent low)

(* ---------------- KKP scheme ---------------- *)

let test_kkp_accepts () =
  List.iter
    (fun n ->
      let m = marker_for (1300 + n) n in
      let kkp = Kkp_pls.mark m in
      Alcotest.(check (list int)) (Fmt.str "accepts n=%d" n) []
        (Kkp_pls.rejecting_nodes kkp))
    [ 2; 5; 16; 40; 80 ]

let test_kkp_rejects_non_mst () =
  let st = Gen.rng 1400 in
  let g = Gen.random_connected st 30 in
  let flipped =
    Graph.of_edges ~n:30 (List.map (fun (u, v, w) -> (u, v, 1_000_000 - w)) (Graph.edges g))
  in
  let bad = Mst.prim flipped (Graph.plain_weight_fn flipped) in
  let bad_on_g =
    Tree.of_parents g
      (Array.init 30 (fun v -> match Tree.parent bad v with None -> -1 | Some p -> p))
  in
  let forged = Marker.forge g bad_on_g in
  let kkp = Kkp_pls.mark forged in
  Alcotest.(check bool) "rejects in one round" false (Kkp_pls.accepts kkp)

let test_kkp_detects_piece_corruption () =
  let m = marker_for 1401 24 in
  let kkp = Kkp_pls.mark m in
  (* tamper with one stored piece *)
  let l = kkp.Kkp_pls.labels.(7) in
  let j =
    match
      Array.to_list l.Kkp_pls.pieces
      |> List.mapi (fun j p -> (j, p))
      |> List.find_opt (fun (_, p) -> p <> None)
    with
    | Some (j, _) -> j
    | None -> Alcotest.fail "no piece to corrupt"
  in
  l.Kkp_pls.pieces.(j) <-
    Some
      {
        Pieces.root_id = 9999;
        level = j;
        weight = Weight.make ~base:1 ~in_tree:false ~id_u:0 ~id_v:1;
      };
  Alcotest.(check bool) "detected" false (Kkp_pls.accepts kkp)

(* memory separation: KKP labels grow like log² n, the compact marker's
   like log n; their ratio must grow with n *)
let test_memory_separation () =
  let ratio n =
    let m = marker_for (1500 + n) n in
    let kkp = Kkp_pls.mark m in
    float_of_int (Kkp_pls.max_bits kkp) /. float_of_int m.Marker.label_bits
  in
  let r_small = ratio 16 and r_big = ratio 512 in
  Alcotest.(check bool)
    (Fmt.str "ratio grows: %.2f -> %.2f" r_small r_big)
    true (r_big > r_small)

let qcheck_kkp =
  QCheck.Test.make ~name:"KKP accepts honest labels on random graphs" ~count:25
    QCheck.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let m = Marker.run (Gen.random_connected st n) in
      Kkp_pls.accepts (Kkp_pls.mark m))

let suite =
  [
    Alcotest.test_case "Example SP scheme" `Quick test_spanning_scheme;
    Alcotest.test_case "Example SP rejects bad components" `Quick test_spanning_rejects_forest;
    Alcotest.test_case "Example NumK scheme" `Quick test_size_scheme;
    Alcotest.test_case "Example EDIAM scheme" `Quick test_height_scheme;
    Alcotest.test_case "KKP accepts correct instances" `Quick test_kkp_accepts;
    Alcotest.test_case "KKP rejects a non-MST" `Quick test_kkp_rejects_non_mst;
    Alcotest.test_case "KKP detects piece corruption" `Quick test_kkp_detects_piece_corruption;
    Alcotest.test_case "log^2 vs log memory separation" `Quick test_memory_separation;
    QCheck_alcotest.to_alcotest qcheck_kkp;
  ]
