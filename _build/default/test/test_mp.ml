open Ssmst_graph
open Ssmst_mp

(* ---------------- the message-passing emulation ---------------- *)

(* a trivial echo protocol: node 0 sends a token around a ring; each node
   forwards it once and counts *)
module Ring_token = struct
  type state = { forwarded : int }
  type message = Token of int

  let init g v =
    if v = 0 then
      (* send towards the neighbour with the larger index *)
      let p = Graph.port_to g 0 1 in
      ({ forwarded = 0 }, [ (p, Token 0) ])
    else ({ forwarded = 0 }, [])

  let on_message g v (s : state) ~port (Token k) =
    ignore port;
    let n = Graph.n g in
    if k >= 3 * n then (s, Mp.nothing)
    else
      let next = (v + 1) mod n in
      ({ forwarded = s.forwarded + 1 }, Mp.send [ (Graph.port_to g v next, Token (k + 1)) ])

  let message_bits (Token k) = Ssmst_sim.Memory.of_nat k
  let state_bits s = Ssmst_sim.Memory.of_nat s.forwarded
end

let test_token_delivery_count () =
  let st = Gen.rng 2801 in
  let g = Gen.ring st 8 in
  let module E = Mp.Emulate (Ring_token) in
  let module Net = Ssmst_sim.Network.Make (E) in
  let net = Net.create g in
  Net.run net Ssmst_sim.Scheduler.Sync ~rounds:300;
  let delivered =
    Array.fold_left (fun acc (s : E.state) -> acc + s.E.delivered) 0 (Net.states net)
  in
  (* token hops exactly 3n+1 times before stopping *)
  Alcotest.(check int) "every hop delivered exactly once" (3 * 8 + 1) delivered;
  Alcotest.(check bool) "network quiescent" true
    (Array.for_all E.quiescent_node (Net.states net))

let test_async_no_duplication () =
  let st = Gen.rng 2802 in
  let g = Gen.ring st 6 in
  let module E = Mp.Emulate (Ring_token) in
  let module Net = Ssmst_sim.Network.Make (E) in
  let net = Net.create g in
  Net.run net (Ssmst_sim.Scheduler.Async_adversarial (Gen.rng 2803)) ~rounds:400;
  let delivered =
    Array.fold_left (fun acc (s : E.state) -> acc + s.E.delivered) 0 (Net.states net)
  in
  Alcotest.(check int) "no duplication under the adversarial daemon" (3 * 6 + 1) delivered

(* ---------------- GHS on message passing ---------------- *)

let test_ghs_mp_families () =
  let st = Gen.rng 2810 in
  List.iter
    (fun g ->
      let r = Ghs_mp.run g in
      Alcotest.(check bool) "GHS-MP computes the MST" true
        (Mst.is_mst g (Graph.plain_weight_fn g) r.Ghs_mp.tree))
    [
      Graph.of_edges ~n:2 [ (0, 1, 5) ];
      Gen.path st 9;
      Gen.ring st 8;
      Gen.star st 10;
      Gen.complete st 8;
      Gen.grid st 3 4;
      Gen.random_connected st 24;
    ]

let test_ghs_mp_message_complexity () =
  (* GHS sends O(m + n log n) messages *)
  let st = Gen.rng 2811 in
  let g = Gen.random_connected st 48 in
  let r = Ghs_mp.run g in
  let n = 48 and m = Graph.num_edges g in
  let bound = 20 * ((2 * m) + (5 * n * Ssmst_sim.Memory.of_nat n)) in
  Alcotest.(check bool)
    (Fmt.str "messages %d within O(m + n log n) = %d" r.Ghs_mp.messages bound)
    true
    (r.Ghs_mp.messages <= bound)

let test_ghs_mp_async () =
  (* quiescence + correctness under the asynchronous daemon *)
  let st = Gen.rng 2812 in
  let g = Gen.random_connected st 16 in
  let module Net = Ghs_mp.Net in
  let net = Net.create g in
  let quiescent net = Array.for_all Ghs_mp.Runner.quiescent_node (Net.states net) in
  let _, reached =
    Net.run_until net (Ssmst_sim.Scheduler.Async_random (Gen.rng 2813)) ~max_rounds:100000
      quiescent
  in
  Alcotest.(check bool) "quiesces asynchronously" true reached

let qcheck_ghs_mp =
  QCheck.Test.make ~name:"event-driven GHS computes the MST on random graphs" ~count:25
    QCheck.(pair (int_range 2 32) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let r = Ghs_mp.run g in
      Mst.is_mst g (Graph.plain_weight_fn g) r.Ghs_mp.tree)

let suite =
  [
    Alcotest.test_case "token delivery (exactly once)" `Quick test_token_delivery_count;
    Alcotest.test_case "no duplication under adversarial daemon" `Quick test_async_no_duplication;
    Alcotest.test_case "GHS-MP on standard families" `Quick test_ghs_mp_families;
    Alcotest.test_case "GHS-MP message complexity" `Quick test_ghs_mp_message_complexity;
    Alcotest.test_case "GHS-MP async quiescence" `Quick test_ghs_mp_async;
    QCheck_alcotest.to_alcotest qcheck_ghs_mp;
  ]
