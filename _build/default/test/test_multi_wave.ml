open Ssmst_graph
open Ssmst_core

let hierarchy_of seed n =
  let st = Gen.rng seed in
  let g = Gen.random_connected st n in
  (g, (Sync_mst.run g).Sync_mst.hierarchy)

(* command: count members from child echoes (+1 per extra singleton) *)
let test_size_aggregation () =
  let _, h = hierarchy_of 2100 40 in
  let mw =
    Multi_wave.run h ~command:(fun f echoes ->
        if echoes = [] then Fragment.size f else List.fold_left ( + ) 0 echoes)
  in
  Array.iter
    (fun (f : Fragment.t) ->
      Alcotest.(check int) "echo = fragment size" (Fragment.size f) mw.Multi_wave.results.(f.index))
    h.frags

let test_child_order () =
  (* a command that records the child count must match the hierarchy *)
  let _, h = hierarchy_of 2101 30 in
  let mw = Multi_wave.run h ~command:(fun _ echoes -> List.length echoes) in
  Array.iter
    (fun (f : Fragment.t) ->
      Alcotest.(check int) "children count" (List.length f.children)
        mw.Multi_wave.results.(f.index))
    h.frags

let test_linear_time () =
  List.iter
    (fun n ->
      let _, h = hierarchy_of (2102 + n) n in
      let mw = Multi_wave.run h ~command:(fun f _ -> Fragment.size f) in
      Alcotest.(check bool)
        (Fmt.str "O(n) rounds: %d for n=%d" mw.Multi_wave.rounds n)
        true
        (Multi_wave.linear_bound h mw))
    [ 8; 32; 128; 512 ]

let test_levels_ordered () =
  (* a level-j wave must observe results from strictly lower levels only:
     command checks its children's levels *)
  let _, h = hierarchy_of 2103 50 in
  let mw =
    Multi_wave.run h ~command:(fun f echoes ->
        List.iter (fun lvl -> if lvl >= f.level then Alcotest.fail "level order") echoes;
        f.level)
  in
  ignore mw

let suite =
  [
    Alcotest.test_case "size aggregation" `Quick test_size_aggregation;
    Alcotest.test_case "child echoes" `Quick test_child_order;
    Alcotest.test_case "linear time (Obs 6.8)" `Quick test_linear_time;
    Alcotest.test_case "level ordering (Obs 6.6)" `Quick test_levels_ordered;
  ]
