open Ssmst_graph
open Ssmst_core

(* Hand-built hierarchy on a 4-node path 0-1-2-3, weights 1,2,3:
   singletons merge pairwise {0,1} and {2,3}, then the whole tree. *)
let setup () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (1, 2, 3); (2, 3, 2) ] in
  let t = Tree.of_parents g [| -1; 0; 1; 2 |] in
  let records =
    [
      (0, 0, [ 0 ], Some (0, 1));
      (0, 1, [ 1 ], Some (1, 0));
      (0, 2, [ 2 ], Some (2, 3));
      (0, 3, [ 3 ], Some (3, 2));
      (1, 0, [ 0; 1 ], Some (1, 2));
      (1, 2, [ 2; 3 ], Some (2, 1));
      (2, 0, [ 0; 1; 2; 3 ], None);
    ]
  in
  (g, t, Fragment.build t records)

let test_build () =
  let _, _, h = setup () in
  Alcotest.(check int) "seven fragments" 7 (Array.length h.frags);
  Alcotest.(check int) "height" 2 h.height;
  Alcotest.(check int) "whole has 4 members" 4 (Fragment.size h.frags.(h.whole))

let test_at_and_levels () =
  let _, _, h = setup () in
  (match Fragment.at h 2 1 with
  | Some f -> Alcotest.(check int) "level-1 fragment of node 2 rooted at 2" 2 f.root
  | None -> Alcotest.fail "expected a level-1 fragment");
  Alcotest.(check (list int)) "levels of node 3" [ 0; 1; 2 ] (Fragment.levels_of h 3);
  Alcotest.(check bool) "no level-3 fragment" true (Fragment.at h 0 3 = None)

let test_well_formed_and_minimal () =
  let g, _, h = setup () in
  Alcotest.(check bool) "well formed" true (Fragment.well_formed h);
  Alcotest.(check bool) "minimal" true (Fragment.minimal h (Graph.plain_weight_fn g));
  Alcotest.(check bool) "implies mst" true (Fragment.implies_mst h (Graph.plain_weight_fn g))

let test_non_minimal_detected () =
  (* same structure, but the level-1 fragments merge over the heavy edge
     while a lighter outgoing edge exists: minimality must fail *)
  let g = Graph.of_edges ~n:4 [ (0, 1, 5); (1, 2, 1); (2, 3, 6); (0, 3, 2) ] in
  let t = Tree.of_parents g [| -1; 0; 1; 2 |] in
  let records =
    [
      (0, 0, [ 0 ], Some (0, 1));
      (0, 1, [ 1 ], Some (1, 0));
      (0, 2, [ 2 ], Some (2, 3));
      (0, 3, [ 3 ], Some (3, 2));
      (1, 0, [ 0; 1 ], Some (1, 2));
      (1, 2, [ 2; 3 ], Some (2, 1));
      (2, 0, [ 0; 1; 2; 3 ], None);
    ]
  in
  let h = Fragment.build t records in
  Alcotest.(check bool) "well formed still" true (Fragment.well_formed h);
  Alcotest.(check bool) "but not minimal" false (Fragment.minimal h (Graph.plain_weight_fn g))

let test_malformed_hierarchies_rejected () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 2) ] in
  let t = Tree.of_parents g [| -1; 0; 1 |] in
  let raises records = try ignore (Fragment.build t records); false with Graph.Malformed _ -> true in
  Alcotest.(check bool) "missing singleton" true
    (raises [ (0, 0, [ 0 ], Some (0, 1)); (1, 0, [ 0; 1; 2 ], None) ]);
  Alcotest.(check bool) "missing whole" true
    (raises [ (0, 0, [ 0 ], Some (0, 1)); (0, 1, [ 1 ], Some (1, 0)); (0, 2, [ 2 ], Some (2, 1)) ]);
  Alcotest.(check bool) "candidate not outgoing" true
    (raises
       [
         (0, 0, [ 0 ], Some (0, 1));
         (0, 1, [ 1 ], Some (1, 0));
         (0, 2, [ 2 ], Some (2, 1));
         (1, 0, [ 0; 1 ], Some (0, 1));
         (2, 0, [ 0; 1; 2 ], None);
       ]);
  Alcotest.(check bool) "level not increasing" true
    (raises
       [
         (0, 0, [ 0 ], Some (0, 1));
         (0, 1, [ 1 ], Some (1, 0));
         (0, 2, [ 2 ], Some (2, 1));
         (0, 0, [ 0; 1 ], Some (1, 2));
         (2, 0, [ 0; 1; 2 ], None);
       ])

let test_ident () =
  let g, _, h = setup () in
  let f = Option.get (Fragment.at h 3 1) in
  Alcotest.(check (pair int int)) "identity = root id + level" (2, 1) (Fragment.ident g f)

let suite =
  [
    Alcotest.test_case "build" `Quick test_build;
    Alcotest.test_case "lookups" `Quick test_at_and_levels;
    Alcotest.test_case "well-formed + minimal" `Quick test_well_formed_and_minimal;
    Alcotest.test_case "non-minimal detected" `Quick test_non_minimal_detected;
    Alcotest.test_case "malformed rejected" `Quick test_malformed_hierarchies_rejected;
    Alcotest.test_case "fragment identity" `Quick test_ident;
  ]
