open Ssmst_graph
open Ssmst_sim
open Ssmst_core

let mk_verifier mode marker =
  let module C = struct
    let marker = marker
    let mode = mode
  end in
  (module Verifier.Make (C) : Protocol.S with type state = Verifier.state)

let run_net mode marker daemon ~rounds =
  let module P = (val mk_verifier mode marker) in
  let module Net = Network.Make (P) in
  let net = Net.create marker.Marker.graph in
  Net.run net daemon ~rounds;
  Net.any_alarm net

let marker_for seed n =
  let st = Gen.rng seed in
  Marker.run (Gen.random_connected st n)

(* soundness: the marker's own output is accepted forever *)
let test_accept_sync () =
  List.iter
    (fun n ->
      let m = marker_for (500 + n) n in
      Alcotest.(check bool) (Fmt.str "no alarm sync n=%d" n) false
        (run_net Verifier.Passive m Scheduler.Sync ~rounds:600))
    [ 2; 3; 5; 9; 16; 33; 64 ]

let test_accept_async () =
  List.iter
    (fun n ->
      let m = marker_for (600 + n) n in
      Alcotest.(check bool) (Fmt.str "no alarm async n=%d" n) false
        (run_net Verifier.Handshake m (Scheduler.Async_random (Gen.rng n)) ~rounds:800))
    [ 2; 5; 16; 40 ]

let test_accept_families () =
  let st = Gen.rng 601 in
  List.iter
    (fun g ->
      let m = Marker.run g in
      Alcotest.(check bool) "no alarm on family" false
        (run_net Verifier.Passive m Scheduler.Sync ~rounds:600))
    [ Gen.path st 24; Gen.star st 24; Gen.grid st 5 5; Gen.complete st 12; Gen.ring st 20 ]

(* completeness: injected label corruption is detected *)
let detection_rounds mode daemon marker seed ~count =
  let module P = (val mk_verifier mode marker) in
  let module Net = Network.Make (P) in
  let net = Net.create marker.Marker.graph in
  (* let the verifier settle first, and make sure it accepts *)
  Net.run net daemon ~rounds:400;
  if Net.any_alarm net then Alcotest.fail "alarm before fault injection";
  let faults = Net.inject_faults net (Gen.rng seed) ~count in
  let dt = Net.detection_time net daemon ~max_rounds:4000 in
  (dt, faults, Net.detection_distance net ~faults)

let test_detect_corruption_sync () =
  let detected = ref 0 and total = 8 in
  for i = 1 to total do
    let m = marker_for (700 + i) 32 in
    match detection_rounds Verifier.Passive Scheduler.Sync m (900 + i) ~count:1 with
    | Some _, _, _ -> incr detected
    | None, _, _ -> ()
  done;
  (* random corruptions can be semantically null (e.g. a train-register
     perturbation absorbed by self-stabilization); the persistent-label
     corruptions must overwhelmingly be caught *)
  Alcotest.(check bool) (Fmt.str "detected %d/%d" !detected total) true (!detected >= 6)

let test_detect_corruption_async () =
  let detected = ref 0 and total = 6 in
  for i = 1 to total do
    let m = marker_for (800 + i) 24 in
    match
      detection_rounds Verifier.Handshake
        (Scheduler.Async_random (Gen.rng (850 + i)))
        m (950 + i) ~count:1
    with
    | Some _, _, _ -> incr detected
    | None, _, _ -> ()
  done;
  Alcotest.(check bool) (Fmt.str "detected %d/%d" !detected total) true (!detected >= 4)

(* a tree that is NOT the MST, with labels crafted by running the honest
   marker pipeline on it, must be rejected (Lemma 8.4) *)
let test_detect_non_mst () =
  let st = Gen.rng 990 in
  let g = Gen.random_connected st 24 in
  let w = Graph.plain_weight_fn g in
  (* build a deliberately non-minimal spanning tree: maximum spanning tree *)
  let flipped =
    Graph.of_edges ~n:(Graph.n g)
      (List.map (fun (u, v, wt) -> (u, v, 1_000_000 - wt)) (Graph.edges g))
  in
  let bad_tree = Mst.prim flipped (Graph.plain_weight_fn flipped) in
  Alcotest.(check bool) "the flipped tree is not the MST" false
    (Mst.edge_set_of_tree bad_tree = List.sort compare (Mst.kruskal g w));
  (* strongest adversary: honest labels for the bad tree, real weights *)
  let bad_on_g =
    Tree.of_parents g
      (Array.init (Graph.n g) (fun v ->
           match Tree.parent bad_tree v with None -> -1 | Some p -> p))
  in
  let forged = Marker.forge g bad_on_g in
  let module C = struct
    let marker = forged
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  let _, detected = Net.run_until net Scheduler.Sync ~max_rounds:4000 Net.any_alarm in
  Alcotest.(check bool) "non-MST rejected" true detected

(* detection distance: alarms appear near the faults (O(f log n) locality) *)
let test_detection_distance () =
  let m = marker_for 1000 64 in
  match detection_rounds Verifier.Passive Scheduler.Sync m 1001 ~count:1 with
  | Some _, _faults, Some d ->
      let bound = 8 * (Memory.of_nat 64 + 1) in
      Alcotest.(check bool) (Fmt.str "distance %d within O(log n)=%d" d bound) true (d <= bound)
  | Some _, _, None -> Alcotest.fail "no alarming node"
  | None, _, _ -> () (* corruption semantically null; nothing to measure *)

(* memory: the verifier state is O(log n) bits per node *)
let test_memory () =
  List.iter
    (fun n ->
      let m = marker_for (1100 + n) n in
      let module P = (val mk_verifier Verifier.Passive m) in
      let module Net = Network.Make (P) in
      let net = Net.create m.Marker.graph in
      Net.run net Scheduler.Sync ~rounds:100;
      let bits = Net.peak_bits net in
      let logn = Memory.of_nat n in
      Alcotest.(check bool)
        (Fmt.str "bits=%d vs c*logn (n=%d)" bits n)
        true
        (bits <= 160 * logn + 400))
    [ 16; 64; 256 ]

let qcheck_accept =
  QCheck.Test.make ~name:"verifier accepts honest marker output" ~count:15
    QCheck.(pair (int_range 2 48) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let m = Marker.run (Gen.random_connected st n) in
      not (run_net Verifier.Passive m Scheduler.Sync ~rounds:500))

let suite =
  [
    Alcotest.test_case "accepts correct instances (sync)" `Quick test_accept_sync;
    Alcotest.test_case "accepts correct instances (async)" `Quick test_accept_async;
    Alcotest.test_case "accepts across families" `Quick test_accept_families;
    Alcotest.test_case "detects corruption (sync)" `Quick test_detect_corruption_sync;
    Alcotest.test_case "detects corruption (async)" `Quick test_detect_corruption_async;
    Alcotest.test_case "rejects a non-MST with forged labels" `Quick test_detect_non_mst;
    Alcotest.test_case "detection distance is local" `Quick test_detection_distance;
    Alcotest.test_case "memory is O(log n)" `Quick test_memory;
    QCheck_alcotest.to_alcotest qcheck_accept;
  ]
