open Ssmst_graph
open Ssmst_core

(* The fixed 18-node Figure 1 / Table 2 example (see bench/main.ml and
   EXPERIMENTS.md).  Locks in the exact Roots table — which reproduces the
   paper's Table 2 row for row — so regressions in SYNC_MST's merge order
   or the marker's string derivation are caught immediately. *)

let fig1_graph () =
  let edges =
    [
      (0, 1, 2); (5, 6, 6); (1, 6, 18); (2, 6, 12); (3, 7, 10); (4, 8, 15);
      (7, 8, 11); (2, 7, 20); (9, 10, 4); (14, 15, 8); (10, 15, 16);
      (11, 16, 3); (12, 17, 7); (12, 13, 14); (11, 12, 17); (10, 11, 21);
      (6, 11, 22);
    ]
  in
  Graph.of_edges ~n:18 edges

(* the paper's Table 2 Roots column, nodes a..r *)
let paper_roots =
  [|
    "10000"; "11000"; "10000"; "1*000"; "1*000"; "10000"; "11110"; "1*100";
    "1*000"; "10000"; "11100"; "11111"; "11000"; "10000"; "10000"; "11000";
    "10000"; "10000";
  |]

let roots_string (l : Labels.t) =
  String.concat ""
    (Array.to_list (Array.map (fun s -> Fmt.str "%a" Labels.pp_rsym s) l.Labels.roots))

let test_roots_table_matches_paper () =
  let m = Marker.run (fig1_graph ()) in
  let labels = Labels.of_hierarchy m.hierarchy in
  Alcotest.(check int) "height 4" 4 m.hierarchy.Fragment.height;
  Array.iteri
    (fun v expected ->
      Alcotest.(check string)
        (Fmt.str "Roots(%c)" (Char.chr (Char.code 'a' + v)))
        expected (roots_string labels.(v)))
    paper_roots

let test_example_is_verified () =
  let g = fig1_graph () in
  let m = Marker.run g in
  Alcotest.(check bool) "the tree is the MST" true
    (Mst.is_mst g (Graph.plain_weight_fn g) m.tree);
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Ssmst_sim.Network.Make (P) in
  let net = Net.create g in
  Net.run net Ssmst_sim.Scheduler.Sync ~rounds:2000;
  Alcotest.(check bool) "verifier accepts" false (Net.any_alarm net)

(* structural highlights Table 2 exhibits: node l is the global root, g has
   the longest root chain among internal nodes, d/e/h/i skip level 1 *)
let test_table2_highlights () =
  let m = Marker.run (fig1_graph ()) in
  let labels = Labels.of_hierarchy m.hierarchy in
  Alcotest.(check int) "l is the root of T" 11 (Tree.root m.tree);
  Alcotest.(check bool) "l roots every level" true
    (Array.for_all (( = ) Labels.R1) labels.(11).Labels.roots);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Fmt.str "node %d skips level 1" v)
        true
        (labels.(v).Labels.roots.(1) = Labels.RStar))
    [ 3; 4; 7; 8 ]

let suite =
  [
    Alcotest.test_case "Roots table = paper's Table 2" `Quick test_roots_table_matches_paper;
    Alcotest.test_case "example instance verifies" `Quick test_example_is_verified;
    Alcotest.test_case "Table 2 structural highlights" `Quick test_table2_highlights;
  ]
