open Ssmst_graph

(* A small fixed graph: path 0-1-2-3 plus chord 0-3. *)
let g () = Graph.of_edges ~n:4 [ (0, 1, 1); (1, 2, 2); (2, 3, 3); (0, 3, 9) ]

let test_of_parents () =
  let t = Tree.of_parents (g ()) [| -1; 0; 1; 2 |] in
  Alcotest.(check int) "root" 0 (Tree.root t);
  Alcotest.(check (option int)) "parent" (Some 1) (Tree.parent t 2);
  Alcotest.(check (list int)) "children" [ 1 ] (Tree.children t 0);
  Alcotest.(check int) "depth" 3 (Tree.depth t 3);
  Alcotest.(check int) "height" 3 (Tree.height t)

let test_components_round_trip () =
  let g = g () in
  let t = Tree.of_parents g [| -1; 0; 1; 2 |] in
  let c = Tree.to_components t in
  let t' = Tree.of_components g c in
  Alcotest.(check int) "same root" (Tree.root t) (Tree.root t');
  Alcotest.(check (list (pair int int)))
    "same edges"
    (List.sort compare (Tree.tree_edges t))
    (List.sort compare (Tree.tree_edges t'))

let test_mutual_pointers () =
  let g = g () in
  (* 0 and 1 point at each other: root goes to the higher-identity one *)
  let c =
    [|
      Some (Graph.port_to g 0 1);
      Some (Graph.port_to g 1 0);
      Some (Graph.port_to g 2 1);
      Some (Graph.port_to g 3 2);
    |]
  in
  let t = Tree.of_components g c in
  Alcotest.(check int) "root is higher id of the pair" 1 (Tree.root t)

let test_non_spanning_rejected () =
  let g = g () in
  let raises c = try ignore (Tree.of_components g c); false with Graph.Malformed _ -> true in
  (* a 2-cycle among 0,1 and another among 2,3 does not span *)
  Alcotest.(check bool) "two mutual pairs rejected" true
    (raises
       [|
         Some (Graph.port_to g 0 1);
         Some (Graph.port_to g 1 0);
         Some (Graph.port_to g 2 3);
         Some (Graph.port_to g 3 2);
       |]);
  Alcotest.(check bool) "two pointerless nodes rejected" true
    (raises [| None; Some (Graph.port_to g 1 0); Some (Graph.port_to g 2 1); None |])

let test_dfs_and_sizes () =
  let g = Graph.of_edges ~n:5 [ (0, 1, 1); (0, 2, 2); (1, 3, 3); (1, 4, 4) ] in
  let t = Tree.of_parents g [| -1; 0; 0; 1; 1 |] in
  Alcotest.(check (list int)) "dfs preorder" [ 0; 1; 3; 4; 2 ] (Tree.dfs_order t);
  Alcotest.(check (array int)) "subtree sizes" [| 5; 3; 1; 1; 1 |] (Tree.subtree_sizes t)

let test_total_weight () =
  let t = Tree.of_parents (g ()) [| -1; 0; 1; 2 |] in
  Alcotest.(check int) "sum of tree weights" 6 (Tree.total_base_weight t)

let qcheck_components_inverse =
  QCheck.Test.make ~name:"to_components/of_components is the identity on trees" ~count:100
    QCheck.(int_range 2 40)
    (fun n ->
      let st = Gen.rng (n * 7 + 1) in
      let g = Gen.random_connected st n in
      let w = Graph.plain_weight_fn g in
      let t = Mst.prim g w in
      let t' = Tree.of_components g (Tree.to_components t) in
      List.sort compare (Tree.tree_edges t) = List.sort compare (Tree.tree_edges t')
      && Tree.root t = Tree.root t')

let suite =
  [
    Alcotest.test_case "of_parents" `Quick test_of_parents;
    Alcotest.test_case "components round trip" `Quick test_components_round_trip;
    Alcotest.test_case "mutual pointers rooting" `Quick test_mutual_pointers;
    Alcotest.test_case "non-spanning rejected" `Quick test_non_spanning_rejected;
    Alcotest.test_case "dfs order and subtree sizes" `Quick test_dfs_and_sizes;
    Alcotest.test_case "total weight" `Quick test_total_weight;
    QCheck_alcotest.to_alcotest qcheck_components_inverse;
  ]
