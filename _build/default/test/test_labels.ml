open Ssmst_graph
open Ssmst_core

let marked_instance seed n =
  let st = Gen.rng seed in
  let g = Gen.random_connected st n in
  let r = Sync_mst.run g in
  let labels = Labels.of_hierarchy r.hierarchy in
  (g, r, labels)

let no_violations vw n =
  List.for_all (fun v -> v = []) (Labels.check_all vw n)

let test_marker_accepted () =
  let _, r, labels = marked_instance 40 30 in
  let vw = Labels.view_of_tree r.tree labels in
  List.iteri
    (fun v bad ->
      if bad <> [] then
        Alcotest.failf "node %d violates %s" v (String.concat "," bad))
    (Labels.check_all vw 30)

let test_marker_accepted_families () =
  let st = Gen.rng 41 in
  List.iter
    (fun g ->
      let r = Sync_mst.run g in
      let labels = Labels.of_hierarchy r.hierarchy in
      let vw = Labels.view_of_tree r.tree labels in
      Alcotest.(check bool) "all nodes accept" true (no_violations vw (Graph.n g)))
    [ Gen.path st 16; Gen.star st 16; Gen.grid st 4 4; Gen.complete st 10 ]

(* Corruption helpers: mutate one entry and expect some node to reject. *)
let expect_rejection mutate =
  let _, r, labels = marked_instance 42 24 in
  mutate labels;
  let vw = Labels.view_of_tree r.tree labels in
  Alcotest.(check bool) "some node rejects" false (no_violations vw 24)

let test_corrupt_roots_zero () =
  expect_rejection (fun labels -> labels.(5).Labels.roots.(0) <- Labels.R0)

let test_corrupt_roots_star () =
  expect_rejection (fun labels ->
      let l = labels.(3) in
      l.Labels.roots.(l.Labels.len - 1) <- Labels.RStar)

let test_corrupt_endp () =
  expect_rejection (fun labels ->
      (* claim an extra endpoint at level 0 at node 7: EPS1 count breaks *)
      labels.(7).Labels.endp.(0) <- Labels.ENone)

let test_corrupt_parents () =
  expect_rejection (fun labels ->
      let l = labels.(2) in
      (* set a spurious parents bit at the top level *)
      l.Labels.parents.(l.Labels.len - 1) <- true)

let test_corrupt_cnt () =
  expect_rejection (fun labels -> labels.(1).Labels.cnt.(0) <- 0)

let test_queries () =
  let _, r, labels = marked_instance 43 20 in
  let vw = Labels.view_of_tree r.tree labels in
  let root = Tree.root r.tree in
  Alcotest.(check bool) "root is top-level fragment root" true
    (Labels.is_frag_root labels.(root) (labels.(root).Labels.len - 1));
  (* every node belongs to a level-0 fragment *)
  for v = 0 to 19 do
    Alcotest.(check bool) "belongs at level 0" true (Labels.belongs labels.(v) 0)
  done;
  (* candidate_edge agrees with the hierarchy *)
  Array.iter
    (fun (f : Fragment.t) ->
      match f.candidate with
      | Some (w, x) -> (
          match Labels.candidate_edge vw w f.level with
          | Some (`Up p) -> Alcotest.(check int) "up edge" x p
          | Some (`Down c) -> Alcotest.(check int) "down edge" x c
          | None -> Alcotest.fail "missing candidate edge")
      | None -> ())
    r.hierarchy.frags

let test_same_fragment_queries () =
  let _, r, labels = marked_instance 44 26 in
  let vw = Labels.view_of_tree r.tree labels in
  let h = r.hierarchy in
  Array.iter
    (fun (f : Fragment.t) ->
      Array.iter
        (fun v ->
          match Tree.parent r.tree v with
          | Some p when Fragment.mem f p && v <> f.root ->
              Alcotest.(check bool) "child sees shared fragment with parent" true
                (Labels.same_fragment_as_parent vw ~node:v f.level)
          | _ -> ())
        f.members)
    h.frags

let qcheck_labels_legal =
  QCheck.Test.make ~name:"marker labels satisfy RS/EPS on random graphs" ~count:40
    QCheck.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let r = Sync_mst.run g in
      let labels = Labels.of_hierarchy r.hierarchy in
      let vw = Labels.view_of_tree r.tree labels in
      ignore g;
      no_violations vw n)

let qcheck_random_corruption_detected =
  QCheck.Test.make ~name:"random single-entry corruptions are detected or harmless" ~count:60
    QCheck.(pair (int_range 4 30) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let r = Sync_mst.run g in
      let labels = Labels.of_hierarchy r.hierarchy in
      (* flip one random roots entry to a random symbol *)
      let v = Random.State.int st n in
      let j = Random.State.int st labels.(v).Labels.len in
      let before = labels.(v).Labels.roots.(j) in
      let sym = [| Labels.R1; Labels.R0; Labels.RStar |].(Random.State.int st 3) in
      labels.(v).Labels.roots.(j) <- sym;
      let vw = Labels.view_of_tree r.tree labels in
      (* either the change is a no-op, or some node rejects *)
      sym = before || not (no_violations vw n))

let suite =
  [
    Alcotest.test_case "marker output accepted" `Quick test_marker_accepted;
    Alcotest.test_case "accepted across families" `Quick test_marker_accepted_families;
    Alcotest.test_case "corrupt roots '0' detected" `Quick test_corrupt_roots_zero;
    Alcotest.test_case "corrupt roots '*' detected" `Quick test_corrupt_roots_star;
    Alcotest.test_case "erased endpoint detected" `Quick test_corrupt_endp;
    Alcotest.test_case "spurious parents bit detected" `Quick test_corrupt_parents;
    Alcotest.test_case "corrupt count detected" `Quick test_corrupt_cnt;
    Alcotest.test_case "label queries" `Quick test_queries;
    Alcotest.test_case "same-fragment queries" `Quick test_same_fragment_queries;
    QCheck_alcotest.to_alcotest qcheck_labels_legal;
    QCheck_alcotest.to_alcotest qcheck_random_corruption_detected;
  ]
