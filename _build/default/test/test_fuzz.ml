open Ssmst_graph
open Ssmst_sim
open Ssmst_core

(* Adversarial fuzzing of the verifier.

   The decisive one-sided oracles:
   - if the corrupted global state no longer represents the MST (or any
     spanning tree), some node must alarm within the detection budget
     (completeness, Lemma 8.4);
   - the honest marker output must never alarm (soundness) — re-checked
     here under the adversarial daemon. *)

let budget n = 400 * (Memory.of_nat n + 2) * (Memory.of_nat n + 2)

let ( ==> ) a b = (not a) || b

let qcheck_component_corruption =
  QCheck.Test.make ~name:"corrupted components: alarm iff the tree breaks" ~count:20
    QCheck.(pair (int_range 8 32) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let m = Marker.run g in
      let module C = struct
        let marker = m
        let mode = Verifier.Passive
      end in
      let module P = Verifier.Make (C) in
      let module Net = Network.Make (P) in
      let net = Net.create g in
      Net.run net Scheduler.Sync ~rounds:(4 * Verifier.window_bound m.labels.(0));
      if Net.any_alarm net then false
      else begin
        (* corrupt component pointers at up to 3 nodes *)
        let rng = Gen.rng (seed + 1) in
        let k = 1 + Random.State.int rng 3 in
        let victims = ref [] in
        for _ = 1 to k do
          let v = Random.State.int rng n in
          if not (List.mem v !victims) then begin
            victims := v :: !victims;
            let s = Net.state net v in
            let deg = Graph.degree g v in
            let comp_port =
              if Random.State.bool rng then None else Some (Random.State.int rng deg)
            in
            Net.set_state net v
              { s with Verifier.label = { s.Verifier.label with Marker.comp_port } }
          end
        done;
        (* ground truth: do the claimed components still represent the MST? *)
        let comp =
          Array.init n (fun v -> (Net.state net v).Verifier.label.Marker.comp_port)
        in
        let still_mst =
          match Tree.of_components g comp with
          | t -> Mst.is_mst g (Graph.plain_weight_fn g) t
          | exception Graph.Malformed _ -> false
        in
        let detected = Net.detection_time net Scheduler.Sync ~max_rounds:(budget n) <> None in
        (* completeness: broken structure must be detected.  (A corruption
           that happens to keep the same MST may or may not alarm: the
           labels can still disagree with the new rooting.) *)
        (not still_mst) ==> detected
      end)

let qcheck_weight_drift =
  QCheck.Test.make ~name:"re-priced edges: a stale MST is always detected" ~count:20
    QCheck.(pair (int_range 8 32) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let m = Marker.run g in
      (* re-price one random edge *)
      let rng = Gen.rng (seed + 1) in
      let edges = Graph.edges g in
      let u0, v0, w0 = List.nth edges (Random.State.int rng (List.length edges)) in
      let delta = Random.State.int rng (2 * w0 + 2) - w0 in
      let g' =
        Graph.reweight g (fun u v w ->
            if (min u v, max u v) = (u0, v0) then max 0 (w + delta) else w)
      in
      let still_mst = Mst.is_mst g' (Graph.plain_weight_fn g') m.Marker.tree in
      let module C = struct
        let marker = m
        let mode = Verifier.Passive
      end in
      let module P = Verifier.Make (C) in
      let module Net = Network.Make (P) in
      let net = Net.create g' in
      let detected = Net.detection_time net Scheduler.Sync ~max_rounds:(budget n) <> None in
      if still_mst then true (* either verdict is legitimate for true statements *)
      else detected)

let qcheck_soundness_adversarial_daemon =
  QCheck.Test.make ~name:"soundness holds under the adversarial daemon" ~count:10
    QCheck.(pair (int_range 4 24) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let m = Marker.run g in
      let module C = struct
        let marker = m
        let mode = Verifier.Handshake
      end in
      let module P = Verifier.Make (C) in
      let module Net = Network.Make (P) in
      let net = Net.create g in
      Net.run net (Scheduler.Async_adversarial (Gen.rng (seed + 1))) ~rounds:600;
      not (Net.any_alarm net))

let qcheck_forged_trees_rejected =
  QCheck.Test.make ~name:"every forged non-MST spanning tree is rejected" ~count:12
    QCheck.(pair (int_range 6 24) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      (* a random spanning tree via randomly-permuted Kruskal *)
      let shuffled =
        let a = Array.of_list (Graph.edges g) in
        for i = Array.length a - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        Array.to_list a
      in
      let dsu = Dsu.create n in
      let parent = Array.make n (-1) in
      List.iter
        (fun (u, v, _) ->
          if Dsu.union dsu u v then begin
            let rec flip x prev =
              let p = parent.(x) in
              parent.(x) <- prev;
              if p >= 0 then flip p x
            in
            flip u v
          end)
        shuffled;
      let t = Tree.of_parents g parent in
      let w = Graph.plain_weight_fn g in
      if Mst.is_mst g w t then true (* got the real MST: nothing to reject *)
      else begin
        let forged = Marker.forge g t in
        let module C = struct
          let marker = forged
          let mode = Verifier.Passive
        end in
        let module P = Verifier.Make (C) in
        let module Net = Network.Make (P) in
        let net = Net.create g in
        Net.detection_time net Scheduler.Sync ~max_rounds:(budget n) <> None
      end)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_component_corruption;
    QCheck_alcotest.to_alcotest qcheck_weight_drift;
    QCheck_alcotest.to_alcotest qcheck_soundness_adversarial_daemon;
    QCheck_alcotest.to_alcotest qcheck_forged_trees_rejected;
  ]
