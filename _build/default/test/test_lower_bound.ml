open Ssmst_core
open Ssmst_pls

let test_positive_instances_accepted () =
  List.iter
    (fun h ->
      let d = Lower_bound.measure ~seed:(2000 + h) ~h ~tau:0 ~positive:true in
      Alcotest.(check bool) "no detection on a positive instance" true
        (d.Lower_bound.detection_rounds = None))
    [ 2; 3; 4 ]

let test_negative_instances_rejected () =
  List.iter
    (fun h ->
      let d = Lower_bound.measure ~seed:(2010 + h) ~h ~tau:0 ~positive:false in
      match d.Lower_bound.detection_rounds with
      | Some _ -> ()
      | None -> Alcotest.failf "negative instance h=%d not detected" h)
    [ 2; 3; 4 ]

let test_subdivided_negative_rejected () =
  let d = Lower_bound.measure ~seed:2020 ~h:3 ~tau:1 ~positive:false in
  match d.Lower_bound.detection_rounds with
  | Some _ -> ()
  | None -> Alcotest.fail "subdivided negative instance not detected"

let test_kkp_instant_detection () =
  let d, rejected = Kkp_pls.measure_lower_bound ~seed:2030 ~h:3 ~tau:0 ~positive:false in
  Alcotest.(check bool) "kkp rejects" true rejected;
  Alcotest.(check (option int)) "in one round" (Some 1) d.Lower_bound.detection_rounds

let test_kkp_accepts_positive () =
  let _, rejected = Kkp_pls.measure_lower_bound ~seed:2031 ~h:3 ~tau:0 ~positive:true in
  Alcotest.(check bool) "kkp accepts positive" false rejected

(* the trade-off: the compact scheme trades detection time for memory.  On
   the same negative instance, KKP detects in exactly 1 round while the
   compact verifier needs strictly more (it must wait for the trains); the
   memory side of the trade-off (Θ(log² n) vs O(log n) label growth) is
   asserted on random graphs in Test_pls.test_memory_separation, because on
   the hypertree family per-node fragment counts are constant. *)
let test_tradeoff_shape () =
  let compact = Lower_bound.measure ~seed:2040 ~h:4 ~tau:0 ~positive:false in
  let _, kkp_rejects = Kkp_pls.measure_lower_bound ~seed:2040 ~h:4 ~tau:0 ~positive:false in
  Alcotest.(check bool) "KKP detects in one round" true kkp_rejects;
  match compact.Lower_bound.detection_rounds with
  | Some t -> Alcotest.(check bool) "compact detection needs > 1 round" true (t > 1)
  | None -> Alcotest.fail "compact scheme failed to detect"

let suite =
  [
    Alcotest.test_case "positive instances accepted" `Quick test_positive_instances_accepted;
    Alcotest.test_case "negative instances rejected" `Quick test_negative_instances_rejected;
    Alcotest.test_case "subdivided negatives rejected" `Slow test_subdivided_negative_rejected;
    Alcotest.test_case "KKP detects instantly" `Quick test_kkp_instant_detection;
    Alcotest.test_case "KKP accepts positives" `Quick test_kkp_accepts_positive;
    Alcotest.test_case "time/memory trade-off" `Quick test_tradeoff_shape;
  ]
