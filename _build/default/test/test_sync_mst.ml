open Ssmst_graph
open Ssmst_core

let check_is_mst g (r : Sync_mst.result) =
  let w = Graph.plain_weight_fn g in
  Alcotest.(check bool) "output is the MST" true (Mst.is_mst g w r.tree)

let test_tiny () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 7) ] in
  let r = Sync_mst.run g in
  check_is_mst g r;
  Alcotest.(check int) "one phase" 1 r.phases

let test_triangle () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 2); (0, 2, 3) ] in
  let r = Sync_mst.run g in
  check_is_mst g r

let test_families () =
  let st = Gen.rng 30 in
  List.iter
    (fun g -> check_is_mst g (Sync_mst.run g))
    [
      Gen.path st 17;
      Gen.ring st 16;
      Gen.star st 20;
      Gen.complete st 12;
      Gen.grid st 4 5;
      Gen.binary_tree st 15;
      Gen.random_connected st 40;
    ]

let test_hierarchy_valid () =
  let st = Gen.rng 31 in
  let g = Gen.random_connected st 32 in
  let r = Sync_mst.run g in
  let w = Graph.plain_weight_fn g in
  Alcotest.(check bool) "hierarchy well formed" true (Fragment.well_formed r.hierarchy);
  Alcotest.(check bool) "hierarchy minimal" true (Fragment.minimal r.hierarchy w);
  Alcotest.(check bool) "hierarchy height is logarithmic" true
    (r.hierarchy.height <= 1 + Ssmst_sim.Memory.of_nat 32)

let test_linear_time () =
  (* rounds must scale linearly: measure the ratio rounds/n over a sweep *)
  let st = Gen.rng 32 in
  let ratio n =
    let g = Gen.random_connected st n in
    let r = Sync_mst.run g in
    float_of_int r.rounds /. float_of_int n
  in
  let r64 = ratio 64 and r256 = ratio 256 in
  Alcotest.(check bool) "rounds/n bounded (O(n) time)" true (r256 <= 2.5 *. r64 +. 50.)

let test_memory_logarithmic () =
  let st = Gen.rng 33 in
  let g = Gen.random_connected st 128 in
  let r = Sync_mst.run g in
  (* a handful of O(log n) fields: comfortably under, say, 40 * log2 n *)
  Alcotest.(check bool) "peak bits O(log n)" true
    (r.peak_bits <= 40 * Ssmst_sim.Memory.of_nat 128)

let test_fragment_sizes () =
  (* Lemma 4.1: a level-i fragment has at least 2^i members *)
  let st = Gen.rng 34 in
  let g = Gen.random_connected st 50 in
  let r = Sync_mst.run g in
  Array.iter
    (fun (f : Fragment.t) ->
      Alcotest.(check bool) "size >= 2^level" true (Fragment.size f >= 1 lsl min f.level 20
        || f.index = r.hierarchy.whole))
    r.hierarchy.frags

let qcheck_sync_mst =
  QCheck.Test.make ~name:"SYNC_MST computes the unique MST on random graphs" ~count:60
    QCheck.(pair (int_range 2 48) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let r = Sync_mst.run g in
      Mst.is_mst g (Graph.plain_weight_fn g) r.tree
      && Fragment.implies_mst r.hierarchy (Graph.plain_weight_fn g))

let suite =
  [
    Alcotest.test_case "two nodes" `Quick test_tiny;
    Alcotest.test_case "triangle" `Quick test_triangle;
    Alcotest.test_case "standard families" `Quick test_families;
    Alcotest.test_case "hierarchy validity" `Quick test_hierarchy_valid;
    Alcotest.test_case "linear time shape" `Slow test_linear_time;
    Alcotest.test_case "logarithmic memory" `Quick test_memory_logarithmic;
    Alcotest.test_case "fragment growth (Lemma 4.1)" `Quick test_fragment_sizes;
    QCheck_alcotest.to_alcotest qcheck_sync_mst;
  ]
