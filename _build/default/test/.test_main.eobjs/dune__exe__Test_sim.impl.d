test/test_sim.ml: Alcotest Array Dist Gen Graph List Memory Network Random Scheduler Ssmst_graph Ssmst_sim
