test/test_fragment.ml: Alcotest Array Fragment Graph Option Ssmst_core Ssmst_graph Tree
