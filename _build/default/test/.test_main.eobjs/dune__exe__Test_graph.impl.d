test/test_graph.ml: Alcotest Gen Graph List QCheck QCheck_alcotest Ssmst_graph Weight
