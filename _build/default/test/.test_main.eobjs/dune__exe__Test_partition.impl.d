test/test_partition.ml: Alcotest Array Fmt Fragment Gen Graph Int List Partition Pieces QCheck QCheck_alcotest Ssmst_core Ssmst_graph Sync_mst
