test/test_pls.ml: Alcotest Array Fmt Gen Graph Kkp_pls List Marker Mst Pieces QCheck QCheck_alcotest Simple_pls Ssmst_core Ssmst_graph Ssmst_pls Tree Weight
