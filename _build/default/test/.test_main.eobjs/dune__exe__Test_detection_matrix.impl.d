test/test_detection_matrix.ml: Alcotest Array Fragment Gen Graph Labels List Marker Network Partition Pieces Scheduler Ssmst_core Ssmst_graph Ssmst_sim Verifier Weight
