test/test_baselines.ml: Alcotest Array Blin Fmt Gen Ghs Graph Higham_liang List Mst QCheck QCheck_alcotest Ssmst_baselines Ssmst_core Ssmst_graph Ssmst_sim Tree
