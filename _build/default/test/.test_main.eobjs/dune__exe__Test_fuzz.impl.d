test/test_fuzz.ml: Array Dsu Gen Graph List Marker Memory Mst Network QCheck QCheck_alcotest Random Scheduler Ssmst_core Ssmst_graph Ssmst_sim Tree Verifier
