test/test_multi_wave.ml: Alcotest Array Fmt Fragment Gen List Multi_wave Ssmst_core Ssmst_graph Sync_mst
