test/test_fig1.ml: Alcotest Array Char Fmt Fragment Graph Labels List Marker Mst Ssmst_core Ssmst_graph Ssmst_sim String Tree Verifier
