test/test_protocols.ml: Alcotest Datalink Gen Graph Int List QCheck QCheck_alcotest Ss_bfs Ssmst_graph Ssmst_protocols Ssmst_sim Tree Wave_echo
