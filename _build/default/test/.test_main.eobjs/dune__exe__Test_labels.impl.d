test/test_labels.ml: Alcotest Array Fragment Gen Graph Labels List QCheck QCheck_alcotest Random Ssmst_core Ssmst_graph String Sync_mst Tree
