test/test_gen.ml: Alcotest Array Gen Graph List Mst QCheck QCheck_alcotest Ssmst_graph Tree
