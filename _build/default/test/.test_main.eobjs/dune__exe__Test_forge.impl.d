test/test_forge.ml: Alcotest Array Fmt Fragment Fun Gen Graph Labels List Marker Mst Network Partition QCheck QCheck_alcotest Scheduler Ssmst_core Ssmst_graph Ssmst_sim Tree Verifier
