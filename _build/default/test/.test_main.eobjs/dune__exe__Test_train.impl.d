test/test_train.ml: Alcotest Array Fmt Fragment Gen Graph Hashtbl Labels List Marker Partition Pieces Ssmst_core Ssmst_graph Train Tree
