test/test_kkp_protocol.ml: Alcotest Fmt Gen Kkp_pls Kkp_protocol List Marker Memory Network Protocol Scheduler Ssmst_core Ssmst_graph Ssmst_pls Ssmst_sim
