test/test_dist_wave.ml: Alcotest Array Dist_wave Fmt Gen Graph Mst Network Scheduler Ssmst_graph Ssmst_protocols Ssmst_sim Tree Wave_echo
