test/test_verifier.ml: Alcotest Array Fmt Gen Graph List Marker Memory Mst Network Protocol QCheck QCheck_alcotest Scheduler Ssmst_core Ssmst_graph Ssmst_sim Tree Verifier
