test/test_tree.ml: Alcotest Gen Graph List Mst QCheck QCheck_alcotest Ssmst_graph Tree
