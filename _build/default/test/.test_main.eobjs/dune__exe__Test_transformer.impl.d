test/test_transformer.ml: Alcotest Fmt Gen Graph List Mst Ssmst_core Ssmst_graph Ssmst_sim Transformer Verifier
