test/test_weight.ml: Alcotest QCheck QCheck_alcotest Ssmst_graph Weight
