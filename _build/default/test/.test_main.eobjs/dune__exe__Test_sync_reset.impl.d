test/test_sync_reset.ml: Alcotest Array Fmt Gen Graph Memory Network Reset Scheduler Ssmst_graph Ssmst_protocols Ssmst_sim Synchronizer
