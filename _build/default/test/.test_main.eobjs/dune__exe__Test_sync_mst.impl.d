test/test_sync_mst.ml: Alcotest Array Fragment Gen Graph List Mst QCheck QCheck_alcotest Ssmst_core Ssmst_graph Ssmst_sim Sync_mst
