test/test_lower_bound.ml: Alcotest Kkp_pls List Lower_bound Ssmst_core Ssmst_pls
