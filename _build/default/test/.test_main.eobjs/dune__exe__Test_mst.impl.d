test/test_mst.ml: Alcotest Array Fun Gen Graph List Mst QCheck QCheck_alcotest Random Ssmst_graph Tree
