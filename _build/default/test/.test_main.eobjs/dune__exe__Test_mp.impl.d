test/test_mp.ml: Alcotest Array Fmt Gen Ghs_mp Graph List Mp Mst QCheck QCheck_alcotest Ssmst_graph Ssmst_mp Ssmst_sim
