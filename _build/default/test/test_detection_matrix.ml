open Ssmst_graph
open Ssmst_sim
open Ssmst_core

(* Completeness matrix: each archetype of semantic corruption, applied at a
   node where it is live, must be detected.  Structural archetypes are
   caught by the 1-round checks; piece archetypes only by the train-borne
   comparisons. *)

let drive seed n mutate =
  let st = Gen.rng seed in
  let g = Gen.random_connected st n in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  Net.run net Scheduler.Sync ~rounds:(4 * Verifier.window_bound m.labels.(0));
  if Net.any_alarm net then `Pre_alarm
  else begin
    let mutated = ref false in
    for v = 0 to n - 1 do
      if not !mutated then
        match mutate g m v (Net.state net v) with
        | Some s' ->
            Net.set_state net v s';
            mutated := true
        | None -> ()
    done;
    if not !mutated then `No_target
    else
      match Net.detection_time net Scheduler.Sync ~max_rounds:100000 with
      | Some dt -> `Detected dt
      | None -> `Missed
  end

(* a live stored piece at node v, if any: one whose fragment intersects the
   part carrying it *)
let live_piece (m : Marker.t) v =
  let g = m.graph in
  let l = m.labels.(v) in
  let fragment_of (pc : Pieces.t) =
    Array.to_list m.hierarchy.Fragment.frags
    |> List.find_opt (fun (f : Fragment.t) ->
           f.Fragment.level = pc.Pieces.level && Graph.id g f.Fragment.root = pc.Pieces.root_id)
  in
  let try_part which (pl : Partition.node_part_label) part_ix =
    let part = m.assignment.Partition.parts.(part_ix) in
    let found = ref None in
    Array.iteri
      (fun k (pc : Pieces.t) ->
        if !found = None then
          match fragment_of pc with
          | Some f when List.exists (fun u -> Fragment.mem f u) part.Partition.members ->
              found := Some (which, k, pc)
          | _ -> ())
      pl.Partition.own;
    !found
  in
  match try_part `Top l.Marker.top m.assignment.Partition.top_of.(v) with
  | Some x -> Some x
  | None -> try_part `Bottom l.Marker.bot m.assignment.Partition.bot_of.(v)

let mutate_piece f g m v (s : Verifier.state) =
  ignore g;
  match live_piece m v with
  | None -> None
  | Some (which, k, pc) ->
      let bump (pl : Partition.node_part_label) =
        let own = Array.copy pl.Partition.own in
        own.(k) <- f pc;
        { pl with Partition.own = own }
      in
      let label =
        match which with
        | `Top -> { s.Verifier.label with Marker.top = bump s.Verifier.label.Marker.top }
        | `Bottom -> { s.Verifier.label with Marker.bot = bump s.Verifier.label.Marker.bot }
      in
      Some { s with Verifier.label = label; cmp = Verifier.cmp_init; alarm = false }

let expect_detected name result =
  match result with
  | `Detected _ -> ()
  | `Pre_alarm -> Alcotest.failf "%s: alarm before corruption" name
  | `No_target -> Alcotest.failf "%s: no live target found" name
  | `Missed -> Alcotest.failf "%s: corruption not detected" name

let test_weight_increase () =
  expect_detected "weight+"
    (drive 3100 28
       (mutate_piece (fun pc ->
            { pc with Pieces.weight = { pc.Pieces.weight with Weight.base = pc.Pieces.weight.Weight.base + 3 } })))

let test_weight_decrease () =
  expect_detected "weight-"
    (drive 3101 28
       (mutate_piece (fun pc ->
            { pc with Pieces.weight = { pc.Pieces.weight with Weight.base = max 0 (pc.Pieces.weight.Weight.base - 3) } })))

let test_root_id_swap () =
  expect_detected "root-id"
    (drive 3102 28 (mutate_piece (fun pc -> { pc with Pieces.root_id = pc.Pieces.root_id + 7777 })))

let test_level_shift () =
  expect_detected "level"
    (drive 3103 28 (mutate_piece (fun pc -> { pc with Pieces.level = pc.Pieces.level + 1 })))

let test_endp_erasure () =
  (* erase a real endpoint marking: EPS1's count check fires in one round *)
  expect_detected "endp-erase"
    (drive 3104 28 (fun _ _ _ (s : Verifier.state) ->
         let l = s.Verifier.label in
         let strings = l.Marker.strings in
         let j =
           Array.to_list strings.Labels.endp
           |> List.mapi (fun j e -> (j, e))
           |> List.find_opt (fun (_, e) -> e = Labels.Up || e = Labels.Down)
         in
         match j with
         | None -> None
         | Some (j, _) ->
             let endp = Array.copy strings.Labels.endp in
             endp.(j) <- Labels.ENone;
             Some
               {
                 s with
                 Verifier.label =
                   { l with Marker.strings = { strings with Labels.endp } };
                 alarm = false;
               }))

let test_sp_depth_shift () =
  expect_detected "sp-depth"
    (drive 3105 28 (fun _ _ v (s : Verifier.state) ->
         if v <> 0 then None
         else
           Some
             {
               s with
               Verifier.label = { s.Verifier.label with Marker.sp_depth = s.Verifier.label.Marker.sp_depth + 5 };
               alarm = false;
             }))

let suite =
  [
    Alcotest.test_case "piece weight increased" `Quick test_weight_increase;
    Alcotest.test_case "piece weight decreased" `Quick test_weight_decrease;
    Alcotest.test_case "piece root identity swapped" `Quick test_root_id_swap;
    Alcotest.test_case "piece level shifted" `Quick test_level_shift;
    Alcotest.test_case "endpoint marking erased" `Quick test_endp_erasure;
    Alcotest.test_case "SP depth shifted" `Quick test_sp_depth_shift;
  ]
