open Ssmst_graph

let triangle () = Graph.of_edges ~n:3 [ (0, 1, 5); (1, 2, 3); (0, 2, 7) ]

let test_basic () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.num_edges g);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  Alcotest.(check int) "weight 0-1" 5 (Graph.base_weight g 0 1);
  Alcotest.(check int) "weight symmetric" 5 (Graph.base_weight g 1 0);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g 1 2);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_ports () =
  let g = triangle () in
  let p = Graph.port_to g 0 2 in
  Alcotest.(check int) "port round trip" 2 (Graph.peer_at g 0 p);
  (* ports at the two endpoints are independent *)
  let p01 = Graph.port_to g 0 1 and p10 = Graph.port_to g 1 0 in
  Alcotest.(check int) "peer via port" 1 (Graph.peer_at g 0 p01);
  Alcotest.(check int) "peer via reverse port" 0 (Graph.peer_at g 1 p10)

let test_malformed () =
  let raises f = try ignore (f ()); false with Graph.Malformed _ -> true in
  Alcotest.(check bool) "self loop" true (raises (fun () -> Graph.of_edges ~n:2 [ (0, 0, 1) ]));
  Alcotest.(check bool) "parallel" true
    (raises (fun () -> Graph.of_edges ~n:2 [ (0, 1, 1); (1, 0, 2) ]));
  Alcotest.(check bool) "out of range" true
    (raises (fun () -> Graph.of_edges ~n:2 [ (0, 5, 1) ]));
  Alcotest.(check bool) "duplicate ids" true
    (raises (fun () -> Graph.of_edges ~ids:[| 4; 4 |] ~n:2 [ (0, 1, 1) ]))

let test_ids () =
  let g = Graph.of_edges ~ids:[| 10; 20; 30 |] ~n:3 [ (0, 1, 1); (1, 2, 2) ] in
  Alcotest.(check int) "identity" 20 (Graph.id g 1);
  Alcotest.(check int) "node_of_id" 2 (Graph.node_of_id g 30)

let test_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 2) ] in
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g)

let test_weight_fn () =
  let g = triangle () in
  let wt = Graph.weight_fn g ~in_tree:(fun u v -> (min u v, max u v) = (0, 1)) in
  let wp = Graph.plain_weight_fn g in
  Alcotest.(check bool) "tree edge lighter than same-base non-tree" true
    (Weight.compare (wt 0 1) (wp 0 1) < 0);
  Alcotest.(check bool) "distinct under plain fn" false (Weight.equal (wp 0 1) (wp 1 2))

let qcheck_fold_edges =
  QCheck.Test.make ~name:"fold_edges counts each edge once" ~count:100
    QCheck.(int_range 2 40)
    (fun n ->
      let st = Gen.rng n in
      let g = Gen.random_connected st n in
      Graph.num_edges g = List.length (Graph.edges g))

let suite =
  [
    Alcotest.test_case "basic accessors" `Quick test_basic;
    Alcotest.test_case "port numbering" `Quick test_ports;
    Alcotest.test_case "malformed inputs rejected" `Quick test_malformed;
    Alcotest.test_case "custom identities" `Quick test_ids;
    Alcotest.test_case "disconnected detection" `Quick test_disconnected;
    Alcotest.test_case "weight functions" `Quick test_weight_fn;
    QCheck_alcotest.to_alcotest qcheck_fold_edges;
  ]
