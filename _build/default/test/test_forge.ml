open Ssmst_graph
open Ssmst_sim
open Ssmst_core

(* Marker.forge produces, for an arbitrary spanning tree, the labels an
   honest marker would compute if that tree were the MST.  The sharp
   property: every *structural* check passes on a forged instance (the
   hierarchy is well-formed, the strings legal, the partitions consistent)
   — only the minimality comparisons C1/C2 can tell truth from forgery.
   This isolates exactly where Lemma 8.4's power lives. *)

let non_mst_instance seed n =
  let st = Gen.rng seed in
  let g = Gen.random_connected st n in
  let flipped =
    Graph.of_edges ~n (List.map (fun (u, v, w) -> (u, v, 1_000_000 - w)) (Graph.edges g))
  in
  let bad = Mst.prim flipped (Graph.plain_weight_fn flipped) in
  let bad_on_g =
    Tree.of_parents g
      (Array.init n (fun v -> match Tree.parent bad v with None -> -1 | Some p -> p))
  in
  (g, bad_on_g)

let test_forged_structurally_clean () =
  let g, bad = non_mst_instance 3300 26 in
  let forged = Marker.forge g bad in
  (* the forged hierarchy is well-formed (P1 holds) but not minimal (P2
     fails): precisely the Lemma 5.1 split *)
  Alcotest.(check bool) "forged hierarchy well-formed" true
    (Fragment.well_formed forged.Marker.hierarchy);
  Alcotest.(check bool) "forged hierarchy NOT minimal" false
    (Fragment.minimal forged.Marker.hierarchy (Graph.plain_weight_fn g));
  (* the strings are RS/EPS-legal *)
  let strings = Array.map (fun (l : Marker.node_label) -> l.Marker.strings) forged.Marker.labels in
  let vw = Labels.view_of_tree forged.Marker.tree strings in
  Alcotest.(check bool) "forged strings legal" true
    (List.for_all (fun v -> Labels.check_node vw v = []) (List.init 26 Fun.id));
  (* the partitions satisfy their lemmas *)
  Alcotest.(check bool) "lemma 6.4 on forged" true
    (Partition.lemma_6_4 forged.Marker.assignment ~n:26);
  Alcotest.(check bool) "lemma 6.5 on forged" true (Partition.lemma_6_5 forged.Marker.assignment)

let test_forged_structural_checks_pass () =
  (* the verifier's 1-round structural checks accept the forged instance at
     every node; only the train-borne C1/C2 reject it later *)
  let g, bad = non_mst_instance 3301 24 in
  let forged = Marker.forge g bad in
  let module C = struct
    let marker = forged
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  for v = 0 to 23 do
    let bad_checks = P.diagnose g v (Net.state net v) (Net.state net) in
    Alcotest.(check (list string)) (Fmt.str "structural checks at %d" v) [] bad_checks
  done;
  (* ... and yet the instance is rejected once the trains run *)
  let detected = Net.detection_time net Scheduler.Sync ~max_rounds:100000 in
  Alcotest.(check bool) "rejected by C1/C2" true (detected <> None)

let test_forge_of_true_mst_accepted () =
  (* forging the *actual* MST must produce an accepted instance *)
  let st = Gen.rng 3302 in
  let g = Gen.random_connected st 22 in
  let mst = Mst.prim g (Graph.plain_weight_fn g) in
  let forged = Marker.forge g mst in
  let module C = struct
    let marker = forged
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  Net.run net Scheduler.Sync ~rounds:2000;
  Alcotest.(check bool) "true MST forge accepted" false (Net.any_alarm net)

let qcheck_forge_split =
  QCheck.Test.make ~name:"forgeries are always well-formed, minimal iff MST" ~count:20
    QCheck.(pair (int_range 4 28) (int_range 0 10000))
    (fun (n, seed) ->
      let g, bad = non_mst_instance seed n in
      let forged = Marker.forge g bad in
      let w = Graph.plain_weight_fn g in
      Fragment.well_formed forged.Marker.hierarchy
      && Fragment.minimal forged.Marker.hierarchy w = Mst.is_mst g w forged.Marker.tree)

let suite =
  [
    Alcotest.test_case "forged instances are structurally clean" `Quick test_forged_structurally_clean;
    Alcotest.test_case "1-round checks pass, C1/C2 reject" `Quick test_forged_structural_checks_pass;
    Alcotest.test_case "forging the true MST is accepted" `Quick test_forge_of_true_mst_accepted;
    QCheck_alcotest.to_alcotest qcheck_forge_split;
  ]
