open Ssmst_graph
open Ssmst_core

let random_graph seed n =
  let st = Gen.rng seed in
  Gen.random_connected st n

let test_stabilizes_and_outputs_mst () =
  List.iter
    (fun n ->
      let g = random_graph (1900 + n) n in
      let t = Transformer.create g in
      Alcotest.(check bool) (Fmt.str "output is MST n=%d" n) true
        (Mst.is_mst g (Graph.plain_weight_fn g) (Transformer.tree t));
      Alcotest.(check int) "one construction" 1 t.Transformer.reconstructions)
    [ 2; 5; 16; 48 ]

let test_linear_stabilization () =
  (* O(n) time: stabilization rounds per node bounded across a sweep *)
  let per_node n =
    let g = random_graph (1901 + n) n in
    let t = Transformer.create g in
    float_of_int (Transformer.stabilization_rounds t) /. float_of_int n
  in
  let r64 = per_node 64 and r256 = per_node 256 in
  Alcotest.(check bool)
    (Fmt.str "stabilization O(n): %.1f vs %.1f rounds/node" r64 r256)
    true
    (r256 <= 2.5 *. r64 +. 30.)

let test_quiescent_when_correct () =
  let g = random_graph 1902 24 in
  let t = Transformer.create g in
  Transformer.advance t ~rounds:500;
  Alcotest.(check int) "no spurious reconstruction" 1 t.Transformer.reconstructions

let test_detects_and_recovers () =
  let g = random_graph 1903 32 in
  let t = Transformer.create g in
  Transformer.advance t ~rounds:300;
  let _faults = Transformer.inject_faults t (Gen.rng 1904) ~count:2 in
  Transformer.advance t ~rounds:4000;
  (* either the faults were semantically null, or a reconstruction happened
     and the output is the MST again *)
  Alcotest.(check bool) "output is the MST after recovery" true
    (Mst.is_mst g (Graph.plain_weight_fn g) (Transformer.tree t));
  Transformer.advance t ~rounds:300;
  let spurious =
    List.exists
      (function Transformer.Detected _ -> false | _ -> false)
      t.Transformer.history
  in
  Alcotest.(check bool) "no alarm after recovery" false spurious

let test_detection_recorded () =
  (* force detectable faults until one registers, then check bookkeeping *)
  let g = random_graph 1905 32 in
  let t = Transformer.create g in
  Transformer.advance t ~rounds:300;
  let rec try_fault i =
    if i > 6 then ()
    else begin
      ignore (Transformer.inject_faults t (Gen.rng (1906 + i)) ~count:1);
      Transformer.advance t ~rounds:4000;
      if t.Transformer.reconstructions < 2 then try_fault (i + 1)
    end
  in
  try_fault 0;
  Alcotest.(check bool) "a detection was recorded" true (t.Transformer.reconstructions >= 2);
  let detection =
    List.find_opt (function Transformer.Detected _ -> true | _ -> false) t.Transformer.history
  in
  (match detection with
  | Some (Transformer.Detected { rounds; _ }) ->
      (* detection time O(log² n): generous constant on n = 32 *)
      Alcotest.(check bool) (Fmt.str "detection in %d rounds" rounds) true (rounds <= 3000)
  | _ -> Alcotest.fail "no Detected event");
  Alcotest.(check bool) "output is the MST" true
    (Mst.is_mst g (Graph.plain_weight_fn g) (Transformer.tree t))

let test_async_mode () =
  let g = random_graph 1907 20 in
  let t =
    Transformer.create ~mode:Verifier.Handshake
      ~daemon:(Ssmst_sim.Scheduler.Async_random (Gen.rng 1908))
      g
  in
  Transformer.advance t ~rounds:500;
  Alcotest.(check int) "quiescent under async daemon" 1 t.Transformer.reconstructions;
  Alcotest.(check bool) "async output is MST" true
    (Mst.is_mst g (Graph.plain_weight_fn g) (Transformer.tree t))

let test_memory () =
  let g = random_graph 1909 128 in
  let t = Transformer.create g in
  Transformer.advance t ~rounds:200;
  let bits = Transformer.memory_bits t in
  Alcotest.(check bool) (Fmt.str "bits=%d is O(log n)" bits) true
    (bits <= 160 * Ssmst_sim.Memory.of_nat 128 + 400)

let suite =
  [
    Alcotest.test_case "stabilizes to the MST" `Quick test_stabilizes_and_outputs_mst;
    Alcotest.test_case "stabilization time O(n)" `Slow test_linear_stabilization;
    Alcotest.test_case "quiescent on correct output" `Quick test_quiescent_when_correct;
    Alcotest.test_case "detects faults and recovers" `Quick test_detects_and_recovers;
    Alcotest.test_case "detection bookkeeping" `Quick test_detection_recorded;
    Alcotest.test_case "asynchronous mode" `Quick test_async_mode;
    Alcotest.test_case "memory O(log n)" `Quick test_memory;
  ]
