open Ssmst_graph
open Ssmst_protocols

(* ------------------------------ Wave&Echo ------------------------------ *)

(* star with centre 0: children of 0 are 1..4 *)
let star_children v = if v = 0 then [ 1; 2; 3; 4 ] else []

(* path rooted at 0 *)
let path_children n v = if v + 1 < n then [ v + 1 ] else []

let test_count () =
  let r = Wave_echo.count ~children:star_children 0 in
  Alcotest.(check int) "count star" 5 r.value;
  Alcotest.(check int) "rounds = 2*height" 2 r.rounds;
  Alcotest.(check bool) "not truncated" false r.truncated;
  let r = Wave_echo.count ~children:(path_children 8) 0 in
  Alcotest.(check int) "count path" 8 r.value;
  Alcotest.(check int) "rounds path" 14 r.rounds

let test_ttl () =
  let r = Wave_echo.count ~children:(path_children 8) ~ttl:3 0 in
  Alcotest.(check int) "counts within ttl" 4 r.value;
  Alcotest.(check bool) "truncated" true r.truncated;
  let r = Wave_echo.count ~children:(path_children 4) ~ttl:3 0 in
  Alcotest.(check bool) "exact fit not truncated" false r.truncated;
  Alcotest.(check int) "exact fit counts all" 4 r.value

let test_sum_or_min () =
  let s = Wave_echo.sum ~children:star_children ~value:(fun v -> v) 0 in
  Alcotest.(check int) "sum" 10 s.value;
  let o = Wave_echo.logical_or ~children:star_children ~value:(fun v -> v = 3) 0 in
  Alcotest.(check bool) "or" true o.value;
  let m =
    Wave_echo.minimum ~children:star_children
      ~candidate:(fun v -> if v = 0 then None else Some (10 - v))
      ~compare:Int.compare 0
  in
  Alcotest.(check (option int)) "min skips None" (Some 6) m.value

let test_visited_preorder () =
  let r = Wave_echo.count ~children:(fun v -> if v = 0 then [ 1; 4 ] else if v = 1 then [ 2; 3 ] else []) 0 in
  Alcotest.(check (list int)) "preorder" [ 0; 1; 2; 3; 4 ] r.visited

(* ------------------------------ Data link ------------------------------ *)

let test_datalink_exactly_once () =
  let s = Datalink.sender () and r = Datalink.receiver () in
  Datalink.send s "a";
  Datalink.send s "b";
  Datalink.send s "c";
  (* interleave steps; receiver may run more often than the sender *)
  for _ = 1 to 20 do
    Datalink.sender_step s ~receiver_ack:r.ack;
    Datalink.receiver_step r ~sender_outbox:s.outbox ~sender_toggle:s.tog;
    Datalink.receiver_step r ~sender_outbox:s.outbox ~sender_toggle:s.tog
  done;
  Alcotest.(check (list string)) "no duplication, order kept" [ "a"; "b"; "c" ]
    (Datalink.delivered r)

let test_datalink_arbitrary_start () =
  (* arbitrary initial toggle states: at most one spurious delivery *)
  let s = Datalink.sender () and r = Datalink.receiver () in
  s.tog <- Datalink.T2;
  r.ack <- Datalink.T1;
  s.outbox <- Some "garbage";
  Datalink.send s "x";
  for _ = 1 to 20 do
    Datalink.receiver_step r ~sender_outbox:s.outbox ~sender_toggle:s.tog;
    Datalink.sender_step s ~receiver_ack:r.ack
  done;
  let d = Datalink.delivered r in
  Alcotest.(check bool) "x delivered exactly once" true
    (List.length (List.filter (( = ) "x") d) = 1);
  Alcotest.(check bool) "at most one spurious" true (List.length d <= 2)

(* ------------------------------ SS BFS tree ---------------------------- *)

let test_ss_bfs_sync () =
  let st = Gen.rng 20 in
  let g = Gen.random_connected st 24 in
  let net = Ss_bfs.Net.create g in
  (match Ss_bfs.stabilization_time net Ssmst_sim.Scheduler.Sync ~max_rounds:200 with
  | Some t -> Alcotest.(check bool) "stabilizes within O(n)" true (t <= 2 * 24)
  | None -> Alcotest.fail "did not stabilize");
  let t = Ss_bfs.tree net in
  Alcotest.(check int) "rooted at max id" 23
    (Graph.id g (Tree.root t))

let test_ss_bfs_recovers_from_faults () =
  let st = Gen.rng 21 in
  let g = Gen.random_connected st 20 in
  let net = Ss_bfs.Net.create g in
  ignore (Ss_bfs.stabilization_time net Ssmst_sim.Scheduler.Sync ~max_rounds:200);
  (* corrupt states: fake leaders with huge ids must be flushed *)
  ignore (Ss_bfs.Net.inject_faults net (Gen.rng 22) ~count:5);
  match Ss_bfs.stabilization_time net Ssmst_sim.Scheduler.Sync ~max_rounds:400 with
  | Some _ -> ()
  | None -> Alcotest.fail "did not re-stabilize after faults"

let test_ss_bfs_async () =
  let st = Gen.rng 23 in
  let g = Gen.random_connected st 16 in
  let net = Ss_bfs.Net.create g in
  ignore (Ss_bfs.Net.inject_faults net (Gen.rng 24) ~count:4);
  match
    Ss_bfs.stabilization_time net (Ssmst_sim.Scheduler.Async_random (Gen.rng 25)) ~max_rounds:400
  with
  | Some _ -> ()
  | None -> Alcotest.fail "did not stabilize under the async daemon"

let qcheck_ss_bfs =
  QCheck.Test.make ~name:"ss-bfs stabilizes from arbitrary states" ~count:25
    QCheck.(pair (int_range 3 20) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let net = Ss_bfs.Net.create g in
      ignore (Ss_bfs.Net.inject_faults net st ~count:n);
      Ss_bfs.stabilization_time net Ssmst_sim.Scheduler.Sync ~max_rounds:(20 * n + 50) <> None)

let suite =
  [
    Alcotest.test_case "wave&echo count" `Quick test_count;
    Alcotest.test_case "wave&echo ttl truncation" `Quick test_ttl;
    Alcotest.test_case "wave&echo sum/or/min" `Quick test_sum_or_min;
    Alcotest.test_case "wave&echo preorder" `Quick test_visited_preorder;
    Alcotest.test_case "datalink delivers exactly once" `Quick test_datalink_exactly_once;
    Alcotest.test_case "datalink self-stabilizes" `Quick test_datalink_arbitrary_start;
    Alcotest.test_case "ss-bfs stabilizes (sync)" `Quick test_ss_bfs_sync;
    Alcotest.test_case "ss-bfs recovers from faults" `Quick test_ss_bfs_recovers_from_faults;
    Alcotest.test_case "ss-bfs stabilizes (async)" `Quick test_ss_bfs_async;
    QCheck_alcotest.to_alcotest qcheck_ss_bfs;
  ]
