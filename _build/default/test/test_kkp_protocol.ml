open Ssmst_graph
open Ssmst_sim
open Ssmst_core
open Ssmst_pls

(* The KKP 1-PLS running as a protocol: the paper's Section 1 alternative
   checker — detection time exactly 1 and detection distance at most f,
   costing Θ(log² n) bits. *)

let scheme_for seed n =
  let st = Gen.rng seed in
  Kkp_pls.mark (Marker.run (Gen.random_connected st n))

let mk scheme =
  let module C = struct
    let scheme = scheme
  end in
  (module Kkp_protocol.Make (C) : Protocol.S with type state = Kkp_protocol.state)

let test_accepts () =
  List.iter
    (fun n ->
      let scheme = scheme_for (2300 + n) n in
      let module P = (val mk scheme) in
      let module Net = Network.Make (P) in
      let net = Net.create scheme.Kkp_pls.marker.Marker.graph in
      Net.run net Scheduler.Sync ~rounds:20;
      Alcotest.(check bool) (Fmt.str "silent n=%d" n) false (Net.any_alarm net))
    [ 2; 8; 24; 64 ]

let test_one_round_detection () =
  let detected_in_one = ref 0 and total = 8 in
  for i = 1 to total do
    let scheme = scheme_for (2400 + i) 32 in
    let module P = (val mk scheme) in
    let module Net = Network.Make (P) in
    let net = Net.create scheme.Kkp_pls.marker.Marker.graph in
    Net.run net Scheduler.Sync ~rounds:5;
    let faults = Net.inject_faults net (Gen.rng (2500 + i)) ~count:1 in
    match Net.detection_time net Scheduler.Sync ~max_rounds:3 with
    | Some 1 -> (
        incr detected_in_one;
        (* detection distance at most 1 hop from the fault (the scheme's
           guarantee is f = 1): the alarming node reads the fault directly *)
        match Net.detection_distance net ~faults with
        | Some d -> Alcotest.(check bool) "distance <= 1" true (d <= 1)
        | None -> Alcotest.fail "no alarming node")
    | Some _ | None -> ()
  done;
  Alcotest.(check bool)
    (Fmt.str "one-round detections: %d/%d" !detected_in_one total)
    true (!detected_in_one >= 6)

let test_memory_quadratic () =
  let bits n =
    let scheme = scheme_for (2600 + n) n in
    let module P = (val mk scheme) in
    let module Net = Network.Make (P) in
    let net = Net.create scheme.Kkp_pls.marker.Marker.graph in
    Net.run net Scheduler.Sync ~rounds:2;
    Net.peak_bits net
  in
  (* Θ(log² n): the per-log-squared ratio stays bounded *)
  let r n = float_of_int (bits n) /. (float_of_int (Memory.of_nat n) ** 2.) in
  Alcotest.(check bool) "log^2 shape" true (r 256 < 4. *. r 16 +. 2.)

let test_async () =
  let scheme = scheme_for 2700 24 in
  let module P = (val mk scheme) in
  let module Net = Network.Make (P) in
  let net = Net.create scheme.Kkp_pls.marker.Marker.graph in
  Net.run net (Scheduler.Async_random (Gen.rng 2701)) ~rounds:30;
  Alcotest.(check bool) "silent under async daemon" false (Net.any_alarm net)

let suite =
  [
    Alcotest.test_case "accepts correct instances" `Quick test_accepts;
    Alcotest.test_case "one-round detection, distance <= 1" `Quick test_one_round_detection;
    Alcotest.test_case "memory Θ(log² n)" `Quick test_memory_quadratic;
    Alcotest.test_case "async acceptance" `Quick test_async;
  ]
