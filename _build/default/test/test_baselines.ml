open Ssmst_graph
open Ssmst_baselines

let random_graph seed n =
  let st = Gen.rng seed in
  Gen.random_connected st n

(* ---------------- GHS ---------------- *)

let test_ghs_correct () =
  List.iter
    (fun n ->
      let g = random_graph (1600 + n) n in
      let r = Ghs.run g in
      Alcotest.(check bool) (Fmt.str "ghs MST n=%d" n) true
        (Mst.is_mst g (Graph.plain_weight_fn g) r.Ghs.tree))
    [ 2; 3; 8; 20; 50 ]

let test_ghs_levels_logarithmic () =
  let g = random_graph 1601 64 in
  let r = Ghs.run g in
  Alcotest.(check bool) "levels <= log n + 1" true (r.Ghs.levels <= 7)

(* ---------------- Higham-Liang style ---------------- *)

let test_hl_correct () =
  List.iter
    (fun n ->
      let g = random_graph (1700 + n) n in
      let r = Higham_liang.run g in
      Alcotest.(check bool) (Fmt.str "hl MST n=%d" n) true
        (Mst.is_mst g (Graph.plain_weight_fn g) r.Higham_liang.tree))
    [ 2; 3; 8; 20; 50 ]

let test_hl_self_stabilizes_from_bad_tree () =
  let g = random_graph 1701 24 in
  (* adversarial initial tree: the maximum spanning tree *)
  let flipped =
    Graph.of_edges ~n:24 (List.map (fun (u, v, w) -> (u, v, 1_000_000 - w)) (Graph.edges g))
  in
  let bad = Mst.prim flipped (Graph.plain_weight_fn flipped) in
  let bad_on_g =
    Tree.of_parents g
      (Array.init 24 (fun v -> match Tree.parent bad v with None -> -1 | Some p -> p))
  in
  let r = Higham_liang.run ~initial:bad_on_g g in
  Alcotest.(check bool) "converges to the MST" true
    (Mst.is_mst g (Graph.plain_weight_fn g) r.Higham_liang.tree);
  Alcotest.(check bool) "performed swaps" true (r.Higham_liang.swaps > 0)

let test_hl_time_shape () =
  (* Θ(n·m): rounds / (n·m) should stay bounded while rounds / n diverges *)
  let measure n =
    let g = random_graph (1702 + n) n in
    let r = Higham_liang.run g in
    let m = Graph.num_edges g in
    (float_of_int r.Higham_liang.rounds /. float_of_int (n * m),
     float_of_int r.Higham_liang.rounds /. float_of_int n)
  in
  let nm64, _ = measure 64 in
  let nm256, per_n256 = measure 256 in
  let _, per_n64 = measure 64 in
  Alcotest.(check bool) "rounds/(n*m) bounded" true (nm256 <= 4. *. nm64 +. 1.);
  Alcotest.(check bool) "super-linear in n" true (per_n256 > per_n64)

(* ---------------- Blin et al. style ---------------- *)

let test_blin_correct () =
  List.iter
    (fun n ->
      let g = random_graph (1800 + n) n in
      let r = Blin.run g in
      Alcotest.(check bool) (Fmt.str "blin MST n=%d" n) true
        (Mst.is_mst g (Graph.plain_weight_fn g) r.Blin.tree))
    [ 2; 3; 8; 20; 50 ]

let test_blin_quadratic_shape () =
  let measure n =
    let g = random_graph (1801 + n) n in
    let r = Blin.run g in
    float_of_int r.Blin.rounds /. float_of_int (n * n)
  in
  let q64 = measure 64 and q256 = measure 256 in
  Alcotest.(check bool) "rounds/n^2 bounded" true (q256 <= 3. *. q64 +. 1.)

let test_blin_memory_shape () =
  (* Θ(log² n) label memory: ratio to log n grows *)
  let measure n =
    let g = random_graph (1802 + n) n in
    let r = Blin.run g in
    float_of_int r.Blin.memory_bits /. float_of_int (Ssmst_sim.Memory.of_nat n)
  in
  Alcotest.(check bool) "memory/log n grows" true (measure 256 > measure 16)

let qcheck_baselines_agree =
  QCheck.Test.make ~name:"all constructions compute the same MST" ~count:25
    QCheck.(pair (int_range 2 36) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Gen.rng seed in
      let g = Gen.random_connected st n in
      let reference = List.sort compare (Mst.kruskal g (Graph.plain_weight_fn g)) in
      let trees =
        [
          (Ghs.run g).Ghs.tree;
          (Higham_liang.run g).Higham_liang.tree;
          (Blin.run g).Blin.tree;
          (Ssmst_core.Sync_mst.run g).Ssmst_core.Sync_mst.tree;
        ]
      in
      List.for_all (fun t -> List.sort compare (Mst.edge_set_of_tree t) = reference) trees)

let suite =
  [
    Alcotest.test_case "GHS computes the MST" `Quick test_ghs_correct;
    Alcotest.test_case "GHS level count" `Quick test_ghs_levels_logarithmic;
    Alcotest.test_case "HL computes the MST" `Quick test_hl_correct;
    Alcotest.test_case "HL stabilizes from an adversarial tree" `Quick test_hl_self_stabilizes_from_bad_tree;
    Alcotest.test_case "HL time is Θ(n·m)" `Slow test_hl_time_shape;
    Alcotest.test_case "Blin computes the MST" `Quick test_blin_correct;
    Alcotest.test_case "Blin time is Θ(n²)" `Slow test_blin_quadratic_shape;
    Alcotest.test_case "Blin memory is Θ(log² n)" `Slow test_blin_memory_shape;
    QCheck_alcotest.to_alcotest qcheck_baselines_agree;
  ]
