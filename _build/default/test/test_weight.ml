open Ssmst_graph

let check = Alcotest.(check bool)

let test_order () =
  let w1 = Weight.make ~base:3 ~in_tree:true ~id_u:1 ~id_v:2 in
  let w2 = Weight.make ~base:3 ~in_tree:false ~id_u:1 ~id_v:2 in
  let w3 = Weight.make ~base:4 ~in_tree:true ~id_u:0 ~id_v:1 in
  check "tree edge wins ties" true Weight.(w1 < w2);
  check "base weight dominates" true Weight.(w2 < w3);
  check "irreflexive" false Weight.(w1 < w1);
  check "equal" true (Weight.equal w1 w1)

let test_id_tiebreak () =
  let a = Weight.make ~base:5 ~in_tree:false ~id_u:1 ~id_v:9 in
  let b = Weight.make ~base:5 ~in_tree:false ~id_u:2 ~id_v:3 in
  check "id_min breaks ties" true Weight.(a < b);
  let c = Weight.make ~base:5 ~in_tree:false ~id_u:1 ~id_v:4 in
  check "id_max breaks remaining ties" true Weight.(c < a)

let test_infinity () =
  let w = Weight.make ~base:1000000 ~in_tree:false ~id_u:5 ~id_v:6 in
  check "finite < infinity" true Weight.(w < Weight.infinity);
  check "is_infinity" true (Weight.is_infinity Weight.infinity);
  check "not is_infinity" false (Weight.is_infinity w)

let test_bits () =
  let small = Weight.make ~base:2 ~in_tree:true ~id_u:3 ~id_v:7 in
  let big = Weight.make ~base:(1 lsl 40) ~in_tree:true ~id_u:3 ~id_v:7 in
  Alcotest.(check bool) "bits positive" true (Weight.bits small > 0);
  Alcotest.(check bool) "bits grows with magnitude" true (Weight.bits big > Weight.bits small)

let qcheck_total_order =
  QCheck.Test.make ~name:"weight compare is a total order (antisymmetry + transitivity)"
    ~count:500
    QCheck.(triple (pair small_nat small_nat) (pair small_nat small_nat) (pair small_nat small_nat))
    (fun ((b1, i1), (b2, i2), (b3, i3)) ->
      let mk b i = Weight.make ~base:b ~in_tree:(i mod 2 = 0) ~id_u:i ~id_v:(i + 1) in
      let w1 = mk b1 i1 and w2 = mk b2 i2 and w3 = mk b3 i3 in
      let c12 = Weight.compare w1 w2 and c21 = Weight.compare w2 w1 in
      let anti = compare c12 0 = compare 0 c21 in
      let trans =
        if Weight.compare w1 w2 <= 0 && Weight.compare w2 w3 <= 0 then
          Weight.compare w1 w3 <= 0
        else true
      in
      anti && trans)

let suite =
  [
    Alcotest.test_case "lexicographic order" `Quick test_order;
    Alcotest.test_case "identity tie-break" `Quick test_id_tiebreak;
    Alcotest.test_case "infinity" `Quick test_infinity;
    Alcotest.test_case "bit accounting" `Quick test_bits;
    QCheck_alcotest.to_alcotest qcheck_total_order;
  ]
