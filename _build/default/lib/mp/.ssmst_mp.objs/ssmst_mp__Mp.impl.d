lib/mp/mp.ml: Array Graph List Memory Ssmst_graph Ssmst_protocols Ssmst_sim
