lib/mp/ghs_mp.ml: Array Fun Graph Int List Mp Option Ssmst_graph Ssmst_sim Tree Weight
