open Ssmst_graph

(* The Gallager-Humblet-Spira algorithm (1983), the full event-driven state
   machine recalled in Section 4.1, running on the message-passing emulation
   of {!Mp}.

   Per node: a state (Sleeping / Find / Found), a fragment name FN (an edge
   weight) and level LN, per-edge statuses (Basic / Branch / Rejected), the
   in_branch pointer, the best outgoing candidate of the current search, and
   the find_count of outstanding reports.  Messages: Connect(L),
   Initiate(L, F, S), Test(L, F), Accept, Reject, Report(w), Change_root.
   Deferrals implement the protocol's "place the message at the end of the
   queue" for Connect from lower levels on Basic edges and Test from higher
   levels.

   At termination the Branch edges form the MST (weights are made distinct
   with ω′, encoded as a triple so fragment names compare exactly). *)

type node_status = Sleeping | Find | Found
type edge_status = Basic | Branch | Rejected

(* fragment names are edge weights; keep the full ω′ composite *)
type fname = { base : int; id_min : int; id_max : int }

let fname_compare a b =
  let c = Int.compare a.base b.base in
  if c <> 0 then c
  else
    let c = Int.compare a.id_min b.id_min in
    if c <> 0 then c else Int.compare a.id_max b.id_max

let fname_of_weight (w : Weight.t) = { base = w.Weight.base; id_min = w.Weight.id_min; id_max = w.Weight.id_max }

type message =
  | Connect of int  (* level *)
  | Initiate of int * fname * node_status  (* level, fragment name, state *)
  | Test of int * fname
  | Accept
  | Reject
  | Report of fname option  (* best weight found; None = infinity *)
  | Change_root

type state = {
  status : node_status;
  ln : int;  (* level *)
  fn : fname option;  (* fragment name; None before the first Initiate *)
  se : edge_status array;  (* per port *)
  in_branch : int;  (* port towards the fragment core; -1 initially *)
  test_edge : int;  (* port under test; -1 = none *)
  best_edge : int;  (* port of the best candidate; -1 = none *)
  best_wt : fname option;  (* None = infinity *)
  find_count : int;
  halted : bool;
}

let weight_of g v p =
  let u = Graph.peer_at g v p in
  fname_of_weight (Graph.plain_weight_fn g v u)

let fname_lt a b =
  match (a, b) with
  | _, None -> true  (* anything < infinity, for Some _ *)
  | None, _ -> false
  | _ -> false

let lt_opt a b =
  match (a, b) with
  | Some x, Some y -> fname_compare x y < 0
  | Some _, None -> true
  | None, _ -> false

let _ = fname_lt

module Proto = struct
  type nonrec state = state
  type nonrec message = message

  (* (1) spontaneous wakeup: connect over the minimum incident edge *)
  let wakeup g v (s : state) =
    let deg = Graph.degree g v in
    let m = ref (-1) in
    for p = 0 to deg - 1 do
      if s.se.(p) = Basic && (!m < 0 || fname_compare (weight_of g v p) (weight_of g v !m) < 0)
      then m := p
    done;
    (* a connected graph with n >= 2 always has an incident edge *)
    let se = Array.copy s.se in
    se.(!m) <- Branch;
    ( { s with status = Found; ln = 0; se; find_count = 0 },
      [ (!m, Connect 0) ] )

  let init g v =
    let deg = Graph.degree g v in
    let s =
      {
        status = Sleeping;
        ln = 0;
        fn = None;
        se = Array.make deg Basic;
        in_branch = -1;
        test_edge = -1;
        best_edge = -1;
        best_wt = None;
        find_count = 0;
        halted = false;
      }
    in
    let s, sends = wakeup g v s in
    (s, sends)

  (* (4) the test procedure *)
  let test g v (s : state) =
    let deg = Graph.degree g v in
    let m = ref (-1) in
    for p = 0 to deg - 1 do
      if s.se.(p) = Basic && (!m < 0 || fname_compare (weight_of g v p) (weight_of g v !m) < 0)
      then m := p
    done;
    (!m, s)

  (* (8) the report procedure *)
  let report (s : state) =
    if s.find_count = 0 && s.test_edge = -1 then
      ( { s with status = Found },
        if s.in_branch >= 0 then [ (s.in_branch, Report s.best_wt) ] else [] )
    else (s, [])

  (* (4) continued: launch the next Test, or report if no basic edge is left *)
  let test g v (s : state) =
    let m, s = test g v s in
    if m >= 0 then
      ({ s with test_edge = m }, [ (m, Test (s.ln, Option.get s.fn)) ])
    else report { s with test_edge = -1 }

  (* (10) change-root *)
  let change_root g v (s : state) =
    ignore g;
    ignore v;
    if s.best_edge >= 0 && s.se.(s.best_edge) = Branch then
      (s, [ (s.best_edge, Change_root) ])
    else begin
      let se = Array.copy s.se in
      if s.best_edge >= 0 then se.(s.best_edge) <- Branch;
      ({ s with se }, if s.best_edge >= 0 then [ (s.best_edge, Connect s.ln) ] else [])
    end

  let on_message g v (s : state) ~port msg =
    let s, wake_sends = if s.status = Sleeping then wakeup g v s else (s, []) in
    let state, reaction =
      match msg with
      | Connect l ->
          if l < s.ln then begin
            (* absorb the lower-level fragment *)
            let se = Array.copy s.se in
            se.(port) <- Branch;
            let s = { s with se } in
            let s, extra =
              if s.status = Find then ({ s with find_count = s.find_count + 1 }, ())
              else (s, ())
            in
            ignore extra;
            (s, Mp.send [ (port, Initiate (s.ln, Option.get s.fn, s.status)) ])
          end
          else if s.se.(port) = Basic then (s, { Mp.sends = []; defers = [ (port, msg) ] })
          else
            (* merge: both fragments chose this edge *)
            (s, Mp.send [ (port, Initiate (s.ln + 1, weight_of g v port, Find)) ])
      | Initiate (l, f, st) ->
          let se = s.se in
          let s =
            {
              s with
              ln = l;
              fn = Some f;
              status = st;
              in_branch = port;
              best_edge = -1;
              best_wt = None;
            }
          in
          let sends = ref [] in
          let fc = ref s.find_count in
          if st = Find then fc := 0;
          Array.iteri
            (fun p e ->
              if p <> port && e = Branch then begin
                sends := (p, Initiate (l, f, st)) :: !sends;
                if st = Find then incr fc
              end)
            se;
          let s = { s with find_count = !fc } in
          if st = Find then begin
            let s, test_sends = test g v s in
            (s, Mp.send (!sends @ test_sends))
          end
          else (s, Mp.send !sends)
      | Test (l, f) ->
          if l > s.ln then (s, { Mp.sends = []; defers = [ (port, msg) ] })
          else if s.fn = None || fname_compare f (Option.get s.fn) <> 0 then
            (s, Mp.send [ (port, Accept) ])
          else begin
            let se = Array.copy s.se in
            if se.(port) = Basic then se.(port) <- Rejected;
            let s = { s with se } in
            if s.test_edge <> port then (s, Mp.send [ (port, Reject) ])
            else begin
              let s, test_sends = test g v s in
              (s, Mp.send test_sends)
            end
          end
      | Accept ->
          let w = Some (weight_of g v port) in
          let s = { s with test_edge = -1 } in
          let s =
            if lt_opt w s.best_wt then { s with best_edge = port; best_wt = w } else s
          in
          let s, sends = report s in
          (s, Mp.send sends)
      | Reject ->
          let se = Array.copy s.se in
          if se.(port) = Basic then se.(port) <- Rejected;
          let s, sends = test g v { s with se } in
          (s, Mp.send sends)
      | Report w ->
          if port <> s.in_branch then begin
            let s = { s with find_count = s.find_count - 1 } in
            let s =
              if lt_opt w s.best_wt then { s with best_edge = port; best_wt = w } else s
            in
            let s, sends = report s in
            (s, Mp.send sends)
          end
          else if s.status = Find then (s, { Mp.sends = []; defers = [ (port, msg) ] })
          else if lt_opt s.best_wt w then
            let s, sends = change_root g v s in
            (s, Mp.send sends)
          else if w = None && s.best_wt = None then ({ s with halted = true }, Mp.nothing)
          else (s, Mp.nothing)
      | Change_root ->
          let s, sends = change_root g v s in
          (s, Mp.send sends)
    in
    (state, { reaction with Mp.sends = wake_sends @ reaction.Mp.sends })

  let message_bits = function
    | Connect l -> 3 + Ssmst_sim.Memory.of_nat l
    | Initiate (l, f, _) -> 5 + Ssmst_sim.Memory.of_nat l + Ssmst_sim.Memory.of_int f.base
    | Test (l, f) -> 3 + Ssmst_sim.Memory.of_nat l + Ssmst_sim.Memory.of_int f.base
    | Accept | Reject | Change_root -> 3
    | Report _ -> 3 + 32

  let state_bits (s : state) =
    8
    + Ssmst_sim.Memory.of_nat s.ln
    + (2 * Array.length s.se)
    + Ssmst_sim.Memory.of_int s.in_branch
    + Ssmst_sim.Memory.of_int s.test_edge
    + Ssmst_sim.Memory.of_int s.best_edge
    + Ssmst_sim.Memory.of_nat s.find_count
end

module Runner = Mp.Emulate (Proto)
module Net = Ssmst_sim.Network.Make (Runner)

type result = { tree : Tree.t; rounds : int; messages : int }

(* Run GHS to quiescence and extract the Branch forest as a rooted tree. *)
let run ?(max_rounds = 2_000_000) (g : Graph.t) =
  if Graph.n g = 1 then
    { tree = Tree.of_parents g [| -1 |]; rounds = 0; messages = 0 }
  else begin
    let net = Net.create g in
    let quiescent net = Array.for_all Runner.quiescent_node (Net.states net) in
    let _, reached = Net.run_until net Ssmst_sim.Scheduler.Sync ~max_rounds quiescent in
    if not reached then raise (Graph.Malformed "ghs_mp: no quiescence");
    (* the Branch edges of all nodes form the MST; root it at node 0 *)
    let n = Graph.n g in
    let adj = Array.make n [] in
    Array.iteri
      (fun v (s : Runner.state) ->
        Array.iteri
          (fun p e -> if e = Branch then adj.(v) <- Graph.peer_at g v p :: adj.(v))
          (Runner.inner s).se)
      (Net.states net);
    let parent = Array.make n (-1) in
    let seen = Array.make n false in
    let rec dfs v =
      seen.(v) <- true;
      List.iter
        (fun u ->
          if not seen.(u) then begin
            parent.(u) <- v;
            dfs u
          end)
        adj.(v)
    in
    dfs 0;
    if not (Array.for_all Fun.id seen) then raise (Graph.Malformed "ghs_mp: branches do not span");
    let messages =
      Array.fold_left (fun acc (s : Runner.state) -> acc + s.Runner.delivered) 0 (Net.states net)
    in
    { tree = Tree.of_parents g parent; rounds = Net.rounds net; messages }
  end
