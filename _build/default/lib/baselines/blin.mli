open Ssmst_graph

(** A Blin–Dolev–Potop-Butucaru–Rovedakis-style self-stabilizing MST
    ([17]): Θ(log² n) bits per node (the [54, 55] label structures,
    measured on the result), Θ(n²) time (label maintenance sequentialises
    the n−1 merges at Θ(n) each). *)

type result = {
  tree : Tree.t;
  rounds : int;
  memory_bits : int;  (** measured Θ(log² n) label bits *)
}

val run : Graph.t -> result
