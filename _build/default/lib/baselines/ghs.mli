open Ssmst_graph

(** Gallager–Humblet–Spira as a level-synchronised reference construction
    (Section 4.1): fragments at a common level search and merge over their
    minimum outgoing edges; each level is charged waves proportional to the
    largest participating fragment, O(n log n) in the worst case.  For the
    fully event-driven message-passing GHS see {!Ssmst_mp.Ghs_mp}. *)

type result = { tree : Tree.t; rounds : int; levels : int }

val run : Graph.t -> result
