open Ssmst_graph

(* The Gallager-Humblet-Spira algorithm (Section 4.1), as a reference MST
   construction and as the O(n log n)-time comparison point for SYNC_MST.

   Fragments at a common level search for their minimum outgoing edges and
   merge over them; a fragment joining a higher-level fragment is absorbed.
   Unlike SYNC_MST there is no global timetable: each level's searches take
   time proportional to the largest fragment participating, and there are
   O(log n) levels, giving the classic O(n log n) bound.  The engine charges
   each level max-fragment wave costs and reports the accumulated rounds. *)

type result = { tree : Tree.t; rounds : int; levels : int }

let run (g : Graph.t) =
  let n = Graph.n g in
  let w = Graph.plain_weight_fn g in
  let parent = Array.make n (-1) in
  let comp = Dsu.create n in
  let rounds = ref 0 in
  let levels = ref 0 in
  let merged = ref 0 in
  while !merged < n - 1 do
    incr levels;
    (* sizes per fragment for the wave-cost charge *)
    let size = Array.make n 0 in
    for v = 0 to n - 1 do
      let r = Dsu.find comp v in
      size.(r) <- size.(r) + 1
    done;
    let max_size = Array.fold_left max 1 size in
    (* each fragment's count + search + root transfer: a constant number of
       waves over the fragment, all fragments in parallel *)
    rounds := !rounds + (5 * max_size);
    (* minimum outgoing edge per fragment *)
    let best = Hashtbl.create 16 in
    Graph.fold_edges
      (fun () u v _ ->
        let ru = Dsu.find comp u and rv = Dsu.find comp v in
        if ru <> rv then begin
          let wt = w u v in
          let update r edge =
            match Hashtbl.find_opt best r with
            | Some (_, bw) when Weight.(bw <= wt) -> ()
            | _ -> Hashtbl.replace best r (edge, wt)
          in
          update ru (u, v);
          update rv (v, u)
        end)
      () g;
    (* merge over the selected edges *)
    Hashtbl.iter
      (fun _ ((a, b), _) ->
        if Dsu.union comp a b then begin
          (* re-root a's side at a, then hook under b *)
          let rec flip v prev =
            let p = parent.(v) in
            parent.(v) <- prev;
            if p >= 0 then flip p v
          in
          flip a b;
          incr merged
        end)
      best
  done;
  { tree = Tree.of_parents g parent; rounds = !rounds; levels = !levels }
