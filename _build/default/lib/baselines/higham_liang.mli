open Ssmst_graph

(** A Higham–Liang-style self-stabilizing MST ([48]; the regime of [18]):
    O(log n) bits per node, Θ(n·|E|) time.  A token enforces the cycle
    property edge by edge — each non-tree edge costs a tree-path walk, and
    a full quiet pass over all edges certifies the tree. *)

type result = {
  tree : Tree.t;
  rounds : int;  (** charged ideal time until a full quiet pass *)
  swaps : int;
  memory_bits : int;
}

val run : ?initial:Tree.t -> Graph.t -> result
(** [initial] is the (possibly adversarial) starting spanning tree; default
    is a BFS tree.  @raise Graph.Malformed on failure to stabilize. *)
