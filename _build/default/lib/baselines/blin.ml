open Ssmst_graph
open Ssmst_core

(* A Blin-Dolev-Potop-Butucaru-Rovedakis-style self-stabilizing MST ([17]):
   memory O(log² n) bits per node, time Θ(n²).

   That algorithm implements GHS-style fragment growth in a self-stabilizing
   way with the help of label structures of Θ(log² n) bits per node (the
   [54, 55] pieces kept locally), but merges are sequentialized by the label
   maintenance: each of the n-1 merges costs a wave over the growing
   fragment, Θ(n) time, giving Θ(n²) overall.  The shape is reproduced here
   by growing one fragment Prim-style, one merge per O(|F|) charged rounds,
   and by measuring the actual KKP label memory on the result. *)

type result = {
  tree : Tree.t;
  rounds : int;
  memory_bits : int;  (* measured Θ(log² n) label bits *)
}

let run (g : Graph.t) =
  let n = Graph.n g in
  let w = Graph.plain_weight_fn g in
  let parent = Array.make n (-1) in
  let in_frag = Array.make n false in
  in_frag.(0) <- true;
  let rounds = ref 0 in
  for _ = 1 to n - 1 do
    let size = ref 0 in
    Array.iter (fun b -> if b then incr size) in_frag;
    (* a search wave over the fragment plus the label update wave *)
    rounds := !rounds + (4 * !size) + 4;
    match Mst.min_outgoing g w ~in_set:(fun v -> in_frag.(v)) with
    | None -> raise (Graph.Malformed "blin: disconnected graph")
    | Some (u, v, _) ->
        (* v joins, hanging under u *)
        parent.(v) <- u;
        in_frag.(v) <- true
  done;
  let tree = Tree.of_parents g parent in
  (* the per-node labels the algorithm maintains: all pieces, as in the
     1-proof labeling scheme of [54, 55] *)
  let m = Marker.of_hierarchy (Sync_mst.run g).Sync_mst.hierarchy in
  let kkp = Ssmst_pls.Kkp_pls.mark m in
  { tree; rounds = !rounds; memory_bits = Ssmst_pls.Kkp_pls.max_bits kkp }
