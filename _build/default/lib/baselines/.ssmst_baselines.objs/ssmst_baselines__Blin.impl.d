lib/baselines/blin.ml: Array Graph Marker Mst Ssmst_core Ssmst_graph Ssmst_pls Sync_mst Tree
