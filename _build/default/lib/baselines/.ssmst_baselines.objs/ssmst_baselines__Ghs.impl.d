lib/baselines/ghs.ml: Array Dsu Graph Hashtbl Ssmst_graph Tree Weight
