lib/baselines/ghs.mli: Graph Ssmst_graph Tree
