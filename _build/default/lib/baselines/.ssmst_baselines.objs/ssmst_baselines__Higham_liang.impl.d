lib/baselines/higham_liang.ml: Array Graph List Queue Ssmst_graph Ssmst_sim Tree Weight
