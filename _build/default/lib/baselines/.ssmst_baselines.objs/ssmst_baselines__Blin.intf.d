lib/baselines/blin.mli: Graph Ssmst_graph Tree
