lib/baselines/higham_liang.mli: Graph Ssmst_graph Tree
