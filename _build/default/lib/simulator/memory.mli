(** Bit accounting for per-node state (the paper's memory-size measure,
    Section 2.4).  Protocols report their register sizes through these
    helpers so experiments compare genuine bit counts. *)

val of_nat : int -> int
(** Bits of a non-negative integer (at least 1). *)

val of_int : int -> int
(** Bits of a possibly-negative integer (sign bit included). *)

val of_bool : int

val of_option : ('a -> int) -> 'a option -> int

val of_list : ('a -> int) -> 'a list -> int

val of_array : ('a -> int) -> 'a array -> int

val of_symbol_string : card:int -> len:int -> int
(** A string of [len] symbols over a [card]-sized alphabet. *)
