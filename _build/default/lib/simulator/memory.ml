(* Bit accounting for per-node state.  The paper's memory-size measure
   (Section 2.4) counts the bits stored at a node: identity, marker label and
   verifier working memory.  Protocols report their state size through these
   helpers so experiments compare real bit counts rather than word counts. *)

(* Bits to represent a non-negative integer value (at least 1 bit). *)
let of_nat x =
  if x <= 0 then 1
  else
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 x

(* Bits for an integer that may be negative (sign bit). *)
let of_int x = 1 + of_nat (abs x)

let of_bool = 1

let of_option f = function None -> 1 | Some x -> 1 + f x

let of_list f l = of_nat (List.length l) + List.fold_left (fun acc x -> acc + f x) 0 l

let of_array f a = of_nat (Array.length a) + Array.fold_left (fun acc x -> acc + f x) 0 a

(* A string over a small alphabet, [card] symbols per position. *)
let of_symbol_string ~card ~len = len * of_nat (card - 1)
