(** Daemons (Section 2.1): the synchronous network and strongly fair
    asynchronous schedulers. *)

type t =
  | Sync
      (** every round, all nodes step simultaneously on a register snapshot *)
  | Async_random of Random.State.t
      (** a fair randomized daemon: each asynchronous round activates every
          node once, in random order, on fresh registers *)
  | Async_adversarial of Random.State.t
      (** fair but nastier: extra interleaved activations of random nodes *)

val is_sync : t -> bool

val round_schedule : t -> int -> int list
(** The activation sequence of one asynchronous round over [n] nodes; every
    node appears at least once (strong fairness).
    @raise Invalid_argument on [Sync]. *)
