open Ssmst_graph

(* Executing a protocol over a graph under a daemon, with round counting,
   alarm observation, fault injection and memory accounting. *)

module Make (P : Protocol.S) = struct
  type t = {
    graph : Graph.t;
    mutable states : P.state array;
    mutable rounds : int;  (* ideal time elapsed *)
    mutable peak_bits : int;
  }

  let create graph =
    let states = Array.init (Graph.n graph) (P.init graph) in
    { graph; states; rounds = 0; peak_bits = 0 }

  let graph t = t.graph
  let state t v = t.states.(v)
  let states t = t.states
  let set_state t v s = t.states.(v) <- s
  let rounds t = t.rounds

  let record_memory t =
    Array.iter (fun s -> if P.bits s > t.peak_bits then t.peak_bits <- P.bits s) t.states

  let peak_bits t =
    record_memory t;
    t.peak_bits

  (* One synchronous round: all nodes step on a snapshot. *)
  let sync_round t =
    let snapshot = t.states in
    let read v u =
      if not (Graph.has_edge t.graph v u) then
        invalid_arg "Network.step: reading a non-neighbour"
      else snapshot.(u)
    in
    t.states <- Array.mapi (fun v s -> P.step t.graph v s (read v)) snapshot;
    t.rounds <- t.rounds + 1;
    record_memory t

  (* One asynchronous round under a fair daemon: nodes fire sequentially per
     the daemon's schedule and read fresh registers. *)
  let async_round t daemon =
    let schedule = Scheduler.round_schedule daemon (Graph.n t.graph) in
    List.iter
      (fun v ->
        let read u =
          if not (Graph.has_edge t.graph v u) then
            invalid_arg "Network.step: reading a non-neighbour"
          else t.states.(u)
        in
        t.states.(v) <- P.step t.graph v t.states.(v) (read))
      schedule;
    t.rounds <- t.rounds + 1;
    record_memory t

  let round t daemon = if Scheduler.is_sync daemon then sync_round t else async_round t daemon

  let run t daemon ~rounds =
    for _ = 1 to rounds do
      round t daemon
    done

  let any_alarm t = Array.exists P.alarm t.states

  let alarming_nodes t =
    let acc = ref [] in
    Array.iteri (fun v s -> if P.alarm s then acc := v :: !acc) t.states;
    !acc

  (* Run until [stop] holds or [max_rounds] elapse; returns the number of
     rounds executed and whether [stop] was reached. *)
  let run_until t daemon ~max_rounds stop =
    let executed = ref 0 and reached = ref (stop t) in
    while (not !reached) && !executed < max_rounds do
      round t daemon;
      incr executed;
      reached := stop t
    done;
    (!executed, !reached)

  (* Rounds until the first alarm, or [None] if none within [max_rounds]. *)
  let detection_time t daemon ~max_rounds =
    let executed, reached = run_until t daemon ~max_rounds any_alarm in
    if reached then Some executed else None

  (* Corrupt [count] distinct random nodes; returns the list of faulty
     nodes. *)
  let inject_faults t st ~count =
    let n = Graph.n t.graph in
    let chosen = Hashtbl.create count in
    while Hashtbl.length chosen < min count n do
      Hashtbl.replace chosen (Random.State.int st n) ()
    done;
    Hashtbl.fold
      (fun v () acc ->
        t.states.(v) <- P.corrupt st t.graph v t.states.(v);
        v :: acc)
      chosen []

  (* Max hop distance from any fault to the closest alarming node: the
     paper's detection distance (Section 2.4). *)
  let detection_distance t ~faults =
    let alarms = alarming_nodes t in
    match alarms with
    | [] -> None
    | _ ->
        let worst = ref 0 in
        List.iter
          (fun f ->
            let d = Dist.bfs t.graph f in
            let closest =
              List.fold_left (fun acc a -> min acc (if d.(a) < 0 then max_int else d.(a))) max_int alarms
            in
            if closest > !worst then worst := closest)
          faults;
        Some !worst
end
