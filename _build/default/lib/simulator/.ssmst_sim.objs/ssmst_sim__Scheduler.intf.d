lib/simulator/scheduler.mli: Random
