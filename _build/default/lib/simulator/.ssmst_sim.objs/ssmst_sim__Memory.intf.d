lib/simulator/memory.mli:
