lib/simulator/memory.ml: Array List
