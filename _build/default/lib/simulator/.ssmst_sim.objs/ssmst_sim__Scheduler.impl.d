lib/simulator/scheduler.ml: Array Fun List Random
