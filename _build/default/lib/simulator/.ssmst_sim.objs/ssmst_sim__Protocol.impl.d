lib/simulator/protocol.ml: Graph Random Ssmst_graph
