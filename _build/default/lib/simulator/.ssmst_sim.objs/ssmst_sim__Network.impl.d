lib/simulator/network.ml: Array Dist Graph Hashtbl List Protocol Random Scheduler Ssmst_graph
