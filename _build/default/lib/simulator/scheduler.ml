(* Daemons for the simulator.

   - [Sync]: the synchronous network — every round, all nodes are activated
     simultaneously on a snapshot of the registers.
   - [Async_random st]: a randomized, strongly fair distributed daemon.  A
     round is the minimal interval in which every node was activated at
     least once (the standard asynchronous round measure); within a round
     nodes fire one at a time and read *fresh* registers.
   - [Async_adversarial st]: a daemon that additionally interleaves extra
     activations of random nodes between the mandatory ones (bounded by a
     factor), exercising worse interleavings while remaining fair. *)

type t =
  | Sync
  | Async_random of Random.State.t
  | Async_adversarial of Random.State.t

let is_sync = function Sync -> true | Async_random _ | Async_adversarial _ -> false

(* A fair permutation plus optional noise: the activation sequence for one
   asynchronous round. *)
let round_schedule t n =
  match t with
  | Sync -> invalid_arg "Scheduler.round_schedule: sync daemon"
  | Async_random st | Async_adversarial st ->
      let base = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = base.(i) in
        base.(i) <- base.(j);
        base.(j) <- tmp
      done;
      let noisy =
        match t with
        | Async_adversarial st ->
            (* up to two extra activations of arbitrary nodes after each
               mandatory one: an unfair-looking but fair schedule *)
            Array.to_list base
            |> List.concat_map (fun v ->
                   let extras = Random.State.int st 3 in
                   v :: List.init extras (fun _ -> Random.State.int st n))
        | Sync | Async_random _ -> Array.to_list base
      in
      noisy
