(** Reference (centralized) minimum spanning tree algorithms: the ground
    truth for the distributed constructions and verification schemes. *)

type weight_fn = int -> int -> Weight.t
(** A distinct weight function over the graph's edges (see
    {!Graph.weight_fn}). *)

val kruskal : Graph.t -> weight_fn -> (int * int) list
(** The MST edge set as [(u, v)] pairs with [u < v]. *)

val prim : ?root:int -> Graph.t -> weight_fn -> Tree.t
(** The MST as a tree rooted at [root] (default 0).
    @raise Graph.Malformed on disconnected inputs. *)

val edge_set_of_tree : Tree.t -> (int * int) list
(** Normalized, sorted edge set of a tree. *)

val is_mst : Graph.t -> weight_fn -> Tree.t -> bool
(** Whether the tree is {e the} (unique, by distinctness) MST. *)

val min_outgoing :
  Graph.t -> weight_fn -> in_set:(int -> bool) -> (int * int * Weight.t) option
(** Minimum-weight edge leaving a node set, as [(inside, outside, weight)];
    [None] if the set has no outgoing edge. *)
