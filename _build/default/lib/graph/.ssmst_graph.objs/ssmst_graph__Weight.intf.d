lib/graph/weight.mli: Format
