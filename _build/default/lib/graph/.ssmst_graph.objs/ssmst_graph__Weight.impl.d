lib/graph/weight.ml: Fmt Int Stdlib
