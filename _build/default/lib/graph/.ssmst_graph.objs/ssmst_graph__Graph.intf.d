lib/graph/graph.mli: Format Weight
