lib/graph/mst.mli: Graph Tree Weight
