lib/graph/tree.ml: Array Fmt Graph Int List Option
