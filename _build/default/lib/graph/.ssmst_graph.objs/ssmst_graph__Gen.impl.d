lib/graph/gen.ml: Array Graph Hashtbl Int List Random Tree
