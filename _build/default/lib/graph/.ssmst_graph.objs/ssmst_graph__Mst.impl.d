lib/graph/mst.ml: Array Dsu Graph List Tree Weight
