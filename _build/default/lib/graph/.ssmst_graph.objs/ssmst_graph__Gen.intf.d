lib/graph/gen.mli: Graph Random Tree
