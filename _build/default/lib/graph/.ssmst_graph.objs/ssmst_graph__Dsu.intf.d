lib/graph/dsu.mli:
