lib/graph/dist.ml: Array Graph Queue
