lib/graph/graph.ml: Array Fmt Fun Hashtbl Int List Weight
