(** Hop distances, eccentricities and diameters (BFS), used for detection
    distance measurements and partition checks. *)

val bfs : Graph.t -> int -> int array
(** Hop distances from a source; [-1] for unreachable nodes. *)

val bfs_within : Graph.t -> member:(int -> bool) -> int -> int array
(** BFS restricted to the subgraph induced by [member]. *)

val eccentricity : Graph.t -> int -> int

val diameter : Graph.t -> int

val diameter_within : Graph.t -> member:(int -> bool) -> int
(** Diameter of the induced subgraph (assumed connected). *)

val hop_distance : Graph.t -> int -> int -> int
