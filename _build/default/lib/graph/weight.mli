(** Composite edge weights with the lexicographic distinction transform ω′ of
    Kor–Korman–Peleg, as recalled in footnote 1 of the paper.

    A weight compares by base weight first, then by the tree-membership
    indicator (candidate-tree edges win ties), then by the endpoint
    identities.  The transform guarantees distinct weights while preserving
    MST-ness of the candidate subgraph in both directions. *)

type t = {
  base : int;  (** the original weight ω(e) *)
  anti_tree : int;  (** [1 - Y] where [Y] = 1 iff the edge is in the candidate tree *)
  id_min : int;  (** smaller endpoint identity *)
  id_max : int;  (** larger endpoint identity *)
}

val make : base:int -> in_tree:bool -> id_u:int -> id_v:int -> t
(** [make ~base ~in_tree ~id_u ~id_v] is ω′ of an edge; endpoint order is
    irrelevant. *)

val compare : t -> t -> int
(** Total lexicographic order. *)

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val infinity : t
(** A weight above every weight built by {!make}; the identity for minimum
    computations. *)

val is_infinity : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val bits : t -> int
(** Serialized size in bits; O(log n) for weights polynomial in n. *)
