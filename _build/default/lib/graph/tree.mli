(** Rooted spanning trees and their distributive representation by
    {e components} (Section 2.1): each node stores at most one pointer (a
    port number) towards a neighbour; the induced subgraph H(G) contains an
    edge iff some endpoint points at the other. *)

type component = int option array
(** [c.(v) = Some p]: node [v] points through its port [p]; [None]: no
    pointer.  This is the untrusted on-network representation. *)

type t
(** A validated rooted spanning tree. *)

val of_parents : Graph.t -> int array -> t
(** Build from a parent array ([-1] at the root).  @raise Graph.Malformed
    unless the pointers follow graph edges and form one spanning tree. *)

val of_components : Graph.t -> component -> t
(** Interpret a component array per Example SP: the pointerless node is the
    root; a mutually-pointing pair is rooted at its higher-identity end.
    @raise Graph.Malformed if H(G) is not a spanning tree. *)

val to_components : t -> component
(** The distributive representation: every non-root points at its parent. *)

val graph : t -> Graph.t

val root : t -> int

val parent : t -> int -> int option

val parent_exn : t -> int -> int

val children : t -> int -> int list
(** Children in increasing port order at the parent. *)

val depth : t -> int -> int

val height : t -> int

val n : t -> int

val is_tree_edge : t -> int -> int -> bool

val tree_edges : t -> (int * int) list
(** All (child, parent) pairs. *)

val dfs_order : t -> int list
(** Pre-order DFS (children in port order), the order used for placing train
    pieces (Section 6.2). *)

val subtree_sizes : t -> int array

val total_base_weight : t -> int

val pp : Format.formatter -> t -> unit
