(* Rooted spanning trees represented distributively by *components* (Section
   2.1): each node stores at most one pointer (a port number) to its chosen
   neighbour.  The induced subgraph H(G) contains an edge iff at least one
   endpoint points at the other.

   A [t] value is the *validated* rooted-tree view: parent array with
   [parent.(root) = -1], children lists, depths, and traversal orders.  The
   raw component array is the on-network representation that verification
   algorithms must not trust. *)

type component = int option array
(* component.(v) = Some p: node v points through its port p; None: no pointer *)

type t = {
  graph : Graph.t;
  root : int;
  parent : int array;  (* parent.(root) = -1 *)
  children : int list array;  (* in increasing port order at the parent *)
  depth : int array;
}

let graph t = t.graph
let root t = t.root
let parent t v = if t.parent.(v) < 0 then None else Some t.parent.(v)
let parent_exn t v = if t.parent.(v) < 0 then invalid_arg "Tree.parent_exn: root" else t.parent.(v)
let children t v = t.children.(v)
let depth t v = t.depth.(v)
let n t = Graph.n t.graph

let is_tree_edge t u v = t.parent.(u) = v || t.parent.(v) = u

let height t = Array.fold_left max 0 t.depth

(* Build the rooted view from a parent array.  Checks that the parent
   pointers form a single tree spanning the graph and follow graph edges. *)
let of_parents graph parent =
  let n = Graph.n graph in
  if Array.length parent <> n then invalid_arg "Tree.of_parents: length";
  let root = ref (-1) in
  Array.iteri
    (fun v p ->
      if p < 0 then begin
        if !root >= 0 then raise (Graph.Malformed "two roots");
        root := v
      end
      else if not (Graph.has_edge graph v p) then raise (Graph.Malformed "parent not a neighbour"))
    parent;
  if !root < 0 then raise (Graph.Malformed "no root");
  let root = !root in
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  (* order children by the port number at the parent, for deterministic DFS *)
  Array.iteri
    (fun v cs ->
      children.(v) <- List.sort (fun a b -> Int.compare (Graph.port_to graph v a) (Graph.port_to graph v b)) cs)
    children;
  let depth = Array.make n (-1) in
  let count = ref 0 in
  let rec dfs v d =
    if depth.(v) >= 0 then raise (Graph.Malformed "cycle in parents");
    depth.(v) <- d;
    incr count;
    List.iter (fun c -> dfs c (d + 1)) children.(v)
  in
  dfs root 0;
  if !count <> n then raise (Graph.Malformed "parents do not span the graph");
  { graph; root; parent; children; depth }

(* Interpret a raw component array per the paper: H(G) has edge (u,v) iff u
   points at v or v points at u.  Returns the rooted tree if H(G) is a
   spanning tree (rooting rule of Example SP: the pointerless node is the
   root; otherwise one of the two mutually-pointing nodes, the higher ID). *)
let of_components graph (c : component) =
  let n = Graph.n graph in
  let target v = Option.map (fun p -> Graph.peer_at graph v p) c.(v) in
  (* Find the root per Example SP. *)
  let root =
    let no_ptr = ref [] in
    for v = n - 1 downto 0 do
      if c.(v) = None then no_ptr := v :: !no_ptr
    done;
    match !no_ptr with
    | [ v ] -> v
    | _ :: _ :: _ -> raise (Graph.Malformed "several pointerless nodes")
    | [] ->
        (* look for a mutually-pointing pair; root at the higher-ID end *)
        let found = ref (-1) in
        for v = 0 to n - 1 do
          match target v with
          | Some u when target u = Some v && !found < 0 ->
              found := if Graph.id graph v >= Graph.id graph u then v else u
          | _ -> ()
        done;
        if !found < 0 then raise (Graph.Malformed "no root candidate") else !found
  in
  let parent = Array.make n (-1) in
  Array.iteri
    (fun v _ -> if v <> root then
      match target v with
      | Some u -> parent.(v) <- u
      | None -> raise (Graph.Malformed "non-root without pointer"))
    c;
  of_parents graph parent

(* The distributive representation of this tree: every non-root node points
   at its parent through the corresponding port. *)
let to_components t : component =
  Array.init (n t) (fun v ->
      if t.parent.(v) < 0 then None else Some (Graph.port_to t.graph v t.parent.(v)))

let tree_edges t =
  let acc = ref [] in
  Array.iteri (fun v p -> if p >= 0 then acc := (v, p) :: !acc) t.parent;
  !acc

(* Pre-order DFS numbering (children in port order), as used for placing
   train pieces (Section 6.2). *)
let dfs_order t =
  let order = ref [] in
  let rec go v =
    order := v :: !order;
    List.iter go t.children.(v)
  in
  go t.root;
  List.rev !order

let subtree_sizes t =
  let size = Array.make (n t) 1 in
  let rec go v =
    List.iter
      (fun c ->
        go c;
        size.(v) <- size.(v) + size.(c))
      t.children.(v);
  in
  go t.root;
  size

let total_base_weight t =
  List.fold_left (fun acc (v, p) -> acc + Graph.base_weight t.graph v p) 0 (tree_edges t)

let pp ppf t =
  Fmt.pf ppf "tree root=%d" t.root;
  List.iter (fun (v, p) -> Fmt.pf ppf "@ %d->%d" v p) (tree_edges t)
