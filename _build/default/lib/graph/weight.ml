(* Composite edge weights with the lexicographic distinction transform of
   Kor-Korman-Peleg [53], as recalled in footnote 1 of the paper.

   An edge weight is compared first by its base weight, then by [1 - Y] where
   [Y] indicates membership in the candidate tree (so tree edges win ties),
   and finally by the endpoint identifiers.  Under this order every weight is
   distinct, and the candidate subgraph T is an MST under the base weights iff
   it is an MST under the transformed weights. *)

type t = {
  base : int;  (** the original weight ω(e) *)
  anti_tree : int;  (** 1 - Y, where Y = 1 iff the edge is in the candidate tree *)
  id_min : int;  (** min of the endpoint identifiers *)
  id_max : int;  (** max of the endpoint identifiers *)
}

let compare (a : t) (b : t) =
  let c = Int.compare a.base b.base in
  if c <> 0 then c
  else
    let c = Int.compare a.anti_tree b.anti_tree in
    if c <> 0 then c
    else
      let c = Int.compare a.id_min b.id_min in
      if c <> 0 then c else Int.compare a.id_max b.id_max

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0

let make ~base ~in_tree ~id_u ~id_v =
  {
    base;
    anti_tree = (if in_tree then 0 else 1);
    id_min = min id_u id_v;
    id_max = max id_u id_v;
  }

(* A weight strictly larger than any weight built from the given bounds; used
   as the identity for minimum computations. *)
let infinity = { base = max_int; anti_tree = max_int; id_min = max_int; id_max = max_int }

let is_infinity w = compare w infinity = 0

let pp ppf w =
  if is_infinity w then Fmt.string ppf "inf"
  else Fmt.pf ppf "%d.%d.%d.%d" w.base w.anti_tree w.id_min w.id_max

let to_string w = Fmt.str "%a" pp w

(* Number of bits needed to store a weight: the paper assumes weights
   polynomial in n, i.e. O(log n) bits; we account for the actual value. *)
let bits w =
  let b x = if Stdlib.( <= ) x 0 then 1 else succ (int_of_float (log (float_of_int x) /. log 2.)) in
  b w.base + 1 + b w.id_min + b w.id_max
