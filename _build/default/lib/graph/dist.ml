(* Hop distances (BFS), eccentricities and diameter.  Used for detection
   distance measurements and partition diameter checks. *)

let bfs (g : Graph.t) src =
  let n = Graph.n g in
  let d = Array.make n (-1) in
  let q = Queue.create () in
  d.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun (h : Graph.half_edge) ->
        if d.(h.peer) < 0 then begin
          d.(h.peer) <- d.(u) + 1;
          Queue.add h.peer q
        end)
      (Graph.ports g u)
  done;
  d

(* BFS restricted to a node subset; distances within the induced subgraph. *)
let bfs_within (g : Graph.t) ~member src =
  let n = Graph.n g in
  let d = Array.make n (-1) in
  let q = Queue.create () in
  if member src then begin
    d.(src) <- 0;
    Queue.add src q
  end;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun (h : Graph.half_edge) ->
        if member h.peer && d.(h.peer) < 0 then begin
          d.(h.peer) <- d.(u) + 1;
          Queue.add h.peer q
        end)
      (Graph.ports g u)
  done;
  d

let eccentricity g v = Array.fold_left max 0 (bfs g v)

let diameter g =
  let d = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = eccentricity g v in
    if e > !d then d := e
  done;
  !d

(* Diameter of the subgraph induced by [member]; assumes it is connected. *)
let diameter_within g ~member =
  let d = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if member v then
      Array.iter (fun x -> if x > !d then d := x) (bfs_within g ~member v)
  done;
  !d

let hop_distance g u v = (bfs g u).(v)
