(** Union–find with path compression and union by rank. *)

type t

val create : int -> t
(** [create n] is a structure over elements [0 .. n-1], each its own set. *)

val find : t -> int -> int
(** Canonical representative of an element's set. *)

val union : t -> int -> int -> bool
(** Merge two sets; [false] if they were already the same set. *)

val same : t -> int -> int -> bool
(** Whether two elements share a set. *)

val components : t -> int
(** Current number of disjoint sets. *)
