open Ssmst_graph

(* Fragments and fragment hierarchies (Definitions 5.1 and 5.2).

   A fragment is a connected subtree of the spanning tree T.  A hierarchy H
   for T is a laminar family of fragments containing T and every singleton;
   it forms a rooted tree (the hierarchy-tree) under inclusion.  Each
   non-whole fragment carries a *candidate* edge; a candidate function is
   one where every fragment's edge set is exactly the candidates of its
   strict descendants.  Lemma 5.1: if additionally every candidate is a
   minimum outgoing edge, T is an MST. *)

type t = {
  index : int;  (* position in the hierarchy array *)
  level : int;  (* the phase at which SYNC_MST had the fragment active; T gets the top level *)
  root : int;  (* node index of the fragment root (closest to the root of T) *)
  members : int array;  (* sorted node indices *)
  candidate : (int * int) option;  (* (w, x): w inside, the selected outgoing edge; None for T *)
  parent : int;  (* hierarchy-tree parent index, -1 for T *)
  children : int list;  (* hierarchy-tree children indices *)
}

type hierarchy = {
  tree : Tree.t;
  frags : t array;
  whole : int;  (* index of the fragment equal to T *)
  height : int;  (* ell: the level of T; strings have height+1 entries *)
  of_node : int list array;  (* per node: containing fragment indices, by increasing level *)
}

let size f = Array.length f.members
let is_whole h f = f.index = h.whole
let mem f v =
  let rec bin lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if f.members.(mid) = v then true else if f.members.(mid) < v then bin (mid + 1) hi else bin lo mid
  in
  bin 0 (Array.length f.members)

(* The fragment identity of Section 6: ID(F) = ID(r(F)) composed with
   lev(F). *)
let ident (g : Graph.t) f = (Graph.id g f.root, f.level)

(* Fragment of level [j] containing node [v], if any. *)
let at h v j = List.find_opt (fun i -> h.frags.(i).level = j) h.of_node.(v) |> Option.map (fun i -> h.frags.(i))

(* Levels at which [v] belongs to a fragment: the set J(v) of Section 8. *)
let levels_of h v = List.map (fun i -> h.frags.(i).level) h.of_node.(v)

(* Build a hierarchy from raw records [(level, root, members, candidate)].
   Computes hierarchy-tree parents as minimal strict containers, validates
   laminarity, presence of T and all singletons, strictly increasing levels
   along containment chains, and candidate edges being outgoing tree
   edges. *)
let build (tree : Tree.t) records =
  let g = Tree.graph tree in
  let n = Graph.n g in
  let records =
    List.map
      (fun (level, _operational_root, members, candidate) ->
        let members = Array.of_list (List.sort_uniq Int.compare members) in
        (* The fragment root in the sense of Section 5.1 is the member
           closest to the root of T.  SYNC_MST's operational root may differ
           after later phases re-orient edges inside the fragment. *)
        let root =
          Array.fold_left
            (fun best v -> if Tree.depth tree v < Tree.depth tree best then v else best)
            members.(0) members
        in
        (level, root, members, candidate))
      records
    |> List.sort (fun (l1, _, m1, _) (l2, _, m2, _) ->
           let c = Int.compare (Array.length m1) (Array.length m2) in
           if c <> 0 then c else Int.compare l1 l2)
  in
  let count = List.length records in
  let arr =
    Array.of_list
      (List.mapi
         (fun index (level, root, members, candidate) ->
           { index; level; root; members; candidate; parent = -1; children = [] })
         records)
  in
  (* whole fragment: the unique one with all n members *)
  let whole =
    match Array.to_list arr |> List.filter (fun f -> size f = n) with
    | [ f ] -> f.index
    | _ -> raise (Graph.Malformed "hierarchy: no unique whole fragment")
  in
  (* singletons for every node *)
  let single = Array.make n false in
  Array.iter (fun f -> if size f = 1 then single.(f.members.(0)) <- true) arr;
  if not (Array.for_all Fun.id single) then
    raise (Graph.Malformed "hierarchy: missing singleton fragment");
  (* laminarity + parents: since sorted by size, the parent of f is the
     first later fragment containing f's first member and all of f *)
  let subset a b = Array.for_all (fun x -> mem b x) a.members in
  let arr =
    Array.map
      (fun f ->
        if f.index = whole then f
        else begin
          let rec seek i =
            if i >= count then raise (Graph.Malformed "hierarchy: fragment with no container")
            else if arr.(i) != f && size arr.(i) > size f && mem arr.(i) f.members.(0) then
              if subset f arr.(i) then i
              else raise (Graph.Malformed "hierarchy: not laminar")
            else seek (i + 1)
          in
          { f with parent = seek (f.index + 1) }
        end)
      arr
  in
  (* strictness of levels along containment *)
  Array.iter
    (fun f ->
      if f.parent >= 0 && arr.(f.parent).level <= f.level then
        raise (Graph.Malformed "hierarchy: level not increasing"))
    arr;
  let children = Array.make count [] in
  Array.iter (fun f -> if f.parent >= 0 then children.(f.parent) <- f.index :: children.(f.parent)) arr;
  let arr = Array.map (fun f -> { f with children = List.rev children.(f.index) }) arr in
  (* candidate edges must be outgoing tree edges (except for T) *)
  Array.iter
    (fun f ->
      match f.candidate with
      | None -> if f.index <> whole then raise (Graph.Malformed "hierarchy: missing candidate")
      | Some (w, x) ->
          if f.index = whole then raise (Graph.Malformed "hierarchy: candidate on T");
          if not (mem f w) || mem f x then raise (Graph.Malformed "hierarchy: candidate not outgoing");
          if not (Tree.is_tree_edge tree w x) then
            raise (Graph.Malformed "hierarchy: candidate not a tree edge"))
    arr;
  let of_node = Array.make n [] in
  Array.iter (fun f -> Array.iter (fun v -> of_node.(v) <- f.index :: of_node.(v)) f.members) arr;
  Array.iteri
    (fun v l ->
      of_node.(v) <- List.sort (fun a b -> Int.compare arr.(a).level arr.(b).level) l)
    of_node;
  (* verify connectivity of every fragment within T *)
  Array.iter
    (fun f ->
      let inside = Array.make n false in
      Array.iter (fun v -> inside.(v) <- true) f.members;
      let seen = Array.make n false in
      let rec go v =
        seen.(v) <- true;
        List.iter (fun c -> if inside.(c) && not seen.(c) then go c) (Tree.children tree v);
        match Tree.parent tree v with
        | Some p when inside.(p) && not seen.(p) -> go p
        | _ -> ()
      in
      go f.root;
      Array.iter (fun v -> if not seen.(v) then raise (Graph.Malformed "hierarchy: fragment not connected"))
        f.members)
    arr;
  { tree; frags = arr; whole; height = arr.(whole).level; of_node }

(* The Well-Forming property P1 plus candidate-function validity
   (Definition 5.2): every fragment's edges are exactly the candidates of
   its strict descendants. *)
let well_formed h =
  try
    let ok = ref true in
    Array.iter
      (fun f ->
        (* candidates of all strict descendants of f in the hierarchy-tree *)
        let rec descend acc i =
          let fr = h.frags.(i) in
          let acc = List.fold_left descend acc fr.children in
          if i <> f.index then
            match fr.candidate with
            | Some (w, x) -> (min w x, max w x) :: acc
            | None ->
                ok := false;
                acc
          else acc
        in
        let cands = descend [] f.index |> List.sort_uniq compare in
        let edges =
          Array.to_list f.members
          |> List.filter_map (fun v ->
                 match Tree.parent h.tree v with
                 | Some p when mem f p -> Some (min v p, max v p)
                 | _ -> None)
          |> List.sort_uniq compare
        in
        if cands <> edges then ok := false)
      h.frags;
    !ok
  with Graph.Malformed _ -> false

(* The Minimality property P2: every candidate is a minimum outgoing edge of
   its fragment under [w]. *)
let minimal h (w : Mst.weight_fn) =
  let g = Tree.graph h.tree in
  Array.for_all
    (fun f ->
      match f.candidate with
      | None -> f.index = h.whole
      | Some (a, b) -> (
          match Mst.min_outgoing g w ~in_set:(mem f) with
          | Some (_, _, best) -> Weight.equal (w a b) best
          | None -> false))
    h.frags

(* Lemma 5.1 in executable form. *)
let implies_mst h w = well_formed h && minimal h w
