lib/core/train.ml: Array List Partition Pieces Random Ssmst_sim
