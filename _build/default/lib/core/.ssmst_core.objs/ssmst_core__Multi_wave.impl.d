lib/core/multi_wave.ml: Array Fragment Int List Option Ssmst_graph Tree
