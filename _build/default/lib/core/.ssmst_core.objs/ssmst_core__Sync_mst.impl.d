lib/core/sync_mst.ml: Array Fragment Graph List Ssmst_graph Ssmst_protocols Ssmst_sim Tree Wave_echo Weight
