lib/core/multi_wave.mli: Fragment
