lib/core/labels.mli: Format Fragment Ssmst_graph Tree
