lib/core/sync_mst.mli: Fragment Graph Ssmst_graph Tree
