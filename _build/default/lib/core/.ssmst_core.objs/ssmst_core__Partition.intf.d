lib/core/partition.mli: Fragment Pieces
