lib/core/transformer.ml: Graph List Marker Network Random Scheduler Ssmst_graph Ssmst_sim Verifier
