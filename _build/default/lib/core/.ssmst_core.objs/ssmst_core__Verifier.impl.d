lib/core/verifier.ml: Array Fun Graph Labels List Marker Memory Option Partition Pieces Random Ssmst_graph Ssmst_sim Train Weight
