lib/core/marker.ml: Array Fragment Graph Labels List Multi_wave Partition Pieces Ssmst_graph Ssmst_sim Sync_mst Tree
