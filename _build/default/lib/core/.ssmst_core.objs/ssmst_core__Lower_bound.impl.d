lib/core/lower_bound.ml: Array Gen Graph List Marker Network Scheduler Ssmst_graph Ssmst_sim Tree Verifier
