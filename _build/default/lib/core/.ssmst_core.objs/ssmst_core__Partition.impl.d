lib/core/partition.ml: Array Fmt Fragment Fun Graph Hashtbl Int List Option Pieces Queue Ssmst_graph Ssmst_sim Tree
