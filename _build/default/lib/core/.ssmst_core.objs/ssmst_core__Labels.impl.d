lib/core/labels.ml: Array Fmt Fragment Fun Graph List Option Ssmst_graph Ssmst_sim Tree
