lib/core/lower_bound.mli: Graph Marker Ssmst_graph Tree
