lib/core/transformer.mli: Graph Marker Random Scheduler Ssmst_graph Ssmst_sim Tree Verifier
