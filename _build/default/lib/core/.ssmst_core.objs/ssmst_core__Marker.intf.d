lib/core/marker.mli: Fragment Graph Labels Partition Ssmst_graph Tree
