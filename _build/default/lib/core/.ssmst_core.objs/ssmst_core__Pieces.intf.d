lib/core/pieces.mli: Format Fragment Random Ssmst_graph
