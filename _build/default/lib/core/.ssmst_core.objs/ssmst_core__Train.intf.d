lib/core/train.mli: Partition Pieces Random
