lib/core/fragment.mli: Graph Mst Ssmst_graph Tree
