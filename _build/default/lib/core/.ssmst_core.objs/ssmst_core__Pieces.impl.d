lib/core/pieces.ml: Fmt Fragment Graph Mst Random Ssmst_graph Ssmst_sim Weight
