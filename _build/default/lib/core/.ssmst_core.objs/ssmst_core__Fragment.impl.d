lib/core/fragment.ml: Array Fun Graph Int List Mst Option Ssmst_graph Tree Weight
