open Ssmst_graph

(** The Section 9 apparatus: Ω(log n) verification time for O(log n)-bit
    schemes.  Lemma 9.1 reduces a τ-round, ℓ-bit scheme on the τ-subdivided
    family to a 1-round O(τ·ℓ)-bit scheme on the base family, which [54]
    bounds below by Ω(log² n) bits — so τ·ℓ = Ω(log² n). *)

type datapoint = {
  h : int;  (** hypertree height parameter *)
  tau : int;  (** subdivision parameter *)
  n : int;  (** nodes of the (subdivided) instance *)
  label_bits : int;
  detection_rounds : int option;  (** [None] on positive instances *)
}

val break_instance : Graph.t -> Tree.t -> Graph.t * Tree.t
(** Make one cross edge lighter than every tree edge on its cycle: a
    negative (non-MST) instance with the same topology. *)

val detection_time_of : Marker.t -> int option
(** Synchronous detection time of the compact verifier on the instance. *)

val measure : seed:int -> h:int -> tau:int -> positive:bool -> datapoint
(** Build a (possibly broken, possibly τ-subdivided) hypertree instance,
    label it (honestly or adversarially via {!Marker.forge}), and measure
    the compact scheme on it. *)

val instance : seed:int -> h:int -> tau:int -> positive:bool -> Graph.t * Tree.t * Marker.t
(** The instance-building pipeline, shared with the KKP measurement in
    {!Ssmst_pls.Kkp_pls.measure_lower_bound}. *)
