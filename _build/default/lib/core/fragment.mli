open Ssmst_graph

(** Fragments and fragment hierarchies (Definitions 5.1 and 5.2).

    A fragment is a connected subtree of the spanning tree T; a hierarchy is
    a laminar family containing T and all singletons, forming a rooted
    hierarchy-tree under inclusion.  Non-whole fragments carry a
    {e candidate} outgoing edge; Lemma 5.1: a well-formed hierarchy whose
    candidates are all minimum outgoing edges certifies that T is the MST. *)

type t = {
  index : int;  (** position in the hierarchy array *)
  level : int;  (** the SYNC_MST phase at which the fragment was active *)
  root : int;  (** the member closest to the root of T (Section 5.1) *)
  members : int array;  (** sorted node indices *)
  candidate : (int * int) option;  (** (w, x), w inside; [None] for T *)
  parent : int;  (** hierarchy-tree parent index; -1 for T *)
  children : int list;
}

type hierarchy = {
  tree : Tree.t;
  frags : t array;
  whole : int;  (** index of the fragment equal to T *)
  height : int;  (** ell, the level of T *)
  of_node : int list array;  (** containing fragments per node, by level *)
}

val size : t -> int

val mem : t -> int -> bool
(** Fragment membership (binary search). *)

val ident : Graph.t -> t -> int * int
(** ID(F) = (identity of the root, level), Section 6. *)

val is_whole : hierarchy -> t -> bool

val at : hierarchy -> int -> int -> t option
(** [at h v j] is the level-[j] fragment containing [v], if any. *)

val levels_of : hierarchy -> int -> int list
(** J(v): the levels at which [v] belongs to a fragment (Section 8). *)

val build :
  Tree.t -> (int * int * int list * (int * int) option) list -> hierarchy
(** [build tree records] assembles and validates a hierarchy from
    [(level, operational_root, members, candidate)] records: laminarity,
    presence of T and all singletons, strictly increasing levels along
    containment, connectivity, and candidates being outgoing tree edges.
    Roots are recomputed as the members closest to the root of T.
    @raise Graph.Malformed on any violation. *)

val well_formed : hierarchy -> bool
(** Property P1 + candidate-function validity: every fragment's edge set is
    exactly the candidates of its strict descendants (Definition 5.2). *)

val minimal : hierarchy -> Mst.weight_fn -> bool
(** Property P2: every candidate is a minimum outgoing edge. *)

val implies_mst : hierarchy -> Mst.weight_fn -> bool
(** Lemma 5.1, executable: {!well_formed} and {!minimal}. *)
