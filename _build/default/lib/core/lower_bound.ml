open Ssmst_graph
open Ssmst_sim

(* The Section 9 apparatus: instances witnessing that an MST verification
   scheme restricted to O(log n) bits per node needs Ω(log n) detection
   time.

   Lemma 9.1's reduction: a scheme with memory ℓ and detection time τ on
   the τ-subdivided family yields a 1-round scheme with O(τ·ℓ)-bit labels
   on the base family, which [54] proved needs Ω(log² n) bits.  Hence
   τ·ℓ = Ω(log² n): with ℓ = O(log n) bits, τ = Ω(log n).

   The experiment measures, over the hypertree-like family (the black-box
   properties of the [54] instances, see {!Gen.hypertree_like}) and its
   subdivisions:

   - the verifier's label size (bits) and measured detection time on
     negative instances, for the compact scheme of this paper;
   - the same for the KKP 1-round scheme (measured through its label size;
     its detection time is 1 by construction);
   - the time × memory products, which the lower bound says cannot drop
     below c·log² n. *)

type datapoint = {
  h : int;  (* hypertree height parameter *)
  tau : int;  (* subdivision parameter *)
  n : int;  (* nodes of the (subdivided) instance *)
  label_bits : int;
  detection_rounds : int option;  (* None on positive instances *)
}

(* Break minimality: make one non-tree (cross) edge lighter than every tree
   edge on its fundamental cycle. *)
let break_instance (g : Graph.t) (t : Tree.t) =
  let cross =
    Graph.edges g |> List.find (fun (u, v, _) -> not (Tree.is_tree_edge t u v))
  in
  let u0, v0, _ = cross in
  let g' = Graph.reweight g (fun u v w -> if (min u v, max u v) = (u0, v0) then 0 else w) in
  let parents =
    Array.init (Graph.n g) (fun v -> match Tree.parent t v with None -> -1 | Some p -> p)
  in
  (g', Tree.of_parents g' parents)

(* Run the compact verifier on the given (possibly broken) instance and
   measure time-to-alarm under the synchronous daemon. *)
let detection_time_of (m : Marker.t) =
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create m.graph in
  Net.detection_time net Scheduler.Sync ~max_rounds:20000

let measure ~seed ~h ~tau ~positive =
  let st = Gen.rng seed in
  let g0, t0 = Gen.hypertree_like st h in
  let g1, t1 = if positive then (g0, t0) else break_instance g0 t0 in
  let g, t = if tau = 0 then (g1, t1) else Gen.subdivide ~tau g1 t1 in
  let m = if positive then Marker.run g else Marker.forge g t in
  {
    h;
    tau;
    n = Graph.n g;
    label_bits = m.label_bits;
    detection_rounds = (if positive then None else detection_time_of m);
  }

(* Build the (possibly broken, possibly subdivided) instance and its marker
   output; shared with the KKP measurement in {!Ssmst_pls.Kkp_pls}. *)
let instance ~seed ~h ~tau ~positive =
  let st = Gen.rng seed in
  let g0, t0 = Gen.hypertree_like st h in
  let g1, t1 = if positive then (g0, t0) else break_instance g0 t0 in
  let g, t = if tau = 0 then (g1, t1) else Gen.subdivide ~tau g1 t1 in
  let m = if positive then Marker.run g else Marker.forge g t in
  (g, t, m)
