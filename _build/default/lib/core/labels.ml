open Ssmst_graph

(* The Section 5 label strings and their local verification.

   Each node carries four strings of ell+1 entries (ell = hierarchy height):

   - [roots]: '1' / '0' / '*' — whether the node is the root of its level-j
     fragment, a non-root member, or belongs to no level-j fragment;
   - [endp]: up / down / none / '*' — whether the node is the endpoint of
     the candidate edge of its level-j fragment, and if so whether that edge
     leads to its tree parent or to one of its tree children;
   - [parents]: bit j set iff the edge from the node's tree parent y down to
     the node is the candidate of y's level-j fragment (this is where "down"
     pointers are stored, to keep y's label at O(log n) bits);
   - [cnt]: the number (capped at 2) of candidate endpoints in the node's
     subtree *within* its level-j fragment — the counting companion of
     Example NumK used to verify condition EPS1 ("Or-EndP" in Table 2 is
     its OR projection).

   Legality is conditions RS0-RS5 and EPS0-EPS5, each checkable by a node
   reading only its own label and its tree neighbours' labels (a 1-proof
   labeling scheme, Lemma 5.2). *)

type rsym = R1 | R0 | RStar
type esym = Up | Down | ENone | EStar

type t = {
  len : int;  (* ell + 1 entries, levels 0..ell *)
  roots : rsym array;
  endp : esym array;
  parents : bool array;
  cnt : int array;  (* 0, 1 or 2 ("2" = two or more) *)
}

let bits (l : t) =
  (* 2 bits per roots/endp entry, 1 per parents bit, 2 per cnt entry *)
  Ssmst_sim.Memory.of_nat l.len + (l.len * 7)

let pp_rsym ppf = function
  | R1 -> Fmt.string ppf "1"
  | R0 -> Fmt.string ppf "0"
  | RStar -> Fmt.string ppf "*"

let pp_esym ppf = function
  | Up -> Fmt.string ppf "up"
  | Down -> Fmt.string ppf "down"
  | ENone -> Fmt.string ppf "none"
  | EStar -> Fmt.string ppf "*"

(* ------------------------------------------------------------------ *)
(* Marker (Lemma 5.4): derive the strings from the hierarchy.  The
   distributed implementation piggybacks on SYNC_MST (the actions only write
   fresh O(log n)-bit variables); its cost is accounted in Marker. *)

let of_hierarchy (h : Fragment.hierarchy) =
  let tree = h.tree in
  let n = Tree.n tree in
  let len = h.height + 1 in
  let labels =
    Array.init n (fun _ ->
        {
          len;
          roots = Array.make len RStar;
          endp = Array.make len EStar;
          parents = Array.make len false;
          cnt = Array.make len 0;
        })
  in
  Array.iter
    (fun (f : Fragment.t) ->
      let j = f.level in
      Array.iter
        (fun v ->
          labels.(v).roots.(j) <- (if f.root = v then R1 else R0);
          labels.(v).endp.(j) <- ENone)
        f.members;
      match f.candidate with
      | None -> ()
      | Some (w, x) ->
          (if Tree.parent tree w = Some x then labels.(w).endp.(j) <- Up
           else begin
             labels.(w).endp.(j) <- Down;
             labels.(x).parents.(j) <- true
           end))
    h.frags;
  (* cnt: bottom-up within each fragment *)
  Array.iter
    (fun (f : Fragment.t) ->
      let j = f.level in
      let rec count v =
        let own = match labels.(v).endp.(j) with Up | Down -> 1 | ENone | EStar -> 0 in
        let from_children =
          List.fold_left
            (fun acc c -> if labels.(c).roots.(j) = R0 then acc + count c else acc)
            0 (Tree.children tree v)
        in
        let total = min 2 (own + from_children) in
        labels.(v).cnt.(j) <- total;
        total
      in
      ignore (count f.root))
    h.frags;
  labels

(* ------------------------------------------------------------------ *)
(* Verifier: conditions RS0-RS5 and EPS0-EPS5.

   The checks run at a node [v] given read access to its *claimed* tree
   parent's and children's labels (the claims themselves are certified by
   the Example SP scheme, see Verifier).  Each violated condition is
   reported by name. *)

type view = {
  label : int -> t;  (* label of a node *)
  parent : int -> int option;  (* claimed tree parent *)
  children : int -> int list;  (* claimed tree children *)
  is_root : int -> bool;  (* claimed to be the root of T *)
  ident : int -> int;  (* node identity *)
}

let check_node (vw : view) v =
  let l = vw.label v in
  let bad = ref [] in
  let fail name = bad := name :: !bad in
  let ell = l.len - 1 in
  (* RS1: all strings across the tree have the same length; locally: same
     as the parent's length (the root anchors it against a certified n) *)
  (match vw.parent v with
  | Some p -> if (vw.label p).len <> l.len then fail "RS1"
  | None -> ());
  (* RS0: roots is a prefix over {1,*} followed by a suffix over {0,*} *)
  let seen_zero = ref false in
  Array.iter
    (fun s ->
      match s with
      | R0 -> seen_zero := true
      | R1 -> if !seen_zero then fail "RS0"
      | RStar -> ())
    l.roots;
  (* RS2: the root of T has no '0' and its ell'th entry is '1' *)
  if vw.is_root v then begin
    if Array.exists (fun s -> s = R0) l.roots then fail "RS2";
    if l.roots.(ell) <> R1 then fail "RS2"
  end;
  (* RS3: entry 0 is '1' *)
  if l.roots.(0) <> R1 then fail "RS3";
  (* RS4: the ell'th entry of every non-root is '0' *)
  if (not (vw.is_root v)) && l.roots.(ell) <> R0 then fail "RS4";
  (* RS5: a '0' at level j forces the parent's entry j to not be '*' *)
  (match vw.parent v with
  | Some p ->
      let lp = vw.label p in
      if lp.len = l.len then
        Array.iteri (fun j s -> if s = R0 && lp.roots.(j) = RStar then fail "RS5") l.roots
  | None -> ());
  (* membership helpers from the claimed strings *)
  let in_frag j = l.roots.(j) <> RStar in
  (* EPS0: parents bit j set implies the parent's endp at j is "down" *)
  (match vw.parent v with
  | Some p ->
      let lp = vw.label p in
      if lp.len = l.len then
        Array.iteri (fun j b -> if b && lp.endp.(j) <> Down then fail "EPS0") l.parents
  | None -> if Array.exists Fun.id l.parents then fail "EPS0");
  (* EPS2: endp "down" at j implies exactly one child has parents bit j *)
  Array.iteri
    (fun j e ->
      if e = Down then begin
        let marked =
          List.filter
            (fun c ->
              let lc = vw.label c in
              lc.len = l.len && lc.parents.(j))
            (vw.children v)
        in
        if List.length marked <> 1 then fail "EPS2"
      end)
    l.endp;
  (* consistency of endp/roots stars *)
  Array.iteri
    (fun j e ->
      let star_e = e = EStar and star_r = not (in_frag j) in
      if star_e <> star_r then fail "EPS-star")
    l.endp;
  (* EPS3: endp "up" at j: roots_j = '1' and no '1' above j *)
  Array.iteri
    (fun j e ->
      if e = Up then begin
        if l.roots.(j) <> R1 then fail "EPS3";
        for i = j + 1 to ell do
          if l.roots.(i) = R1 then fail "EPS3"
        done;
        (* an "up" endpoint must actually have a tree parent *)
        if vw.parent v = None then fail "EPS3"
      end)
    l.endp;
  (* EPS4: parents bit j: roots_j <> '0' and no '1' above j *)
  Array.iteri
    (fun j b ->
      if b then begin
        if l.roots.(j) = R0 then fail "EPS4";
        for i = j + 1 to ell do
          if l.roots.(i) = R1 then fail "EPS4"
        done
      end)
    l.parents;
  (* EPS5: every non-root has some "up" endp or some parents bit *)
  if not (vw.is_root v) then begin
    let has =
      Array.exists (fun e -> e = Up) l.endp || Array.exists Fun.id l.parents
    in
    if not has then fail "EPS5"
  end;
  (* EPS1 via counting: cnt consistency at v, and cnt = 1 at every fragment
     root below the top level (cnt = 0 for T's root at level ell) *)
  Array.iteri
    (fun j _ ->
      if in_frag j then begin
        let own = match l.endp.(j) with Up | Down -> 1 | ENone | EStar -> 0 in
        let from_children =
          List.fold_left
            (fun acc c ->
              let lc = vw.label c in
              if lc.len = l.len && lc.roots.(j) = R0 then acc + lc.cnt.(j) else acc)
            0 (vw.children v)
        in
        if l.cnt.(j) <> min 2 (own + from_children) then fail "EPS1-sum";
        if l.roots.(j) = R1 then begin
          let expected = if j = ell then 0 else 1 in
          if l.cnt.(j) <> expected then fail "EPS1-root"
        end
      end
      else if l.cnt.(j) <> 0 then fail "EPS1-star")
    l.cnt;
  List.rev !bad

(* Convenience: run the checks at every node; returns per-node violation
   lists (non-empty lists mean alarms). *)
let check_all (vw : view) n = List.init n (check_node vw)

let view_of_tree (tree : Tree.t) labels =
  {
    label = (fun v -> labels.(v));
    parent = (fun v -> Tree.parent tree v);
    children = (fun v -> Tree.children tree v);
    is_root = (fun v -> v = Tree.root tree);
    ident = (fun v -> Graph.id (Tree.graph tree) v);
  }

(* ------------------------------------------------------------------ *)
(* Queries used by the rest of the scheme (Lemma 5.2's "knows" items). *)

let belongs l j = j < l.len && l.roots.(j) <> RStar
let is_frag_root l j = j < l.len && l.roots.(j) = R1

(* Whether v is an endpoint of its level-j candidate, and through which
   tree edge; [`Down c] names the child found via the children's parents
   bits. *)
let candidate_edge (vw : view) v j =
  let l = vw.label v in
  if j >= l.len then None
  else
    match l.endp.(j) with
    | Up -> Option.map (fun p -> `Up p) (vw.parent v)
    | Down ->
        List.find_opt
          (fun c ->
            let lc = vw.label c in
            lc.len = l.len && lc.parents.(j))
          (vw.children v)
        |> Option.map (fun c -> `Down c)
    | ENone | EStar -> None

(* Whether tree-neighbour u shares v's level-j fragment, decidable from the
   two labels alone (Section 5.2): going down, the child is a member iff its
   roots entry is '0'; going up, v is a member of the parent's fragment iff
   v's own entry is '0'. *)
let same_fragment_as_child (vw : view) ~child j =
  let lc = vw.label child in
  j < lc.len && lc.roots.(j) = R0

let same_fragment_as_parent (vw : view) ~node j =
  let l = vw.label node in
  j < l.len && l.roots.(j) = R0
