open Ssmst_graph

(** The Section 5 label strings and their one-round verification.

    Each node carries four strings of [ell + 1] entries (ell = hierarchy
    height): [roots] (fragment-root indicators per level), [endp] (candidate
    endpoint directions), [parents] (the down-pointer bits stored at
    children to keep parents within O(log n) bits), and [cnt] (the
    endpoint-count aggregation verifying condition EPS1, whose OR projection
    is Table 2's "Or-EndP").  Legality is conditions RS0–RS5 and EPS0–EPS5
    (Lemmas 5.2/5.3), all checkable by reading tree neighbours only. *)

type rsym = R1 | R0 | RStar
type esym = Up | Down | ENone | EStar

type t = {
  len : int;  (** ell + 1 entries, levels 0..ell *)
  roots : rsym array;
  endp : esym array;
  parents : bool array;
  cnt : int array;  (** 0, 1, or 2 ("two or more") *)
}

val bits : t -> int

val pp_rsym : Format.formatter -> rsym -> unit
val pp_esym : Format.formatter -> esym -> unit

val of_hierarchy : Fragment.hierarchy -> t array
(** The marker (Lemma 5.4): derive all four strings from the hierarchy. *)

(** The verifier's read access to the claimed structure: labels plus the
    tree relations certified separately by Example SP. *)
type view = {
  label : int -> t;
  parent : int -> int option;
  children : int -> int list;
  is_root : int -> bool;
  ident : int -> int;
}

val check_node : view -> int -> string list
(** Names of the RS/EPS conditions node [v] violates (empty = accept). *)

val check_all : view -> int -> string list list

val view_of_tree : Tree.t -> t array -> view
(** A view over a trusted tree, for tests. *)

val belongs : t -> int -> bool
(** Whether the node belongs to a level-[j] fragment. *)

val is_frag_root : t -> int -> bool

val candidate_edge : view -> int -> int -> [ `Up of int | `Down of int ] option
(** The tree edge that is node [v]'s level-[j] candidate, when [v] is its
    endpoint; the down case is resolved through the children's parents
    bits. *)

val same_fragment_as_child : view -> child:int -> int -> bool
(** Whether the (claimed) child shares the node's level-[j] fragment. *)

val same_fragment_as_parent : view -> node:int -> int -> bool
(** Whether [node] shares its (claimed) parent's level-[j] fragment. *)
