(** The Multi_Wave primitive (Section 6.3.1): a Wave&Echo carrying a command
    in every fragment of the hierarchy, level by level — a fragment's wave
    starts only after all waves in its descendant fragments terminated
    (Observation 6.6) — pipelined to O(n) total ideal time on SYNC_MST
    hierarchies (Observation 6.8). *)

type 'a t = {
  results : 'a array;  (** per fragment index *)
  rounds : int;  (** ideal time of the pipelined cascade *)
}

val fragment_depth : Fragment.hierarchy -> Fragment.t -> int

val run : Fragment.hierarchy -> command:(Fragment.t -> 'a list -> 'a) -> 'a t
(** [command f child_echoes] runs at fragment [f] with the echoes of its
    hierarchy children already computed. *)

val linear_bound : Fragment.hierarchy -> 'a t -> bool
(** Observation 6.8 as a check: rounds ≤ c·n. *)
