open Ssmst_graph

(* The Multi_Wave primitive (Section 6.3.1): execute a Wave&Echo carrying a
   command in every fragment of the hierarchy, level by level, with the
   level-(j+1) wave in a fragment starting only after all level-j waves in
   its descendant fragments have terminated (Observation 6.6) — yet
   pipelined so that the whole cascade completes in O(n) ideal time
   (Observation 6.8), not the naive O(n log n).

   The command receives the fragment and the echoes already computed for
   its hierarchy children (the fragments it was merged from), so multi-wave
   passes can aggregate hierarchy-wide information — exactly how the marker
   identifies red/blue/large fragments and distributes pieces
   (Sections 6.3.2-6.3.8). *)

type 'a t = {
  results : 'a array;  (* per fragment index *)
  rounds : int;  (* ideal time of the pipelined cascade *)
}

(* depth of a fragment's subtree within T: the wave cost unit *)
let fragment_depth (h : Fragment.hierarchy) (f : Fragment.t) =
  let base = Tree.depth h.tree f.root in
  Array.fold_left (fun acc v -> max acc (Tree.depth h.tree v - base)) 0 f.members

let run (h : Fragment.hierarchy) ~(command : Fragment.t -> 'a list -> 'a) =
  let count = Array.length h.frags in
  let results : 'a option array = Array.make count None in
  (* levels present, ascending *)
  let levels =
    Array.to_list h.frags |> List.map (fun (f : Fragment.t) -> f.level)
    |> List.sort_uniq Int.compare
  in
  let rounds = ref (2 * (Tree.height h.tree + 1)) in
  List.iter
    (fun j ->
      let cost = ref 0 in
      Array.iter
        (fun (f : Fragment.t) ->
          if f.level = j then begin
            let child_echoes =
              List.map
                (fun ci ->
                  match results.(ci) with
                  | Some r -> r
                  | None -> invalid_arg "Multi_wave: child wave did not terminate first")
                f.children
            in
            results.(f.index) <- Some (command f child_echoes);
            (* wave + echo + informing wave over the fragment *)
            cost := max !cost ((3 * fragment_depth h f) + 3)
          end)
        h.frags;
      rounds := !rounds + !cost)
    levels;
  { results = Array.map Option.get results; rounds = !rounds }

(* Observation 6.8: on hierarchies built by SYNC_MST (level-j fragments have
   ≥ 2^j members), the cascade is linear in n. *)
let linear_bound (h : Fragment.hierarchy) (t : 'a t) = t.rounds <= 8 * Tree.n h.tree + 16
