open Ssmst_core

(** The Korman–Kutten 1-proof labeling scheme for MST ([54, 55]): the
    baseline this paper improves on.  Detection time exactly 1, memory
    Θ(log² n) bits per node — every node stores the full piece I(F_j(v))
    for each of its levels next to the Section 5 strings, so all agreement
    and minimality checks (C1/C2) are answerable in a single round. *)

type label = {
  base : Marker.node_label;  (** strings, SP, NumK (part labels unused) *)
  pieces : Pieces.t option array;  (** [pieces.(j)] = I(F_j(v)) *)
}

type t = { marker : Marker.t; labels : label array }

val bits : label -> int

val max_bits : t -> int

val mark : Marker.t -> t
(** The marker: keep all pieces at every node. *)

val check_node : t -> int -> string list
(** The one-round verifier at a node; names of violated checks. *)

val accepts : t -> bool

val rejecting_nodes : t -> int list

val measure_lower_bound :
  seed:int -> h:int -> tau:int -> positive:bool -> Lower_bound.datapoint * bool
(** The KKP side of the Section 9 trade-off experiment: label bits
    Θ(log² n), detection in one round; the boolean is whether the scheme
    rejected. *)
