lib/pls/simple_pls.ml: Array Graph List Ssmst_graph Ssmst_sim Tree
