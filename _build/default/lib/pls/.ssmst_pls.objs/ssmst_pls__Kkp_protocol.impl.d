lib/pls/kkp_protocol.ml: Array Graph Kkp_pls List Pieces Random Ssmst_core Ssmst_graph
