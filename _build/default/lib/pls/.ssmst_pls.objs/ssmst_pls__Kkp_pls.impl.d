lib/pls/kkp_pls.ml: Array Fun Graph Labels List Lower_bound Marker Pieces Ssmst_core Ssmst_graph Ssmst_sim Tree Weight
