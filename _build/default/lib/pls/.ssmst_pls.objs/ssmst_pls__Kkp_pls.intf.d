lib/pls/kkp_pls.mli: Lower_bound Marker Pieces Ssmst_core
