lib/protocols/reset.ml: Array Graph Memory Protocol Random Ss_bfs Ssmst_graph Ssmst_sim
