lib/protocols/datalink.mli:
