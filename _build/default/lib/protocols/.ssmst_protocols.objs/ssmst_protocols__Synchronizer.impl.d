lib/protocols/synchronizer.ml: Array Graph Memory Protocol Ssmst_graph Ssmst_sim
