lib/protocols/wave_echo.mli:
