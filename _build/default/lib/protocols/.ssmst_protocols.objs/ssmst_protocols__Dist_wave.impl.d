lib/protocols/dist_wave.ml: Array Graph List Memory Random Ssmst_graph Ssmst_sim
