lib/protocols/datalink.ml:
