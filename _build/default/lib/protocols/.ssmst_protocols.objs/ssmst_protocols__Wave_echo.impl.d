lib/protocols/wave_echo.ml: List
