lib/protocols/ss_bfs.ml: Array Dist Graph Memory Network Random Ssmst_graph Ssmst_sim Tree
