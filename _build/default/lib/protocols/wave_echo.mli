(** Wave&Echo (PIF, Section 2.3) over rooted forests, with exact ideal-time
    accounting: the value a distributed Wave&Echo computes plus the rounds
    it takes (2h for a wave+echo over height h).  The forest is a children
    function, so whole trees, SYNC_MST fragments and partition parts all
    work; [ttl] truncates the wave as in Procedure Count_Size. *)

type 'a t = {
  value : 'a;  (** aggregate computed at the root *)
  rounds : int;
  visited : int list;  (** nodes reached, in preorder *)
  truncated : bool;  (** whether [ttl] cut the wave *)
}

val run :
  children:(int -> int list) ->
  ?ttl:int ->
  leaf:(int -> 'a) ->
  combine:(int -> 'a list -> 'a) ->
  int ->
  'a t
(** [run ~children ~leaf ~combine root]: [combine v child_values] at
    internal nodes, [leaf v] where the wave stops. *)

val count : children:(int -> int list) -> ?ttl:int -> int -> int t
(** Node counting (Procedure Count_Size with [ttl]). *)

val sum : children:(int -> int list) -> ?ttl:int -> value:(int -> int) -> int -> int t

val logical_or :
  children:(int -> int list) -> ?ttl:int -> value:(int -> bool) -> int -> bool t

val minimum :
  children:(int -> int list) ->
  ?ttl:int ->
  candidate:(int -> 'a option) ->
  compare:('a -> 'a -> int) ->
  int ->
  'a option t
(** Minimum over per-node candidates ([None] skipped): Find_Min_Out_Edge. *)

val broadcast_rounds : children:(int -> int list) -> int -> int
(** Ideal time of a one-way broadcast (no echo). *)
