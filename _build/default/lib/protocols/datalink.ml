(* The self-stabilizing data-link emulation of Section 2.2 (after [3]):
   message passing over a shared-memory link without duplication, using a
   3-valued "toggle" per direction.

   The sender publishes (value, toggle); the receiver acknowledges by
   echoing the toggle it last consumed.  A new message is published only
   after the previous one was acknowledged, with the toggle advanced mod 3,
   so the receiver consumes each message exactly once even from an arbitrary
   initial state (after at most one spurious delivery, which is the
   self-stabilization cost the paper accepts).  Sending therefore costs O(1)
   ideal time and no extra asymptotic memory. *)

type toggle = T0 | T1 | T2

let next = function T0 -> T1 | T1 -> T2 | T2 -> T0
let toggle_equal a b = a = b

type 'a sender = { mutable outbox : 'a option; mutable tog : toggle; mutable queue : 'a list }
type 'a receiver = { mutable ack : toggle; mutable delivered : 'a list }

let sender () = { outbox = None; tog = T0; queue = [] }
let receiver () = { ack = T0; delivered = [] }

let send s msg = s.queue <- s.queue @ [ msg ]

(* One activation of the sender: it reads the receiver's ack register. *)
let sender_step s ~receiver_ack =
  match s.outbox with
  | Some _ when not (toggle_equal receiver_ack s.tog) -> ()  (* still in flight *)
  | _ -> (
      match s.queue with
      | [] -> s.outbox <- None
      | m :: rest ->
          s.queue <- rest;
          s.tog <- next s.tog;
          s.outbox <- Some m)

(* One activation of the receiver: it reads the sender's (outbox, toggle). *)
let receiver_step r ~sender_outbox ~sender_toggle =
  match sender_outbox with
  | Some m when not (toggle_equal r.ack sender_toggle) ->
      r.delivered <- r.delivered @ [ m ];
      r.ack <- sender_toggle
  | Some _ | None -> ()

let delivered r = r.delivered

let memory_bits = 2 (* one toggle: 3 values *)
