(** The self-stabilizing data-link emulation of Section 2.2 (after [3]):
    exactly-once message passing over a shared-memory link, using a 3-valued
    toggle per direction.  After at most one spurious delivery from an
    arbitrary initial state, every message is consumed exactly once; a send
    costs O(1) ideal time and 2 bits of extra memory per direction. *)

type toggle = T0 | T1 | T2

val next : toggle -> toggle
val toggle_equal : toggle -> toggle -> bool

type 'a sender = {
  mutable outbox : 'a option;  (** the register the receiver reads *)
  mutable tog : toggle;
  mutable queue : 'a list;
}

type 'a receiver = { mutable ack : toggle; mutable delivered : 'a list }

val sender : unit -> 'a sender
val receiver : unit -> 'a receiver

val send : 'a sender -> 'a -> unit
(** Enqueue a message for transmission. *)

val sender_step : 'a sender -> receiver_ack:toggle -> unit
(** One activation of the sender: publish the next message once the
    previous one is acknowledged. *)

val receiver_step : 'a receiver -> sender_outbox:'a option -> sender_toggle:toggle -> unit
(** One activation of the receiver: consume the outbox if the toggle moved. *)

val delivered : 'a receiver -> 'a list

val memory_bits : int
