(* Wave&Echo (PIF) over a rooted forest (Section 2.3).

   The wave starts at a root, propagates a command down the tree, and echoes
   aggregated results back up.  This module provides the *semantics plus
   exact ideal-time accounting*: the result any distributed Wave&Echo
   computes, together with the number of rounds it takes (2h for a wave and
   echo over a subtree of height h, h+1 for a one-way wave).

   The forest is given by a children function, so this works for whole
   trees, fragments of a forest during SYNC_MST, and parts of a partition
   alike.  An optional [ttl] truncates the wave, as in Procedure Count_Size
   (Section 4.2): nodes deeper than [ttl] are not visited. *)

type 'a t = {
  value : 'a;  (** aggregate computed at the root *)
  rounds : int;  (** ideal time of the wave + echo *)
  visited : int list;  (** nodes reached by the wave, in preorder *)
  truncated : bool;  (** whether [ttl] cut the wave before covering all *)
}

let run ~children ?ttl ~leaf ~combine root =
  let visited = ref [] in
  let truncated = ref false in
  let depth_reached = ref 0 in
  let rec go v d =
    visited := v :: !visited;
    if d > !depth_reached then depth_reached := d;
    let stop =
      match ttl with
      | Some limit -> d >= limit
      | None -> false
    in
    let cs = children v in
    if stop then begin
      if cs <> [] then truncated := true;
      leaf v
    end
    else combine v (List.map (fun c -> go c (d + 1)) cs)
  in
  let value = go root 0 in
  {
    value;
    rounds = 2 * !depth_reached;
    visited = List.rev !visited;
    truncated = !truncated;
  }

(* Common commands carried by waves in the paper. *)

let count ~children ?ttl root =
  run ~children ?ttl ~leaf:(fun _ -> 1)
    ~combine:(fun _ xs -> List.fold_left ( + ) 1 xs)
    root

let sum ~children ?ttl ~value root =
  run ~children ?ttl ~leaf:value
    ~combine:(fun v xs -> List.fold_left ( + ) (value v) xs)
    root

let logical_or ~children ?ttl ~value root =
  run ~children ?ttl ~leaf:value
    ~combine:(fun v xs -> List.fold_left ( || ) (value v) xs)
    root

(* Minimum by a comparison, with per-node candidates; [None] candidates are
   skipped.  Used for Find_Min_Out_Edge. *)
let minimum ~children ?ttl ~candidate ~compare root =
  let better a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a', Some b' -> if compare a' b' <= 0 then a else b
  in
  run ~children ?ttl ~leaf:candidate
    ~combine:(fun v xs -> List.fold_left better (candidate v) xs)
    root

(* One-way broadcast cost over a subtree (no echo). *)
let broadcast_rounds ~children root =
  let rec depth v = List.fold_left (fun acc c -> max acc (depth c + 1)) 0 (children v) in
  depth root + 1
