open Ssmst_graph

(* A Higham-Liang-style self-stabilizing MST ([48]; same regime as [18]):
   memory O(log n) bits per node, time Θ(n·|E|).

   The algorithm maintains a spanning tree and enforces the cycle property
   edge by edge: non-tree edges are examined one at a time by a circulating
   token; examining an edge walks the tree path between its endpoints
   (O(n) time) to find the heaviest path edge, and swaps if the non-tree
   edge is lighter.  A full quiet pass over all |E| edges certifies the
   tree, hence Θ(n·|E|) stabilization time — the shape reproduced here with
   explicit round charges for every walk.  Memory stays at a constant
   number of O(log n)-bit variables per node. *)

type result = {
  tree : Tree.t;
  rounds : int;  (* charged ideal time until a full quiet pass *)
  swaps : int;
  memory_bits : int;
}

let run ?(initial : Tree.t option) (g : Graph.t) =
  let n = Graph.n g in
  let w = Graph.plain_weight_fn g in
  let parent =
    match initial with
    | Some t -> Array.init n (fun v -> match Tree.parent t v with None -> -1 | Some p -> p)
    | None ->
        (* arbitrary initial spanning tree: BFS from node 0 *)
        let p = Array.make n (-1) in
        let seen = Array.make n false in
        let q = Queue.create () in
        seen.(0) <- true;
        Queue.add 0 q;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          Graph.iter_ports g u (fun _ v ->
              if not seen.(v) then begin
                seen.(v) <- true;
                p.(v) <- u;
                Queue.add v q
              end)
        done;
        p
  in
  let rounds = ref 0 in
  let swaps = ref 0 in
  let depth_of () =
    let d = Array.make n (-1) in
    let rec go v = if d.(v) >= 0 then d.(v) else if parent.(v) < 0 then (d.(v) <- 0; 0)
      else begin
        let x = go parent.(v) + 1 in
        d.(v) <- x;
        x
      end
    in
    for v = 0 to n - 1 do ignore (go v) done;
    d
  in
  (* tree path between u and v via parent pointers; returns the edge list *)
  let tree_path u v =
    let d = depth_of () in
    let rec climb a b acc_a acc_b =
      if a = b then (acc_a, acc_b)
      else if d.(a) >= d.(b) then climb parent.(a) b ((a, parent.(a)) :: acc_a) acc_b
      else climb a parent.(b) acc_a ((b, parent.(b)) :: acc_b)
    in
    let up_a, up_b = climb u v [] [] in
    List.rev_append up_a up_b
  in
  let quiet = ref false in
  let guard = ref (4 * n * Graph.num_edges g + 64) in
  while not !quiet do
    quiet := true;
    Graph.fold_edges
      (fun () u v _ ->
        let is_tree = parent.(u) = v || parent.(v) = u in
        if not is_tree then begin
          let path = tree_path u v in
          (* the token walks the path and back: charge its length *)
          rounds := !rounds + (2 * List.length path) + 2;
          let heaviest =
            List.fold_left
              (fun acc (a, b) ->
                match acc with
                | Some (_, _, bw) when Weight.(w a b <= bw) -> acc
                | _ -> Some (a, b, w a b))
              None path
          in
          match heaviest with
          | Some (a, _, bw) when Weight.(w u v < bw) ->
              (* swap: remove (a, parent a), insert (u, v); re-orient the
                 detached side towards the new edge (an O(n) wave) *)
              quiet := false;
              incr swaps;
              rounds := !rounds + List.length path + 2;
              (* detach a from its parent, re-root a's side at u or v *)
              parent.(a) <- -1;
              let side_of x =
                (* walk up from x: lands at a iff x is on the detached side *)
                let rec top y = if parent.(y) < 0 then y else top parent.(y) in
                top x = a
              in
              let inside, outside = if side_of u then (u, v) else (v, u) in
              let rec flip x prev =
                let p = parent.(x) in
                parent.(x) <- prev;
                if p >= 0 then flip p x
              in
              flip inside outside
          | Some _ | None -> ()
        end
        else rounds := !rounds + 1)
      () g;
    decr guard;
    if !guard < 0 then raise (Graph.Malformed "higham_liang: did not stabilize")
  done;
  (* one more certifying pass is included in the loop above (the quiet one) *)
  let tree = Tree.of_parents g parent in
  let memory_bits = 6 * Ssmst_sim.Memory.of_nat (max 2 n) in
  { tree; rounds = !rounds; swaps = !swaps; memory_bits }

