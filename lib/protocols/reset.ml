open Ssmst_graph
open Ssmst_sim

(* A self-stabilizing reset service (the [13]-style component the enhanced
   transformer relies on, Section 10).

   Built on the self-stabilizing BFS tree ({!Ss_bfs}): the leader owns an
   epoch counter.  Any node can raise a reset *request*; requests propagate
   up the BFS tree, the leader bumps the epoch, and the new epoch floods
   down, re-initializing the wrapped application's state on every node it
   reaches.  From an arbitrary initial configuration the BFS tree
   stabilizes in O(n) rounds and epoch inconsistencies are flushed by the
   flood, after which a reset costs O(D) rounds.  While a request burst
   drains, the leader may bump the epoch several times; each bump
   re-initializes idempotently, so only the convergence matters (the full
   three-phase handshake of [13] trades this slack for message economy).

   The application is any {!Protocol.S}; its [alarm] doubles as the reset
   request (exactly how the transformer turns the verifier's detection into
   a reconstruction). *)

module Make (App : Protocol.S) = struct
  type state = {
    bfs : Ss_bfs.P.state;
    epoch : int;
    request : bool;  (* a reset request travelling towards the leader *)
    app : App.state;
  }

  let init g v =
    { bfs = Ss_bfs.P.init g v; epoch = 0; request = false; app = App.init g v }

  let step g v (s : state) read =
    let bfs = Ss_bfs.P.step g v s.bfs (fun u -> (read u).bfs) in
    let is_leader = bfs.Ss_bfs.parent < 0 in
    (* requests: mine (app alarm) or bubbling up from BFS children *)
    let child_request =
      Graph.exists_ports g v (fun _ u ->
          let su = read u in
          su.bfs.Ss_bfs.parent = v && su.request)
    in
    let wants_reset = App.alarm s.app || child_request in
    if is_leader then begin
      (* the leader consumes requests by bumping the epoch *)
      let epoch = if wants_reset then s.epoch + 1 else s.epoch in
      let app = if wants_reset then App.init g v else App.step g v s.app (fun u -> (read u).app) in
      { bfs; epoch; request = false; app }
    end
    else begin
      let parent_epoch =
        if bfs.Ss_bfs.parent >= 0 then (read bfs.Ss_bfs.parent).epoch else s.epoch
      in
      if parent_epoch <> s.epoch then
        (* a new epoch floods down: adopt it and restart the application *)
        { bfs; epoch = parent_epoch; request = false; app = App.init g v }
      else
        { bfs; epoch = s.epoch; request = wants_reset;
          app = App.step g v s.app (fun u -> (read u).app) }
    end

  let alarm _ = false (* alarms are consumed as reset requests *)

  let equal (a : state) (b : state) =
    a.epoch = b.epoch && a.request = b.request && Ss_bfs.P.equal a.bfs b.bfs
    && App.equal a.app b.app

  let bits s =
    Ss_bfs.P.bits s.bfs + Memory.of_nat s.epoch + 1 + App.bits s.app

  let corrupt st g v s =
    {
      s with
      bfs = Ss_bfs.P.corrupt st g v s.bfs;
      epoch = Random.State.int st 64;
      app = App.corrupt st g v s.app;
    }

  let corrupt_field st g v s =
    match Random.State.int st 3 with
    | 0 -> { s with epoch = Random.State.int st 64 }
    | 1 -> { s with bfs = Ss_bfs.P.corrupt_field st g v s.bfs }
    | _ -> { s with app = App.corrupt_field st g v s.app }

  let field_names =
    Array.append [| "bfs"; "epoch"; "request" |]
      (Array.map (fun f -> "app." ^ f) App.field_names)

  let encode s =
    Array.append
      [| Protocol.hash_field s.bfs; s.epoch; Bool.to_int s.request |]
      (App.encode s.app)

  let epoch s = s.epoch
  let app s = s.app
end
