open Ssmst_graph
open Ssmst_sim

(* The alpha synchronizer (Awerbuch), the component Section 10 uses to run
   the synchronous SYNC_MST under an asynchronous daemon.

   Each node keeps a pulse counter and two state buffers.  It advances from
   pulse p to p+1 only when every neighbour's pulse is >= p, computing the
   wrapped protocol's synchronous round p against each neighbour's
   pulse-p snapshot: the current buffer of a neighbour still at pulse p, or
   the previous buffer of a neighbour already at p+1 (neighbouring pulses
   never differ by more than one).  The wrapped protocol therefore observes
   exactly the synchronous execution, at a constant time overhead — each
   asynchronous round advances every pulse at least once under a fair
   daemon.

   Pulse counters are kept as plain integers here; bounding them mod a
   small constant (as the self-stabilizing variants of [10, 11] do, paired
   with a reset) only changes the comparison to a windowed one. *)

module Make (P : Protocol.S) = struct
  type state = {
    pulse : int;
    cur : P.state;  (* state at [pulse] *)
    prev : P.state;  (* state at [pulse - 1] *)
  }

  let init g v =
    let s = P.init g v in
    { pulse = 0; cur = s; prev = s }

  let step g v (s : state) read =
    let ready =
      Graph.for_all_ports g v (fun _ u -> (read u).pulse >= s.pulse)
    in
    if not ready then s
    else begin
      (* neighbours are at pulse or pulse+1; select their pulse-[s.pulse]
         snapshot *)
      let snapshot u =
        let su = read u in
        if su.pulse = s.pulse then su.cur
        else if su.pulse = s.pulse + 1 then su.prev
        else (* > pulse + 1 cannot happen under the advance rule *) su.prev
      in
      let next = P.step g v s.cur snapshot in
      { pulse = s.pulse + 1; cur = next; prev = s.cur }
    end

  let alarm s = P.alarm s.cur

  let equal (a : state) (b : state) =
    a.pulse = b.pulse && P.equal a.cur b.cur && P.equal a.prev b.prev

  let bits s = Memory.of_nat s.pulse + P.bits s.cur + P.bits s.prev

  let corrupt st g v s = { s with cur = P.corrupt st g v s.cur }

  (* the pulse counter is load-bearing for the advance rule (the
     synchronizer itself is not self-stabilizing), so the targeted-field
     fault perturbs one field of the wrapped register instead *)
  let corrupt_field st g v s = { s with cur = P.corrupt_field st g v s.cur }

  let field_names = [| "pulse"; "cur"; "prev" |]
  let encode s = [| s.pulse; Protocol.hash_field s.cur; Protocol.hash_field s.prev |]

  let pulse s = s.pulse
  let current s = s.cur
end
