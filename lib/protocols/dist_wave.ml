open Ssmst_graph
open Ssmst_sim

(* Register-level Wave&Echo, per the shared-memory implementation notes of
   Section 4.2.

   A node does not store its children list: it finds its children by
   scanning its neighbours for nodes whose parent pointer names it, and it
   reads their ECHO variables directly.  The paper's precaution is
   implemented literally: before posting a wave, the initiator posts a
   reset request (a new sequence number), and a node joins wave [q] only
   after its own children have adopted [q], so stale ECHO values are never
   aggregated.

   The protocol computes, for the root of every tree of the forest, the
   aggregate of a command over its tree: each node combines its own value
   with its children's echoes.  Used to validate the functional
   {!Wave_echo} cost model against a genuine protocol execution. *)

type phase = Idle | Waving | Echoed

type state = {
  parent : int;  (* node index of the parent; -1 at a root; fixed *)
  seq : int;  (* wave sequence the node is participating in *)
  phase : phase;
  echo : int;  (* the ECHO variable: valid when phase = Echoed *)
  value : int;  (* this node's own contribution; fixed *)
  result : int option;  (* at roots: aggregate of the completed wave *)
}

module type CONFIG = sig
  val parent : int array  (* the forest; -1 at roots *)
  val value : int -> int  (* per-node contribution *)
  val combine : int -> int -> int  (* associative-commutative aggregation *)
end

module Make (C : CONFIG) = struct
  type nonrec state = state

  let init _g v =
    {
      parent = C.parent.(v);
      (* roots start wave 1 so that idle nodes (at seq 0) join it *)
      seq = (if C.parent.(v) < 0 then 1 else 0);
      phase = (if C.parent.(v) < 0 then Waving else Idle);
      echo = 0;
      value = C.value v;
      result = None;
    }

  let children g v read =
    Array.to_list (Graph.neighbours g v)
    |> List.filter (fun u -> (read u).parent = v)

  let step g v (s : state) read =
    let kids = children g v read in
    let is_root = s.parent < 0 in
    match s.phase with
    | Idle ->
        (* join the parent's wave once it is ahead of us *)
        if (not is_root) && Graph.has_edge g v s.parent then begin
          let p = read s.parent in
          if p.phase = Waving && p.seq > s.seq then { s with seq = p.seq; phase = Waving }
          else s
        end
        else s
    | Waving ->
        (* aggregate once every child has echoed this wave *)
        let all_echoed =
          List.for_all
            (fun c ->
              let sc = read c in
              sc.seq = s.seq && sc.phase = Echoed)
            kids
        in
        if all_echoed then begin
          let agg =
            List.fold_left (fun acc c -> C.combine acc (read c).echo) s.value kids
          in
          if is_root then
            (* wave complete: record the result, reset for the next wave *)
            { s with phase = Waving; seq = s.seq + 1; result = Some agg }
          else { s with phase = Echoed; echo = agg }
        end
        else s
    | Echoed ->
        (* wait for the parent to start the next wave *)
        if (not is_root) && Graph.has_edge g v s.parent then begin
          let p = read s.parent in
          if p.seq > s.seq then { s with seq = p.seq; phase = Waving } else s
        end
        else s

  let alarm _ = false

  let equal (a : state) (b : state) = a = b

  let bits s =
    Memory.of_int s.parent + Memory.of_nat s.seq + 2 + Memory.of_int s.echo
    + Memory.of_int s.value
    + Memory.of_option Memory.of_int s.result

  let corrupt st _ _ s =
    { s with seq = Random.State.int st 16; echo = Random.State.int st 1024 }

  let corrupt_field st _ _ s =
    if Random.State.bool st then { s with seq = Random.State.int st 16 }
    else { s with echo = Random.State.int st 1024 }

  let field_names = [| "parent"; "seq"; "phase"; "echo"; "value"; "result" |]

  let encode s =
    [|
      s.parent;
      s.seq;
      (match s.phase with Idle -> 0 | Waving -> 1 | Echoed -> 2);
      s.echo;
      s.value;
      Protocol.hash_field s.result;
    |]
end
