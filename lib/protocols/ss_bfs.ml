open Ssmst_graph
open Ssmst_sim

(* Self-stabilizing leader election + BFS spanning tree (the [1, 28]-style
   module used by the enhanced transformer, Section 10).

   Every node maintains (leader, dist, parent).  A node whose identity beats
   every neighbour's leader claims leadership; otherwise it adopts the best
   (max leader, min dist) neighbour as parent.  Fake leader identities left
   over from an arbitrary initial state are flushed by the distance bound
   [n]: a chain supporting a non-existent leader must keep growing its
   distance and dies when it exceeds the bound.  The bound is supplied by
   the network-size module of the transformer (the paper's [1, 28] obtain it
   without an a-priori bound; we pass the true n, which those modules
   compute).  Stabilizes in O(n) rounds with O(log n) bits per node. *)

type state = {
  leader : int;  (* identity of the believed leader *)
  dist : int;  (* hop distance to that leader *)
  parent : int;  (* node index of the parent, -1 for the root *)
}

module P = struct
  type nonrec state = state

  let init g v = { leader = Graph.id g v; dist = 0; parent = -1 }

  let step g v (_self : state) read =
    let n = Graph.n g in
    let my_id = Graph.id g v in
    (* best (leader, dist) among neighbours with a legal distance *)
    let best = ref None in
    Graph.iter_ports g v (fun _ u ->
        let s = read u in
        if s.dist < n then
          match !best with
          | Some (l, d, _) when l > s.leader || (l = s.leader && d <= s.dist) -> ()
          | _ -> best := Some (s.leader, s.dist, u));
    match !best with
    | Some (l, d, u) when l > my_id -> { leader = l; dist = d + 1; parent = u }
    | Some _ | None -> { leader = my_id; dist = 0; parent = -1 }

  let alarm _ = false

  let equal (a : state) (b : state) = a = b

  let bits s = Memory.of_int s.leader + Memory.of_int s.dist + Memory.of_int s.parent

  let corrupt st g _v _s =
    {
      leader = Random.State.int st (4 * Graph.n g);
      dist = Random.State.int st (2 * Graph.n g);
      parent = Random.State.int st (Graph.n g) - 1;
    }

  let corrupt_field st g _v s =
    match Random.State.int st 3 with
    | 0 -> { s with leader = Random.State.int st (4 * Graph.n g) }
    | 1 -> { s with dist = Random.State.int st (2 * Graph.n g) }
    | _ -> { s with parent = Random.State.int st (Graph.n g) - 1 }

  let field_names = [| "leader"; "dist"; "parent" |]
  let encode s = [| s.leader; s.dist; s.parent |]

  (* packed codec: one word per field *)
  let words _ = 3
  let field_offsets _ = [| 0; 1; 2 |]

  let pack _ _ (s : state) buf off =
    buf.(off) <- s.leader;
    buf.(off + 1) <- s.dist;
    buf.(off + 2) <- s.parent

  let unpack _ _ buf off =
    { leader = buf.(off); dist = buf.(off + 1); parent = buf.(off + 2) }
end

module Net = Network.Make (P)

(* Whether the current global state is a correct BFS tree rooted at the
   maximum identity. *)
let stabilized (net : Net.t) =
  let g = Net.graph net in
  let n = Graph.n g in
  let max_id = ref (Graph.id g 0) and max_v = ref 0 in
  for v = 1 to n - 1 do
    if Graph.id g v > !max_id then begin
      max_id := Graph.id g v;
      max_v := v
    end
  done;
  let dist = Dist.bfs g !max_v in
  let ok = ref true in
  for v = 0 to n - 1 do
    let s = Net.state net v in
    if s.leader <> !max_id || s.dist <> dist.(v) then ok := false;
    if v <> !max_v && s.parent >= 0 then
      if not (Graph.has_edge g v s.parent) || dist.(s.parent) <> dist.(v) - 1 then ok := false;
    if v = !max_v && s.parent >= 0 then ok := false;
    if v <> !max_v && s.parent < 0 then ok := false
  done;
  !ok

(* Rounds until stabilization from the current state. *)
let stabilization_time net daemon ~max_rounds =
  let executed, reached = Net.run_until net daemon ~max_rounds (fun n -> stabilized n) in
  if reached then Some executed else None

(* The stabilized output as a rooted tree. *)
let tree (net : Net.t) =
  let g = Net.graph net in
  let parent = Array.init (Graph.n g) (fun v -> (Net.state net v).parent) in
  Tree.of_parents g parent
