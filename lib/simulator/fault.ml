open Ssmst_graph

(* Typed fault models: placement x severity x cadence, applied through one
   deterministic entry point shared by both network engines (see the
   interface for the full story).  Everything here is a pure function of
   the RNG state, the graph and the model: victim lists come back sorted
   and severities are applied in ascending node order, so identical seeds
   reproduce identical post-fault configurations on either engine. *)

type id = int
(* per-run injection id: the engine numbers injections 0, 1, ... in the
   order they rewrite registers, and write causes refer back to them *)

type placement =
  | Uniform
  | Clustered of { center : int option; radius : int }
  | Near_root of { root : int }
  | Targeted of int list

type severity = Corrupt_random | Crash_reset | Bit_flip

type cadence = One_shot | Intermittent of { period : int; repeats : int }

type t = {
  placement : placement;
  severity : severity;
  cadence : cadence;
  count : int;
}

let make ?(placement = Uniform) ?(severity = Corrupt_random) ?(cadence = One_shot) ~count () =
  if count < 0 then invalid_arg "Fault.make: negative count";
  (match placement with
  | Clustered { radius; _ } when radius < 0 -> invalid_arg "Fault.make: negative radius"
  | _ -> ());
  (match cadence with
  | Intermittent { period; repeats } when period <= 0 || repeats < 0 ->
      invalid_arg "Fault.make: intermittent cadence needs period > 0 and repeats >= 0"
  | _ -> ());
  { placement; severity; cadence; count }

let uniform ~count = make ~count ()

let placement_string = function
  | Uniform -> "uniform"
  | Clustered { center; radius } ->
      Fmt.str "clustered(%sr=%d)"
        (match center with None -> "" | Some c -> Fmt.str "c=%d," c)
        radius
  | Near_root { root } -> Fmt.str "near-root(%d)" root
  | Targeted vs -> Fmt.str "targeted[%a]" Fmt.(list ~sep:comma int) vs

let severity_string = function
  | Corrupt_random -> "corrupt"
  | Crash_reset -> "crash"
  | Bit_flip -> "bit-flip"

let cadence_string = function
  | One_shot -> "one-shot"
  | Intermittent { period; repeats } -> Fmt.str "every%dx%d" period repeats

let to_string m =
  Fmt.str "%s/%s/%s x%d"
    (placement_string m.placement)
    (severity_string m.severity)
    (cadence_string m.cadence)
    m.count

let pp ppf m = Fmt.string ppf (to_string m)

(* Distinct draws from [universe] by rejection — the historical uniform
   sampler's RNG consumption, generalized to an arbitrary universe.  The
   result is sorted: Hashtbl fold order must never leak out (it varies
   across runs and OCaml versions, which used to break trace replay). *)
let sample_distinct st universe count =
  let n = Array.length universe in
  let count = min count n in
  let chosen = Hashtbl.create (max 1 count) in
  while Hashtbl.length chosen < count do
    Hashtbl.replace chosen universe.(Random.State.int st n) ()
  done;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) chosen [])

let choose_victims st g m =
  let n = Graph.n g in
  match m.placement with
  | Uniform -> sample_distinct st (Array.init n Fun.id) m.count
  | Clustered { center; radius } ->
      let center =
        match center with
        | Some c ->
            if c < 0 || c >= n then invalid_arg "Fault.choose_victims: center out of range";
            c
        | None -> Random.State.int st n
      in
      let d = Dist.bfs g center in
      let ball = ref [] in
      for v = n - 1 downto 0 do
        if d.(v) >= 0 && d.(v) <= radius then ball := v :: !ball
      done;
      let ball = Array.of_list !ball in
      if Array.length ball <= m.count then Array.to_list ball
      else sample_distinct st ball m.count
  | Near_root { root } ->
      if root < 0 || root >= n then invalid_arg "Fault.choose_victims: root out of range";
      let d = Dist.bfs g root in
      let reachable = ref [] in
      for v = n - 1 downto 0 do
        if d.(v) >= 0 then reachable := v :: !reachable
      done;
      (* closest-first, node id breaking distance ties — monomorphic, and
         allocation-free where the old polymorphic tuple compare was not *)
      let closest =
        List.sort
          (fun u v -> if d.(u) <> d.(v) then Int.compare d.(u) d.(v) else Int.compare u v)
          !reachable
        |> List.filteri (fun i _ -> i < m.count)
      in
      List.sort Int.compare closest
  | Targeted vs ->
      List.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Fault.choose_victims: targeted victim out of range")
        vs;
      List.sort_uniq Int.compare vs

module Apply (P : Protocol.S) = struct
  let corrupt_one st g severity v s =
    match severity with
    | Corrupt_random -> P.corrupt st g v s
    | Crash_reset -> P.init g v
    | Bit_flip -> P.corrupt_field st g v s

  let apply st g m ~get ~set =
    let victims = choose_victims st g m in
    List.iter (fun v -> set v (corrupt_one st g m.severity v (get v))) victims;
    victims
end
