(** Typed fault models and their deterministic application.

    The paper's robustness claims quantify over *which* nodes an adversary
    corrupts and *how* (Section 2.4: any f faults are detected within time
    O(f log n) at distance O(f log n)).  This module makes that adversary a
    first-class value: a {!t} combines a placement (where the faults land),
    a severity (what happens to a victim's register) and a cadence (one
    burst or periodic re-injection), and {!Apply} turns it into register
    perturbations through a single deterministic entry point shared by both
    network engines — identical seeds yield identical victim sets and
    identical post-fault registers, which trace replay and the engine≡naive
    differential suite depend on. *)

open Ssmst_graph

type id = int
(** Per-run injection id: engines number injections [0, 1, ...] in the
    order they rewrite registers; {!Trace.cause} [Fault] values and
    {!Trace.event} [Fault_injected.fault] refer back to these. *)

type placement =
  | Uniform  (** victims drawn uniformly without replacement *)
  | Clustered of { center : int option; radius : int }
      (** victims drawn from the radius-[radius] ball around [center]
          (random center when [None]): the fault-containment worst case,
          all faults inside one O(radius) neighbourhood *)
  | Near_root of { root : int }
      (** the adversarial placement of the Section 9 discussion: the
          victims closest to [root] (BFS distance, ties by node index) —
          fully deterministic, consumes no randomness *)
  | Targeted of int list
      (** an explicit victim list (deduplicated, out-of-range indices
          rejected); the model's [count] is ignored *)

type severity =
  | Corrupt_random
      (** [Protocol.S.corrupt]: an arbitrary type-correct scrambling *)
  | Crash_reset
      (** crash-and-rejoin: the register reverts to [Protocol.S.init] *)
  | Bit_flip
      (** [Protocol.S.corrupt_field]: perturb exactly one field *)

type cadence =
  | One_shot
  | Intermittent of { period : int; repeats : int }
      (** after the initial burst, re-inject every [period] rounds, at most
          [repeats] further times (interpreted by {!Campaign.drive}) *)

type t = {
  placement : placement;
  severity : severity;
  cadence : cadence;
  count : int;  (** victims per burst (capped at n; ignored by [Targeted]) *)
}

val make : ?placement:placement -> ?severity:severity -> ?cadence:cadence -> count:int -> unit -> t
(** Defaults: [Uniform], [Corrupt_random], [One_shot] — the historical
    [inject_faults] model. *)

val uniform : count:int -> t

val to_string : t -> string
(** A compact, stable descriptor, e.g. ["clustered(r=2)/corrupt/one-shot x4"]. *)

val pp : Format.formatter -> t -> unit

val choose_victims : Random.State.t -> Graph.t -> t -> int list
(** The victim set of one burst: sorted ascending, deterministic in the
    RNG state, the graph and the model.  [Uniform] consumes the RNG exactly
    as the historical sampler did (distinct rejection draws). *)

(** The severity semantics over a concrete protocol.  Both {!Network.Naive}
    and {!Network.Make} funnel injection through {!Apply.apply} so the two
    engines corrupt the same victims, in the same (ascending) order, with
    the same RNG consumption. *)
module Apply (P : Protocol.S) : sig
  val corrupt_one : Random.State.t -> Graph.t -> severity -> int -> P.state -> P.state
  (** The new register of victim [v] under the given severity. *)

  val apply :
    Random.State.t ->
    Graph.t ->
    t ->
    get:(int -> P.state) ->
    set:(int -> P.state -> unit) ->
    int list
  (** Choose one burst of victims and rewrite their registers through
      [set] (ascending node order); returns the victims, sorted. *)
end
