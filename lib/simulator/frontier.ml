(* Dense dirty-node frontier (see the interface).  Invariant: every node
   whose dirty flag is set has at least one entry in [buf.(0 .. len-1)];
   entries whose flag is clear are stale and get dropped by the next
   drain/compact.  A node can appear at most twice live-ish (one stale
   entry shadowed by a re-mark), and dedup falls out of the clear-flag-
   while-collecting discipline: the first entry scanned for a dirty node
   collects it and clears the flag, so any later duplicate reads as
   stale. *)

type t = {
  dirty : bool array;
  members : int array;  (* drain output; capacity n, live members are distinct *)
  mutable buf : int array;  (* insertion-order entries, live + stale *)
  mutable len : int;
}

let n t = Array.length t.dirty
let mem t v = t.dirty.(v)
let is_empty t = t.len = 0
let length t = t.len

let live t =
  let c = ref 0 in
  Array.iter (fun d -> if d then incr c) t.dirty;
  !c

(* ---- monomorphic in-place int sort ---------------------------------- *)

let insertion a lo hi =
  for i = lo + 1 to hi - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

(* Median-of-three quicksort, recursing on the smaller side and looping
   on the larger so the stack stays O(log m).  Members are distinct node
   ids, so no equal-key pathologies arise; the median pivot handles the
   already-sorted runs the mark order tends to produce. *)
let rec qsort a lo hi =
  if hi - lo <= 24 then insertion a lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let swap i j =
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    in
    (* order a.(lo) <= a.(mid) <= a.(hi-1), then pivot = a.(mid) *)
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi - 1) < a.(lo) then swap (hi - 1) lo;
    if a.(hi - 1) < a.(mid) then swap (hi - 1) mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while a.(!i) < pivot do incr i done;
      while a.(!j) > pivot do decr j done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    if !j + 1 - lo < hi - !i then begin
      qsort a lo (!j + 1);
      qsort a !i hi
    end
    else begin
      qsort a !i hi;
      qsort a lo (!j + 1)
    end
  end

let sort a m = qsort a 0 m

(* ---- mutation ------------------------------------------------------- *)

let mark t v =
  if not t.dirty.(v) then begin
    t.dirty.(v) <- true;
    if t.len = Array.length t.buf then begin
      (* only async flag churn can push past n entries; double and move on *)
      let nb = Array.make (max 8 (2 * Array.length t.buf)) 0 in
      Array.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end;
    t.buf.(t.len) <- v;
    t.len <- t.len + 1
  end

let unmark t v = t.dirty.(v) <- false

let fill t =
  let n = Array.length t.dirty in
  for v = 0 to n - 1 do
    t.dirty.(v) <- true;
    t.buf.(v) <- v
  done;
  t.len <- n

let create ?(all_dirty = true) n =
  let t =
    {
      dirty = Array.make n false;
      members = Array.make (max n 1) 0;
      buf = Array.make (max n 1) 0;
      len = 0;
    }
  in
  if all_dirty then fill t;
  t

(* Dense frontiers (>= n/8 entries) drain by an ordered scan of the flag
   array: O(n) predictable branches, ascending for free — cheaper than
   sorting ~n collected members.  Sparse frontiers collect the live
   entries and sort the short prefix.  Both paths clear every flag and
   produce the identical ascending member sequence. *)
let drain t =
  let n = Array.length t.dirty in
  let members = t.members in
  let m = ref 0 in
  if t.len >= n lsr 3 then
    for v = 0 to n - 1 do
      if t.dirty.(v) then begin
        t.dirty.(v) <- false;
        members.(!m) <- v;
        incr m
      end
    done
  else begin
    for i = 0 to t.len - 1 do
      let v = t.buf.(i) in
      if t.dirty.(v) then begin
        t.dirty.(v) <- false;
        members.(!m) <- v;
        incr m
      end
    done;
    sort members !m
  end;
  t.len <- 0;
  (members, !m)

let compact t =
  let m = ref 0 in
  for i = 0 to t.len - 1 do
    let v = t.buf.(i) in
    if t.dirty.(v) then begin
      (* clearing while collecting dedupes: a later duplicate reads stale *)
      t.dirty.(v) <- false;
      t.buf.(!m) <- v;
      incr m
    end
  done;
  for i = 0 to !m - 1 do
    t.dirty.(t.buf.(i)) <- true
  done;
  t.len <- !m
