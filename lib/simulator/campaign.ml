(* Fault-injection campaigns (see the interface).  Everything in this file
   is deterministic in the seeds carried by the specs: trial rows are
   produced in grid order, victims are sorted, and the CSV/JSONL encoders
   are pure, so one seed reproduces one byte-identical campaign file. *)

type spec = {
  family : string;
  n : int;  (* actual graph size (Graph.n), the one bound checks use *)
  requested_n : int;  (* the size the grid asked for, before family rounding *)
  faults : int;
  model : string;
  seed : int;
}

type outcome = {
  victims : int list;
  injections : int;
  detection_rounds : int option;
  detection_distance : int option;
  rounds_run : int;
}

type trial = { spec : spec; outcome : outcome }

(* ---------------- the named model vocabulary ---------------- *)

let model_names =
  [ "uniform"; "clustered"; "near-root"; "targeted"; "crash"; "bit-flip"; "intermittent" ]

(* The clustered placement keeps every fault within a 2-ball of one random
   center: the containment worst case where f faults share one small
   neighbourhood instead of being spread over the graph. *)
let clustered_radius = 2

(* The intermittent cadence drips further bursts while detection runs. *)
let intermittent_period = 25
let intermittent_repeats = 3

let resolve_model name ~n ~root ~count =
  match name with
  | "uniform" -> Fault.uniform ~count
  | "clustered" ->
      Fault.make ~placement:(Clustered { center = None; radius = clustered_radius }) ~count ()
  | "near-root" -> Fault.make ~placement:(Near_root { root }) ~count ()
  | "targeted" ->
      (* an explicit, evenly spread victim list (dedup keeps it <= count) *)
      let k = max 1 (min count n) in
      Fault.make ~placement:(Targeted (List.init k (fun i -> i * n / k))) ~count ()
  | "crash" -> Fault.make ~severity:Crash_reset ~count ()
  | "bit-flip" -> Fault.make ~severity:Bit_flip ~count ()
  | "intermittent" ->
      Fault.make
        ~cadence:(Intermittent { period = intermittent_period; repeats = intermittent_repeats })
        ~count ()
  | _ -> invalid_arg (Fmt.str "Campaign.resolve_model: unknown model %S" name)

(* ---------------- one trial ---------------- *)

let drive ~rng ~(model : Fault.t) ~max_rounds ~round ~any_alarm ~inject ~distance =
  let victims = ref (inject rng model) in
  let injections = ref (List.length !victims) in
  let period, repeats =
    match model.Fault.cadence with
    | Fault.One_shot -> (max_int, 0)
    | Fault.Intermittent { period; repeats } -> (period, repeats)
  in
  let remaining = ref repeats in
  let detected = ref (any_alarm ()) in
  let r = ref 0 in
  while (not !detected) && !r < max_rounds do
    round ();
    incr r;
    detected := any_alarm ();
    if (not !detected) && !remaining > 0 && !r mod period = 0 then begin
      let burst = inject rng model in
      injections := !injections + List.length burst;
      victims := List.sort_uniq compare (List.rev_append burst !victims);
      decr remaining
    end
  done;
  {
    victims = !victims;
    injections = !injections;
    detection_rounds = (if !detected then Some !r else None);
    detection_distance = (if !detected then distance ~faults:!victims else None);
    rounds_run = !r;
  }

(* ---------------- sinks ---------------- *)

let csv_header =
  "family,n,requested_n,faults,model,seed,detected,detection_rounds,detection_distance,"
  ^ "injections,rounds_run,victims"

let opt_csv = function None -> "" | Some x -> string_of_int x

let trial_to_csv { spec; outcome } =
  Fmt.str "%s,%d,%d,%d,%s,%d,%b,%s,%s,%d,%d,%s" spec.family spec.n spec.requested_n
    spec.faults spec.model spec.seed
    (outcome.detection_rounds <> None)
    (opt_csv outcome.detection_rounds)
    (opt_csv outcome.detection_distance)
    outcome.injections outcome.rounds_run
    (String.concat ";" (List.map string_of_int outcome.victims))

let opt_json = function None -> "null" | Some x -> string_of_int x

let trial_to_json { spec; outcome } =
  Fmt.str
    {|{"family":%S,"n":%d,"requested_n":%d,"faults":%d,"model":%S,"seed":%d,"detected":%b,"detection_rounds":%s,"detection_distance":%s,"injections":%d,"rounds_run":%d,"victims":[%s]}|}
    spec.family spec.n spec.requested_n spec.faults spec.model spec.seed
    (outcome.detection_rounds <> None)
    (opt_json outcome.detection_rounds)
    (opt_json outcome.detection_distance)
    outcome.injections outcome.rounds_run
    (String.concat "," (List.map string_of_int outcome.victims))

let write_csv oc trials =
  output_string oc (csv_header ^ "\n");
  List.iter (fun t -> output_string oc (trial_to_csv t ^ "\n")) trials

let write_jsonl oc trials =
  List.iter (fun t -> output_string oc (trial_to_json t ^ "\n")) trials

(* ---------------- aggregation ---------------- *)

type agg = {
  family : string;
  n : int;
  faults : int;
  model : string;
  trials : int;
  detected : int;
  dt_min : int;
  dt_med : int;
  dt_p95 : int;
  dd_min : int;
  dd_med : int;
  dd_p95 : int;
}

(* percentiles over a non-empty sorted list: lower median, ceiling p95 *)
let percentiles = function
  | [] -> (-1, -1, -1)
  | xs ->
      let a = Array.of_list (List.sort Int.compare xs) in
      let last = Array.length a - 1 in
      (a.(0), a.(last / 2), a.(((95 * last) + 99) / 100))

let aggregate trials =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun t ->
      let key = (t.spec.family, t.spec.n, t.spec.faults, t.spec.model) in
      if not (Hashtbl.mem tbl key) then begin
        Hashtbl.add tbl key [];
        order := key :: !order
      end;
      Hashtbl.replace tbl key (t :: Hashtbl.find tbl key))
    trials;
  List.rev_map
    (fun ((family, n, faults, model) as key) ->
      let ts = List.rev (Hashtbl.find tbl key) in
      let dts = List.filter_map (fun t -> t.outcome.detection_rounds) ts in
      let dds = List.filter_map (fun t -> t.outcome.detection_distance) ts in
      let dt_min, dt_med, dt_p95 = percentiles dts in
      let dd_min, dd_med, dd_p95 = percentiles dds in
      {
        family;
        n;
        faults;
        model;
        trials = List.length ts;
        detected = List.length dts;
        dt_min;
        dt_med;
        dt_p95;
        dd_min;
        dd_med;
        dd_p95;
      })
    !order

let agg_csv_header =
  "family,n,faults,model,trials,detected,dt_min,dt_med,dt_p95,dd_min,dd_med,dd_p95"

let agg_to_csv a =
  Fmt.str "%s,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d" a.family a.n a.faults a.model a.trials
    a.detected a.dt_min a.dt_med a.dt_p95 a.dd_min a.dd_med a.dd_p95

let pp_agg_table ppf aggs =
  Fmt.pf ppf "%-10s %-6s %-4s %-14s %9s %12s %12s %10s %10s@." "family" "n" "f" "model"
    "detected" "dt med" "dt p95" "dd med" "dd p95";
  List.iter
    (fun a ->
      let cell x = if x < 0 then "-" else string_of_int x in
      Fmt.pf ppf "%-10s %-6d %-4d %-14s %6d/%-2d %12s %12s %10s %10s@." a.family a.n a.faults
        a.model a.detected a.trials (cell a.dt_med) (cell a.dt_p95) (cell a.dd_med)
        (cell a.dd_p95))
    aggs
