(** Fault-injection campaigns: sweep a grid of fault models over graph
    families, sizes, fault counts and seeds; measure detection time and
    detection distance per trial; aggregate min/median/p95 across seeds.

    This module is protocol-agnostic: {!drive} interprets a {!Fault.t}'s
    cadence against callbacks into a live network, and the record/CSV/JSONL
    layer mirrors the {!Metrics}/{!Trace} sink conventions, so any
    {!Protocol.S} can be campaigned.  The verifier glue lives in
    [Ssmst_core.Verifier_campaign]; the CLI entry is [msst campaign]. *)

type spec = {
  family : string;  (** graph family name *)
  n : int;
      (** the {e actual} graph size ([Graph.n]): [grid] rounds the request
          to side² and [hypertree] to [2^(h+1)-1], so this is the n that
          c·f·⌈log n⌉ bound analysis must read *)
  requested_n : int;  (** the size the sweep grid asked the generator for *)
  faults : int;  (** f, the burst size *)
  model : string;  (** named model, see {!model_names} *)
  seed : int;  (** instance + injection seed *)
}

type outcome = {
  victims : int list;  (** every node faulted during the trial, sorted *)
  injections : int;  (** faults applied, re-injections included *)
  detection_rounds : int option;  (** rounds from first burst to first alarm *)
  detection_distance : int option;  (** at the detection point *)
  rounds_run : int;  (** rounds actually executed *)
}

type trial = { spec : spec; outcome : outcome }

val model_names : string list
(** The named models a campaign can sweep: ["uniform"], ["clustered"],
    ["near-root"], ["targeted"], ["crash"], ["bit-flip"], ["intermittent"]. *)

val resolve_model : string -> n:int -> root:int -> count:int -> Fault.t
(** Instantiate a named model for an [n]-node instance whose designated
    root (for adversarial placements) is [root].
    @raise Invalid_argument on an unknown name. *)

val drive :
  rng:Random.State.t ->
  model:Fault.t ->
  max_rounds:int ->
  round:(unit -> unit) ->
  any_alarm:(unit -> bool) ->
  inject:(Random.State.t -> Fault.t -> int list) ->
  distance:(faults:int list -> int option) ->
  outcome
(** One trial: inject the initial burst, run round by round until the
    first alarm or [max_rounds], honouring an [Intermittent] cadence by
    re-injecting every period while no alarm has fired.  Deterministic in
    [rng] and the callbacks. *)

(** {2 Sinks} — per-trial rows, CSV and JSONL (one object per line). *)

val csv_header : string
val trial_to_csv : trial -> string
val trial_to_json : trial -> string
val write_csv : out_channel -> trial list -> unit
val write_jsonl : out_channel -> trial list -> unit

(** {2 Aggregation} — percentiles across the seeds of one grid point. *)

type agg = {
  family : string;
  n : int;
  faults : int;
  model : string;
  trials : int;
  detected : int;
  dt_min : int;
  dt_med : int;
  dt_p95 : int;
  dd_min : int;
  dd_med : int;
  dd_p95 : int;  (** -1 when no trial of the point was detected *)
}

val aggregate : trial list -> agg list
(** Group by (family, n, faults, model), in first-appearance order. *)

val agg_csv_header : string
val agg_to_csv : agg -> string
val pp_agg_table : Format.formatter -> agg list -> unit
