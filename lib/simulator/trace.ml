(* Typed execution traces for the event-driven engine.

   A trace is a bounded ring buffer of events: when it fills, the oldest
   events are dropped (and counted) so that attaching a trace to an
   arbitrarily long run costs O(capacity) memory.  The engine records an
   event per activation, register write, alarm transition, fault injection
   and convergence check; the observability layer (Ssmst_obs) additionally
   records span open/close marks and online-monitor verdicts, which makes
   the paper's round/bit/distance claims observable per run instead of only
   as aggregates. *)

(* Why a register changed: the causal tag every write carries once
   provenance capture is on.  [Neighbor_read ports] lists the ports whose
   registers the activation read (the causal in-edges of the provenance
   DAG); [Fault id] names the injection (ids count injections per run);
   [Init] covers external writes that create state from nothing. *)
type cause = Init | Neighbor_read of int list | Fault of int

type change = { field : string; old_enc : int; new_enc : int }
(* one field-level delta: [field] names the register field
   (Protocol.S.field_names), [old_enc]/[new_enc] are its encoded
   fingerprints before/after (Protocol.S.encode) *)

type prov = { cause : cause; changes : change list }

type event =
  | Activation of { round : int; node : int }
      (* the daemon activated [node] during [round] *)
  | Register_write of { round : int; node : int; bits : int; prov : prov option }
      (* the activation (or an external write) changed the register;
         [prov] is present when the engine captured provenance *)
  | Alarm_raised of { round : int; node : int }
  | Alarm_cleared of { round : int; node : int }
  | Fault_injected of { round : int; node : int; fault : int option }
      (* [fault] is the injection id the write's [Fault] cause refers to *)
  | Convergence of { round : int; reached : bool }
      (* emitted by [run_until] when it stops *)
  | Span_mark of { round : int; label : string; enter : bool }
      (* a phase span opened ([enter]) or closed at [round] *)
  | Invariant_violation of { round : int; node : int option; monitor : string; detail : string }
      (* an online monitor found the snapshot of [round] in violation *)

type t = {
  buf : event option array;
  mutable next : int;  (* write cursor *)
  mutable total : int;  (* events ever recorded *)
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0 }

let capacity t = Array.length t.buf

let record t e =
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let total t = t.total
let length t = min t.total (Array.length t.buf)
let dropped t = t.total - length t

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0

(* Oldest-first iteration over the retained window. *)
let iter f t =
  let cap = Array.length t.buf in
  let len = length t in
  let start = (t.next - len + cap) mod cap in
  for i = 0 to len - 1 do
    match t.buf.((start + i) mod cap) with Some e -> f e | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc

let event_name = function
  | Activation _ -> "activation"
  | Register_write _ -> "register_write"
  | Alarm_raised _ -> "alarm_raised"
  | Alarm_cleared _ -> "alarm_cleared"
  | Fault_injected _ -> "fault_injected"
  | Convergence _ -> "convergence"
  | Span_mark _ -> "span_mark"
  | Invariant_violation _ -> "invariant_violation"

let event_round = function
  | Activation { round; _ }
  | Register_write { round; _ }
  | Alarm_raised { round; _ }
  | Alarm_cleared { round; _ }
  | Fault_injected { round; _ }
  | Convergence { round; _ }
  | Span_mark { round; _ }
  | Invariant_violation { round; _ } ->
      round

let event_node = function
  | Activation { node; _ }
  | Register_write { node; _ }
  | Alarm_raised { node; _ }
  | Alarm_cleared { node; _ }
  | Fault_injected { node; _ } ->
      Some node
  | Invariant_violation { node; _ } -> node
  | Convergence _ | Span_mark _ -> None

(* ---------------- JSON string escaping ---------------- *)

(* Standard JSON escaping: quotes, backslashes, the common control
   characters by name, everything else below 0x20 as \u00XX.  OCaml's %S is
   close but not JSON ([\027] style decimal escapes are invalid JSON), so
   labels and monitor details are escaped by hand. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ---------------- provenance codecs ---------------- *)

(* The flat-object JSON reader below cannot parse nested arrays/objects, so
   provenance is serialized as two flat strings: a cause descriptor
   ("init" | "read:<ports>" | "fault:<id>") and a semicolon-joined change
   list ("dist:3>4;parent:2>5").  Old trace lines that predate provenance
   simply lack both fields and parse back with [prov = None]. *)

let cause_to_string = function
  | Init -> "init"
  | Fault id -> Fmt.str "fault:%d" id
  | Neighbor_read ports -> "read:" ^ String.concat "," (List.map string_of_int ports)

let cause_of_string s =
  let prefixed p = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  let rest p = String.sub s (String.length p) (String.length s - String.length p) in
  if s = "init" then Some Init
  else if prefixed "fault:" then
    Option.map (fun id -> Fault id) (int_of_string_opt (rest "fault:"))
  else if prefixed "read:" then begin
    let r = rest "read:" in
    if r = "" then Some (Neighbor_read [])
    else
      try Some (Neighbor_read (List.map int_of_string (String.split_on_char ',' r)))
      with Failure _ -> None
  end
  else None

let change_to_string c = Fmt.str "%s:%d>%d" c.field c.old_enc c.new_enc

(* parse from the right: field names never contain ':' or '>', but being
   defensive costs nothing *)
let change_of_string s =
  match String.rindex_opt s '>' with
  | None -> None
  | Some gt -> (
      match String.rindex_from_opt s (gt - 1) ':' with
      | None -> None
      | Some colon -> (
          let field = String.sub s 0 colon in
          let old_s = String.sub s (colon + 1) (gt - colon - 1) in
          let new_s = String.sub s (gt + 1) (String.length s - gt - 1) in
          match (int_of_string_opt old_s, int_of_string_opt new_s) with
          | Some old_enc, Some new_enc -> Some { field; old_enc; new_enc }
          | _ -> None))

let changes_to_string cs = String.concat ";" (List.map change_to_string cs)

let changes_of_string s =
  if s = "" then Some []
  else
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | part :: rest -> (
          match change_of_string part with None -> None | Some c -> go (c :: acc) rest)
    in
    go [] (String.split_on_char ';' s)

(* ---------------- sinks ---------------- *)

(* One JSON object per event; the whole trace is a JSONL stream. *)
let event_to_json e =
  let base = Fmt.str {|"event":"%s","round":%d|} (event_name e) (event_round e) in
  match e with
  | Register_write { node; bits; prov; _ } ->
      let p =
        match prov with
        | None -> ""
        | Some { cause; changes } ->
            Fmt.str {|,"cause":"%s","changes":"%s"|}
              (json_escape (cause_to_string cause))
              (json_escape (changes_to_string changes))
      in
      Fmt.str {|{%s,"node":%d,"bits":%d%s}|} base node bits p
  | Fault_injected { node; fault; _ } -> (
      match fault with
      | None -> Fmt.str {|{%s,"node":%d}|} base node
      | Some id -> Fmt.str {|{%s,"node":%d,"fault":%d}|} base node id)
  | Convergence { reached; _ } -> Fmt.str {|{%s,"reached":%b}|} base reached
  | Span_mark { label; enter; _ } ->
      Fmt.str {|{%s,"label":"%s","enter":%b}|} base (json_escape label) enter
  | Invariant_violation { node; monitor; detail; _ } ->
      let node_field = match node with None -> "" | Some v -> Fmt.str {|"node":%d,|} v in
      Fmt.str {|{%s,%s"monitor":"%s","detail":"%s"}|} base node_field (json_escape monitor)
        (json_escape detail)
  | Activation { node; _ } | Alarm_raised { node; _ } | Alarm_cleared { node; _ } ->
      Fmt.str {|{%s,"node":%d}|} base node

(* ---------------- a flat-object JSON reader ---------------- *)

(* Just enough JSON to round-trip the objects [event_to_json] emits: one
   flat object of string / int / bool fields.  Unknown shapes return
   [None]; used by tests and external-tool sanity checks, not by any hot
   path. *)

type json_field = Jstr of string | Jint of int | Jbool of bool

exception Bad_json

let parse_flat_object (s : string) =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= len then raise Bad_json else s.[!pos] in
  let advance () = incr pos in
  let expect c = if peek () <> c then raise Bad_json else advance () in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > len then raise Bad_json;
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4) with Failure _ -> raise Bad_json
              in
              (* the escaper only emits \u00XX for control bytes *)
              if code > 0xff then raise Bad_json;
              Buffer.add_char b (Char.chr code);
              pos := !pos + 4
          | _ -> raise Bad_json);
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    match peek () with
    | '"' -> Jstr (parse_string ())
    | 't' ->
        if !pos + 4 <= len && String.sub s !pos 4 = "true" then (pos := !pos + 4; Jbool true)
        else raise Bad_json
    | 'f' ->
        if !pos + 5 <= len && String.sub s !pos 5 = "false" then (pos := !pos + 5; Jbool false)
        else raise Bad_json
    | '-' | '0' .. '9' ->
        let start = !pos in
        if peek () = '-' then advance ();
        while !pos < len && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
          advance ()
        done;
        if !pos = start then raise Bad_json;
        Jint (int_of_string (String.sub s start (!pos - start)))
    | _ -> raise Bad_json
  in
  try
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    if peek () = '}' then advance ()
    else begin
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' -> advance (); members ()
        | '}' -> advance ()
        | _ -> raise Bad_json
      in
      members ()
    end;
    skip_ws ();
    if !pos <> len then raise Bad_json;
    Some (List.rev !fields)
  with Bad_json -> None

(* Inverse of [event_to_json] for well-formed event objects. *)
let event_of_json line =
  match parse_flat_object line with
  | None -> None
  | Some fields -> (
      let str k = match List.assoc_opt k fields with Some (Jstr s) -> Some s | _ -> None in
      let int k = match List.assoc_opt k fields with Some (Jint i) -> Some i | _ -> None in
      let bool k = match List.assoc_opt k fields with Some (Jbool b) -> Some b | _ -> None in
      match (str "event", int "round") with
      | Some "activation", Some round ->
          Option.map (fun node -> Activation { round; node }) (int "node")
      | Some "register_write", Some round -> (
          match (int "node", int "bits") with
          | Some node, Some bits -> (
              (* a line without a cause field is a pre-provenance trace:
                 parse it with [prov = None]; a present-but-garbled cause
                 or change list makes the whole line ill-formed *)
              match str "cause" with
              | None -> Some (Register_write { round; node; bits; prov = None })
              | Some c -> (
                  let changes =
                    match str "changes" with None -> Some [] | Some s -> changes_of_string s
                  in
                  match (cause_of_string c, changes) with
                  | Some cause, Some changes ->
                      Some (Register_write { round; node; bits; prov = Some { cause; changes } })
                  | _ -> None))
          | _ -> None)
      | Some "alarm_raised", Some round ->
          Option.map (fun node -> Alarm_raised { round; node }) (int "node")
      | Some "alarm_cleared", Some round ->
          Option.map (fun node -> Alarm_cleared { round; node }) (int "node")
      | Some "fault_injected", Some round ->
          Option.map (fun node -> Fault_injected { round; node; fault = int "fault" }) (int "node")
      | Some "convergence", Some round ->
          Option.map (fun reached -> Convergence { round; reached }) (bool "reached")
      | Some "span_mark", Some round -> (
          match (str "label", bool "enter") with
          | Some label, Some enter -> Some (Span_mark { round; label; enter })
          | _ -> None)
      | Some "invariant_violation", Some round -> (
          match (str "monitor", str "detail") with
          | Some monitor, Some detail ->
              Some (Invariant_violation { round; node = int "node"; monitor; detail })
          | _ -> None)
      | _ -> None)

let write_jsonl oc t = iter (fun e -> output_string oc (event_to_json e ^ "\n")) t

let csv_header = "event,round,node,bits,reached,label,enter,monitor,detail,cause,changes"

(* RFC-4180-style quoting, applied only when the cell needs it. *)
let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let event_to_csv e =
  let node = match event_node e with Some v -> string_of_int v | None -> "" in
  let bits = match e with Register_write { bits; _ } -> string_of_int bits | _ -> "" in
  let reached = match e with Convergence { reached; _ } -> string_of_bool reached | _ -> "" in
  let label = match e with Span_mark { label; _ } -> csv_escape label | _ -> "" in
  let enter = match e with Span_mark { enter; _ } -> string_of_bool enter | _ -> "" in
  let monitor =
    match e with Invariant_violation { monitor; _ } -> csv_escape monitor | _ -> ""
  in
  let detail = match e with Invariant_violation { detail; _ } -> csv_escape detail | _ -> "" in
  let cause =
    match e with
    | Register_write { prov = Some { cause; _ }; _ } -> csv_escape (cause_to_string cause)
    | Fault_injected { fault = Some id; _ } -> csv_escape (cause_to_string (Fault id))
    | _ -> ""
  in
  let changes =
    match e with
    | Register_write { prov = Some { changes; _ }; _ } -> csv_escape (changes_to_string changes)
    | _ -> ""
  in
  Fmt.str "%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s" (event_name e) (event_round e) node bits reached
    label enter monitor detail cause changes

let write_csv oc t =
  output_string oc (csv_header ^ "\n");
  iter (fun e -> output_string oc (event_to_csv e ^ "\n")) t

let pp_event ppf e =
  match e with
  | Span_mark { round; label; enter } ->
      Fmt.pf ppf "[%d] span %s %s" round (if enter then "open" else "close") label
  | Invariant_violation { round; node; monitor; detail } ->
      Fmt.pf ppf "[%d] violation %s%a: %s" round monitor
        Fmt.(option (fun ppf v -> Fmt.pf ppf " at node %d" v))
        node detail
  | _ -> (
      match event_node e with
      | Some v -> Fmt.pf ppf "[%d] %s node %d" (event_round e) (event_name e) v
      | None -> Fmt.pf ppf "[%d] %s" (event_round e) (event_name e))
