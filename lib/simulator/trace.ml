(* Typed execution traces for the event-driven engine.

   A trace is a bounded ring buffer of events: when it fills, the oldest
   events are dropped (and counted) so that attaching a trace to an
   arbitrarily long run costs O(capacity) memory.  The engine records an
   event per activation, register write, alarm transition, fault injection
   and convergence check, which makes the paper's round/bit/distance claims
   observable per run instead of only as aggregates. *)

type event =
  | Activation of { round : int; node : int }
      (* the daemon activated [node] during [round] *)
  | Register_write of { round : int; node : int; bits : int }
      (* the activation (or an external write) changed the register *)
  | Alarm_raised of { round : int; node : int }
  | Alarm_cleared of { round : int; node : int }
  | Fault_injected of { round : int; node : int }
  | Convergence of { round : int; reached : bool }
      (* emitted by [run_until] when it stops *)

type t = {
  buf : event option array;
  mutable next : int;  (* write cursor *)
  mutable total : int;  (* events ever recorded *)
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0 }

let capacity t = Array.length t.buf

let record t e =
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let total t = t.total
let length t = min t.total (Array.length t.buf)
let dropped t = t.total - length t

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0

(* Oldest-first iteration over the retained window. *)
let iter f t =
  let cap = Array.length t.buf in
  let len = length t in
  let start = (t.next - len + cap) mod cap in
  for i = 0 to len - 1 do
    match t.buf.((start + i) mod cap) with Some e -> f e | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc

let event_name = function
  | Activation _ -> "activation"
  | Register_write _ -> "register_write"
  | Alarm_raised _ -> "alarm_raised"
  | Alarm_cleared _ -> "alarm_cleared"
  | Fault_injected _ -> "fault_injected"
  | Convergence _ -> "convergence"

let event_round = function
  | Activation { round; _ }
  | Register_write { round; _ }
  | Alarm_raised { round; _ }
  | Alarm_cleared { round; _ }
  | Fault_injected { round; _ }
  | Convergence { round; _ } ->
      round

let event_node = function
  | Activation { node; _ }
  | Register_write { node; _ }
  | Alarm_raised { node; _ }
  | Alarm_cleared { node; _ }
  | Fault_injected { node; _ } ->
      Some node
  | Convergence _ -> None

(* ---------------- sinks ---------------- *)

(* One JSON object per event; the whole trace is a JSONL stream. *)
let event_to_json e =
  let base = Fmt.str {|"event":"%s","round":%d|} (event_name e) (event_round e) in
  match e with
  | Register_write { node; bits; _ } -> Fmt.str {|{%s,"node":%d,"bits":%d}|} base node bits
  | Convergence { reached; _ } -> Fmt.str {|{%s,"reached":%b}|} base reached
  | Activation { node; _ }
  | Alarm_raised { node; _ }
  | Alarm_cleared { node; _ }
  | Fault_injected { node; _ } ->
      Fmt.str {|{%s,"node":%d}|} base node

let write_jsonl oc t = iter (fun e -> output_string oc (event_to_json e ^ "\n")) t

let csv_header = "event,round,node,bits,reached"

let event_to_csv e =
  let node = match event_node e with Some v -> string_of_int v | None -> "" in
  let bits = match e with Register_write { bits; _ } -> string_of_int bits | _ -> "" in
  let reached = match e with Convergence { reached; _ } -> string_of_bool reached | _ -> "" in
  Fmt.str "%s,%d,%s,%s,%s" (event_name e) (event_round e) node bits reached

let write_csv oc t =
  output_string oc (csv_header ^ "\n");
  iter (fun e -> output_string oc (event_to_csv e ^ "\n")) t

let pp_event ppf e =
  match event_node e with
  | Some v -> Fmt.pf ppf "[%d] %s node %d" (event_round e) (event_name e) v
  | None -> Fmt.pf ppf "[%d] %s" (event_round e) (event_name e)
