open Ssmst_graph

(* The protocol interface for the shared-memory network simulator.

   The model is the paper's (Sections 2.1-2.2): every node owns one register
   holding its whole state; in one *ideal time* unit an activated node reads
   the registers of all its neighbours and rewrites its own register.  A
   synchronous network activates everybody simultaneously; an asynchronous
   one is driven by a strongly fair daemon (see {!Scheduler}). *)

module type S = sig
  type state

  val init : Graph.t -> int -> state
  (** [init g v] is the clean initial state of node [v].  Self-stabilizing
      protocols must also tolerate arbitrary states (see [corrupt]). *)

  val step : Graph.t -> int -> state -> (int -> state) -> state
  (** [step g v own read] is one atomic activation of node [v]: [read u]
      returns the current register of the neighbour with node index [u]
      (only neighbours of [v] may be read).  Returns the new register.
      [step] must be deterministic in its arguments: the event-driven engine
      ({!Network.Make}) skips activations whose inputs are unchanged since
      the node's last no-op step, which is only sound for pure steps. *)

  val equal : state -> state -> bool
  (** Register equality.  The engine uses it to decide whether an activation
      changed the register — the dirty-set rule, incremental memory/alarm
      accounting and the register-write trace all hang off it.  For the pure
      record states used throughout, structural equality [( = )] is correct. *)

  val alarm : state -> bool
  (** Whether the node is currently raising an alarm ("outputting no"). *)

  val bits : state -> int
  (** Serialized size of the register in bits, via {!Memory}. *)

  val corrupt : Random.State.t -> Graph.t -> int -> state -> state
  (** Adversarial fault: an arbitrary perturbation of the register used by
      fault-injection experiments.  Must return a type-correct state but is
      free to break every semantic invariant. *)

  val corrupt_field : Random.State.t -> Graph.t -> int -> state -> state
  (** Targeted-field fault (the {!Fault.Bit_flip} severity): perturb exactly
      one field of the register, leaving every other field intact — the
      surgical end of the fault spectrum, against which [corrupt] is the
      full scrambling.  Protocols whose registers have no meaningfully
      separable fields may fall back to [corrupt]. *)

  val field_names : string array
  (** The register's field descriptor: one human-readable name per field,
      in a fixed order.  Aligned index-for-index with {!encode}; the flight
      recorder ([Ssmst_replay]) uses it to name the field behind every
      write delta and first-divergence report. *)

  val encode : state -> int array
  (** A per-field fingerprint of the register, aligned with {!field_names}:
      [  (encode a).(i) <> (encode b).(i)] must hold whenever field [i]
      differs between [a] and [b] (up to hash collisions for compound
      fields — use {!hash_field} there).  Cheap: called once per recorded
      write. *)
end

(* The packed-register codec: a protocol whose states fit a fixed per-node
   budget of 64-bit words can run on {!Network.Flat}, which stores all n
   registers in one flat int array — the struct-of-arrays layout that makes
   the paper's O(log n)-bits-per-node claim literal in process memory.

   Contract: [pack] and [unpack] must be exact inverses on every state the
   engine can hold — [init] outputs, [step] outputs, and the outputs of
   [corrupt] / [corrupt_field] on such states (fault injection preserves
   instance-fixed array lengths, which is what makes a fixed word budget
   computable).  [pack] must be deterministic and write its entire slice
   (zero-filling unused tail words), so that equal states produce equal
   slices. *)
module type CODEC = sig
  type state

  val words : Graph.t -> int
  (** The fixed per-node register budget, in 64-bit words.  Constant per
      instance; [8 * words g] is the measured bytes-per-node the SCALE
      experiments gate against the modeled c·⌈log n⌉ bound. *)

  val field_offsets : Graph.t -> int array
  (** Start word of each field's sub-slice within the budget, aligned
      index-for-index with {!S.field_names}: packing two states that differ
      only in field [i] changes words only in
      [[field_offsets.(i), field_offsets.(i+1))] (or up to [words g] for
      the last field). *)

  val pack : Graph.t -> int -> state -> int array -> int -> unit
  (** [pack g v s buf off] serializes [s] into [buf.(off) ..
      buf.(off + words g - 1)]. *)

  val unpack : Graph.t -> int -> int array -> int -> state
  (** [unpack g v buf off] is the inverse of [pack]. *)
end

(** A protocol together with its packed codec: what {!Network.Flat}
    consumes. *)
module type PACKED = sig
  include S
  include CODEC with type state := state
end

(* Fingerprint for compound fields (records, arrays, variants): the default
   [Hashtbl.hash] only samples ~10 leaves, which silently misses deep
   changes in large labels; widening both limits makes a changed field
   reliably change its fingerprint. *)
let hash_field v = Hashtbl.hash_param 256 512 v

(* Convenience alias used throughout. *)
type 'a reader = int -> 'a
