(* Bit accounting for per-node state.  The paper's memory-size measure
   (Section 2.4) counts the bits stored at a node: identity, marker label and
   verifier working memory.  Protocols report their state size through these
   helpers so experiments compare real bit counts rather than word counts. *)

(* Bits to represent a non-negative integer value (at least 1 bit). *)
let of_nat x =
  if x <= 0 then 1
  else
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 x

(* Bits for an integer that may be negative (sign bit). *)
let of_int x = 1 + of_nat (abs x)

let of_bool = 1

let of_option f = function None -> 1 | Some x -> 1 + f x

let of_list f l = of_nat (List.length l) + List.fold_left (fun acc x -> acc + f x) 0 l

let of_array f a = of_nat (Array.length a) + Array.fold_left (fun acc x -> acc + f x) 0 a

(* A string over a small alphabet, [card] symbols per position. *)
let of_symbol_string ~card ~len = len * of_nat (card - 1)

(* ---------------- measured (packed) footprints ---------------- *)

(* The helpers above model the paper's bit counts; the ones below measure
   what the flat engine actually stores: whole 64-bit words.  The SCALE
   experiments report both sides and gate their ratio. *)

(* ⌈log2 n⌉ for n >= 2 (and 1 for n <= 2): the per-node unit of the
   Section 2.4 memory-size claim. *)
let log2_ceil n = if n <= 2 then 1 else of_nat (n - 1)

let bits_of_words w = 64 * w
let bytes_of_words w = 8 * w

(* Whether a packed register budget of [words] 64-bit words per node stays
   within [c] * ⌈log2 n⌉ bits — the "small constant factor" gate of the
   scale experiments.  The word quantization alone costs a factor 64 on
   tiny states, so useful values of [c] start around 64. *)
let within_log_budget ~c ~n ~words = bits_of_words words <= c * log2_ceil n
