(** Dense dirty-node frontier for the event-driven engines.

    Both {!Network.Make} and {!Network.Flat} schedule work off the same
    structure: a per-node dirty flag plus the set of currently-dirty node
    ids.  The engines used to keep that set as an [int list], which made
    the per-round drain — [List.filter] over the entries plus a
    polymorphic [List.sort compare] — the single largest allocation site
    of a synchronous round (42% of flat round wall time and ~15 M minor
    words per round at n = 250 000; see EXPERIMENTS.md PROF).

    A [Frontier.t] replaces the list with preallocated flat storage:

    - [dirty : bool array] — the membership flags, exactly as before;
    - an entry buffer ([int array] + count) holding every node whose flag
      went false→true since the last {!drain}/{!compact}, in insertion
      order, possibly interleaved with {e stale} entries (nodes whose
      flag was since cleared by {!unmark}) and at most one {e live}
      duplicate per node (a stale entry shadowed by a later re-mark);
    - a second preallocated buffer that {!drain} fills with the live
      members in ascending node id.

    Steady state allocates nothing: marks are array stores, the drain is
    either an in-place monomorphic sort of the collected members (sparse
    frontiers) or an ordered scan of the flag array (dense frontiers) —
    both produce the same ascending, duplicate-free member sequence, so
    the choice of path is unobservable.  Ascending drain order is a
    contract, not an accident: it is what makes the engines' per-round
    event order (traces, hooks, recorder deltas) canonical and
    byte-stable across engine refactors (DESIGN.md "Frontier"). *)

type t

val create : ?all_dirty:bool -> int -> t
(** A frontier over nodes [0 .. n-1].  [all_dirty] (default [true])
    starts with every node marked — the engines' initial state. *)

val n : t -> int
(** The node universe size the frontier was created with. *)

val mem : t -> int -> bool
(** Whether the node's dirty flag is set. *)

val mark : t -> int -> unit
(** Set the flag; pushes an entry iff the node was clean (so a node
    already dirty costs one array read).  O(1) amortized — the entry
    buffer grows only when async-round flag churn leaves more stale
    entries than the initial capacity, and never shrinks. *)

val unmark : t -> int -> unit
(** Clear the flag without removing the node's entry — the async rounds'
    "this node just fired" transition.  The entry goes stale and is
    dropped by the next {!drain} or {!compact}. *)

val is_empty : t -> bool
(** No entries at all (live or stale) — the engines' cheap
    "quiescent round" test that gates the telemetry probes. *)

val drain : t -> int array * int
(** [(members, m)]: clear every dirty flag and return the live members
    as [members.(0 .. m-1)] in strictly ascending node id, stale entries
    and duplicates dropped.  The returned array is the frontier's
    internal member buffer: it is valid until the next [drain] and must
    not be mutated.  Marks made after [drain] returns accumulate for the
    next round and never alias the returned prefix. *)

val compact : t -> unit
(** Drop stale entries and duplicates in place, keeping the flags as
    they are: after [compact], every entry is live and every dirty node
    has exactly one entry — the end-of-async-round sweep that stops
    within-round flag churn from accumulating across rounds. *)

val length : t -> int
(** Entries currently buffered, including stale ones and duplicates
    (diagnostics / regression tests; [length t = live t] right after
    {!drain}, {!compact} or {!create}). *)

val live : t -> int
(** Set flags, counted by an O(n) scan (diagnostics / tests only). *)

val fill : t -> unit
(** Mark every node, resetting the entry buffer to the identity
    permutation — the bulk-restore path.  Equivalent to marking
    [0 .. n-1] in order after a {!compact}, but O(n) flat stores. *)

val sort : int array -> int -> unit
(** [sort a m] sorts the prefix [a.(0 .. m-1)] ascending in place with a
    monomorphic int comparator (insertion sort on small ranges, else
    median-of-three quicksort) — no closure over polymorphic [compare],
    no allocation.  Exposed for reuse and for the QCheck properties. *)
