(** Bit accounting for per-node state (the paper's memory-size measure,
    Section 2.4).  Protocols report their register sizes through these
    helpers so experiments compare genuine bit counts. *)

val of_nat : int -> int
(** Bits of a non-negative integer (at least 1). *)

val of_int : int -> int
(** Bits of a possibly-negative integer (sign bit included). *)

val of_bool : int

val of_option : ('a -> int) -> 'a option -> int

val of_list : ('a -> int) -> 'a list -> int

val of_array : ('a -> int) -> 'a array -> int

val of_symbol_string : card:int -> len:int -> int
(** A string of [len] symbols over a [card]-sized alphabet. *)

(** {2 Measured (packed) footprints}

    The helpers above model the paper's bit counts; these measure what the
    flat engine actually stores: whole 64-bit words. *)

val log2_ceil : int -> int
(** ⌈log2 n⌉ for [n >= 2] (and 1 below): the per-node unit of the
    Section 2.4 memory-size claim. *)

val bits_of_words : int -> int
(** [64 * words]. *)

val bytes_of_words : int -> int
(** [8 * words]. *)

val within_log_budget : c:int -> n:int -> words:int -> bool
(** Whether a packed budget of [words] 64-bit words per node stays within
    [c * ⌈log2 n⌉] bits.  Word quantization alone costs a factor 64 on tiny
    states, so useful values of [c] start around 64. *)
