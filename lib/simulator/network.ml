open Ssmst_graph
open Ssmst_parallel

(* Executing a protocol over a graph under a daemon, with round counting,
   alarm observation, fault injection, memory accounting and (in the
   event-driven engine) tracing and work metrics.

   Two engines share one ideal-time semantics:

   - {!Naive} re-steps every node every round, exactly as the paper's model
     reads.  It is the reference oracle for differential tests and costs
     O(sum deg) protocol steps per round regardless of activity.

   - {!Make} is the event-driven engine: it maintains a dirty set and steps
     a node only if the node itself or one of its neighbours changed since
     the node's last no-op step.  Because [Protocol.S.step] is deterministic
     in its inputs, a clean node's step is provably a no-op, so skipping it
     preserves the semantics bit-for-bit — states and round counts are
     identical to {!Naive} under every daemon (the daemons' RNG is consumed
     identically).  Self-stabilizing protocols are quiescent almost
     everywhere after convergence, so [run_until] loops cost work
     proportional to actual state churn instead of O(rounds * sum deg). *)

(* Telemetry probes: with a {!Probe} sink installed (msst profile, bench
   PROF), the engines report each synchronous round's wall-clock
   sub-phases — frontier scan, worker compute, effect apply — strictly
   out-of-band.  The sink is fetched once per round (disabled cost: one
   ref read), and quiescent rounds with an empty frontier skip the probes
   entirely so the enabled overhead stays off the convergence tail. *)
let penter p name = match p with None -> () | Some s -> s.Probe.enter name
let pleave p name = match p with None -> () | Some s -> s.Probe.leave name

(* ------------------------------------------------------------------ *)
(* The naive reference engine                                          *)
(* ------------------------------------------------------------------ *)

module Naive (P : Protocol.S) = struct
  type t = {
    graph : Graph.t;
    mutable states : P.state array;
    mutable rounds : int;  (* ideal time elapsed *)
    mutable peak_bits : int;
  }

  let create graph =
    let states = Array.init (Graph.n graph) (P.init graph) in
    let peak = Array.fold_left (fun acc s -> max acc (P.bits s)) 0 states in
    { graph; states; rounds = 0; peak_bits = peak }

  let graph t = t.graph
  let state t v = t.states.(v)
  let states t = t.states

  (* Peak bits are maintained incrementally: every state the network ever
     holds passes through [create], [touch] (on change) or [set_state], so
     the per-round full rescan the engine used to do is redundant. *)
  let touch t s = if P.bits s > t.peak_bits then t.peak_bits <- P.bits s

  let set_state t v s =
    t.states.(v) <- s;
    touch t s

  let rounds t = t.rounds

  (* Safety-net rescan, kept for API compatibility; incremental tracking
     makes it a no-op on every reachable configuration. *)
  let record_memory t =
    Array.iter (fun s -> if P.bits s > t.peak_bits then t.peak_bits <- P.bits s) t.states

  let peak_bits t = t.peak_bits

  (* One synchronous round: all nodes step on a snapshot. *)
  let sync_round t =
    let snapshot = t.states in
    let read v u =
      if not (Graph.has_edge t.graph v u) then
        invalid_arg "Network.step: reading a non-neighbour"
      else snapshot.(u)
    in
    t.states <-
      Array.mapi
        (fun v s ->
          let s' = P.step t.graph v s (read v) in
          if not (P.equal s' s) then touch t s';
          s')
        snapshot;
    t.rounds <- t.rounds + 1

  (* One asynchronous round under a fair daemon: nodes fire sequentially per
     the daemon's schedule and read fresh registers. *)
  let async_round t daemon =
    let schedule = Scheduler.round_schedule daemon (Graph.n t.graph) in
    List.iter
      (fun v ->
        let read u =
          if not (Graph.has_edge t.graph v u) then
            invalid_arg "Network.step: reading a non-neighbour"
          else t.states.(u)
        in
        let s = t.states.(v) in
        let s' = P.step t.graph v s (read) in
        if not (P.equal s' s) then begin
          t.states.(v) <- s';
          touch t s'
        end
        else t.states.(v) <- s')
      schedule;
    t.rounds <- t.rounds + 1

  let round t daemon = if Scheduler.is_sync daemon then sync_round t else async_round t daemon

  let run t daemon ~rounds =
    for _ = 1 to rounds do
      round t daemon
    done

  let any_alarm t = Array.exists P.alarm t.states

  let alarming_nodes t =
    let acc = ref [] in
    Array.iteri (fun v s -> if P.alarm s then acc := v :: !acc) t.states;
    !acc

  (* Run until [stop] holds or [max_rounds] elapse; returns the number of
     rounds executed and whether [stop] was reached. *)
  let run_until t daemon ~max_rounds stop =
    let executed = ref 0 and reached = ref (stop t) in
    while (not !reached) && !executed < max_rounds do
      round t daemon;
      incr executed;
      reached := stop t
    done;
    (!executed, !reached)

  (* Rounds until the first alarm, or [None] if none within [max_rounds]. *)
  let detection_time t daemon ~max_rounds =
    let executed, reached = run_until t daemon ~max_rounds any_alarm in
    if reached then Some executed else None

  module Inject = Fault.Apply (P)

  (* Apply one burst of [model]: the victim set and the corruption order
     are deterministic (ascending node index; see {!Fault}), so identical
     seeds reproduce identical post-fault configurations. *)
  let inject t st (model : Fault.t) =
    Inject.apply st t.graph model
      ~get:(fun v -> t.states.(v))
      ~set:(fun v s' -> set_state t v s')

  (* Corrupt [count] distinct random nodes; returns the sorted list of
     faulty nodes. *)
  let inject_faults t st ~count = inject t st (Fault.uniform ~count)

  (* Max hop distance from any fault to the closest alarming node: the
     paper's detection distance (Section 2.4). *)
  let detection_distance t ~faults =
    Dist.detection_distance t.graph ~faults ~alarms:(alarming_nodes t)
end

(* ------------------------------------------------------------------ *)
(* The event-driven engine                                             *)
(* ------------------------------------------------------------------ *)

module Make (P : Protocol.S) = struct
  type t = {
    graph : Graph.t;
    states : P.state array;  (* live registers; mutate via [set_state] only *)
    mutable rounds : int;  (* ideal time elapsed *)
    mutable peak_bits : int;
    (* dirty set + dense member buffer: [Frontier.mem] iff v's next step
       may change its register; rounds drain the live members in ascending
       node id with zero list allocation (see {!Frontier}). *)
    frontier : Frontier.t;
    (* incremental alarm tracking: [alarm_flags.(v)] mirrors
       [P.alarm states.(v)]; [alarm_count] counts set flags. *)
    alarm_flags : bool array;
    mutable alarm_count : int;
    (* per-node last-write round: feeds per-node convergence histograms *)
    last_write : int array;
    metrics : Metrics.t;
    mutable trace : Trace.t option;
    (* called after every completed round (observability probes: online
       invariant monitors, span round attribution).  Must not mutate
       states. *)
    mutable round_hook : (unit -> unit) option;
    (* called on every register write with the old and new state and the
       causal tag (flight recorder).  Must not mutate states. *)
    mutable write_hook :
      (round:int -> node:int -> old:P.state -> P.state -> Trace.cause -> unit) option;
    (* capture-mode read tracking: per-node epoch stamps make "seen this
       neighbour during this activation?" an O(1) array probe instead of a
       list-membership scan *)
    read_mark : int array;
    mutable read_stamp : int;
    (* cached all-ports causes: steps almost always read every neighbour,
       so the common-case cause is shared and allocation-free *)
    full_cause : Trace.cause option array;
    mutable domains : int;  (* sync-round worker count; 1 = sequential *)
    (* deferred writes of the parallel sync round, indexed by node;
       allocated on first use, cleared as writes are applied *)
    mutable pending : P.state option array;
  }

  let mark_dirty t v = Frontier.mark t.frontier v

  (* A changed register invalidates the node's own next step and every
     neighbour's. *)
  let dirty_neighbourhood t v =
    mark_dirty t v;
    Graph.iter_ports t.graph v (fun _ u -> mark_dirty t u)

  let emit t e = match t.trace with None -> () | Some tr -> Trace.record tr e

  let create ?trace ?(domains = 1) graph =
    let n = Graph.n graph in
    let states = Array.init n (P.init graph) in
    let alarm_flags = Array.map P.alarm states in
    let peak = Array.fold_left (fun acc s -> max acc (P.bits s)) 0 states in
    let t =
      {
        graph;
        states;
        rounds = 0;
        peak_bits = peak;
        frontier = Frontier.create n;
        alarm_flags;
        alarm_count = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alarm_flags;
        last_write = Array.make n 0;
        metrics = Metrics.create ();
        trace;
        round_hook = None;
        write_hook = None;
        read_mark = Array.make n 0;
        read_stamp = 0;
        full_cause = Array.make n None;
        domains = max 1 domains;
        pending = [||];
      }
    in
    t.metrics.Metrics.peak_bits <- peak;
    t

  let graph t = t.graph
  let state t v = t.states.(v)
  let states t = t.states
  let rounds t = t.rounds
  let metrics t = t.metrics
  let domains t = t.domains
  let set_domains t k = t.domains <- max 1 k
  let trace t = t.trace
  let attach_trace t tr = t.trace <- Some tr
  let detach_trace t = t.trace <- None

  (* Observability probe: [f] runs after every completed round.  Probes are
     read-only by contract — the differential suite asserts that a run with
     hooks attached stays bit-identical to the naive engine. *)
  let set_round_hook t f = t.round_hook <- Some f
  let clear_round_hook t = t.round_hook <- None
  let fire_round_hook t = match t.round_hook with None -> () | Some f -> f ()

  (* Flight-recorder probe: [f] sees every register write with the old and
     new states and the causal tag; read-only by the same contract as the
     round hook. *)
  let set_write_hook t f = t.write_hook <- Some f
  let clear_write_hook t = t.write_hook <- None

  (* Whether provenance (read sets, field deltas) is worth computing this
     round: someone is listening. *)
  let capturing t = t.trace <> None || t.write_hook <> None

  (* The ports of [v] behind the peers a step read, sorted ascending: the
     stable encoding of a write's causal in-edges.  When the step read
     every neighbour (the shared-register model's common case) the cause
     is a per-node cached value. *)
  let full_cause t v =
    match t.full_cause.(v) with
    | Some c -> c
    | None ->
        let c = Trace.Neighbor_read (List.init (Graph.degree t.graph v) Fun.id) in
        t.full_cause.(v) <- Some c;
        c

  (* Partial read sets (rare) are reconstructed from the epoch marks by
     scanning [v]'s ports, which also yields them sorted for free. *)
  let read_cause t v ~distinct ~stamp =
    if distinct = Graph.degree t.graph v then full_cause t v
    else begin
      let ports = ref [] in
      for p = Graph.degree t.graph v - 1 downto 0 do
        if t.read_mark.(Graph.peer_at t.graph v p) = stamp then ports := p :: !ports
      done;
      Trace.Neighbor_read !ports
    end

  (* The round of the most recent write to [v]'s register (0 if never
     rewritten): per-node convergence, for the observatory's histograms. *)
  let last_write_round t v = t.last_write.(v)

  (* The field-level delta between two registers, named per
     [P.field_names]; the O(fields) cost is only paid when a trace is
     attached. *)
  let field_changes old s' =
    let oe = P.encode old and ne = P.encode s' in
    let k = min (Array.length oe) (Array.length ne) in
    let changes = ref [] in
    for i = k - 1 downto 0 do
      if oe.(i) <> ne.(i) then
        let field =
          if i < Array.length P.field_names then P.field_names.(i) else Fmt.str "f%d" i
        in
        changes := { Trace.field; old_enc = oe.(i); new_enc = ne.(i) } :: !changes
    done;
    !changes

  (* The single register-write path: every state mutation funnels through
     here so that peak-bits, alarm counts, metrics, the trace and the
     flight-recorder hook stay consistent without any per-round O(n)
     rescans.  [cause] tags the write's causal origin. *)
  let apply_write t ~round ~cause v s' =
    let old = t.states.(v) in
    t.states.(v) <- s';
    let b = P.bits s' in
    if b > t.peak_bits then t.peak_bits <- b;
    if b > t.metrics.Metrics.peak_bits then t.metrics.Metrics.peak_bits <- b;
    t.metrics.Metrics.register_writes <- t.metrics.Metrics.register_writes + 1;
    t.metrics.Metrics.last_write_round <- round;
    t.last_write.(v) <- round;
    (match t.write_hook with None -> () | Some f -> f ~round ~node:v ~old s' cause);
    let prov =
      match t.trace with
      | None -> None
      | Some _ -> Some { Trace.cause; changes = field_changes old s' }
    in
    emit t (Trace.Register_write { round; node = v; bits = b; prov });
    let was = t.alarm_flags.(v) and now = P.alarm s' in
    if was <> now then begin
      t.alarm_flags.(v) <- now;
      if now then begin
        t.alarm_count <- t.alarm_count + 1;
        t.metrics.Metrics.alarms_raised <- t.metrics.Metrics.alarms_raised + 1;
        emit t (Trace.Alarm_raised { round; node = v })
      end
      else begin
        t.alarm_count <- t.alarm_count - 1;
        t.metrics.Metrics.alarms_cleared <- t.metrics.Metrics.alarms_cleared + 1;
        emit t (Trace.Alarm_cleared { round; node = v })
      end
    end

  let set_state t v s =
    apply_write t ~round:t.rounds ~cause:Trace.Init v s;
    dirty_neighbourhood t v

  (* Metrics/trace-neutral bulk install of a register snapshot: copy the
     states in, rebuild the alarm flags/count and the dirty set, and keep
     the peak-bits high-water marks consistent.  Unlike [set_state], this
     does NOT count [register_writes], stamp [last_write], fire the write
     hook or emit [Init]-cause trace/alarm events — restoring a settled
     snapshot (the campaign-trial rewind) is bookkeeping, not protocol
     work, and must not pollute per-node convergence histograms or event
     streams. *)
  let restore t snapshot =
    let n = Array.length t.states in
    if Array.length snapshot <> n then
      invalid_arg "Network.restore: snapshot size does not match the network";
    Array.blit snapshot 0 t.states 0 n;
    t.alarm_count <- 0;
    for v = 0 to n - 1 do
      let a = P.alarm t.states.(v) in
      t.alarm_flags.(v) <- a;
      if a then t.alarm_count <- t.alarm_count + 1;
      let b = P.bits t.states.(v) in
      if b > t.peak_bits then t.peak_bits <- b;
      if b > t.metrics.Metrics.peak_bits then t.metrics.Metrics.peak_bits <- b;
      mark_dirty t v
    done

  (* Kept for API compatibility; peak bits are maintained incrementally so
     this is only a (re)scan safety net. *)
  let record_memory t =
    Array.iter (fun s -> if P.bits s > t.peak_bits then t.peak_bits <- P.bits s) t.states

  let peak_bits t = t.peak_bits

  let pending_buffer t =
    if Array.length t.pending <> Graph.n t.graph then
      t.pending <- Array.make (Graph.n t.graph) None;
    t.pending

  (* The domain-parallel sync round, available only when nobody is
     listening ([capturing t = false]): provenance capture mutates shared
     per-node read marks and must see activations in order, so a run with
     a trace or write hook attached stays on the sequential path (whose
     event order the parallel path's effects are defined to match).
     Workers read the shared pre-round snapshot and write only [pending]
     slots for members they own; every effect funnels through
     [apply_write] on the calling domain, ascending, after the barrier —
     states and metrics are byte-identical at every domain count. *)
  let parallel_sync_round t ~prb ~round ~members ~m ~domains:k =
    let pending = pending_buffer t in
    let wasted = Array.make k 0 in
    let snapshot = t.states in
    penter prb "make.compute";
    Domain_pool.run ~domains:k (fun w ->
        let lo, hi = Domain_pool.slice ~domains:k m w in
        for i = lo to hi - 1 do
          let v = members.(i) in
          let read u =
            if not (Graph.has_edge t.graph v u) then
              invalid_arg "Network.step: reading a non-neighbour";
            snapshot.(u)
          in
          let s' = P.step t.graph v snapshot.(v) read in
          if P.equal s' snapshot.(v) then wasted.(w) <- wasted.(w) + 1
          else pending.(v) <- Some s'
        done);
    pleave prb "make.compute";
    t.metrics.Metrics.activations <- t.metrics.Metrics.activations + m;
    Array.iter
      (fun c -> t.metrics.Metrics.wasted_steps <- t.metrics.Metrics.wasted_steps + c)
      wasted;
    t.metrics.Metrics.skipped_activations <-
      t.metrics.Metrics.skipped_activations + (Graph.n t.graph - m);
    t.rounds <- round;
    t.metrics.Metrics.rounds <- t.metrics.Metrics.rounds + 1;
    penter prb "make.apply";
    for i = 0 to m - 1 do
      let v = members.(i) in
      match pending.(v) with
      | None -> ()
      | Some s' ->
          pending.(v) <- None;
          (* the cause tag is unobservable here — no trace, no write hook *)
          apply_write t ~round ~cause:Trace.Init v s';
          dirty_neighbourhood t v
    done;
    pleave prb "make.apply";
    fire_round_hook t

  (* One synchronous round: the dirty nodes step on a snapshot (writes are
     deferred, so [t.states] *is* the snapshot); clean nodes provably
     wouldn't change and are skipped. *)
  let sync_round t =
    let round = t.rounds + 1 in
    let prb = if Frontier.is_empty t.frontier then None else Probe.get () in
    penter prb "make.frontier";
    (* drain the frontier: stale entries dropped, flags cleared, members
       come back in canonical ascending node id — the order that makes the
       per-round event stream (and hence every trace/recorder JSONL
       artifact) stable across engine refactors — with zero allocation *)
    let members, m = Frontier.drain t.frontier in
    pleave prb "make.frontier";
    let capture = capturing t in
    let k = if Domain_pool.available && not capture then t.domains else 1 in
    if k > 1 && m >= 2 * k then parallel_sync_round t ~prb ~round ~members ~m ~domains:k
    else begin
    let snapshot = t.states in
    penter prb "make.compute";
    let writes = ref [] in
    for i = 0 to m - 1 do
      let v = members.(i) in
      t.metrics.Metrics.activations <- t.metrics.Metrics.activations + 1;
      emit t (Trace.Activation { round; node = v });
      (* with a listener attached, record which neighbours the step
         read: the causal in-edges of the resulting write *)
      t.read_stamp <- t.read_stamp + 1;
      let stamp = t.read_stamp in
      let distinct = ref 0 in
      let read u =
        if not (Graph.has_edge t.graph v u) then
          invalid_arg "Network.step: reading a non-neighbour";
        if capture && t.read_mark.(u) <> stamp then begin
          t.read_mark.(u) <- stamp;
          incr distinct
        end;
        snapshot.(u)
      in
      let s' = P.step t.graph v snapshot.(v) read in
      if P.equal s' snapshot.(v) then
        t.metrics.Metrics.wasted_steps <- t.metrics.Metrics.wasted_steps + 1
      else writes := (v, s', read_cause t v ~distinct:!distinct ~stamp) :: !writes
    done;
    pleave prb "make.compute";
    t.metrics.Metrics.skipped_activations <-
      t.metrics.Metrics.skipped_activations + (Graph.n t.graph - m);
    t.rounds <- round;
    t.metrics.Metrics.rounds <- t.metrics.Metrics.rounds + 1;
    (* the loop built [writes] by consing over the ascending members, so
       reversing applies (and emits) them in ascending node order too *)
    penter prb "make.apply";
    List.iter
      (fun (v, s', cause) ->
        apply_write t ~round ~cause v s';
        dirty_neighbourhood t v)
      (List.rev !writes);
    pleave prb "make.apply";
    fire_round_hook t
    end

  (* Compact the frontier after an async round: within-round flag churn
     leaves stale entries behind; without compaction they would accumulate
     across rounds. *)
  let compact t = Frontier.compact t.frontier

  (* One asynchronous round under a fair daemon: the schedule is drawn
     exactly as in {!Naive} (same RNG consumption); scheduled clean nodes
     are skipped as no-ops, dirty ones fire and read fresh registers. *)
  let async_round t daemon =
    let round = t.rounds + 1 in
    let schedule = Scheduler.round_schedule daemon (Graph.n t.graph) in
    let capture = capturing t in
    List.iter
      (fun v ->
        if Frontier.mem t.frontier v then begin
          Frontier.unmark t.frontier v;
          t.metrics.Metrics.activations <- t.metrics.Metrics.activations + 1;
          emit t (Trace.Activation { round; node = v });
          t.read_stamp <- t.read_stamp + 1;
          let stamp = t.read_stamp in
          let distinct = ref 0 in
          let read u =
            if not (Graph.has_edge t.graph v u) then
              invalid_arg "Network.step: reading a non-neighbour";
            if capture && t.read_mark.(u) <> stamp then begin
              t.read_mark.(u) <- stamp;
              incr distinct
            end;
            t.states.(u)
          in
          let s' = P.step t.graph v t.states.(v) read in
          if P.equal s' t.states.(v) then
            t.metrics.Metrics.wasted_steps <- t.metrics.Metrics.wasted_steps + 1
          else begin
            apply_write t ~round ~cause:(read_cause t v ~distinct:!distinct ~stamp) v s';
            dirty_neighbourhood t v
          end
        end
        else
          t.metrics.Metrics.skipped_activations <- t.metrics.Metrics.skipped_activations + 1)
      schedule;
    t.rounds <- round;
    t.metrics.Metrics.rounds <- t.metrics.Metrics.rounds + 1;
    compact t;
    fire_round_hook t

  let round t daemon = if Scheduler.is_sync daemon then sync_round t else async_round t daemon

  let run t daemon ~rounds =
    for _ = 1 to rounds do
      round t daemon
    done

  let any_alarm t = t.alarm_count > 0

  let alarming_nodes t =
    let acc = ref [] in
    Array.iteri (fun v a -> if a then acc := v :: !acc) t.alarm_flags;
    !acc

  (* Run until [stop] holds or [max_rounds] elapse; returns the number of
     rounds executed and whether [stop] was reached.  Emits a
     {!Trace.Convergence} event at the stopping point. *)
  let run_until t daemon ~max_rounds stop =
    let executed = ref 0 and reached = ref (stop t) in
    while (not !reached) && !executed < max_rounds do
      round t daemon;
      incr executed;
      reached := stop t
    done;
    emit t (Trace.Convergence { round = t.rounds; reached = !reached });
    (!executed, !reached)

  (* Rounds until the first alarm, or [None] if none within [max_rounds]. *)
  let detection_time t daemon ~max_rounds =
    let executed, reached = run_until t daemon ~max_rounds any_alarm in
    if reached then Some executed else None

  module Inject = Fault.Apply (P)

  (* Apply one burst of [model].  Consumes the RNG exactly as
     {!Naive.inject} does and funnels every rewrite through [apply_write]
     plus [dirty_neighbourhood], so the metrics, the trace, the alarm
     tracking and the dirty set all see the fault. *)
  let inject t st (model : Fault.t) =
    Inject.apply st t.graph model
      ~get:(fun v -> t.states.(v))
      ~set:(fun v s' ->
        (* injection ids number rewrites per run, in order: the causal
           terminals provenance walks resolve against *)
        let fid : Fault.id = t.metrics.Metrics.faults_injected in
        t.metrics.Metrics.faults_injected <- fid + 1;
        emit t (Trace.Fault_injected { round = t.rounds; node = v; fault = Some fid });
        apply_write t ~round:t.rounds ~cause:(Trace.Fault fid) v s';
        dirty_neighbourhood t v)

  (* Corrupt [count] distinct random nodes; returns the sorted list of
     faulty nodes. *)
  let inject_faults t st ~count = inject t st (Fault.uniform ~count)

  (* Max hop distance from any fault to the closest alarming node: the
     paper's detection distance (Section 2.4). *)
  let detection_distance t ~faults =
    Dist.detection_distance t.graph ~faults ~alarms:(alarming_nodes t)
end

(* ------------------------------------------------------------------ *)
(* The flat struct-of-arrays engine                                    *)
(* ------------------------------------------------------------------ *)

(* {!Flat} runs a {!Protocol.PACKED} protocol with every register packed
   into one flat int array of [n * words] entries — the struct-of-arrays
   layout that makes the paper's O(log n)-bits-per-node claim literal in
   process memory.  Scheduling is the same event-driven dirty-set logic as
   {!Make} (same skip rule, same canonical ascending-id write order, same
   daemon RNG consumption), so states and round counts stay bit-identical
   to both other engines under every daemon; the three-way differential
   suite pins this down.

   States are unpacked on demand and never cached: reads allocate transient
   minor-heap values that die young, so resident memory stays dominated by
   the register file itself — [8 * words] measured bytes per node, which is
   what the SCALE experiments gate against the modeled c·⌈log n⌉ bound.
   Tracing and the flight-recorder write hook stay on {!Make}: provenance
   capture needs retained unpacked states and is the opposite of a memory
   experiment. *)

module Flat (P : Protocol.PACKED) = struct
  (* Staging buffers for the domain-parallel sync round, allocated on the
     first parallel round and reused for the network's lifetime.  Workers
     write only the slices of [scratch]/[wrote]/[new_bits] indexed by
     members they own, so the arrays are race-free by construction. *)
  type par = {
    scratch : int array;  (* n * words: deferred register images *)
    wrote : Bytes.t;  (* '\000' no write | '\001' write | '\002' alarming *)
    new_bits : int array;  (* P.bits of the deferred state, per node *)
  }

  type t = {
    graph : Graph.t;
    words : int;  (* per-node register budget *)
    regs : int array;  (* the register file: node v at [v * words] *)
    mutable rounds : int;
    mutable peak_bits : int;  (* modeled bits (P.bits), as in Make *)
    frontier : Frontier.t;  (* dirty flags + dense member buffer *)
    alarm_flags : bool array;
    mutable alarm_count : int;
    last_write : int array;
    metrics : Metrics.t;
    mutable domains : int;  (* sync-round worker count; 1 = sequential *)
    mutable par : par option;
    (* called on every register write (after the register is updated), in
       canonical ascending order within a round: the order-auditing probe
       the write-order regression tests listen on.  Must not mutate the
       network. *)
    mutable write_hook : (round:int -> node:int -> unit) option;
  }

  let mark_dirty t v = Frontier.mark t.frontier v

  let dirty_neighbourhood t v =
    mark_dirty t v;
    Graph.iter_ports t.graph v (fun _ u -> mark_dirty t u)

  let state t v = P.unpack t.graph v t.regs (v * t.words)

  let create ?(domains = 1) graph =
    let n = Graph.n graph in
    let words = P.words graph in
    let regs = Array.make (n * words) 0 in
    let alarm_flags = Array.make n false in
    let peak = ref 0 in
    let alarms = ref 0 in
    for v = 0 to n - 1 do
      let s = P.init graph v in
      P.pack graph v s regs (v * words);
      if P.bits s > !peak then peak := P.bits s;
      let a = P.alarm s in
      alarm_flags.(v) <- a;
      if a then incr alarms
    done;
    let t =
      {
        graph;
        words;
        regs;
        rounds = 0;
        peak_bits = !peak;
        frontier = Frontier.create n;
        alarm_flags;
        alarm_count = !alarms;
        last_write = Array.make n 0;
        metrics = Metrics.create ();
        domains = max 1 domains;
        par = None;
        write_hook = None;
      }
    in
    t.metrics.Metrics.peak_bits <- !peak;
    t

  let graph t = t.graph
  let states t = Array.init (Graph.n t.graph) (state t)
  let rounds t = t.rounds
  let metrics t = t.metrics
  let words t = t.words
  let domains t = t.domains
  let set_domains t k = t.domains <- max 1 k

  (* A copy of the raw register file: the byte-identity witness the
     parallel differential tests compare across domain counts. *)
  let registers t = Array.copy t.regs

  (* Write-order probe: [f] fires on every register write, immediately
     after the register file is updated, in the engine's canonical order
     (ascending node id within a sync round).  Read-only by the same
     contract as {!Make}'s hooks.  Attaching it does NOT force the
     sequential path — the parallel round fires it on the main domain in
     the same canonical order. *)
  let set_write_hook t f = t.write_hook <- Some f
  let clear_write_hook t = t.write_hook <- None

  (* The measured per-node footprint of this engine: whole 64-bit words,
     against which {!Memory.within_log_budget} gates the modeled bound. *)
  let measured_bytes_per_node t = Memory.bytes_of_words t.words

  (* The single register-write path, mirroring {!Make.apply_write} minus
     trace/hook provenance. *)
  let apply_write t ~round v s' =
    P.pack t.graph v s' t.regs (v * t.words);
    let b = P.bits s' in
    if b > t.peak_bits then t.peak_bits <- b;
    if b > t.metrics.Metrics.peak_bits then t.metrics.Metrics.peak_bits <- b;
    t.metrics.Metrics.register_writes <- t.metrics.Metrics.register_writes + 1;
    t.metrics.Metrics.last_write_round <- round;
    t.last_write.(v) <- round;
    (match t.write_hook with None -> () | Some f -> f ~round ~node:v);
    let was = t.alarm_flags.(v) and now = P.alarm s' in
    if was <> now then begin
      t.alarm_flags.(v) <- now;
      if now then begin
        t.alarm_count <- t.alarm_count + 1;
        t.metrics.Metrics.alarms_raised <- t.metrics.Metrics.alarms_raised + 1
      end
      else begin
        t.alarm_count <- t.alarm_count - 1;
        t.metrics.Metrics.alarms_cleared <- t.metrics.Metrics.alarms_cleared + 1
      end
    end

  let set_state t v s =
    apply_write t ~round:t.rounds v s;
    dirty_neighbourhood t v

  let last_write_round t v = t.last_write.(v)
  let peak_bits t = t.peak_bits

  let par_buffers t =
    match t.par with
    | Some p -> p
    | None ->
        let n = Graph.n t.graph in
        let p =
          {
            scratch = Array.make (n * t.words) 0;
            wrote = Bytes.make n '\000';
            new_bits = Array.make n 0;
          }
        in
        t.par <- Some p;
        p

  (* One worker's share of a deferred sync round: step members.(lo..hi-1)
     against the pre-round register file, staging every changed register
     in the scratch slice its member owns.  [w] indexes the private
     wasted-step counter.  Runs on the calling domain when sequential
     (lo = 0, hi = m) and on worker domains when parallel; either way
     nothing observable mutates before the apply loop.  The [read]
     closure is hoisted out of the member loop (one allocation per range
     per round, not per step) with the current member threaded through a
     ref. *)
  let compute_range t p wasted w members lo hi =
    let cur = ref 0 in
    let read u =
      if not (Graph.has_edge t.graph !cur u) then
        invalid_arg "Network.step: reading a non-neighbour";
      state t u
    in
    for i = lo to hi - 1 do
      let v = members.(i) in
      cur := v;
      let own = state t v in
      let s' = P.step t.graph v own read in
      if P.equal s' own then wasted.(w) <- wasted.(w) + 1
      else begin
        (* the codec may leave slice words untouched (keeping their
           previous value): seed the scratch slice from the live
           register so the apply blit is exact *)
        Array.blit t.regs (v * t.words) p.scratch (v * t.words) t.words;
        P.pack t.graph v s' p.scratch (v * t.words);
        p.new_bits.(v) <- P.bits s';
        Bytes.set p.wrote v (if P.alarm s' then '\002' else '\001')
      end
    done

  (* The deferred sync round, shared by the sequential (k = 1) and
     domain-parallel (k > 1) paths so work accounting and effect order are
     identical by construction.  Correctness rests on the deferred-write
     snapshot: until the barrier, workers read only the pre-round register
     file and write only the [v * words] scratch slices of members they
     own (contiguous slices of the ascending member array are
     node-disjoint), so domains share nothing writable.  Every observable
     effect — register blits, metrics, the write hook, alarm flags, dirty
     marking — happens after the barrier on the calling domain in
     ascending node id; registers and metrics are therefore byte-identical
     at every domain count. *)
  let deferred_sync_round t ~prb ~round ~members ~m ~domains:k =
    let p = par_buffers t in
    let wasted = Array.make k 0 in
    penter prb "flat.compute";
    if k = 1 then compute_range t p wasted 0 members 0 m
    else
      Domain_pool.run ~domains:k (fun w ->
          let lo, hi = Domain_pool.slice ~domains:k m w in
          compute_range t p wasted w members lo hi);
    pleave prb "flat.compute";
    t.metrics.Metrics.activations <- t.metrics.Metrics.activations + m;
    Array.iter
      (fun c -> t.metrics.Metrics.wasted_steps <- t.metrics.Metrics.wasted_steps + c)
      wasted;
    t.metrics.Metrics.skipped_activations <-
      t.metrics.Metrics.skipped_activations + (Graph.n t.graph - m);
    t.rounds <- round;
    t.metrics.Metrics.rounds <- t.metrics.Metrics.rounds + 1;
    (* apply deferred writes in ascending node id: the canonical order,
       shared with {!Make}.  This loop is the wrote-tag scan plus the
       scratch->register blits — the cache-miss suspects the ROADMAP
       names; [flat.apply] makes them measurable. *)
    penter prb "flat.apply";
    for i = 0 to m - 1 do
      let v = members.(i) in
      match Bytes.get p.wrote v with
      | '\000' -> ()
      | c ->
          Bytes.set p.wrote v '\000';
          Array.blit p.scratch (v * t.words) t.regs (v * t.words) t.words;
          let b = p.new_bits.(v) in
          if b > t.peak_bits then t.peak_bits <- b;
          if b > t.metrics.Metrics.peak_bits then t.metrics.Metrics.peak_bits <- b;
          t.metrics.Metrics.register_writes <- t.metrics.Metrics.register_writes + 1;
          t.metrics.Metrics.last_write_round <- round;
          t.last_write.(v) <- round;
          (match t.write_hook with None -> () | Some f -> f ~round ~node:v);
          let was = t.alarm_flags.(v) and now = c = '\002' in
          if was <> now then begin
            t.alarm_flags.(v) <- now;
            if now then begin
              t.alarm_count <- t.alarm_count + 1;
              t.metrics.Metrics.alarms_raised <- t.metrics.Metrics.alarms_raised + 1
            end
            else begin
              t.alarm_count <- t.alarm_count - 1;
              t.metrics.Metrics.alarms_cleared <- t.metrics.Metrics.alarms_cleared + 1
            end
          end;
          dirty_neighbourhood t v
    done;
    pleave prb "flat.apply"

  (* One synchronous round: dirty nodes step on the pre-round register
     file (writes are deferred), clean nodes are provably no-ops.  With
     [domains > 1] on a multicore runtime, rounds whose frontier is worth
     splitting fan out across worker domains; tiny frontiers (convergence
     tails) stay on the calling domain — the cutoff keeps per-round
     overhead off the quiescent path while still exercising the parallel
     code on small test graphs at [domains] 2–4.  Both cases run the same
     {!deferred_sync_round}. *)
  let sync_round t =
    let round = t.rounds + 1 in
    let prb = if Frontier.is_empty t.frontier then None else Probe.get () in
    penter prb "flat.frontier";
    let members, m = Frontier.drain t.frontier in
    pleave prb "flat.frontier";
    let k = if Domain_pool.available then t.domains else 1 in
    let k = if k > 1 && m >= 2 * k then k else 1 in
    deferred_sync_round t ~prb ~round ~members ~m ~domains:k

  let compact t = Frontier.compact t.frontier

  (* One asynchronous round: same schedule draw and skip rule as {!Make};
     fired nodes read fresh registers. *)
  let async_round t daemon =
    let round = t.rounds + 1 in
    let schedule = Scheduler.round_schedule daemon (Graph.n t.graph) in
    List.iter
      (fun v ->
        if Frontier.mem t.frontier v then begin
          Frontier.unmark t.frontier v;
          t.metrics.Metrics.activations <- t.metrics.Metrics.activations + 1;
          let read u =
            if not (Graph.has_edge t.graph v u) then
              invalid_arg "Network.step: reading a non-neighbour";
            state t u
          in
          let own = state t v in
          let s' = P.step t.graph v own read in
          if P.equal s' own then
            t.metrics.Metrics.wasted_steps <- t.metrics.Metrics.wasted_steps + 1
          else begin
            apply_write t ~round v s';
            dirty_neighbourhood t v
          end
        end
        else
          t.metrics.Metrics.skipped_activations <- t.metrics.Metrics.skipped_activations + 1)
      schedule;
    t.rounds <- round;
    t.metrics.Metrics.rounds <- t.metrics.Metrics.rounds + 1;
    compact t

  let round t daemon = if Scheduler.is_sync daemon then sync_round t else async_round t daemon

  let run t daemon ~rounds =
    for _ = 1 to rounds do
      round t daemon
    done

  let any_alarm t = t.alarm_count > 0

  let alarming_nodes t =
    let acc = ref [] in
    Array.iteri (fun v a -> if a then acc := v :: !acc) t.alarm_flags;
    !acc

  let run_until t daemon ~max_rounds stop =
    let executed = ref 0 and reached = ref (stop t) in
    while (not !reached) && !executed < max_rounds do
      round t daemon;
      incr executed;
      reached := stop t
    done;
    (!executed, !reached)

  let detection_time t daemon ~max_rounds =
    let executed, reached = run_until t daemon ~max_rounds any_alarm in
    if reached then Some executed else None

  module Inject = Fault.Apply (P)

  (* Same RNG consumption as the other engines; every rewrite funnels
     through [apply_write] so alarm/memory tracking and the dirty set see
     the fault. *)
  let inject t st (model : Fault.t) =
    Inject.apply st t.graph model
      ~get:(fun v -> state t v)
      ~set:(fun v s' ->
        t.metrics.Metrics.faults_injected <- t.metrics.Metrics.faults_injected + 1;
        apply_write t ~round:t.rounds v s';
        dirty_neighbourhood t v)

  let inject_faults t st ~count = inject t st (Fault.uniform ~count)

  let detection_distance t ~faults =
    Dist.detection_distance t.graph ~faults ~alarms:(alarming_nodes t)
end
