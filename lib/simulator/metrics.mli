(** Aggregate execution counters owned by every {!Network.Make} instance.

    Counts the engine's actual work: activations executed, register writes,
    wasted steps (no-change activations), dirty-set skips, rounds, faults,
    alarm transitions and peak register bits.  Always-on and O(1) per
    event. *)

type t = {
  mutable rounds : int;
  mutable activations : int;
  mutable register_writes : int;
  mutable wasted_steps : int;
  mutable skipped_activations : int;
  mutable last_write_round : int;
  mutable faults_injected : int;
  mutable alarms_raised : int;
  mutable alarms_cleared : int;
  mutable peak_bits : int;
  mutable monitor_violations : int;
}

val create : unit -> t
val reset : t -> unit

val rounds_to_quiescence : t -> int
(** The last round during which some register changed. *)

val csv_header : string
val to_csv_row : t -> string

val to_json : ?label:string -> t -> string
(** One JSON object: a JSONL line.  [label] tags the row when given. *)

val pp : Format.formatter -> t -> unit
