(** Ring-buffered typed execution traces for the event-driven engine.

    Attach a trace to a {!Network.Make} instance and every activation,
    register write, alarm transition, fault injection and convergence check
    is recorded as a typed event.  The buffer is bounded: once [capacity]
    events are held, the oldest are dropped (and counted in {!dropped}), so
    tracing an arbitrarily long run costs O(capacity) memory. *)

type event =
  | Activation of { round : int; node : int }
  | Register_write of { round : int; node : int; bits : int }
  | Alarm_raised of { round : int; node : int }
  | Alarm_cleared of { round : int; node : int }
  | Fault_injected of { round : int; node : int }
  | Convergence of { round : int; reached : bool }

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val record : t -> event -> unit

val total : t -> int
(** Events ever recorded, including dropped ones. *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int

val clear : t -> unit

val iter : (event -> unit) -> t -> unit
(** Oldest-first over the retained window. *)

val to_list : t -> event list

val event_name : event -> string
val event_round : event -> int
val event_node : event -> int option

val event_to_json : event -> string
(** One JSON object, no trailing newline: a JSONL line. *)

val write_jsonl : out_channel -> t -> unit

val csv_header : string
val event_to_csv : event -> string
val write_csv : out_channel -> t -> unit

val pp_event : Format.formatter -> event -> unit
