(** Ring-buffered typed execution traces for the event-driven engine.

    Attach a trace to a {!Network.Make} instance and every activation,
    register write, alarm transition, fault injection and convergence check
    is recorded as a typed event; the observability layer ([Ssmst_obs])
    additionally records phase-span marks and online-monitor verdicts.  The
    buffer is bounded: once [capacity] events are held, the oldest are
    dropped (and counted in {!dropped}), so tracing an arbitrarily long run
    costs O(capacity) memory. *)

type cause =
  | Init  (** an external write creating state from nothing *)
  | Neighbor_read of int list
      (** an activation that read the registers behind these ports — the
          causal in-edges of the provenance DAG *)
  | Fault of int  (** a fault injection, by per-run injection id *)

type change = { field : string; old_enc : int; new_enc : int }
(** one field-level delta: [field] comes from [Protocol.S.field_names],
    [old_enc]/[new_enc] from [Protocol.S.encode] before/after the write *)

type prov = { cause : cause; changes : change list }

type event =
  | Activation of { round : int; node : int }
  | Register_write of { round : int; node : int; bits : int; prov : prov option }
      (** [prov] is present when the engine captured provenance (trace or
          write hook attached); pre-provenance traces parse with [None] *)
  | Alarm_raised of { round : int; node : int }
  | Alarm_cleared of { round : int; node : int }
  | Fault_injected of { round : int; node : int; fault : int option }
      (** [fault] is the injection id that write causes refer to *)
  | Convergence of { round : int; reached : bool }
  | Span_mark of { round : int; label : string; enter : bool }
      (** a phase span opened ([enter = true]) or closed at [round] *)
  | Invariant_violation of { round : int; node : int option; monitor : string; detail : string }
      (** an online monitor found the settled snapshot of [round] in
          violation; [node] pinpoints the first offending node when one
          exists *)

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val record : t -> event -> unit

val total : t -> int
(** Events ever recorded, including dropped ones. *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int

val clear : t -> unit

val iter : (event -> unit) -> t -> unit
(** Oldest-first over the retained window. *)

val to_list : t -> event list

val event_name : event -> string
val event_round : event -> int
val event_node : event -> int option

val json_escape : string -> string
(** Standard JSON string escaping (quotes, backslashes, control bytes). *)

val cause_to_string : cause -> string
(** A flat descriptor: ["init"], ["read:0,2"] (ports), ["fault:7"]. *)

val cause_of_string : string -> cause option
(** Inverse of {!cause_to_string}. *)

val changes_to_string : change list -> string
(** Semicolon-joined field deltas: ["dist:3>4;parent:2>5"]. *)

val changes_of_string : string -> change list option
(** Inverse of {!changes_to_string} (the empty string is the empty list). *)

val event_to_json : event -> string
(** One JSON object, no trailing newline: a JSONL line.  Label, monitor and
    detail strings are escaped with {!json_escape}. *)

val event_of_json : string -> event option
(** Inverse of {!event_to_json}: parse one JSONL line back into the event it
    encodes, or [None] if the line is not a well-formed event object.  Every
    event round-trips: [event_of_json (event_to_json e) = Some e]. *)

val write_jsonl : out_channel -> t -> unit

val csv_header : string

val csv_escape : string -> string
(** RFC-4180-style quoting, applied only when the cell needs it. *)

val event_to_csv : event -> string
val write_csv : out_channel -> t -> unit

val pp_event : Format.formatter -> event -> unit
