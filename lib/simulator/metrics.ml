(* Aggregate execution counters for the event-driven engine.

   Where {!Trace} answers "what happened when", this module answers "how
   much work did the run do": activations actually executed, register
   writes, wasted steps (activations that left the register unchanged),
   activations the dirty-set filter skipped, rounds to quiescence, faults,
   alarm transitions and peak register size.  Counters are cheap enough to
   keep always-on; every {!Network.Make} instance owns one. *)

type t = {
  mutable rounds : int;  (* rounds executed *)
  mutable activations : int;  (* node steps actually executed *)
  mutable register_writes : int;  (* writes that changed a register *)
  mutable wasted_steps : int;  (* executed steps with an unchanged register *)
  mutable skipped_activations : int;  (* scheduled but skipped as clean *)
  mutable last_write_round : int;  (* most recent round with a write *)
  mutable faults_injected : int;
  mutable alarms_raised : int;  (* false -> true transitions *)
  mutable alarms_cleared : int;  (* true -> false transitions *)
  mutable peak_bits : int;  (* largest register ever held *)
  mutable monitor_violations : int;  (* online invariant-monitor verdicts *)
}

let create () =
  {
    rounds = 0;
    activations = 0;
    register_writes = 0;
    wasted_steps = 0;
    skipped_activations = 0;
    last_write_round = 0;
    faults_injected = 0;
    alarms_raised = 0;
    alarms_cleared = 0;
    peak_bits = 0;
    monitor_violations = 0;
  }

let reset t =
  t.rounds <- 0;
  t.activations <- 0;
  t.register_writes <- 0;
  t.wasted_steps <- 0;
  t.skipped_activations <- 0;
  t.last_write_round <- 0;
  t.faults_injected <- 0;
  t.alarms_raised <- 0;
  t.alarms_cleared <- 0;
  t.peak_bits <- 0;
  t.monitor_violations <- 0

(* The round after which no register changed again: the run's effective
   convergence point (writes at round r happen *during* round r, counted
   from 1). *)
let rounds_to_quiescence t = t.last_write_round

let csv_header =
  "rounds,activations,register_writes,wasted_steps,skipped_activations,"
  ^ "rounds_to_quiescence,faults_injected,alarms_raised,alarms_cleared,peak_bits,"
  ^ "monitor_violations"

let to_csv_row t =
  Fmt.str "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d" t.rounds t.activations t.register_writes
    t.wasted_steps t.skipped_activations (rounds_to_quiescence t) t.faults_injected
    t.alarms_raised t.alarms_cleared t.peak_bits t.monitor_violations

let to_json ?(label = "") t =
  let prefix = if label = "" then "" else Fmt.str {|"label":%S,|} label in
  Fmt.str
    {|{%s"rounds":%d,"activations":%d,"register_writes":%d,"wasted_steps":%d,"skipped_activations":%d,"rounds_to_quiescence":%d,"faults_injected":%d,"alarms_raised":%d,"alarms_cleared":%d,"peak_bits":%d,"monitor_violations":%d}|}
    prefix t.rounds t.activations t.register_writes t.wasted_steps t.skipped_activations
    (rounds_to_quiescence t) t.faults_injected t.alarms_raised t.alarms_cleared t.peak_bits
    t.monitor_violations

let pp ppf t =
  Fmt.pf ppf
    "rounds %d; activations %d (writes %d, wasted %d, skipped %d); quiescent after %d; faults \
     %d; alarms +%d/-%d; peak %d bits; violations %d"
    t.rounds t.activations t.register_writes t.wasted_steps t.skipped_activations
    (rounds_to_quiescence t) t.faults_injected t.alarms_raised t.alarms_cleared t.peak_bits
    t.monitor_violations
