(** Graph generators.  All randomness comes from an explicit
    [Random.State.t], so every experiment is reproducible from its seed. *)

val rng : int -> Random.State.t
(** A fresh generator state from a seed. *)

val assign_weights : ?distinct:bool -> Random.State.t -> int -> bound:int -> int array
(** [m] random weights in [[1, bound]]; pairwise distinct when [distinct]
    (default). *)

val weighted : Random.State.t -> ?distinct:bool -> (int * int) list -> (int * int * int) list
(** Attach random weights to a skeleton. *)

(** Unweighted skeletons. *)

val path_skeleton : int -> (int * int) list
val ring_skeleton : int -> (int * int) list
val star_skeleton : int -> (int * int) list
val complete_skeleton : int -> (int * int) list
val grid_skeleton : int -> int -> (int * int) list
val binary_tree_skeleton : int -> (int * int) list

val random_connected_skeleton : Random.State.t -> int -> extra:int -> (int * int) list
(** A random spanning-tree backbone plus up to [extra] random chords:
    always connected, never multi-edged. *)

(** Weighted graphs (distinct random weights). *)

val path : Random.State.t -> int -> Graph.t
val ring : Random.State.t -> int -> Graph.t
val star : Random.State.t -> int -> Graph.t
val complete : Random.State.t -> int -> Graph.t
val grid : Random.State.t -> int -> int -> Graph.t
val binary_tree : Random.State.t -> int -> Graph.t

val random_connected : ?extra_factor:float -> Random.State.t -> int -> Graph.t
(** Random connected graph with about [extra_factor * n] chords
    (default 2.0). *)

val hypertree_like : Random.State.t -> int -> Graph.t * Tree.t
(** The Section 9 lower-bound family: a height-[h] instance with the
    black-box properties of the (h,µ)-hypertrees of [54] — fixed unweighted
    topology, H(G) a rooted spanning tree and the unique MST, at most one
    non-tree edge per node, none at the root.  Returns the graph and the
    candidate tree. *)

(** {2 Streaming million-node builders}

    The builders below emit edges straight into {!Graph.of_stream}: no
    intermediate edge list, no O(bound) weight pool.  Weights are pairwise
    distinct, drawn from a seeded Feistel-style bijection, so the MST is
    unique already under the base weights.  Determinism is by [seed] alone
    (no [Random.State.t] threading), which is what makes the two-pass
    streaming construction possible. *)

val feistel : seed:int -> m:int -> int -> int
(** [feistel ~seed ~m] is a keyed bijection on [[0, m)]: distinct inputs in
    range give distinct outputs in range.  O(1) memory per call. *)

val stream_grid : seed:int -> int -> int -> Graph.t
(** [stream_grid ~seed rows cols]: the grid with distinct random weights. *)

val stream_random : seed:int -> ?extra_factor:float -> int -> Graph.t
(** [stream_random ~seed n]: a random-attachment spanning backbone (node
    [v]'s parent is hashed from [(seed, v)]) plus about
    [extra_factor * n] distinct random chords (default 2.0).  Always
    connected, never multi-edged. *)

val stream_hypertree : seed:int -> int -> Graph.t
(** [stream_hypertree ~seed h]: the Section 9 lower-bound family at height
    [h] ([n = 2^(h+1) - 1]), as {!hypertree_like} but streaming; the
    candidate tree is the parent formula [v -> (v-1)/2]. *)

val subdivide : tau:int -> Graph.t -> Tree.t -> Graph.t * Tree.t
(** The G → G′ transform of Section 9: every edge becomes a path of
    [2*tau + 2] nodes with components oriented as in Figures 10/11.  H(G′)
    is an MST of G′ iff H(G) is an MST of G. *)
