(* Graph generators for tests, examples and benchmarks.  All randomness is
   drawn from an explicit [Random.State.t] so every experiment is
   reproducible from its seed. *)

let rng seed = Random.State.make [| seed |]

(* Distinct random base weights in [1, bound]; when [distinct] is set the
   weights are a random permutation slice so the MST is unique already under
   the base weights. *)
let assign_weights ?(distinct = true) st m ~bound =
  if distinct then begin
    let pool = Array.init (max bound m) (fun i -> i + 1) in
    for i = Array.length pool - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = pool.(i) in
      pool.(i) <- pool.(j);
      pool.(j) <- t
    done;
    Array.sub pool 0 m
  end
  else Array.init m (fun _ -> 1 + Random.State.int st bound)

let weighted st ?(distinct = true) skeleton =
  let m = List.length skeleton in
  let w = assign_weights ~distinct st m ~bound:(8 * m) in
  List.mapi (fun i (u, v) -> (u, v, w.(i))) skeleton

let path_skeleton n = List.init (n - 1) (fun i -> (i, i + 1))

let ring_skeleton n = (n - 1, 0) :: path_skeleton n

let star_skeleton n = List.init (n - 1) (fun i -> (0, i + 1))

let complete_skeleton n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  !acc

let grid_skeleton rows cols =
  let idx r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (idx r c, idx r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (idx r c, idx (r + 1) c) :: !acc
    done
  done;
  !acc

let binary_tree_skeleton n = List.init (n - 1) (fun i -> (((i + 1) - 1) / 2, i + 1))

(* Random spanning-tree backbone (random attachment) plus [extra] random
   non-tree edges: always connected, never multi-edged. *)
let random_connected_skeleton st n ~extra =
  let edges = ref [] in
  let seen = Hashtbl.create (n + extra) in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v) :: !edges;
      true
    end
    else false
  in
  for v = 1 to n - 1 do
    ignore (add v (Random.State.int st v))
  done;
  let budget = ref extra and attempts = ref (20 * (extra + 1)) in
  while !budget > 0 && !attempts > 0 do
    decr attempts;
    let u = Random.State.int st n and v = Random.State.int st n in
    if add u v then decr budget
  done;
  !edges

let path st n = Graph.of_edges ~n (weighted st (path_skeleton n))
let ring st n = Graph.of_edges ~n (weighted st (ring_skeleton n))
let star st n = Graph.of_edges ~n (weighted st (star_skeleton n))
let complete st n = Graph.of_edges ~n (weighted st (complete_skeleton n))
let grid st rows cols = Graph.of_edges ~n:(rows * cols) (weighted st (grid_skeleton rows cols))
let binary_tree st n = Graph.of_edges ~n (weighted st (binary_tree_skeleton n))

let random_connected ?(extra_factor = 2.0) st n =
  let extra = int_of_float (extra_factor *. float_of_int n) in
  Graph.of_edges ~n (weighted st (random_connected_skeleton st n ~extra))

(* The Section 9 lower-bound family.  The (h,mu)-hypertrees of [54] are used
   by the paper as a black box with these properties, which we reproduce
   exactly: all members share the same unweighted topology, H(G) is a rooted
   spanning tree, every node is adjacent to at most one non-tree edge, and
   the root touches only tree edges.  We realize this as a complete binary
   tree of height [h] with one cross (non-tree) edge between each pair of
   sibling leaves; the instance information lives entirely in the weights,
   drawn from [st]. *)
let hypertree_like st h =
  let n = (1 lsl (h + 1)) - 1 in
  let tree = binary_tree_skeleton n in
  let first_leaf = (1 lsl h) - 1 in
  let cross = ref [] in
  let i = ref first_leaf in
  while !i + 1 < n do
    cross := (!i, !i + 1) :: !cross;
    i := !i + 2
  done;
  let m = List.length tree + List.length !cross in
  let w = assign_weights ~distinct:true st m ~bound:(8 * m) in
  (* tree edges get the lightest weights so H(G) is the (unique) MST in the
     positive instances; negative instances are produced by the caller by
     swapping weights. *)
  let sorted = Array.copy w in
  Array.sort Int.compare sorted;
  let k = List.length tree in
  let tree_edges = List.mapi (fun i (u, v) -> (u, v, sorted.(i))) tree in
  let cross_edges = List.mapi (fun i (u, v) -> (u, v, sorted.(k + i))) !cross in
  let g = Graph.of_edges ~n (tree_edges @ cross_edges) in
  let parent = Array.init n (fun v -> if v = 0 then -1 else (v - 1) / 2) in
  (g, Tree.of_parents g parent)

(* ------------------------------------------------------------------ *)
(* Streaming million-node builders                                     *)
(* ------------------------------------------------------------------ *)

(* The list-skeleton builders above materialize O(m) cons cells (and the
   distinct-weight pool another O(bound) array) before the graph exists,
   which caps instances around 10^5 nodes.  The [stream_*] builders below
   emit edges straight into {!Graph.of_stream} and draw pairwise-distinct
   weights from a seeded bijection, so construction needs no intermediate
   edge list at all. *)

(* Deterministic integer mixer for seed-keyed structural choices (random
   parents, sub-seeds).  Murmur3-style finalizer; result is non-negative. *)
let mix seed x =
  let h = x + (seed * 0x632BE59B) + 0x9E3779B9 in
  let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
  let h = (h lxor (h lsr 13)) * 0xC2B2AE35 in
  (h lxor (h lsr 16)) land max_int

(* A keyed bijection on [0, m): a 4-round Feistel network over the smallest
   even-bit-width domain covering m, cycle-walked back into [0, m).  This
   hands out m pairwise-distinct values with O(1) memory — the streaming
   replacement for the O(bound) shuffle pool of [assign_weights]. *)
let feistel ~seed ~m =
  if m <= 1 then fun _ -> 0
  else begin
    let half = ref 1 in
    while 1 lsl (2 * !half) < m do
      incr half
    done;
    let half = !half in
    let mask = (1 lsl half) - 1 in
    let f k x =
      let h = (x + 1) * ((k * 2) + 0x9E3779B1) in
      let h = h lxor (h lsr 15) in
      let h = h * 0x85EBCA77 in
      h lxor (h lsr 13)
    in
    let rec walk x =
      let l = ref (x lsr half) and r = ref (x land mask) in
      for j = 0 to 3 do
        let t = (!l lxor f ((seed lsl 2) + j) !r) land mask in
        l := !r;
        r := t
      done;
      let y = (!l lsl half) lor !r in
      if y < m then y else walk y
    in
    walk
  end

let stream_grid ~seed rows cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then invalid_arg "Gen.stream_grid";
  let n = rows * cols in
  let m = (rows * (cols - 1)) + (cols * (rows - 1)) in
  let w = feistel ~seed ~m in
  let idx r c = (r * cols) + c in
  Graph.of_stream ~n (fun f ->
      let k = ref 0 in
      let emit u v =
        f u v (1 + w !k);
        incr k
      in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if c + 1 < cols then emit (idx r c) (idx r (c + 1));
          if r + 1 < rows then emit (idx r c) (idx (r + 1) c)
        done
      done)

(* Random attachment without storage: node v's tree parent is a hash of
   (seed, v) reduced mod v, so the backbone is recomputable in both
   [of_stream] passes with no parents array.  Chords walk a keyed bijection
   over the pair space {(u,v) | u < v} — injective, hence never a parallel
   edge — skipping pairs that collide with a backbone edge. *)
let stream_random ~seed ?(extra_factor = 2.0) n =
  if n < 2 then invalid_arg "Gen.stream_random";
  let extra = int_of_float (extra_factor *. float_of_int n) in
  let parent_of v = mix seed v mod v in
  let npairs = n * (n - 1) / 2 in
  (* rank of (u,v), u < v, in the (0,1) (0,2) .. (0,n-1) (1,2) .. order *)
  let base u = u * ((2 * n) - u - 1) / 2 in
  let decode t =
    let fn = float_of_int n -. 0.5 in
    let u = ref (int_of_float (fn -. sqrt ((fn *. fn) -. (2.0 *. float_of_int t)))) in
    if !u < 0 then u := 0;
    while !u + 1 < n - 1 && base (!u + 1) <= t do
      incr u
    done;
    while !u > 0 && base !u > t do
      decr u
    done;
    (!u, !u + 1 + (t - base !u))
  in
  let pair_perm = feistel ~seed:(mix seed 0xC0FFEE) ~m:npairs in
  let wt = feistel ~seed:(mix seed 0x5EED) ~m:(n - 1 + extra) in
  Graph.of_stream ~n (fun f ->
      for v = 1 to n - 1 do
        f (parent_of v) v (1 + wt (v - 1))
      done;
      let budget = min (20 * (extra + 1)) npairs in
      let accepted = ref 0 and j = ref 0 in
      while !accepted < extra && !j < budget do
        let u, v = decode (pair_perm !j) in
        if parent_of v <> u then begin
          f u v (1 + wt (n - 1 + !accepted));
          incr accepted
        end;
        incr j
      done)

(* Streaming variant of {!hypertree_like}: same topology (complete binary
   tree of height h, one cross edge per sibling-leaf pair) and the same
   weight structure (tree edges carry the lightest weights, so H(G) — the
   tree with parent v = (v-1)/2 — is the unique MST).  Returns the graph
   only; the candidate tree is recoverable from the parent formula. *)
let stream_hypertree ~seed h =
  if h < 1 then invalid_arg "Gen.stream_hypertree";
  let n = (1 lsl (h + 1)) - 1 in
  let ktree = n - 1 in
  let first_leaf = (1 lsl h) - 1 in
  let ncross = (n - first_leaf) / 2 in
  let wt = feistel ~seed ~m:ktree in
  let wc = feistel ~seed:(mix seed 0xCA05) ~m:ncross in
  Graph.of_stream ~n (fun f ->
      for v = 1 to n - 1 do
        f ((v - 1) / 2) v (1 + wt (v - 1))
      done;
      let k = ref 0 and i = ref first_leaf in
      while !i + 1 < n do
        f !i (!i + 1) (ktree + 1 + wc !k);
        incr k;
        i := !i + 2
      done)

(* The path-subdivision transform of Section 9: replace every edge (u,v)
   with a simple path of [2*tau + 2] nodes (the two endpoints plus 2*tau
   fresh inner nodes), components oriented as in Figures 10 and 11: a tree
   chain points entirely towards the parent endpoint, a non-tree chain hangs
   as two stubs with the middle edge excluded from H(G').

   Weight placement preserves the key property of Lemma 9.1 — H(G') is an
   MST of G' iff H(G) is an MST of G.  Original weights are scaled up by a
   factor above every chain-filler weight; each chain carries its original
   (scaled) weight on exactly one edge, and that edge is the *excluded*
   middle edge for non-tree chains, so every fundamental cycle of G'
   compares exactly the weights its preimage cycle compares in G.  All
   filler weights are distinct. *)
let subdivide ~tau (g : Graph.t) (t : Tree.t) =
  let n = Graph.n g in
  let inner = 2 * tau in
  let m = Graph.num_edges g in
  let scale = (inner + 1) * m * 16 in
  let counter = ref n in
  let filler = ref 0 in
  let edges = ref [] in
  let parent_pairs = ref [] in
  let fresh_filler () = incr filler; !filler in
  (* fresh chain between u and v; the original weight sits at position
     [heavy_at] (an edge index along the chain, 0-based from u). *)
  let chain u v w ~heavy_at ~tree_edge =
    let nodes = Array.init inner (fun _ -> let id = !counter in incr counter; id) in
    let seq = Array.concat [ [| u |]; nodes; [| v |] ] in
    let len = Array.length seq in
    for i = 0 to len - 2 do
      let weight = if i = heavy_at then w * scale else fresh_filler () in
      edges := (seq.(i), seq.(i + 1), weight) :: !edges
    done;
    if tree_edge then
      (* orient the whole chain towards v (the parent endpoint in t) *)
      for i = 0 to len - 2 do
        parent_pairs := (seq.(i), seq.(i + 1)) :: !parent_pairs
      done
    else begin
      (* non-tree edge: two stubs split at the middle edge, as in Fig. 11 *)
      for i = 1 to tau do
        parent_pairs := (seq.(i), seq.(i - 1)) :: !parent_pairs
      done;
      for i = tau + 1 to len - 2 do
        parent_pairs := (seq.(i), seq.(i + 1)) :: !parent_pairs
      done
    end
  in
  Graph.fold_edges
    (fun () u v w ->
      if Tree.is_tree_edge t u v then begin
        (* heavy edge at the far (parent) end, as in Fig. 10 *)
        if Tree.parent t u = Some v then chain u v w ~heavy_at:inner ~tree_edge:true
        else chain v u w ~heavy_at:inner ~tree_edge:true
      end
      else
        (* heavy edge in the middle: it is the excluded edge of H(G') *)
        chain u v w ~heavy_at:tau ~tree_edge:false)
    () g;
  let n' = !counter in
  let g' = Graph.of_edges ~n:n' !edges in
  let parent = Array.make n' (-1) in
  List.iter (fun (c, p) -> parent.(c) <- p) !parent_pairs;
  (g', Tree.of_parents g' parent)
