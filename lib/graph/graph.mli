(** Weighted undirected graphs in the paper's model (Section 2.1).

    Nodes are indexed [0 .. n-1] and carry unique O(log n)-bit identities.
    Each node numbers its incident edges with local {e port numbers}
    independent of the numbering at the other endpoint.  Base weights are
    integers polynomial in n; distinctness is not assumed — use
    {!weight_fn} / {!plain_weight_fn} for the ω′ transform. *)

type half_edge = { peer : int; base_weight : int }

type t

exception Malformed of string
(** Raised on invalid constructions (self-loops, parallel edges, duplicate
    identities, disconnected parent structures, ...). *)

val of_edges : ?ids:int array -> n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds a graph from [(u, v, weight)] triples.  Port
    numbers follow the list order.  Default identities are the node
    indices.  @raise Malformed on self-loops, parallel edges, out-of-range
    endpoints or duplicate identities. *)

val reweight : t -> (int -> int -> int -> int) -> t
(** [reweight g f] is [g] with edge (u,v) of weight [w] re-priced to
    [f u v w]; topology, identities and port numbers are preserved. *)

val n : t -> int

val id : t -> int -> int
(** The unique identity of a node. *)

val node_of_id : t -> int -> int
(** Inverse of {!id}.  @raise Not_found if no node carries the identity. *)

val degree : t -> int -> int

val max_degree : t -> int
(** Δ, the maximum degree. *)

val neighbours : t -> int -> int array

val ports : t -> int -> half_edge array
(** The incident edges of a node, indexed by port number. *)

val port_to : t -> int -> int -> int
(** [port_to g u v] is the port number at [u] of the edge to [v].  O(1) via
    the per-node peer index built at construction. *)

val peer_at : t -> int -> int -> int
(** [peer_at g u p] is the node at the other end of [u]'s port [p]. *)

val has_edge : t -> int -> int -> bool
(** O(1) via the per-node peer index built at construction. *)

val base_weight : t -> int -> int -> int
(** The base weight of an existing edge. *)

val fold_edges : ('a -> int -> int -> int -> 'a) -> 'a -> t -> 'a
(** Fold over undirected edges, each visited once as [(u, v, w)] with
    [u < v]. *)

val edges : t -> (int * int * int) list

val num_edges : t -> int

val weight_fn : t -> in_tree:(int -> int -> bool) -> int -> int -> Weight.t
(** ω′ relative to a claimed candidate tree: [in_tree u v] states whether
    the undirected edge (u,v) is claimed to belong to it. *)

val plain_weight_fn : t -> int -> int -> Weight.t
(** ω′ without the tree indicator; already distinct thanks to the identity
    tie-breaks.  Used by constructions. *)

val is_connected : t -> bool

val pp : Format.formatter -> t -> unit
