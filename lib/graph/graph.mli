(** Weighted undirected graphs in the paper's model (Section 2.1).

    Nodes are indexed [0 .. n-1] and carry unique O(log n)-bit identities.
    Each node numbers its incident edges with local {e port numbers}
    independent of the numbering at the other endpoint.  Base weights are
    integers polynomial in n; distinctness is not assumed — use
    {!weight_fn} / {!plain_weight_fn} for the ω′ transform.

    The representation is CSR: flat int arrays of row offsets, peers and
    weights, plus a per-row peer-sorted port index that answers
    {!port_to} / {!has_edge} / {!base_weight} by binary search.  There are
    no per-node heap structures, so graphs scale to millions of nodes at a
    few words per half-edge. *)

type t

exception Malformed of string
(** Raised on invalid constructions (self-loops, parallel edges, duplicate
    identities, disconnected parent structures, ...). *)

val of_edges : ?ids:int array -> n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds a graph from [(u, v, weight)] triples.  Port
    numbers follow the list order.  Default identities are the node
    indices.  @raise Malformed on self-loops, parallel edges, out-of-range
    endpoints or duplicate identities. *)

val of_stream : ?ids:int array -> n:int -> ((int -> int -> int -> unit) -> unit) -> t
(** [of_stream ~n emit] builds a graph from a {e repeatable} edge stream:
    [emit f] must call [f u v w] once per undirected edge and must produce
    the identical sequence each time it is invoked.  The builder runs two
    passes (degree count, CSR fill), so construction needs no intermediate
    edge list — the O(1)-memory entry point for million-node generators.
    Port numbers follow stream order.  @raise Malformed as {!of_edges},
    and on a stream that changes between the passes. *)

val reweight : t -> (int -> int -> int -> int) -> t
(** [reweight g f] is [g] with edge (u,v) of weight [w] re-priced to
    [f u v w]; topology, identities and port numbers are preserved. *)

val n : t -> int

val id : t -> int -> int
(** The unique identity of a node. *)

val node_of_id : t -> int -> int
(** Inverse of {!id}.  @raise Not_found if no node carries the identity. *)

val degree : t -> int -> int

val max_degree : t -> int
(** Δ, the maximum degree. *)

val neighbours : t -> int -> int array
(** The peers of a node in port order.  Allocates; prefer {!iter_ports} on
    hot paths. *)

val iter_ports : t -> int -> (int -> int -> unit) -> unit
(** [iter_ports g v f] calls [f port peer] for every incident edge of [v]
    in port order.  Allocation-free — the protocol-step read loop. *)

val fold_ports : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a
(** [fold_ports g v f acc] folds [f acc port peer] over [v]'s ports in
    port order. *)

val exists_ports : t -> int -> (int -> int -> bool) -> bool
(** [exists_ports g v pred] is true iff [pred port peer] holds for some
    incident edge of [v]. *)

val for_all_ports : t -> int -> (int -> int -> bool) -> bool
(** [for_all_ports g v pred] is true iff [pred port peer] holds for every
    incident edge of [v]. *)

val port_to : t -> int -> int -> int
(** [port_to g u v] is the port number at [u] of the edge to [v].
    O(log deg) binary search over the peer-sorted port index. *)

val peer_at : t -> int -> int -> int
(** [peer_at g u p] is the node at the other end of [u]'s port [p]. *)

val weight_at : t -> int -> int -> int
(** [weight_at g u p] is the base weight of [u]'s port [p]. *)

val has_edge : t -> int -> int -> bool
(** O(log deg) binary search over the peer-sorted port index. *)

val base_weight : t -> int -> int -> int
(** The base weight of an existing edge. *)

val fold_edges : ('a -> int -> int -> int -> 'a) -> 'a -> t -> 'a
(** Fold over undirected edges, each visited once as [(u, v, w)] with
    [u < v]. *)

val edges : t -> (int * int * int) list

val num_edges : t -> int
(** O(1): half the flat adjacency length. *)

val storage_words : t -> int
(** The measured flat footprint of the graph in 64-bit words (ids, offsets
    and the three half-edge arrays): the denominator of the scale
    experiments' bytes-per-node story. *)

val weight_fn : t -> in_tree:(int -> int -> bool) -> int -> int -> Weight.t
(** ω′ relative to a claimed candidate tree: [in_tree u v] states whether
    the undirected edge (u,v) is claimed to belong to it. *)

val plain_weight_fn : t -> int -> int -> Weight.t
(** ω′ without the tree indicator; already distinct thanks to the identity
    tie-breaks.  Used by constructions. *)

val is_connected : t -> bool

val pp : Format.formatter -> t -> unit
