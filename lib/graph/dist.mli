(** Hop distances, eccentricities and diameters (BFS), used for detection
    distance measurements and partition checks. *)

val bfs : Graph.t -> int -> int array
(** Hop distances from a source; [-1] for unreachable nodes. *)

val bfs_within : Graph.t -> member:(int -> bool) -> int -> int array
(** BFS restricted to the subgraph induced by [member]. *)

val eccentricity : Graph.t -> int -> int

val diameter : Graph.t -> int

val diameter_within : Graph.t -> member:(int -> bool) -> int
(** Diameter of the induced subgraph (assumed connected). *)

val hop_distance : Graph.t -> int -> int -> int

val detection_distance : Graph.t -> faults:int list -> alarms:int list -> int option
(** The paper's detection distance (Section 2.4): the maximum over
    [faults] of the hop distance to the closest member of [alarms].
    Alarms unreachable from a given fault are skipped; the result is
    [None] when [alarms] is empty or some fault has no reachable alarm at
    all (an honest "unreachable" instead of a [max_int] artefact). *)
