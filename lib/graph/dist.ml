(* Hop distances (BFS), eccentricities and diameter.  Used for detection
   distance measurements and partition diameter checks. *)

let bfs (g : Graph.t) src =
  let n = Graph.n g in
  let d = Array.make n (-1) in
  let q = Queue.create () in
  d.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_ports g u (fun _ v ->
        if d.(v) < 0 then begin
          d.(v) <- d.(u) + 1;
          Queue.add v q
        end)
  done;
  d

(* BFS restricted to a node subset; distances within the induced subgraph. *)
let bfs_within (g : Graph.t) ~member src =
  let n = Graph.n g in
  let d = Array.make n (-1) in
  let q = Queue.create () in
  if member src then begin
    d.(src) <- 0;
    Queue.add src q
  end;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_ports g u (fun _ v ->
        if member v && d.(v) < 0 then begin
          d.(v) <- d.(u) + 1;
          Queue.add v q
        end)
  done;
  d

let eccentricity g v = Array.fold_left max 0 (bfs g v)

let diameter g =
  let d = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = eccentricity g v in
    if e > !d then d := e
  done;
  !d

(* Diameter of the subgraph induced by [member]; assumes it is connected. *)
let diameter_within g ~member =
  let d = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if member v then
      Array.iter (fun x -> if x > !d then d := x) (bfs_within g ~member v)
  done;
  !d

let hop_distance g u v = (bfs g u).(v)

(* The paper's detection distance (Section 2.4): the worst, over the
   faults, of the hop distance to the *closest* alarming node.  Alarms in a
   different component than a fault are skipped; a fault no alarming node
   can be charged to (nothing reachable raised an alarm) makes the whole
   measurement [None] — reporting a finite distance there would silently
   understate the containment claim. *)
let detection_distance g ~faults ~alarms =
  match alarms with
  | [] -> None
  | _ ->
      let rec worst_over acc = function
        | [] -> Some acc
        | f :: rest ->
            let d = bfs g f in
            let closest =
              List.fold_left
                (fun best a -> if d.(a) >= 0 then min best d.(a) else best)
                max_int alarms
            in
            if closest = max_int then None else worst_over (max acc closest) rest
      in
      worst_over 0 faults
