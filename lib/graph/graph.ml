(* Weighted undirected graphs in the paper's model (Section 2.1):

   - nodes are indexed [0 .. n-1]; each node [v] carries a unique identity
     [ids.(v)] encodable in O(log n) bits;
   - each node numbers its incident edges with local *port numbers*: port [p]
     of node [v] is position [off.(v) + p] in the flat adjacency; port
     numbers at the two endpoints of an edge are independent;
   - edge weights are integers polynomial in n.  Distinct weights are not
     assumed; the lexicographic transform lives in {!weight_fn}.

   The representation is CSR (compressed sparse row): three flat int arrays
   hold every half-edge, so a million-node graph costs a handful of words
   per half-edge instead of a boxed record, two array headers and a Hashtbl
   per node.  Ports keep construction order (the observable numbering is
   unchanged from the edge-list days); a fourth flat array stores each row's
   ports sorted by peer id, which turns [port_to] / [has_edge] /
   [base_weight] into binary searches over the row — O(log deg), cache-warm,
   and allocation-free. *)

type t = {
  n : int;
  ids : int array;
  off : int array;  (* n+1 row offsets: node v's ports live at [off.(v), off.(v+1)) *)
  peers : int array;  (* 2m peer ids, port order *)
  wts : int array;  (* 2m base weights, aligned with [peers] *)
  (* per-row port permutation sorted by peer id: [srt.(off.(v) + k)] is the
     port of v's k-th smallest neighbour — the flat replacement for the
     per-node peer->port Hashtbl *)
  srt : int array;
}

let n t = t.n
let id t v = t.ids.(v)
let degree t v = t.off.(v + 1) - t.off.(v)
let neighbours t v = Array.sub t.peers t.off.(v) (degree t v)

let check_port t v p =
  if p < 0 || p >= degree t v then invalid_arg "Graph.port: port out of range"

let peer_at t v p =
  check_port t v p;
  t.peers.(t.off.(v) + p)

let weight_at t v p =
  check_port t v p;
  t.wts.(t.off.(v) + p)

(* Zero-allocation iteration over a node's ports: [f port peer] in port
   order.  This is the hot read path of every protocol step. *)
let iter_ports t v f =
  let base = t.off.(v) in
  for p = 0 to t.off.(v + 1) - base - 1 do
    f p t.peers.(base + p)
  done

let fold_ports t v f acc =
  let base = t.off.(v) in
  let acc = ref acc in
  for p = 0 to t.off.(v + 1) - base - 1 do
    acc := f !acc p t.peers.(base + p)
  done;
  !acc

let exists_ports t v pred =
  let base = t.off.(v) in
  let d = t.off.(v + 1) - base in
  let rec go p = p < d && (pred p t.peers.(base + p) || go (p + 1)) in
  go 0

let for_all_ports t v pred =
  let base = t.off.(v) in
  let d = t.off.(v + 1) - base in
  let rec go p = p >= d || (pred p t.peers.(base + p) && go (p + 1)) in
  go 0

let max_degree t =
  let d = ref 0 in
  for v = 0 to t.n - 1 do
    if degree t v > !d then d := degree t v
  done;
  !d

let fold_edges f acc t =
  let acc = ref acc in
  for u = 0 to t.n - 1 do
    for i = t.off.(u) to t.off.(u + 1) - 1 do
      if u < t.peers.(i) then acc := f !acc u t.peers.(i) t.wts.(i)
    done
  done;
  !acc

let edges t = fold_edges (fun l u v w -> (u, v, w) :: l) [] t |> List.rev
let num_edges t = Array.length t.peers / 2

exception Malformed of string

(* Binary search over the sorted-port row of [u]: the port leading to [v],
   or -1 when the edge does not exist. *)
let port_opt t u v =
  let base = t.off.(u) in
  let lo = ref 0 and hi = ref (t.off.(u + 1) - base - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let p = t.srt.(base + mid) in
    let w = t.peers.(base + p) in
    if w = v then found := p else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let has_edge t u v = port_opt t u v >= 0

let base_weight t u v =
  let p = port_opt t u v in
  if p < 0 then invalid_arg "Graph.base_weight: no such edge";
  t.wts.(t.off.(u) + p)

(* Port number at [u] of the edge leading to [v]. *)
let port_to t u v =
  let p = port_opt t u v in
  if p < 0 then invalid_arg "Graph.port_to: no such edge";
  p

let check_ids ~n = function
  | None -> Array.init n Fun.id
  | Some a ->
      if Array.length a <> n then raise (Malformed "ids length mismatch");
      let sorted = Array.copy a in
      Array.sort Int.compare sorted;
      for i = 1 to n - 1 do
        if sorted.(i) = sorted.(i - 1) then raise (Malformed "duplicate identity")
      done;
      Array.copy a

(* Build from a repeatable edge stream: [emit f] must call [f u v w] once
   per undirected edge, identically on every invocation.  Two passes — a
   degree count and a CSR fill — so million-edge instances are constructed
   with O(m) total memory and no intermediate edge list.  Parallel edges
   are caught after the per-row peer sort (two equal adjacent peers), which
   replaces the global (min,max)->unit Hashtbl of the old edge-list
   builder. *)
let of_stream ?ids ~n emit =
  if n <= 0 then raise (Malformed "empty graph");
  let ids = check_ids ~n ids in
  let deg = Array.make n 0 in
  let m = ref 0 in
  emit (fun u v _w ->
      if u = v then raise (Malformed "self-loop");
      if u < 0 || u >= n || v < 0 || v >= n then raise (Malformed "endpoint out of range");
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      incr m);
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + deg.(v)
  done;
  let half = 2 * !m in
  let peers = Array.make (max 1 half) (-1) and wts = Array.make (max 1 half) 0 in
  let fill = Array.sub off 0 n in
  let seen = ref 0 in
  emit (fun u v w ->
      if
        u = v || u < 0 || u >= n || v < 0 || v >= n
        || !seen >= !m
        || fill.(u) >= off.(u + 1)
        || fill.(v) >= off.(v + 1)
      then raise (Malformed "edge stream changed between passes");
      incr seen;
      peers.(fill.(u)) <- v;
      wts.(fill.(u)) <- w;
      fill.(u) <- fill.(u) + 1;
      peers.(fill.(v)) <- u;
      wts.(fill.(v)) <- w;
      fill.(v) <- fill.(v) + 1);
  if !seen <> !m then raise (Malformed "edge stream changed between passes");
  let srt = Array.make (max 1 half) 0 in
  for v = 0 to n - 1 do
    let base = off.(v) and d = deg.(v) in
    let tmp = Array.init d Fun.id in
    Array.sort (fun a b -> Int.compare peers.(base + a) peers.(base + b)) tmp;
    Array.blit tmp 0 srt base d;
    for k = 1 to d - 1 do
      if peers.(base + tmp.(k)) = peers.(base + tmp.(k - 1)) then
        raise (Malformed "parallel edge")
    done
  done;
  { n; ids; off; peers; wts; srt }

(* Build from an edge list.  Rejects self-loops, parallel edges and
   out-of-range endpoints.  Default identities are the node indices. *)
let of_edges ?ids ~n edge_list =
  of_stream ?ids ~n (fun f -> List.iter (fun (u, v, w) -> f u v w) edge_list)

(* Same topology, identities and port numbers, new weights: the operation a
   link re-pricing performs.  [f u v w] gives the new weight of edge (u,v)
   with current weight [w].  Offsets, peers and the sorted index are shared:
   they only depend on the topology. *)
let reweight t f =
  let wts = Array.make (Array.length t.wts) 0 in
  for u = 0 to t.n - 1 do
    for i = t.off.(u) to t.off.(u + 1) - 1 do
      wts.(i) <- f u t.peers.(i) t.wts.(i)
    done
  done;
  { t with wts }

(* The flat footprint in 64-bit words: ids + offsets + three half-edge
   arrays.  The measured side of the scale experiments' memory story. *)
let storage_words t =
  Array.length t.ids + Array.length t.off + Array.length t.peers + Array.length t.wts
  + Array.length t.srt

(* The distinct-weight function ω′ for a candidate subgraph: [in_tree u v]
   says whether the (undirected) edge (u,v) is claimed to be in the candidate
   tree.  See {!Weight}. *)
let weight_fn t ~in_tree u v =
  Weight.make ~base:(base_weight t u v) ~in_tree:(in_tree u v) ~id_u:t.ids.(u)
    ~id_v:t.ids.(v)

(* ω′ ignoring the tree indicator: used when constructing from scratch, where
   tie-breaking on identities alone already yields a unique MST. *)
let plain_weight_fn t u v =
  Weight.make ~base:(base_weight t u v) ~in_tree:false ~id_u:t.ids.(u) ~id_v:t.ids.(v)

(* Iterative DFS: the recursive version overflows the stack on million-node
   path-like graphs. *)
let is_connected t =
  let seen = Array.make t.n false in
  let stack = ref [ 0 ] in
  seen.(0) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        for i = t.off.(v) to t.off.(v + 1) - 1 do
          let u = t.peers.(i) in
          if not seen.(u) then begin
            seen.(u) <- true;
            stack := u :: !stack
          end
        done
  done;
  Array.for_all Fun.id seen

(* Index of the node carrying a given identity. *)
let node_of_id t ident =
  let rec go v =
    if v >= t.n then raise Not_found else if t.ids.(v) = ident then v else go (v + 1)
  in
  go 0

let pp ppf t =
  Fmt.pf ppf "graph n=%d m=%d" t.n (num_edges t);
  fold_edges (fun () u v w -> Fmt.pf ppf "@ %d-%d(%d)" u v w) () t
