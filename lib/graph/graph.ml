(* Weighted undirected graphs in the paper's model (Section 2.1):

   - nodes are indexed [0 .. n-1]; each node [v] carries a unique identity
     [ids.(v)] encodable in O(log n) bits;
   - each node numbers its incident edges with local *port numbers*: port [p]
     of node [v] is position [p] in [adj.(v)].  Port numbers at the two
     endpoints of an edge are independent;
   - edge weights are integers polynomial in n.  Distinct weights are not
     assumed; the lexicographic transform lives in {!weight_fn}. *)

type half_edge = { peer : int; base_weight : int }

type t = {
  n : int;
  ids : int array;
  adj : half_edge array array;
  (* per-node peer -> port index, built once at construction: turns
     [has_edge] / [port_to] / [base_weight] from O(deg) scans into O(1)
     lookups (every protocol read goes through one of them) *)
  index : (int, int) Hashtbl.t array;
}

let build_index adj =
  Array.map
    (fun ports ->
      let h = Hashtbl.create (max 4 (Array.length ports)) in
      Array.iteri (fun p (he : half_edge) -> Hashtbl.replace h he.peer p) ports;
      h)
    adj

let n t = t.n
let id t v = t.ids.(v)
let degree t v = Array.length t.adj.(v)
let neighbours t v = Array.map (fun h -> h.peer) t.adj.(v)
let ports t v = t.adj.(v)

let max_degree t =
  let d = ref 0 in
  for v = 0 to t.n - 1 do
    if degree t v > !d then d := degree t v
  done;
  !d

let fold_edges f acc t =
  let acc = ref acc in
  for u = 0 to t.n - 1 do
    Array.iter (fun h -> if u < h.peer then acc := f !acc u h.peer h.base_weight) t.adj.(u)
  done;
  !acc

let edges t = fold_edges (fun l u v w -> (u, v, w) :: l) [] t |> List.rev
let num_edges t = fold_edges (fun k _ _ _ -> k + 1) 0 t

exception Malformed of string

(* Build from an edge list.  Rejects self-loops, parallel edges and
   out-of-range endpoints.  Default identities are the node indices. *)
let of_edges ?ids ~n edge_list =
  if n <= 0 then raise (Malformed "empty graph");
  let ids =
    match ids with
    | None -> Array.init n Fun.id
    | Some a ->
        if Array.length a <> n then raise (Malformed "ids length mismatch");
        let sorted = Array.copy a in
        Array.sort Int.compare sorted;
        for i = 1 to n - 1 do
          if sorted.(i) = sorted.(i - 1) then raise (Malformed "duplicate identity")
        done;
        Array.copy a
  in
  let deg = Array.make n 0 in
  let seen = Hashtbl.create (List.length edge_list) in
  List.iter
    (fun (u, v, _) ->
      if u = v then raise (Malformed "self-loop");
      if u < 0 || u >= n || v < 0 || v >= n then raise (Malformed "endpoint out of range");
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then raise (Malformed "parallel edge");
      Hashtbl.add seen key ();
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let adj = Array.init n (fun v -> Array.make deg.(v) { peer = -1; base_weight = 0 }) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v, w) ->
      adj.(u).(fill.(u)) <- { peer = v; base_weight = w };
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- { peer = u; base_weight = w };
      fill.(v) <- fill.(v) + 1)
    edge_list;
  { n; ids; adj; index = build_index adj }

(* Same topology, identities and port numbers, new weights: the operation a
   link re-pricing performs.  [f u v w] gives the new weight of edge (u,v)
   with current weight [w].  The peer->port index is shared: it only depends
   on the topology. *)
let reweight t f =
  {
    t with
    adj =
      Array.mapi
        (fun u ports ->
          Array.map (fun h -> { h with base_weight = f u h.peer h.base_weight }) ports)
        t.adj;
  }

let has_edge t u v = Hashtbl.mem t.index.(u) v

let base_weight t u v =
  match Hashtbl.find_opt t.index.(u) v with
  | Some p -> t.adj.(u).(p).base_weight
  | None -> invalid_arg "Graph.base_weight: no such edge"

(* Port number at [u] of the edge leading to [v]. *)
let port_to t u v =
  match Hashtbl.find_opt t.index.(u) v with
  | Some p -> p
  | None -> invalid_arg "Graph.port_to: no such edge"

let peer_at t u port = t.adj.(u).(port).peer

(* The distinct-weight function ω′ for a candidate subgraph: [in_tree u v]
   says whether the (undirected) edge (u,v) is claimed to be in the candidate
   tree.  See {!Weight}. *)
let weight_fn t ~in_tree u v =
  Weight.make ~base:(base_weight t u v) ~in_tree:(in_tree u v) ~id_u:t.ids.(u)
    ~id_v:t.ids.(v)

(* ω′ ignoring the tree indicator: used when constructing from scratch, where
   tie-breaking on identities alone already yields a unique MST. *)
let plain_weight_fn t u v =
  Weight.make ~base:(base_weight t u v) ~in_tree:false ~id_u:t.ids.(u) ~id_v:t.ids.(v)

let is_connected t =
  let seen = Array.make t.n false in
  let rec dfs v =
    seen.(v) <- true;
    Array.iter (fun h -> if not seen.(h.peer) then dfs h.peer) t.adj.(v)
  in
  dfs 0;
  Array.for_all Fun.id seen

(* Index of the node carrying a given identity. *)
let node_of_id t ident =
  let rec go v =
    if v >= t.n then raise Not_found else if t.ids.(v) = ident then v else go (v + 1)
  in
  go 0

let pp ppf t =
  Fmt.pf ppf "graph n=%d m=%d" t.n (num_edges t);
  fold_edges (fun () u v w -> Fmt.pf ppf "@ %d-%d(%d)" u v w) () t
