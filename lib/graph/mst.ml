(* Reference (centralized) minimum spanning tree algorithms.  These are the
   ground truth against which the distributed constructions and the
   verification schemes are tested.  All comparisons use a distinct weight
   function [w : int -> int -> Weight.t] so the MST is unique. *)

type weight_fn = int -> int -> Weight.t

(* Kruskal.  Returns the MST edge set (as (u, v) pairs with u < v). *)
let kruskal (g : Graph.t) (w : weight_fn) =
  let edges = Graph.fold_edges (fun l u v _ -> (u, v) :: l) [] g in
  let edges =
    List.sort (fun (a, b) (c, d) -> Weight.compare (w a b) (w c d)) edges
  in
  let dsu = Dsu.create (Graph.n g) in
  List.filter
    (fun (u, v) -> Dsu.union dsu u v)
    edges
  |> List.map (fun (u, v) -> (min u v, max u v))

(* Prim from a given root; returns a rooted [Tree.t]. *)
let prim ?(root = 0) (g : Graph.t) (w : weight_fn) =
  let n = Graph.n g in
  let in_tree = Array.make n false in
  let parent = Array.make n (-1) in
  let best = Array.make n Weight.infinity in
  let best_via = Array.make n (-1) in
  in_tree.(root) <- true;
  Graph.iter_ports g root (fun _ u ->
      best.(u) <- w root u;
      best_via.(u) <- root);
  for _ = 1 to n - 1 do
    (* pick the lightest fringe node *)
    let pick = ref (-1) in
    for v = 0 to n - 1 do
      if (not in_tree.(v)) && not (Weight.is_infinity best.(v)) then
        if !pick < 0 || Weight.(best.(v) < best.(!pick)) then pick := v
    done;
    if !pick < 0 then raise (Graph.Malformed "Mst.prim: graph not connected");
    let v = !pick in
    in_tree.(v) <- true;
    parent.(v) <- best_via.(v);
    Graph.iter_ports g v (fun _ u ->
        if (not in_tree.(u)) && Weight.(w v u < best.(u)) then begin
          best.(u) <- w v u;
          best_via.(u) <- v
        end)
  done;
  Tree.of_parents g parent

(* Lexicographic (u, v) order, monomorphic: identical to the polymorphic
   [compare] on int pairs, minus the generic-compare dispatch. *)
let compare_edge (a, b) (c, d) = if a <> c then Int.compare a c else Int.compare b d

let edge_set_of_tree t =
  List.map (fun (v, p) -> (min v p, max v p)) (Tree.tree_edges t)
  |> List.sort compare_edge

(* Decide whether a claimed spanning tree is *the* MST under [w].  With
   distinct weights the MST is unique, so set equality with Kruskal's output
   is a sound and complete check. *)
let is_mst (g : Graph.t) (w : weight_fn) (t : Tree.t) =
  let reference = kruskal g w |> List.sort compare_edge in
  edge_set_of_tree t = reference

(* Minimum outgoing edge of a node set [in_set] (the cut rule); [None] if the
   set has no outgoing edge (i.e. spans the graph or is disconnected from the
   rest).  Returns (u, v, w) with u inside and v outside. *)
let min_outgoing (g : Graph.t) (w : weight_fn) ~in_set =
  let best = ref None in
  for u = 0 to Graph.n g - 1 do
    if in_set u then
      Graph.iter_ports g u (fun _ v ->
          if not (in_set v) then
            let cand = w u v in
            match !best with
            | Some (_, _, bw) when Weight.(bw <= cand) -> ()
            | _ -> best := Some (u, v, cand))
  done;
  !best
