open Ssmst_graph
open Ssmst_sim

(* The causal-explain walk: from an alarm-raising register write backwards
   through the provenance DAG to the fault injection that seeded it.

   Vertices are recorded writes; the in-edges of a write are the writes
   that produced the registers its activation read (one per read port,
   resolved to the *last* write of that neighbour visible to the read) plus
   the last write to the node's own register.  Edge cost is 1 when the
   edge crosses to a different node and 0 along the same node, so the
   shortest-path cost from an alarm back to a fault is exactly the number
   of graph hops the corruption travelled — the quantity the paper bounds
   by O(f log n) (Section 2.4), which makes the path a checkable witness
   for the detection-distance monitor.  A 0/1-BFS (deque Dijkstra) finds
   it in O(|writes| + edges). *)

type write = {
  seq : int;  (* position in recording order *)
  round : int;
  node : int;
  cause : Trace.cause;
  changes : Trace.change list;
}

type hop = { round : int; node : int; fields : string list }
(* one write on the witness path, oldest (the fault) printed first *)

type path = {
  fault : Fault.id;  (* the injection the chain terminates at *)
  hops : hop list;  (* fault first, alarm write last *)
  node_changes : int;  (* graph hops travelled: the monitored distance *)
}

type error =
  | No_such_write  (* target (node, round) matches no recorded write *)
  | Broken_chain of { reached : int }
      (* backward closure exhausted after visiting [reached] writes without
         meeting a [Fault] cause: deltas were dropped, or the alarm
         predates recording *)

let error_to_string = function
  | No_such_write -> "no recorded write matches the requested alarm"
  | Broken_chain { reached } ->
      Fmt.str "provenance chain broken: %d ancestor writes reach no fault injection" reached

(* [explain g writes ~target] walks backwards from [writes.(target)].

   [same_round_reads] selects the visibility rule for neighbour reads:
   under a synchronous daemon an activation of round r reads the round
   r-1 snapshot (ancestors must satisfy [round < r]); under an
   asynchronous one it reads live registers (ancestors are the last
   writes in recording order, [seq < target's seq]). *)
let explain g (writes : write array) ~target ?(same_round_reads = false) () =
  let nw = Array.length writes in
  if target < 0 || target >= nw then Error No_such_write
  else begin
    (* per-node write sequence, ascending seq *)
    let by_node = Hashtbl.create 64 in
    Array.iter
      (fun (w : write) ->
        let l = try Hashtbl.find by_node w.node with Not_found -> [] in
        Hashtbl.replace by_node w.node (w.seq :: l))
      writes;
    let seqs_of v =
      match Hashtbl.find_opt by_node v with
      | None -> [||]
      | Some l -> Array.of_list (List.rev l)
    in
    let node_seqs = Hashtbl.create 64 in
    let seqs v =
      match Hashtbl.find_opt node_seqs v with
      | Some a -> a
      | None ->
          let a = seqs_of v in
          Hashtbl.add node_seqs v a;
          a
    in
    (* the last write to [v] the reader of [w] could have seen *)
    let visible_ancestor v ~reader_seq ~reader_round =
      let a = seqs v in
      let ok s =
        if same_round_reads then s < reader_seq else writes.(s).round < reader_round
      in
      (* binary search for the last ok entry *)
      let lo = ref 0 and hi = ref (Array.length a - 1) and best = ref (-1) in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        if ok a.(mid) then begin
          best := a.(mid);
          lo := mid + 1
        end
        else hi := mid - 1
      done;
      if !best < 0 then None else Some !best
    in
    (* 0/1-BFS backwards: dist.(s) = graph hops from the target write *)
    let dist = Array.make nw max_int in
    let next = Array.make nw (-1) in  (* towards the target, i.e. the successor *)
    let deque = ref [ target ] and back = ref [] in
    dist.(target) <- 0;
    let pop () =
      match !deque with
      | x :: rest ->
          deque := rest;
          Some x
      | [] -> (
          match List.rev !back with
          | [] -> None
          | x :: rest ->
              deque := rest;
              back := [];
              Some x)
    in
    let push_front s = deque := s :: !deque in
    let push_back s = back := s :: !back in
    let found = ref None in
    let visited = ref 0 in
    let rec loop () =
      match pop () with
      | None -> ()
      | Some s when !found <> None && dist.(s) > dist.(Option.get !found) -> loop ()
      | Some s ->
          incr visited;
          let w = writes.(s) in
          (match w.cause with
          | Trace.Fault _ ->
              (match !found with
              | Some f when dist.(f) <= dist.(s) -> ()
              | _ -> found := Some s)
          | Trace.Init -> ()  (* a non-fault terminal: stop this branch *)
          | Trace.Neighbor_read ports ->
              let relax v cost =
                match visible_ancestor v ~reader_seq:s ~reader_round:w.round with
                | None -> ()
                | Some a ->
                    if dist.(s) + cost < dist.(a) then begin
                      dist.(a) <- dist.(s) + cost;
                      next.(a) <- s;
                      if cost = 0 then push_front a else push_back a
                    end
              in
              relax w.node 0;
              List.iter (fun p -> relax (Graph.peer_at g w.node p) 1) ports);
          loop ()
    in
    loop ();
    match !found with
    | None -> Error (Broken_chain { reached = !visited })
    | Some f ->
        let fault =
          match writes.(f).cause with Trace.Fault id -> id | _ -> assert false
        in
        (* walk forward from the fault to the alarm write *)
        let rec collect s acc =
          let w = writes.(s) in
          let hop =
            { round = w.round; node = w.node; fields = List.map (fun c -> c.Trace.field) w.changes }
          in
          if s = target then List.rev (hop :: acc)
          else collect next.(s) (hop :: acc)
        in
        Ok { fault; hops = collect f []; node_changes = dist.(f) }
  end

let pp_path ppf p =
  Fmt.pf ppf "fault #%d -> alarm in %d hop%s over %d write%s@." p.fault p.node_changes
    (if p.node_changes = 1 then "" else "s")
    (List.length p.hops)
    (if List.length p.hops = 1 then "" else "s");
  List.iter
    (fun h ->
      Fmt.pf ppf "  round %-5d node %-5d %s@." h.round h.node
        (if h.fields = [] then "-" else String.concat "," h.fields))
    p.hops
