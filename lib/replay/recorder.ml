open Ssmst_graph
open Ssmst_sim

(* The flight recorder: checkpointed time-travel replay for one protocol
   run.

   The recorder listens to every register write (via the engine's write
   hook, or diff-observation for the naive engine) and maintains three
   structures:

   - a view of the *live* registers — the engine's own state array when
     attached via [engine_hook] (no per-write cost), or a recorder-owned
     mirror updated on every write otherwise;
   - periodic *checkpoints*: full copies of the live registers taken at
     most every [interval] rounds, snapshotted lazily at the first write
     that crosses the interval (sound because registers cannot change in
     write-free rounds; the one register the in-flight write has already
     touched is reverted from the hook's pre-write value);
   - a bounded *delta ring* of per-write records (round, node, cause,
     post-write register).  When the ring fills the oldest deltas are
     dropped and counted; checkpoints taken after the drop horizon keep
     later rounds exactly replayable.  Pre-write registers and field-level
     changes are reconstructed on demand ([prevs]), never stored.

   [state_at] reconstructs the exact global state at any recorded round in
   O(n + writes-since-checkpoint): copy the latest checkpoint at or below
   the target, then re-apply the retained deltas in recording order.  The
   reconstruction is *exact* unless a dropped delta falls between the
   checkpoint and the target; inexact views are flagged, never silent. *)

module Make (P : Protocol.S) = struct
  type write = {
    round : int;
    node : int;
    cause : Trace.cause;
    state : P.state;  (* the register after the write *)
  }

  type t = {
    graph : Graph.t;
    interval : int;  (* max rounds between checkpoints *)
    round0 : int;  (* round the recording started at *)
    mutable live : P.state array;  (* live registers; exact at [cur_round] *)
    mutable shared_live : bool;  (* [live] aliases the engine's own array *)
    mutable cur_round : int;
    (* delta ring, oldest dropped first: a struct-of-arrays layout so the
       recording hot path allocates nothing per write *)
    capacity : int;
    ring_round : int array;
    ring_node : int array;
    ring_cause : Trace.cause array;
    ring_state : P.state array;
    mutable next : int;
    mutable total : int;
    mutable max_dropped_round : int;  (* round of the newest dropped delta *)
    (* checkpoints, oldest first; states are private copies *)
    mutable checkpoints : (int * P.state array) list;
    mutable last_cp : int;
  }

  let default_interval = 64
  let default_capacity = 16384

  let create ?(interval = default_interval) ?(capacity = default_capacity) ~round0 graph states
      =
    if interval <= 0 then invalid_arg "Recorder.create: interval must be positive";
    if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
    if Array.length states = 0 then invalid_arg "Recorder.create: empty network";
    {
      graph;
      interval;
      round0;
      live = Array.copy states;
      shared_live = false;
      cur_round = round0;
      capacity;
      ring_round = Array.make capacity 0;
      ring_node = Array.make capacity 0;
      ring_cause = Array.make capacity Trace.Init;
      ring_state = Array.make capacity states.(0);
      next = 0;
      total = 0;
      max_dropped_round = min_int;
      checkpoints = [ (round0, Array.copy states) ];
      last_cp = round0;
    }

  let graph t = t.graph
  let interval t = t.interval
  let start_round t = t.round0
  let last_round t = t.cur_round
  let total_writes t = t.total
  let retained t = min t.total t.capacity
  let dropped t = t.total - retained t
  let max_dropped_round t = t.max_dropped_round
  let checkpoint_rounds t = List.map fst t.checkpoints

  (* [0 <= i < capacity] holds by construction, so the ring stores are
     bounds-check-free; the wrap avoids an integer division per write.
     The register *before* a write is deliberately not stored — it is
     reconstructible from the checkpoints and the delta sequence itself
     (see [prevs]), and dropping it removes a third of the pointer traffic
     (and its GC marking) from the recording hot path. *)
  let push t ~round ~node ~cause ~state =
    let i = t.next in
    if t.total >= t.capacity then
      t.max_dropped_round <- max t.max_dropped_round (Array.unsafe_get t.ring_round i);
    Array.unsafe_set t.ring_round i round;
    Array.unsafe_set t.ring_node i node;
    Array.unsafe_set t.ring_cause i cause;
    Array.unsafe_set t.ring_state i state;
    let n = i + 1 in
    t.next <- (if n = t.capacity then 0 else n);
    t.total <- t.total + 1

  (* oldest-first iteration over the retained deltas (the [write] records
     are materialized here, off the hot path) *)
  let iter_writes f t =
    let len = retained t in
    let start = (t.next - len + t.capacity) mod t.capacity in
    for i = 0 to len - 1 do
      let j = (start + i) mod t.capacity in
      f
        {
          round = t.ring_round.(j);
          node = t.ring_node.(j);
          cause = t.ring_cause.(j);
          state = t.ring_state.(j);
        }
    done

  let writes t =
    let acc = ref [] in
    iter_writes (fun w -> acc := w :: !acc) t;
    List.rev !acc

  (* Field deltas are derived on demand (explain, dump, bisection): the
     recording hot path stores the two state pointers and never encodes. *)
  let field_changes old s' =
    let oe = P.encode old and ne = P.encode s' in
    let k = min (Array.length oe) (Array.length ne) in
    let changes = ref [] in
    for i = k - 1 downto 0 do
      if oe.(i) <> ne.(i) then
        let field =
          if i < Array.length P.field_names then P.field_names.(i) else Fmt.str "f%d" i
        in
        changes := { Trace.field; old_enc = oe.(i); new_enc = ne.(i) } :: !changes
    done;
    !changes

  (* Registers *before* each retained write, in [iter_writes] order: a
     chronological sweep that replays the deltas over a working copy,
     fast-forwarding through every checkpoint older than the next write
     (a checkpoint at round r captures the end of round r, so it sits
     between the writes of round r and those of round r + 1).  Exact
     whenever [state_at] is — pre-horizon writes whose true predecessors
     were dropped get the nearest checkpoint's value instead. *)
  let prevs t =
    let arr = Array.copy (snd (List.hd t.checkpoints)) in
    let out = Array.make (max 1 (retained t)) arr.(0) in
    let cps = ref (List.tl t.checkpoints) in
    let i = ref 0 in
    iter_writes
      (fun w ->
        let rec catch_up () =
          match !cps with
          | (r, s) :: rest when r < w.round ->
              Array.blit s 0 arr 0 (Array.length s);
              cps := rest;
              catch_up ()
          | _ -> ()
        in
        catch_up ();
        out.(!i) <- arr.(w.node);
        arr.(w.node) <- w.state;
        incr i)
      t;
    out

  let record_write t ~round ~node ~old ~cause s' =
    if round < t.cur_round then invalid_arg "Recorder.record_write: rounds must not go back";
    (* first write of a new round past the interval: the live registers
       still hold the end-of-round state for [round - 1] (nothing else
       changed since), so snapshot them before applying — except that a
       shared live array has already absorbed this very write, which is
       undone from [old] *)
    if round > t.cur_round && round - 1 >= t.last_cp + t.interval then begin
      let cp = Array.copy t.live in
      if t.shared_live then cp.(node) <- old;
      t.checkpoints <- t.checkpoints @ [ (round - 1, cp) ];
      t.last_cp <- round - 1
    end;
    push t ~round ~node ~cause ~state:s';
    if not t.shared_live then t.live.(node) <- s';
    t.cur_round <- max t.cur_round round

  (* [Network.Make.set_write_hook]-shaped glue.  [states] must be the
     engine's own (live) register array: the recorder aliases it instead of
     maintaining a mirror, which removes a barriered pointer store from
     every recorded write.  Returns a genuine arity-5 closure: partially
     applying a 6-argument function instead would route every hook call
     through caml_curry, allocating intermediate closures per write. *)
  let engine_hook t states =
    if Array.length states <> Array.length t.live then
      invalid_arg "Recorder.engine_hook: register array size mismatch";
    t.live <- states;
    t.shared_live <- true;
    let hook ~round ~node ~old s' cause = record_write t ~round ~node ~old ~cause s' in
    hook

  (* Recording a run of the hook-less naive engine: after each completed
     round, diff the fresh states against the mirror.  The read set is
     unknown, so causes degrade to every port (the safe over-approximation
     for a one-activation-reads-all-neighbours model). *)
  let observe_round t ~round states =
    Array.iteri
      (fun v s ->
        if not (P.equal t.live.(v) s) then
          let cause =
            Trace.Neighbor_read
              (List.init (Graph.degree t.graph v) Fun.id)
          in
          record_write t ~round ~node:v ~old:t.live.(v) ~cause s)
      states;
    t.cur_round <- max t.cur_round round

  (* ---------------- reconstruction ---------------- *)

  (* The earliest round from which [state_at] is exact: the start when
     nothing was dropped, else the first checkpoint at or past the drop
     horizon (later checkpoints were cut from the always-exact mirror). *)
  let sound_from t =
    if dropped t = 0 then Some t.round0
    else
      List.find_map
        (fun (r, _) -> if r >= t.max_dropped_round then Some r else None)
        t.checkpoints

  type view = { round : int; states : P.state array; exact : bool }

  let state_at t target =
    if target < t.round0 then invalid_arg "Recorder.state_at: round precedes the recording";
    let target = min target t.cur_round in
    (* latest checkpoint at or below the target *)
    let cp_round, cp_states =
      List.fold_left
        (fun acc (r, s) -> if r <= target then (r, s) else acc)
        (List.hd t.checkpoints) t.checkpoints
    in
    let states = Array.copy cp_states in
    iter_writes
      (fun w -> if w.round > cp_round && w.round <= target then states.(w.node) <- w.state)
      t;
    let exact = dropped t = 0 || cp_round >= t.max_dropped_round in
    { round = target; states; exact }

  (* ---------------- seek / step cursor ---------------- *)

  type cursor = {
    rec_ : t;
    mutable round : int;
    mutable states : P.state array;
    mutable pending : write list;  (* retained deltas with round > [round] *)
    exact : bool;
  }

  let seek t target =
    let v = state_at t target in
    let pending = List.filter (fun (w : write) -> w.round > v.round) (writes t) in
    { rec_ = t; round = v.round; states = v.states; pending; exact = v.exact }

  let cursor_round c = c.round
  let cursor_states c = c.states
  let cursor_exact c = c.exact

  (* advance the cursor one round (to the next recorded round when rounds
     were write-free); false once the recording is exhausted *)
  let step c =
    if c.round >= c.rec_.cur_round then false
    else begin
      let next_round =
        match c.pending with [] -> c.rec_.cur_round | w :: _ -> w.round
      in
      let rec apply = function
        | (w : write) :: rest when w.round = next_round ->
            c.states.(w.node) <- w.state;
            apply rest
        | rest -> rest
      in
      c.pending <- apply c.pending;
      c.round <- next_round;
      true
    end

  (* ---------------- the first-divergence bisector ---------------- *)

  (* Self-stabilizing executions can diverge and re-converge, so the
     bisector scans rounds in order (early-exit on the first difference)
     instead of binary-searching; per round it compares only the nodes
     either recording wrote, so a full scan costs O(total writes). *)
  let first_divergence a b =
    let module IS = Set.Make (Int) in
    let lo = max a.round0 b.round0 in
    let hi = min a.cur_round b.cur_round in
    let field_of sa sb =
      match field_changes sa sb with c :: _ -> c.Trace.field | [] -> "<equal-encoding>"
    in
    let ca = seek a lo and cb = seek b lo in
    let diff_at round nodes =
      IS.fold
        (fun v acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if P.equal ca.states.(v) cb.states.(v) then None
              else Some (round, v, field_of ca.states.(v) cb.states.(v)))
        nodes None
    in
    (* full compare at the common start *)
    let all = IS.of_list (List.init (Array.length ca.states) Fun.id) in
    let rec scan acc =
      match acc with
      | Some _ -> acc
      | None ->
          (* advance both cursors to the next round either one recorded *)
          let next_of c =
            if c.round >= c.rec_.cur_round then None
            else Some (match c.pending with [] -> c.rec_.cur_round | w :: _ -> w.round)
          in
          let target =
            match (next_of ca, next_of cb) with
            | None, None -> None
            | Some r, None | None, Some r -> Some r
            | Some ra, Some rb -> Some (min ra rb)
          in
          (match target with
          | None -> None
          | Some r when r > hi -> None
          | Some r ->
              let written c =
                let rec go acc = function
                  | (w : write) :: rest when w.round <= r -> go (IS.add w.node acc) rest
                  | _ -> acc
                in
                go IS.empty c.pending
              in
              let touched = IS.union (written ca) (written cb) in
              let advance c = while c.round < r && step c do () done in
              advance ca;
              advance cb;
              scan (diff_at r touched))
    in
    scan (diff_at lo all)

  (* ---------------- JSONL dump (the on-disk checkpoint format) ---------------- *)

  (* One header object, then one object per checkpoint (per-field encoded
     fingerprints of every register) and one per retained delta, in order.
     See DESIGN.md "Flight recorder format". *)
  let write_jsonl oc t =
    let enc_row states =
      String.concat ","
        (Array.to_list
           (Array.map
              (fun s ->
                "["
                ^ String.concat "," (Array.to_list (Array.map string_of_int (P.encode s)))
                ^ "]")
              states))
    in
    Printf.fprintf oc
      {|{"kind":"header","round0":%d,"last_round":%d,"interval":%d,"nodes":%d,"fields":[%s],"total_writes":%d,"dropped":%d}|}
      t.round0 t.cur_round t.interval (Graph.n t.graph)
      (String.concat ","
         (Array.to_list (Array.map (fun f -> "\"" ^ Trace.json_escape f ^ "\"") P.field_names)))
      t.total (dropped t);
    output_char oc '\n';
    List.iter
      (fun (r, states) ->
        Printf.fprintf oc {|{"kind":"checkpoint","round":%d,"enc":[%s]}|} r (enc_row states);
        output_char oc '\n')
      t.checkpoints;
    let pv = prevs t in
    let i = ref 0 in
    iter_writes
      (fun w ->
        Printf.fprintf oc {|{"kind":"delta","round":%d,"node":%d,"cause":"%s","changes":"%s"}|}
          w.round w.node
          (Trace.json_escape (Trace.cause_to_string w.cause))
          (Trace.json_escape (Trace.changes_to_string (field_changes pv.(!i) w.state)));
        incr i;
        output_char oc '\n')
      t

  (* ---------------- provenance glue ---------------- *)

  let provenance_writes t =
    let pv = prevs t in
    let acc = ref [] and seq = ref 0 in
    iter_writes
      (fun w ->
        acc :=
          { Provenance.seq = !seq; round = w.round; node = w.node; cause = w.cause;
            changes = field_changes pv.(!seq) w.state }
          :: !acc;
        incr seq)
      t;
    Array.of_list (List.rev !acc)

  (* walk backwards from the first alarm-raising write of [node] (at or
     before [round] when given) to its originating fault injection *)
  let explain t ?round ?(same_round_reads = false) ~node () =
    let ws = provenance_writes t in
    let full = Array.of_list (writes t) in
    let target = ref (-1) in
    Array.iteri
      (fun i (w : Provenance.write) ->
        if
          !target < 0 && w.node = node
          && (match round with None -> true | Some r -> w.round <= r)
          && P.alarm full.(i).state
        then target := i)
      ws;
    if !target < 0 then Error Provenance.No_such_write
    else Provenance.explain t.graph ws ~target:!target ~same_round_reads ()
end
