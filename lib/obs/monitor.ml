open Ssmst_graph
open Ssmst_sim

(* Always-on online invariant monitors: the paper's theorem-level claims
   evaluated against each round's settled snapshot, returning structured
   verdicts instead of failing at run end.

   Four monitors ship:

   - "forest": the claimed parent pointers contain no cycle (a spanning
     *tree* claim can only fail structurally through a cycle or a wrong
     root count; the verifier's own Example SP covers the rest);
   - "compactness": the peak per-node register size stays within
     [compact_c * ceil(log2 n)] bits — Section 2.4's O(log n) claim as a
     runtime assertion, O(1) per round via the engine's incremental
     high-water counter;
   - "alarm-monotonicity": between a fault injection and the following
     reset, a raised alarm never disappears (the verifier latches alarms;
     losing one means the latch was corrupted or mis-reset);
   - "detection-distance": when the first alarm of a burst fires, the
     maximum fault-to-alarm hop distance is within
     [distance_c * f * ceil(log2 n)] — Section 2.4's O(f log n) locality
     claim, checked at the detection point.

   The monitor set is cheap enough to keep always-on: a version counter
   (register writes + faults) short-circuits evaluation on rounds where the
   snapshot provably did not change, so quiescent rounds cost O(1). *)

type verdict = Ok | Violation of { round : int; node : int option; detail : string }

let verdict_ok = function Ok -> true | Violation _ -> false

let pp_verdict ppf = function
  | Ok -> Fmt.string ppf "ok"
  | Violation { round; node; detail } ->
      Fmt.pf ppf "VIOLATION at round %d%a: %s" round
        Fmt.(option (fun ppf v -> Fmt.pf ppf " (node %d)" v))
        node detail

let verdict_to_json = function
  | Ok -> {|{"ok":true}|}
  | Violation { round; node; detail } ->
      let node_field = match node with None -> "" | Some v -> Fmt.str {|"node":%d,|} v in
      Fmt.str {|{"ok":false,"round":%d,%s"detail":"%s"}|} round node_field
        (Trace.json_escape detail)

(* The read-only window a monitor set gets onto a live network.  All
   closures must be cheap; [change_counter] must change whenever any
   register changes (the engine's [register_writes + faults_injected] pair
   qualifies: every fault and every activation that changed a register
   bumps one of them). *)
type view = {
  graph : Graph.t;
  parent : int -> int option;  (* claimed parent pointer, when the protocol has one *)
  bits : int -> int;
  alarm : int -> bool;
  peak_bits : unit -> int;  (* O(1): the engine's incremental high-water *)
  any_alarm : unit -> bool;  (* O(1): the engine's alarm counter *)
  change_counter : unit -> int;
}

type t = {
  view : view;
  mutable trace : Trace.t option;
  mutable metrics : Metrics.t option;
  compact_c : int;
  distance_c : int;
  logn : int;
  mutable faults : int list;  (* victims of the live burst, [] outside one *)
  mutable alarm_phase : [ `Idle | `Armed | `Alarmed ];
  mutable last_version : int option;  (* change counter at the last evaluation *)
  (* per-node colouring for the forest walk, reused across rounds *)
  stamp : int array;
  mutable pass : int;
  (* first violation per monitor, latched *)
  mutable forest : verdict;
  mutable compact : verdict;
  mutable alarm_mono : verdict;
  mutable distance : verdict;
  mutable checks : int;  (* full evaluations actually executed *)
}

let default_compact_c = 96
let default_distance_c = 3  (* the constant the fault suite's O(f log n) test uses *)

let create ?trace ?metrics ?(compact_c = default_compact_c) ?(distance_c = default_distance_c)
    (view : view) =
  let n = Graph.n view.graph in
  {
    view;
    trace;
    metrics;
    compact_c;
    distance_c;
    logn = Memory.of_nat n;
    faults = [];
    alarm_phase = `Idle;
    last_version = None;
    stamp = Array.make n (-1);
    pass = 0;
    forest = Ok;
    compact = Ok;
    alarm_mono = Ok;
    distance = Ok;
    checks = 0;
  }

let names = [ "forest"; "compactness"; "alarm-monotonicity"; "detection-distance" ]

let results t =
  [
    ("forest", t.forest);
    ("compactness", t.compact);
    ("alarm-monotonicity", t.alarm_mono);
    ("detection-distance", t.distance);
  ]

let all_ok t = List.for_all (fun (_, v) -> verdict_ok v) (results t)
let evaluations t = t.checks

let record_violation t name (v : verdict) =
  match v with
  | Ok -> ()
  | Violation { round; node; detail } ->
      (match t.metrics with
      | Some m -> m.Metrics.monitor_violations <- m.Metrics.monitor_violations + 1
      | None -> ());
      (match t.trace with
      | Some tr -> Trace.record tr (Trace.Invariant_violation { round; node; monitor = name; detail })
      | None -> ())

let latch t name get set v =
  match (get t, v) with
  | Ok, Violation _ ->
      set t v;
      record_violation t name v
  | _ -> ()

(* ---------------- the four invariants ---------------- *)

(* Cycle detection over the claimed parent forest: colour every node with
   the pass it was first reached in; re-entering a node coloured by the
   *current walk* closes a cycle.  O(n) total per evaluation. *)
let check_forest t ~round =
  let n = Graph.n t.view.graph in
  (* two stamps per pass: [2*pass] = on the current walk, [2*pass + 1] =
     finished in this evaluation *)
  t.pass <- t.pass + 1;
  let walking = 2 * t.pass and done_ = (2 * t.pass) + 1 in
  let rec walk v path =
    if t.stamp.(v) = done_ then List.iter (fun u -> t.stamp.(u) <- done_) path
    else if t.stamp.(v) = walking then begin
      List.iter (fun u -> t.stamp.(u) <- done_) path;
      latch t "forest"
        (fun t -> t.forest)
        (fun t v -> t.forest <- v)
        (Violation { round; node = Some v; detail = "parent pointers close a cycle" })
    end
    else begin
      t.stamp.(v) <- walking;
      match t.view.parent v with
      | None -> List.iter (fun u -> t.stamp.(u) <- done_) (v :: path)
      | Some p when p < 0 || p >= n ->
          List.iter (fun u -> t.stamp.(u) <- done_) (v :: path);
          latch t "forest"
            (fun t -> t.forest)
            (fun t v -> t.forest <- v)
            (Violation
               { round; node = Some v; detail = Fmt.str "parent %d out of range" p })
      | Some p -> walk p (v :: path)
    end
  in
  for v = 0 to n - 1 do
    if t.stamp.(v) <> done_ then walk v []
  done

let check_compact t ~round =
  let bound = t.compact_c * t.logn in
  let peak = t.view.peak_bits () in
  if peak > bound then begin
    (* only on failure: find the first offender for the verdict *)
    let n = Graph.n t.view.graph in
    let node = ref None in
    (try
       for v = 0 to n - 1 do
         if t.view.bits v > bound then begin
           node := Some v;
           raise Exit
         end
       done
     with Exit -> ());
    latch t "compactness"
      (fun t -> t.compact)
      (fun t v -> t.compact <- v)
      (Violation
         {
           round;
           node = !node;
           detail = Fmt.str "peak %d bits exceeds %d * ceil(log2 n) = %d" peak t.compact_c bound;
         })
  end

let alarming_nodes t =
  let acc = ref [] in
  for v = Graph.n t.view.graph - 1 downto 0 do
    if t.view.alarm v then acc := v :: !acc
  done;
  !acc

let check_distance t ~round =
  match t.faults with
  | [] -> ()
  | faults ->
      let bound = t.distance_c * List.length faults * t.logn in
      (match Dist.detection_distance t.view.graph ~faults ~alarms:(alarming_nodes t) with
      | Some d when d > bound ->
          latch t "detection-distance"
            (fun t -> t.distance)
            (fun t v -> t.distance <- v)
            (Violation
               {
                 round;
                 node = None;
                 detail =
                   Fmt.str "detection distance %d exceeds %d * f * ceil(log2 n) = %d" d
                     t.distance_c bound;
               })
      | Some _ | None -> ())

let check_alarm_mono t ~round =
  let alarmed = t.view.any_alarm () in
  match t.alarm_phase with
  | `Idle -> ()
  | `Armed ->
      if alarmed then begin
        t.alarm_phase <- `Alarmed;
        (* the detection point of the burst: measure the locality claim *)
        check_distance t ~round
      end
  | `Alarmed ->
      if not alarmed then
        latch t "alarm-monotonicity"
          (fun t -> t.alarm_mono)
          (fun t v -> t.alarm_mono <- v)
          (Violation
             { round; node = None; detail = "alarms vanished between injection and reset" })

(* ---------------- driving ---------------- *)

(* A fault burst opened: arm the alarm monitors.  Re-injections extend the
   victim set of the live burst. *)
let note_injection t ~round:_ ~faults =
  t.faults <- List.sort_uniq compare (faults @ t.faults);
  if t.alarm_phase <> `Alarmed then t.alarm_phase <- `Armed;
  t.last_version <- None

(* The burst was answered (reset / reconstruction): disarm. *)
let note_reset t ~round:_ =
  t.faults <- [];
  t.alarm_phase <- `Idle;
  t.last_version <- None

(* One evaluation against the current settled snapshot.  Skips in O(1) when
   the version counter shows no register changed since the last call. *)
let check t ~round =
  let version = t.view.change_counter () in
  if t.last_version <> Some version then begin
    t.last_version <- Some version;
    t.checks <- t.checks + 1;
    check_forest t ~round;
    check_compact t ~round;
    check_alarm_mono t ~round
  end
