(** HDR-style log-bucketed histograms: fixed 64-bucket memory, O(1)
    {!record}, bucket-resolution quantiles.

    Bucket 0 holds the value 0; bucket [i >= 1] holds the values of binary
    size [i] bits ([2^(i-1) .. 2^i - 1]), matching the
    {!Ssmst_sim.Memory.of_nat} size measure — one bucket step is "one more
    bit", the right resolution for auditing the paper's O(log n)-shaped
    quantities (per-node register bits, convergence rounds, alarm
    latencies). *)

type t

val buckets : int
(** Fixed bucket count (64). *)

val create : unit -> t
val clear : t -> unit

val record : t -> int -> unit
(** O(1).  Negative values are clamped to 0. *)

val count : t -> int
val is_empty : t -> bool
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val merge_into : t -> t -> unit
(** [merge_into a b] folds [b]'s recordings into [a]. *)

val merge : t -> t -> t

val quantile : t -> float -> int
(** Smallest value [x] (at bucket resolution, clamped to the observed
    extremes) such that at least [ceil (q * count)] recordings are [<= x].
    0 on an empty histogram. *)

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

val nonzero : t -> (int * int) list
(** Non-empty buckets as [(upper_bound, count)], smallest bucket first. *)

val to_json : ?label:string -> t -> string
(** One JSON object: a JSONL line. *)

val pp : Format.formatter -> t -> unit
