open Ssmst_sim

(* The rendering layer of the observatory: one value combining everything a
   run produced — engine metrics, log-bucketed histograms, the span tree,
   monitor verdicts, free-form notes — rendered once as markdown (for
   humans and CI artifacts) and once as JSON (for downstream tooling).

   Purely presentational: this module never runs anything, so it can live
   below the protocol layers; the scenario drivers that *fill* a report
   live in [lib/core/observatory.ml]. *)

type t = {
  title : string;
  scenario : (string * string) list;  (* key/value header lines, in order *)
  mutable metrics : (string * Metrics.t) list;  (* one row per network, newest last *)
  mutable hists : (string * Hist.t) list;
  mutable spans : Span.node option;
  mutable monitors : (string * Monitor.verdict) list;
  mutable notes : string list;  (* newest last *)
  mutable telemetry : string option;  (* Telemetry.to_json block, pre-rendered *)
}

let create ~title ~scenario () =
  {
    title;
    scenario;
    metrics = [];
    hists = [];
    spans = None;
    monitors = [];
    notes = [];
    telemetry = None;
  }

let add_metrics t label m = t.metrics <- t.metrics @ [ (label, m) ]
let add_hist t label h = t.hists <- t.hists @ [ (label, h) ]
let set_spans t root = t.spans <- Some root
let set_monitors t results = t.monitors <- results
let add_note t s = t.notes <- t.notes @ [ s ]
let set_telemetry t json = t.telemetry <- Some json

let all_monitors_ok t =
  List.for_all (fun (_, v) -> Monitor.verdict_ok v) t.monitors

(* ---------------- markdown ---------------- *)

let md_escape s =
  (* enough for our own labels: keep table cells from breaking *)
  String.concat "\\|" (String.split_on_char '|' s)

let metrics_table ppf rows =
  Fmt.pf ppf "| network | rounds | activations | writes | wasted | skipped | peak bits | faults | alarms +/- | violations |@.";
  Fmt.pf ppf "|---|---|---|---|---|---|---|---|---|---|@.";
  List.iter
    (fun (label, (m : Metrics.t)) ->
      Fmt.pf ppf "| %s | %d | %d | %d | %d | %d | %d | %d | %d/%d | %d |@." (md_escape label)
        m.rounds m.activations m.register_writes m.wasted_steps m.skipped_activations
        m.peak_bits m.faults_injected m.alarms_raised m.alarms_cleared m.monitor_violations)
    rows

let hist_table ppf hists =
  Fmt.pf ppf "| histogram | n | min | p50 | p90 | p99 | max | mean |@.";
  Fmt.pf ppf "|---|---|---|---|---|---|---|---|@.";
  List.iter
    (fun (label, h) ->
      Fmt.pf ppf "| %s | %d | %d | %d | %d | %d | %d | %.2f |@." (md_escape label)
        (Hist.count h) (Hist.min_value h) (Hist.p50 h) (Hist.p90 h) (Hist.p99 h)
        (Hist.max_value h) (Hist.mean h))
    hists

let span_tree ppf root =
  List.iter
    (fun (depth, n) ->
      Fmt.pf ppf "%s- %a@." (String.make (2 * depth) ' ') Span.pp_node n)
    (Span.depth_first root)

let monitor_table ppf monitors =
  Fmt.pf ppf "| monitor | verdict |@.";
  Fmt.pf ppf "|---|---|@.";
  List.iter
    (fun (name, v) -> Fmt.pf ppf "| %s | %a |@." (md_escape name) Monitor.pp_verdict v)
    monitors

let to_markdown t =
  Fmt.str "%t" (fun ppf ->
      Fmt.pf ppf "# %s@.@." t.title;
      if t.scenario <> [] then begin
        List.iter (fun (k, v) -> Fmt.pf ppf "- **%s**: %s@." k v) t.scenario;
        Fmt.pf ppf "@."
      end;
      if t.monitors <> [] then begin
        Fmt.pf ppf "## Invariant monitors%s@.@."
          (if all_monitors_ok t then " — all ok" else " — VIOLATIONS");
        monitor_table ppf t.monitors;
        Fmt.pf ppf "@."
      end;
      if t.metrics <> [] then begin
        Fmt.pf ppf "## Metrics@.@.";
        metrics_table ppf t.metrics;
        Fmt.pf ppf "@."
      end;
      if t.hists <> [] then begin
        Fmt.pf ppf "## Histograms@.@.";
        hist_table ppf t.hists;
        Fmt.pf ppf "@.";
        List.iter
          (fun (label, h) ->
            match Hist.nonzero h with
            | [] -> ()
            | cells ->
                Fmt.pf ppf "%s buckets (value &le; upper bound): %s@.@." (md_escape label)
                  (String.concat ", "
                     (List.map (fun (ub, c) -> Fmt.str "&le;%d:%d" ub c) cells)))
          t.hists
      end;
      (match t.spans with
      | None -> ()
      | Some root ->
          Fmt.pf ppf "## Span tree@.@.";
          Fmt.pf ppf
            "Counts are inclusive: a span covers its children.  Indentation is nesting.@.@.";
          Fmt.pf ppf "```@.";
          span_tree ppf root;
          Fmt.pf ppf "```@.@.");
      if t.notes <> [] then begin
        Fmt.pf ppf "## Notes@.@.";
        List.iter (fun s -> Fmt.pf ppf "- %s@." s) t.notes;
        Fmt.pf ppf "@."
      end)

(* ---------------- CSV ---------------- *)

(* the flat form: one (section, key, value) row per fact, for spreadsheet
   ingestion; histograms flatten to their summary statistics and the span
   tree to depth-first rows *)
let to_csv t =
  let buf = Buffer.create 1024 in
  let esc = Trace.csv_escape in
  let row s k v = Buffer.add_string buf (Fmt.str "%s,%s,%s\n" (esc s) (esc k) (esc v)) in
  Buffer.add_string buf "section,key,value\n";
  row "report" "title" t.title;
  List.iter (fun (k, v) -> row "scenario" k v) t.scenario;
  List.iter
    (fun (name, v) -> row "monitor" name (Fmt.str "%a" Monitor.pp_verdict v))
    t.monitors;
  if t.monitors <> [] then row "monitor" "all_ok" (string_of_bool (all_monitors_ok t));
  List.iter
    (fun (label, (m : Metrics.t)) ->
      List.iter
        (fun (k, v) -> row ("metrics:" ^ label) k (string_of_int v))
        [ ("rounds", m.rounds); ("activations", m.activations);
          ("register_writes", m.register_writes); ("wasted_steps", m.wasted_steps);
          ("skipped_activations", m.skipped_activations); ("peak_bits", m.peak_bits);
          ("faults_injected", m.faults_injected); ("alarms_raised", m.alarms_raised);
          ("alarms_cleared", m.alarms_cleared);
          ("monitor_violations", m.monitor_violations) ])
    t.metrics;
  List.iter
    (fun (label, h) ->
      List.iter
        (fun (k, v) -> row ("hist:" ^ label) k v)
        [ ("count", string_of_int (Hist.count h));
          ("min", string_of_int (Hist.min_value h));
          ("p50", string_of_int (Hist.p50 h)); ("p90", string_of_int (Hist.p90 h));
          ("p99", string_of_int (Hist.p99 h));
          ("max", string_of_int (Hist.max_value h));
          ("mean", Fmt.str "%.2f" (Hist.mean h)) ])
    t.hists;
  (match t.spans with
  | None -> ()
  | Some root ->
      List.iter
        (fun (depth, n) -> row "span" (string_of_int depth) (Fmt.str "%a" Span.pp_node n))
        (Span.depth_first root));
  List.iteri (fun i s -> row "note" (string_of_int i) s) t.notes;
  Buffer.contents buf

(* ---------------- JSON ---------------- *)

let to_json t =
  let str s = Fmt.str {|"%s"|} (Trace.json_escape s) in
  let scenario =
    String.concat ","
      (List.map (fun (k, v) -> Fmt.str "%s:%s" (str k) (str v)) t.scenario)
  in
  let metrics =
    String.concat ","
      (List.map (fun (label, m) -> Metrics.to_json ~label m) t.metrics)
  in
  let hists =
    String.concat "," (List.map (fun (label, h) -> Hist.to_json ~label h) t.hists)
  in
  let monitors =
    String.concat ","
      (List.map
         (fun (name, v) -> Fmt.str "%s:%s" (str name) (Monitor.verdict_to_json v))
         t.monitors)
  in
  let notes = String.concat "," (List.map str t.notes) in
  Fmt.str
    {|{"title":%s,"scenario":{%s},"monitors":{%s},"monitors_ok":%b,"metrics":[%s],"histograms":[%s],"spans":%s,"notes":[%s],"telemetry":%s}|}
    (str t.title) scenario monitors (all_monitors_ok t) metrics hists
    (match t.spans with None -> "null" | Some root -> Span.node_to_json root)
    notes
    (match t.telemetry with None -> "null" | Some j -> j)
