open Ssmst_sim

(** Typed phase-span profiler: nested spans tagged with the paper's phases
    (fragment levels of SYNC_MST, verifier wave sweeps, transformer epochs,
    campaign trials), each accumulating the ideal-time rounds, activations,
    register writes and register-bit high-water spent inside it.

    Spans are fed either by sampling an engine's {!Metrics} (snapshot at
    {!open_}, delta at {!close}) or by explicit {!charge} calls from
    algorithms with their own cost model.  Counts are inclusive: a parent
    span includes its children.  Open/close marks are recorded into the
    attached {!Trace} as [Span_mark] events. *)

type tag =
  | Fragment_level of int
  | Wave_sweep
  | Epoch of int
  | Campaign_trial of int
  | Construct
  | Settle
  | Inject
  | Detect
  | Verify
  | Named of string

val tag_label : tag -> string

type counters = { rounds : int; activations : int; writes : int; peak_bits : int }

val zero_counters : counters

val sampler_of_metrics : Metrics.t -> unit -> counters
(** The engine hook: sample a {!Network.Make} instance's live counters. *)

type node = {
  tag : tag;
  mutable rounds : int;
  mutable activations : int;
  mutable writes : int;
  mutable peak_bits : int;
  mutable children_rev : node list;  (** newest first; see {!children} *)
  mutable opened_at : counters;
}

type t

val create : ?trace:Trace.t -> ?sample:(unit -> counters) -> unit -> t
(** A profiler whose root span opens immediately.  [sample] supplies the
    engine counters ({!sampler_of_metrics}); omitted, only {!charge} feeds
    the spans. *)

val attach_trace : t -> Trace.t -> unit

val open_ : t -> tag -> unit
val close : t -> unit
(** @raise Invalid_argument when no span is open. *)

val with_ : t -> tag -> (unit -> 'a) -> 'a
(** [with_ t tag f] runs [f] inside an [open_]/[close] pair (exception-safe). *)

val charge :
  t -> ?rounds:int -> ?activations:int -> ?writes:int -> ?peak_bits:int -> unit -> unit
(** Add explicitly accounted cost to every open span (inclusive counts). *)

val finish : t -> node
(** Close any still-open spans, settle the root's sampling window, and
    return the root of the span tree. *)

val root : t -> node
val children : node -> node list
(** Oldest-first. *)

val depth_first : node -> (int * node) list
(** Pre-order walk with depths, the rendering order of the span tree. *)

val node_to_json : node -> string
val pp_node : Format.formatter -> node -> unit
val pp_tree : Format.formatter -> node -> unit
