(** Wall-clock and allocation telemetry: the physical-cost profiler that
    sits beside {!Span}'s logical counters.

    Where a {!Span} charges the paper's cost model (rounds, activations,
    register writes, peak bits), a [Telemetry.t] accumulates what the
    machine actually spent per named phase — wall seconds
    ([Unix.gettimeofday]) and [Gc.quick_stat] deltas (minor/major words
    allocated, collection counts) — fed by the {!Ssmst_parallel.Probe}
    probes threaded through the hot paths: the engines' sync-round
    sub-phases (frontier scan, worker compute, effect apply),
    {!Ssmst_parallel.Domain_pool.run}'s per-worker start/stop stamps,
    transformer epochs and campaign trials.

    Telemetry is strictly out-of-band: installing it changes no register,
    metric, alarm, trace or hook byte at any [-d]/[-j] (the PR 7 identity
    suite asserts this with a profiler attached).  Three renderings: a
    per-phase table (markdown/CSV), a [chrome://tracing] JSON trace (one
    track per worker domain), and a JSON block for {!Report.to_json}.

    Threading: {!enter}/{!leave} are main-domain only; worker domains
    only ever call the injected clock (via [Probe.now]) — so the real
    clock must be domain-safe ([Unix.gettimeofday] is), while the
    deterministic {!fake} clock is a mutable counter and therefore only
    meaningful single-domain.  GC deltas are sampled on the calling
    domain only; retroactive worker spans carry wall time but no
    allocation. *)

type gc_sample = {
  minor_words : float;
  major_words : float;
  minor_collections : float;
  major_collections : float;
}

type phase = {
  name : string;
  mutable calls : int;
  mutable wall_s : float;
  mutable minor_words : float;
  mutable major_words : float;
  mutable minor_collections : float;
  mutable major_collections : float;
}

type t

val create : ?clock:(unit -> float) -> ?gc:(unit -> gc_sample) -> ?max_events:int -> unit -> t
(** Defaults: [Unix.gettimeofday]; a GC sampler with exact words
    ([Gc.minor_words], [Gc.counters]) and collection counts served from a
    [Gc.quick_stat] cache refreshed at most once per half minor heap of
    allocation (the raw quick_stat is ~1.2 us a call — too slow for the
    per-round probes); and a 200_000-event cap on the Chrome-trace buffer
    — beyond it events are counted as dropped, phase accumulation never
    stops.  Inject [clock]/[gc] for deterministic tests. *)

val fake : unit -> t
(** A deterministic profiler: a clock ticking 1 ms per call and a zeroed
    GC sampler, so every rendering below is byte-identical across runs of
    the same (single-domain) workload. *)

val enter : t -> string -> unit
val leave : t -> string -> unit
(** Phase begin/end.  [leave] closes the innermost open phase (the name
    argument is advisory); costs are inclusive — a parent phase includes
    its children's time and allocation. *)

val span : t -> tid:int -> string -> float -> float -> unit
(** A retroactive interval on worker track [tid] (from
    [Domain_pool.run]'s stamps), accumulated under the phase name
    ["name.d<tid>"] with wall time only. *)

val sink : t -> Ssmst_parallel.Probe.sink
val install : t -> unit
(** [Probe.install (sink t)] — from here every probe in the engines,
    pool, transformer and campaign feeds [t]. *)

val uninstall : unit -> unit

val phases : t -> phase list
(** In first-entered order. *)

val total_wall_s : t -> float
(** Last observed clock reading minus creation: the denominator of the
    table's %% column. *)

val dropped_events : t -> int

val to_markdown : t -> string
val to_csv : t -> string
val to_json : t -> string
(** The machine-readable block {!Report.set_telemetry} folds into
    {!Report.to_json}:
    [{"total_wall_s":..,"dropped_events":..,"phases":[..]}]. *)

val to_chrome_trace : t -> string
(** A [chrome://tracing]-loadable object: complete ("ph":"X") events in
    microseconds relative to the profiler's creation, [pid] 0, [tid] =
    worker-domain index (main-domain phases on track 0). *)
