open Ssmst_graph
open Ssmst_sim

(** Always-on online invariant monitors evaluated against each round's
    settled snapshot, returning structured verdicts instead of failing at
    run end.  Four monitors ship: parent pointers form a forest,
    per-node register size stays within [compact_c * ceil(log2 n)] bits
    (the paper's Section 2.4 space claim), alarms stay raised between an
    injection and the following reset, and the detection distance at the
    first alarm stays within [distance_c * f * ceil(log2 n)] (the
    O(f log n) locality claim).

    Violations latch the first occurrence per monitor, land in the
    attached {!Trace} as [Invariant_violation] events, and bump
    {!Metrics}'s [monitor_violations] counter.  Evaluation is skipped in
    O(1) on rounds whose change counter shows no register changed, so the
    set is cheap enough to keep always-on. *)

type verdict = Ok | Violation of { round : int; node : int option; detail : string }

val verdict_ok : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_json : verdict -> string

(** The read-only window a monitor set gets onto a live network.  All
    closures must be cheap; [change_counter] must change whenever any
    register changes ([register_writes + faults_injected] qualifies). *)
type view = {
  graph : Graph.t;
  parent : int -> int option;
      (** Claimed parent pointer, when the protocol has one; [fun _ -> None]
          disables the forest monitor. *)
  bits : int -> int;
  alarm : int -> bool;
  peak_bits : unit -> int;  (** O(1): the engine's incremental high-water. *)
  any_alarm : unit -> bool;  (** O(1): the engine's alarm counter. *)
  change_counter : unit -> int;
}

type t

val default_compact_c : int
val default_distance_c : int

val create :
  ?trace:Trace.t -> ?metrics:Metrics.t -> ?compact_c:int -> ?distance_c:int -> view -> t

val names : string list
(** The four monitor names, in {!results} order. *)

val check : t -> round:int -> unit
(** One evaluation against the current settled snapshot; O(1) when the
    view's change counter is unchanged since the last call. *)

val note_injection : t -> round:int -> faults:int list -> unit
(** A fault burst opened: arm the alarm-monotonicity and detection-distance
    monitors.  Re-injections extend the victim set of the live burst. *)

val note_reset : t -> round:int -> unit
(** The burst was answered (reset / reconstruction): disarm. *)

val results : t -> (string * verdict) list
val all_ok : t -> bool

val evaluations : t -> int
(** Full evaluations actually executed (change-counter cache misses). *)
