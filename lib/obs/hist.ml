(* HDR-style log-bucketed histograms: fixed 64-bucket memory, O(1) record,
   O(buckets) merge and quantile queries.

   Bucket 0 holds the value 0 (and any clamped negatives); bucket i >= 1
   holds [2^(i-1), 2^i - 1], i.e. the values whose binary size is i bits.
   That matches the repo's {!Ssmst_sim.Memory.of_nat} size measure, so a
   bucket boundary is exactly a "one more bit" step — the right resolution
   for auditing O(log n)-shaped claims: per-node register bits, convergence
   rounds, alarm latencies.

   Quantiles are bucket-resolution upper bounds clamped to the observed
   extremes: [quantile h q] never under-reports by more than the bucket
   width and is exact at the recorded min/max. *)

let buckets = 64

type t = {
  counts : int array;  (* [buckets] cells, log-indexed *)
  mutable total : int;
  mutable vmin : int;  (* smallest recorded value; max_int when empty *)
  mutable vmax : int;  (* largest recorded value; min_int when empty *)
  mutable sum : int;
}

let create () =
  { counts = Array.make buckets 0; total = 0; vmin = max_int; vmax = min_int; sum = 0 }

let clear t =
  Array.fill t.counts 0 buckets 0;
  t.total <- 0;
  t.vmin <- max_int;
  t.vmax <- min_int;
  t.sum <- 0

(* Index of the bucket holding [v]: its bit size, clamped into range. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc x = if x = 0 then acc else bits (acc + 1) (x lsr 1) in
    min (buckets - 1) (bits 0 v)
  end

(* Largest value of bucket [i] (its inclusive upper bound). *)
let bucket_upper i = if i <= 0 then 0 else (1 lsl i) - 1

let record t v =
  let v = max 0 v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.total <- t.total + 1;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  t.sum <- t.sum + v

let count t = t.total
let is_empty t = t.total = 0
let max_value t = if t.total = 0 then 0 else t.vmax
let min_value t = if t.total = 0 then 0 else t.vmin
let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total

(* Merge [b] into [a] (the campaign path: per-trial histograms folded into
   the sweep-wide one). *)
let merge_into a b =
  for i = 0 to buckets - 1 do
    a.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  a.total <- a.total + b.total;
  if b.vmin < a.vmin then a.vmin <- b.vmin;
  if b.vmax > a.vmax then a.vmax <- b.vmax;
  a.sum <- a.sum + b.sum

let merge a b =
  let t = create () in
  merge_into t a;
  merge_into t b;
  t

(* The smallest value [x] such that at least [ceil (q * total)] recorded
   values are <= [x], at bucket resolution (clamped to the observed min and
   max so the extremes are exact). *)
let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
    let rec go i cum =
      if i >= buckets then t.vmax
      else
        let cum = cum + t.counts.(i) in
        if cum >= rank then min t.vmax (max t.vmin (bucket_upper i)) else go (i + 1) cum
    in
    go 0 0
  end

let p50 t = quantile t 0.5
let p90 t = quantile t 0.9
let p99 t = quantile t 0.99

(* Non-empty buckets, oldest-first: [(bucket_upper, count)]. *)
let nonzero t =
  let acc = ref [] in
  for i = buckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_upper i, t.counts.(i)) :: !acc
  done;
  !acc

let to_json ?(label = "") t =
  let prefix = if label = "" then "" else Fmt.str {|"label":"%s",|} (Ssmst_sim.Trace.json_escape label) in
  Fmt.str
    {|{%s"count":%d,"min":%d,"p50":%d,"p90":%d,"p99":%d,"max":%d,"mean":%.2f,"buckets":[%s]}|}
    prefix t.total (min_value t) (p50 t) (p90 t) (p99 t) (max_value t) (mean t)
    (String.concat ","
       (List.map (fun (ub, c) -> Fmt.str {|{"le":%d,"count":%d}|} ub c) (nonzero t)))

let pp ppf t =
  if t.total = 0 then Fmt.pf ppf "(empty)"
  else
    Fmt.pf ppf "n=%d min=%d p50=%d p90=%d p99=%d max=%d" t.total (min_value t) (p50 t)
      (p90 t) (p99 t) (max_value t)
