(* Wall-clock + allocation profiler (see the interface).  One Hashtbl of
   per-phase accumulators keyed by name (insertion order kept separately
   for stable rendering), a frame stack for nesting, and a bounded event
   buffer for the Chrome trace.  Everything here is main-domain state;
   the worker-side protocol is "stamp with the clock, hand the floats
   back" (see Domain_pool.run). *)

(* All-float on purpose: a flat (unboxed-field) record keeps the
   per-sample allocation to one small block on the hot probe path. *)
type gc_sample = {
  minor_words : float;
  major_words : float;
  minor_collections : float;
  major_collections : float;
}

type phase = {
  name : string;
  mutable calls : int;
  mutable wall_s : float;
  mutable minor_words : float;
  mutable major_words : float;
  mutable minor_collections : float;
  mutable major_collections : float;
}

type frame = { fname : string; t0 : float; g0 : gc_sample }
type event = { ename : string; tid : int; ts : float; dur : float }

type t = {
  clock : unit -> float;
  gc : unit -> gc_sample;
  tbl : (string, phase) Hashtbl.t;
  mutable order_rev : string list;
  mutable stack : frame list;
  mutable events_rev : event list;
  mutable n_events : int;
  max_events : int;
  mutable dropped : int;
  t_start : float;
  mutable t_last : float;
}

(* The live sampler has a cost budget of its own: [Gc.quick_stat] is
   ~1.2 us a call on OCaml 5 — six of those per engine round is exactly
   the overhead the PROF gate forbids.  Words are read from the exact
   ~30 ns counters ([Gc.minor_words], [Gc.counters]); collection counts
   exist only in [quick_stat], so they are served from a cache that is
   refreshed once at least half a minor heap has been allocated since the
   last refresh — before that point no un-forced minor collection can
   have happened, so the cached counts are still exact.  (A [quick_stat]
   caveat survives on OCaml 5: its own minor_words field lags between
   collections, which is why the counters are read separately.) *)
let make_live_gc () =
  let heap_half = float_of_int (Gc.get ()).Gc.minor_heap_size /. 2. in
  let cached = ref (Gc.quick_stat ()) in
  let cached_at = ref (Gc.minor_words ()) in
  fun () ->
    let mw = Gc.minor_words () in
    if mw -. !cached_at >= heap_half then begin
      cached := Gc.quick_stat ();
      cached_at := mw
    end;
    let _, _, major = Gc.counters () in
    {
      minor_words = mw;
      major_words = major;
      minor_collections = float_of_int !cached.Gc.minor_collections;
      major_collections = float_of_int !cached.Gc.major_collections;
    }

let zero_gc =
  { minor_words = 0.; major_words = 0.; minor_collections = 0.; major_collections = 0. }

let create ?(clock = Unix.gettimeofday) ?gc ?(max_events = 200_000) () =
  let gc = match gc with Some g -> g | None -> make_live_gc () in
  let t0 = clock () in
  {
    clock;
    gc;
    tbl = Hashtbl.create 32;
    order_rev = [];
    stack = [];
    events_rev = [];
    n_events = 0;
    max_events;
    dropped = 0;
    t_start = t0;
    t_last = t0;
  }

let fake () =
  (* 1 ms per reading: big enough that %.6f-second renderings are exact,
     monotone, and independent of the machine.  Single-domain only — the
     counter is unsynchronised on purpose (workers never tick it in the
     -d 1 runs the determinism tests pin). *)
  let ticks = ref 0 in
  let clock () =
    incr ticks;
    float_of_int !ticks *. 1e-3
  in
  create ~clock ~gc:(fun () -> zero_gc) ()

let touch t now = if now > t.t_last then t.t_last <- now

let phase_of t name =
  match Hashtbl.find_opt t.tbl name with
  | Some p -> p
  | None ->
      let p =
        {
          name;
          calls = 0;
          wall_s = 0.;
          minor_words = 0.;
          major_words = 0.;
          minor_collections = 0.;
          major_collections = 0.;
        }
      in
      Hashtbl.add t.tbl name p;
      t.order_rev <- name :: t.order_rev;
      p

let record_event t ename tid ts dur =
  if t.n_events >= t.max_events then t.dropped <- t.dropped + 1
  else begin
    t.events_rev <- { ename; tid; ts; dur } :: t.events_rev;
    t.n_events <- t.n_events + 1
  end

let enter t name = t.stack <- { fname = name; t0 = t.clock (); g0 = t.gc () } :: t.stack

let leave t _name =
  match t.stack with
  | [] -> ()
  | f :: rest ->
      t.stack <- rest;
      let now = t.clock () and g1 = t.gc () in
      touch t now;
      let p = phase_of t f.fname in
      p.calls <- p.calls + 1;
      p.wall_s <- p.wall_s +. (now -. f.t0);
      p.minor_words <- p.minor_words +. (g1.minor_words -. f.g0.minor_words);
      p.major_words <- p.major_words +. (g1.major_words -. f.g0.major_words);
      p.minor_collections <- p.minor_collections +. (g1.minor_collections -. f.g0.minor_collections);
      p.major_collections <- p.major_collections +. (g1.major_collections -. f.g0.major_collections);
      record_event t f.fname 0 (f.t0 -. t.t_start) (now -. f.t0)

let span t ~tid name t0 t1 =
  touch t t1;
  let p = phase_of t (Printf.sprintf "%s.d%d" name tid) in
  p.calls <- p.calls + 1;
  p.wall_s <- p.wall_s +. (t1 -. t0);
  record_event t name tid (t0 -. t.t_start) (t1 -. t0)

let sink t =
  {
    Ssmst_parallel.Probe.now = t.clock;
    enter = enter t;
    leave = leave t;
    span = (fun ~tid name t0 t1 -> span t ~tid name t0 t1);
  }

let install t = Ssmst_parallel.Probe.install (sink t)
let uninstall () = Ssmst_parallel.Probe.uninstall ()

let phases t = List.rev_map (Hashtbl.find t.tbl) t.order_rev
let total_wall_s t = t.t_last -. t.t_start
let dropped_events t = t.dropped

let pct t p =
  let total = total_wall_s t in
  if total <= 0. then 0. else 100. *. p.wall_s /. total

(* ---------------- renderings ---------------- *)

let to_markdown t =
  let b = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  out "| phase | calls | wall s | %% | minor words | major words | minor gcs | major gcs |";
  out "|---|---|---|---|---|---|---|---|";
  List.iter
    (fun p ->
      out "| %s | %d | %.6f | %.1f | %.0f | %.0f | %.0f | %.0f |" p.name p.calls p.wall_s (pct t p)
        p.minor_words p.major_words p.minor_collections p.major_collections)
    (phases t);
  out "";
  out "total wall: %.6f s; dropped trace events: %d" (total_wall_s t) t.dropped;
  Buffer.contents b

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "phase,calls,wall_s,pct,minor_words,major_words,minor_collections,major_collections\n";
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%.6f,%.1f,%.0f,%.0f,%.0f,%.0f\n" p.name p.calls p.wall_s (pct t p)
           p.minor_words p.major_words p.minor_collections p.major_collections))
    (phases t);
  Buffer.contents b

let to_json t =
  let phase_json p =
    Printf.sprintf
      {|{"name":"%s","calls":%d,"wall_s":%.6f,"pct":%.1f,"minor_words":%.0f,"major_words":%.0f,"minor_collections":%.0f,"major_collections":%.0f}|}
      (Ssmst_sim.Trace.json_escape p.name)
      p.calls p.wall_s (pct t p) p.minor_words p.major_words p.minor_collections
      p.major_collections
  in
  Printf.sprintf {|{"total_wall_s":%.6f,"dropped_events":%d,"phases":[%s]}|} (total_wall_s t)
    t.dropped
    (String.concat "," (List.map phase_json (phases t)))

let to_chrome_trace t =
  (* complete events ("ph":"X"), microsecond timestamps relative to the
     profiler's birth; one track (tid) per worker domain, main-domain
     phases on track 0.  Loadable as-is in chrome://tracing / Perfetto. *)
  let ev e =
    Printf.sprintf
      {|{"name":"%s","cat":"msst","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d}|}
      (Ssmst_sim.Trace.json_escape e.ename)
      (1e6 *. e.ts) (1e6 *. e.dur) e.tid
  in
  Printf.sprintf {|{"traceEvents":[%s],"displayTimeUnit":"ms","otherData":{"dropped":%d}}|}
    (String.concat "," (List.rev_map ev t.events_rev))
    t.dropped
