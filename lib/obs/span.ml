open Ssmst_sim

(* Typed phase-span profiler: a stack of nested spans, each tagged with the
   paper phase it covers, accumulating the ideal-time rounds, activations,
   register writes and register-bit high-water marks spent inside it.

   Two feeding paths coexist:

   - sampling: a span profiler created over an engine's {!Metrics} snapshots
     the counters at [open_] and charges the delta at [close] — the
     hook-free path for anything executing on {!Network.Make};
   - explicit charging: algorithms with their own cost model ({!Sync_mst}'s
     timetable, the marker's wave passes) call {!charge}, which adds to
     every currently open span.

   Counts are inclusive (a parent includes its children), like any
   tree profiler.  Every open/close also lands in the attached {!Trace} as
   a [Span_mark] event, so the JSONL/CSV sinks see phase boundaries in
   stream order. *)

type tag =
  | Fragment_level of int  (* one SYNC_MST phase (Section 4 timetable) *)
  | Wave_sweep  (* one wave/echo traversal or verifier window sweep *)
  | Epoch of int  (* one transformer verify-inject-repair epoch *)
  | Campaign_trial of int  (* one campaign trial *)
  | Construct  (* SYNC_MST + marker assembly *)
  | Settle  (* verifier settling run *)
  | Inject  (* fault injection burst *)
  | Detect  (* injection-to-alarm window *)
  | Verify  (* a verification regime window *)
  | Named of string  (* anything else *)

let tag_label = function
  | Fragment_level i -> Fmt.str "fragment-level %d" i
  | Wave_sweep -> "wave-sweep"
  | Epoch i -> Fmt.str "epoch %d" i
  | Campaign_trial i -> Fmt.str "campaign-trial %d" i
  | Construct -> "construct"
  | Settle -> "settle"
  | Inject -> "inject"
  | Detect -> "detect"
  | Verify -> "verify"
  | Named s -> s

type counters = { rounds : int; activations : int; writes : int; peak_bits : int }

let zero_counters = { rounds = 0; activations = 0; writes = 0; peak_bits = 0 }

let sampler_of_metrics (m : Metrics.t) () =
  {
    rounds = m.Metrics.rounds;
    activations = m.Metrics.activations;
    writes = m.Metrics.register_writes;
    peak_bits = m.Metrics.peak_bits;
  }

type node = {
  tag : tag;
  mutable rounds : int;
  mutable activations : int;
  mutable writes : int;
  mutable peak_bits : int;
  mutable children_rev : node list;
  mutable opened_at : counters;  (* snapshot at [open_] *)
}

type t = {
  sample : unit -> counters;
  mutable trace : Trace.t option;
  root : node;
  mutable stack : node list;  (* innermost open span first; root always last *)
}

let fresh_node tag =
  { tag; rounds = 0; activations = 0; writes = 0; peak_bits = 0; children_rev = []; opened_at = zero_counters }

let create ?trace ?(sample = fun () -> zero_counters) () =
  let root = fresh_node (Named "run") in
  root.opened_at <- sample ();
  { sample; trace; root; stack = [ root ] }

let attach_trace t tr = t.trace <- Some tr

let emit t ~enter label =
  match t.trace with
  | None -> ()
  | Some tr ->
      Trace.record tr (Trace.Span_mark { round = (t.sample ()).rounds; label; enter })

let open_ t tag =
  let n = fresh_node tag in
  n.opened_at <- t.sample ();
  (match t.stack with
  | parent :: _ -> parent.children_rev <- n :: parent.children_rev
  | [] -> assert false);
  t.stack <- n :: t.stack;
  emit t ~enter:true (tag_label tag)

(* Add the sampled delta since [open_] to the node being closed. *)
let settle_delta t (n : node) =
  let s = t.sample () in
  n.rounds <- n.rounds + (s.rounds - n.opened_at.rounds);
  n.activations <- n.activations + (s.activations - n.opened_at.activations);
  n.writes <- n.writes + (s.writes - n.opened_at.writes);
  n.peak_bits <- max n.peak_bits s.peak_bits

let close t =
  match t.stack with
  | [] | [ _ ] -> invalid_arg "Span.close: no open span"
  | n :: rest ->
      settle_delta t n;
      t.stack <- rest;
      emit t ~enter:false (tag_label n.tag)

let with_ t tag f =
  open_ t tag;
  Fun.protect ~finally:(fun () -> close t) f

(* Explicit charging for algorithms that account their own cost (the
   SYNC_MST timetable, the marker's wave passes): adds to every open span —
   the inclusive-count analogue of the sampled delta. *)
let charge t ?(rounds = 0) ?(activations = 0) ?(writes = 0) ?(peak_bits = 0) () =
  List.iter
    (fun n ->
      n.rounds <- n.rounds + rounds;
      n.activations <- n.activations + activations;
      n.writes <- n.writes + writes;
      n.peak_bits <- max n.peak_bits peak_bits)
    t.stack

(* Close every open span (including the root's sampling window) and return
   the root. *)
let finish t =
  while List.length t.stack > 1 do
    close t
  done;
  (match t.stack with [ root ] -> settle_delta t root | _ -> assert false);
  (* re-open the root window so a later [finish] doesn't double-charge *)
  t.root.opened_at <- t.sample ();
  t.root

let root t = t.root
let children n = List.rev n.children_rev
let depth_first n =
  let rec go acc depth n =
    List.fold_left (fun acc c -> go acc (depth + 1) c) ((depth, n) :: acc) (children n)
  in
  List.rev (go [] 0 n)

let rec node_to_json (n : node) =
  Fmt.str
    {|{"tag":"%s","rounds":%d,"activations":%d,"writes":%d,"peak_bits":%d,"children":[%s]}|}
    (Trace.json_escape (tag_label n.tag))
    n.rounds n.activations n.writes n.peak_bits
    (String.concat "," (List.map node_to_json (children n)))

let pp_node ppf (n : node) =
  Fmt.pf ppf "%s [rounds %d, activations %d, writes %d, peak %d bits]" (tag_label n.tag)
    n.rounds n.activations n.writes n.peak_bits

let pp_tree ppf (n : node) =
  List.iter
    (fun (depth, n) -> Fmt.pf ppf "%s- %a@." (String.make (2 * depth) ' ') pp_node n)
    (depth_first n)
