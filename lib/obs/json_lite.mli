(** A minimal JSON reader/writer for the repo's machine-written artifacts
    (bench [BENCH_*.json], telemetry blocks, report JSON).  The container
    has no JSON library baked in, and everything we parse is emitted by
    our own writers — so the grammar is full JSON minus escapes beyond
    quote, backslash, slash, n, t and r, which is all those writers emit.

    Formerly the private [Json] module inside [bench/main.ml]; factored
    here so the bench trend report, the perf-trajectory section and the
    tests share one parser. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string
(** Raised by {!parse} on malformed input, with a short position-bearing
    message.  Never escapes the accessors below — they answer [None]/[[]]
    on shape mismatches instead. *)

val parse : string -> t
(** Whole-input parse: leading/trailing whitespace is fine, any other
    trailing garbage raises {!Bad}. *)

val to_string : t -> string
(** Compact (single-line) rendering; [parse (to_string v)] round-trips
    modulo float formatting. *)

val mem : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val num_opt : t option -> float option
val bool_opt : t option -> bool option
val str_opt : t option -> string option

val arr : t option -> t list
(** The array's elements, or [[]] for anything that isn't an array. *)
