open Ssmst_sim

(** The rendering layer of the observatory: one value combining everything
    a run produced — engine metrics, log-bucketed histograms, the span
    tree, monitor verdicts, free-form notes — rendered once as markdown
    (for humans and CI artifacts) and once as JSON (for tooling).

    Purely presentational: nothing here runs a scenario; the drivers that
    fill a report live in the core library's [Observatory] module. *)

type t

val create : title:string -> scenario:(string * string) list -> unit -> t
(** [scenario] is the key/value header block (graph family, n, seed, ...). *)

val add_metrics : t -> string -> Metrics.t -> unit
(** One row per network, labelled; rows render in insertion order. *)

val add_hist : t -> string -> Hist.t -> unit
val set_spans : t -> Span.node -> unit
val set_monitors : t -> (string * Monitor.verdict) list -> unit
val add_note : t -> string -> unit

val set_telemetry : t -> string -> unit
(** Attach a pre-rendered {!Telemetry.to_json} block; it appears verbatim
    under the ["telemetry"] key of {!to_json} ([null] when absent) and is
    deliberately absent from the markdown/CSV renderings — wall-clock
    telemetry is machine food, the human table is [msst profile]'s. *)

val all_monitors_ok : t -> bool
(** True when no monitor verdict is a violation (vacuously on none). *)

val to_markdown : t -> string
val to_json : t -> string

val to_csv : t -> string
(** Flat [section,key,value] rows: metrics and histograms one statistic
    per row, the span tree depth-first.  For spreadsheet ingestion. *)
