(* Minimal JSON for machine-written artifacts (see the interface).
   Factored out of bench/main.ml so the trend report, the perf-trajectory
   section and the telemetry tests share one parser. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let i = ref 0 in
  let len = String.length s in
  let peek () = if !i < len then Some s.[!i] else None in
  let next () =
    if !i >= len then raise (Bad "unexpected end");
    let c = s.[!i] in
    incr i;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr i;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    if next () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !i))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
          (match next () with
          | ('"' | '\\' | '/') as c -> Buffer.add_char b c
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | c -> raise (Bad (Printf.sprintf "unsupported escape \\%c" c)));
          go ()
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr i;
        skip_ws ();
        if peek () = Some '}' then (
          incr i;
          Obj [])
        else
          let rec members acc =
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' ->
                skip_ws ();
                members ((key, v) :: acc)
            | '}' -> Obj (List.rev ((key, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object separator %c" c))
          in
          members []
    | Some '[' ->
        incr i;
        skip_ws ();
        if peek () = Some ']' then (
          incr i;
          Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array separator %c" c))
          in
          elems []
    | Some ('t' | 'f' | 'n') ->
        let lit w v =
          if !i + String.length w <= len && String.sub s !i (String.length w) = w then begin
            i := !i + String.length w;
            v
          end
          else raise (Bad "bad literal")
        in
        if s.[!i] = 't' then lit "true" (Bool true)
        else if s.[!i] = 'f' then lit "false" (Bool false)
        else lit "null" Null
    | Some _ ->
        let j = ref !i in
        while
          !j < len
          && match s.[!j] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
        do
          incr j
        done;
        if !j = !i then raise (Bad (Printf.sprintf "unexpected char at %d" !i));
        let v =
          try float_of_string (String.sub s !i (!j - !i))
          with Failure _ -> raise (Bad "bad number")
        in
        i := !j;
        Num v
    | None -> raise (Bad "empty input")
  in
  let v = parse_value () in
  skip_ws ();
  if !i < len then raise (Bad (Printf.sprintf "trailing garbage at %d" !i));
  v

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Str s -> "\"" ^ Ssmst_sim.Trace.json_escape s ^ "\""
  | Arr l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
  | Obj m ->
      "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ k ^ "\":" ^ to_string v) m) ^ "}"

let mem key = function Obj m -> List.assoc_opt key m | _ -> None
let num_opt = function Some (Num f) -> Some f | _ -> None
let bool_opt = function Some (Bool b) -> Some b | _ -> None
let str_opt = function Some (Str s) -> Some s | _ -> None
let arr = function Some (Arr l) -> l | _ -> []
