open Ssmst_graph
open Ssmst_sim

(* The complete self-stabilizing MST verifier (Sections 7-8).

   Each node's register holds its (corruptible) marker label plus the
   verifier's working state: two trains (one per partition) and the
   comparison module.  One activation performs:

   1. the 1-round structural checks: Example SP (spanning tree), Example
      NumK (node count), conditions RS0-RS5 / EPS0-EPS5 on the strings, and
      the part-label consistency checks (DFS ranks, subtree sizes, k,
      EDIAM-style depth/diameter bounds);
   2. one step of each train (Section 7.1), including the cycle-set and
      ordering checks of Section 8;
   3. one step of the comparison module (Section 7.2): capture Ask pieces
      from the own trains, observe neighbours' broadcast buffers (their
      Show), and run the minimality checks C1 and C2 plus the fragment
      agreement check of Claim 8.3.

   In [Passive] mode (synchronous networks, Lemma 7.5) a node holds each Ask
   piece for a full train-cycle window and reads all neighbours every pulse.
   In [Handshake] mode (asynchronous networks, Lemma 7.6) it requests levels
   from one server at a time through its Want register, and servers delay
   their train while a requested piece is on display.  Detected faults latch
   the alarm bit. *)

type mode = Passive | Handshake

type cmp_state = {
  ask_level : int;  (* level currently verified; -1 before initialization *)
  ask : Pieces.t option;  (* captured I(F_j(v)) *)
  port : int;  (* handshake: server cursor *)
  want : (int * int) option;  (* handshake: (server identity, level) *)
  window : int;  (* rounds left for the current level / server *)
}

type state = {
  label : Marker.node_label;
  train_top : Train.state;
  train_bot : Train.state;
  cmp : cmp_state;
  alarm : bool;  (* latched *)
}

let cmp_init = { ask_level = -1; ask = None; port = 0; want = None; window = 0 }

module type CONFIG = sig
  val marker : Marker.t
  val mode : mode
end

(* The per-level window: a multiple of the worst train cycle (k + diameter),
   both O(log n); computable from the node's own label.  [window_factor] is
   the ablation knob: windows shorter than a full train cycle lose
   comparison opportunities (detection slows or is missed); longer ones only
   stretch the Ask cycle linearly. *)
let window_factor = ref 40

let window_bound (l : Marker.node_label) =
  let t = max 2 (Memory.of_nat (max 2 l.nk_n)) in
  (!window_factor * t) + !window_factor

module Make (C : CONFIG) = struct
  type nonrec state = state

  let init _g v =
    {
      label = C.marker.labels.(v);
      train_top = Train.init;
      train_bot = Train.init;
      cmp = cmp_init;
      alarm = false;
    }

  (* ---------------- helpers over the claimed structure ---------------- *)

  let claimed_parent g v (l : Marker.node_label) =
    match l.comp_port with
    | Some p when p < Graph.degree g v -> Some (Graph.peer_at g v p)
    | Some _ -> None
    | None -> None

  let points_at g u (lu : Marker.node_label) v =
    match claimed_parent g u lu with Some w -> w = v | None -> false

  (* ---------------- structural 1-round checks ---------------- *)

  let structural_ok g v (l : Marker.node_label) (labels : int -> Marker.node_label) =
    let bad = ref [] in
    let fail name = bad := name :: !bad in
    let deg = Graph.degree g v in
    let my_id = Graph.id g v in
    let parent = claimed_parent g v l in
    (match (l.comp_port, parent) with Some _, None -> fail "comp-port" | _ -> ());
    let children = ref [] in
    for p = deg - 1 downto 0 do
      let u = Graph.peer_at g v p in
      if points_at g u (labels u) v then children := u :: !children
    done;
    let children = !children in
    let is_root = l.sp_depth = 0 in
    (* Example SP *)
    if is_root then begin if l.sp_root <> my_id then fail "sp-root-id" end
    else begin
      match parent with
      | None -> fail "sp-no-parent"
      | Some p -> if (labels p).sp_depth <> l.sp_depth - 1 then fail "sp-depth"
    end;
    Graph.iter_ports g v (fun _ u -> if (labels u).sp_root <> l.sp_root then fail "sp-root-agree");
    (* Example NumK *)
    Graph.iter_ports g v (fun _ u -> if (labels u).nk_n <> l.nk_n then fail "nk-agree");
    let sub = List.fold_left (fun acc c -> acc + (labels c).nk_sub) 1 children in
    if l.nk_sub <> sub then fail "nk-sum";
    if is_root && l.nk_sub <> l.nk_n then fail "nk-root";
    (* string conditions RS / EPS *)
    let view : Labels.view =
      {
        label = (fun u -> if u = v then l.strings else (labels u).strings);
        parent = (fun _ -> parent);
        children = (fun _ -> children);
        is_root = (fun _ -> is_root);
        ident = (fun u -> Graph.id g u);
      }
    in
    if Labels.check_node view v <> [] then fail "rs-eps";
    (* strings length vs claimed n *)
    if l.strings.len > Memory.of_nat (max 2 l.nk_n) + 2 then fail "len-bound";
    if l.delim > l.strings.len then fail "delim-bound";
    (* part labels *)
    let t = max 2 (Memory.of_nat (max 2 l.nk_n)) in
    let check_part which (pl : Partition.node_part_label) =
      let parent_pl =
        match parent with
        | None -> None
        | Some p ->
            let pp = if which = `Top then (labels p).top else (labels p).bot in
            if pp.part_root_id = pl.part_root_id then Some pp else None
      in
      (match parent_pl with
      | None ->
          (* part root *)
          if pl.part_root_id <> my_id then fail "part-root-id";
          if pl.dfs_rank <> 0 then fail "part-root-dfs";
          if pl.depth_in_part <> 0 then fail "part-root-depth";
          if Array.length pl.own <> min 2 pl.k then fail "part-root-own";
          (match which with
          | `Top ->
              if pl.subtree < t then fail "top-size";
              if pl.dbound > (4 * t) + 4 then fail "top-dbound";
              if pl.k > l.strings.len then fail "top-k"
          | `Bottom ->
              if pl.subtree >= t then fail "bot-size";
              if pl.k > 2 * pl.subtree then fail "bot-k")
      | Some pp ->
          if pl.depth_in_part <> pp.depth_in_part + 1 then fail "part-depth";
          if pl.depth_in_part > pl.dbound then fail "part-depth-bound";
          if pl.k <> pp.k then fail "part-k";
          if pl.dbound <> pp.dbound then fail "part-dbound");
      (* same-part children: subtree sum and DFS ranks in port order *)
      let same_part_children =
        List.filter
          (fun c ->
            let cp = if which = `Top then (labels c).top else (labels c).bot in
            cp.part_root_id = pl.part_root_id)
          children
      in
      let sum =
        List.fold_left
          (fun acc c ->
            let cp = if which = `Top then (labels c).top else (labels c).bot in
            acc + cp.subtree)
          1 same_part_children
      in
      if pl.subtree <> sum then fail "part-subtree";
      let expect = ref (pl.dfs_rank + 1) in
      List.iter
        (fun c ->
          let cp = if which = `Top then (labels c).top else (labels c).bot in
          if cp.dfs_rank <> !expect then fail "part-dfs-order";
          expect := !expect + cp.subtree)
        same_part_children;
      (* own pieces shape *)
      let expected_own = max 0 (min 2 (pl.k - (2 * pl.dfs_rank))) in
      if Array.length pl.own <> expected_own then fail "own-shape";
      Array.iter
        (fun (pc : Pieces.t) -> if pc.level >= l.strings.len then fail "own-level")
        pl.own
    in
    check_part `Top l.top;
    check_part `Bottom l.bot;
    (List.rev !bad, parent, children, is_root)

  (* ---------------- membership rules ---------------- *)

  let roots_at (l : Marker.node_label) j =
    if j >= 0 && j < l.strings.len then l.strings.roots.(j) else Labels.RStar

  let member_top (l : Marker.node_label) (pc : Pieces.t) ~flag:_ =
    pc.level >= l.delim && pc.level < l.strings.len && roots_at l pc.level <> Labels.RStar

  let member_bot (l : Marker.node_label) (pc : Pieces.t) ~flag =
    flag && pc.level < l.delim && roots_at l pc.level <> Labels.RStar

  let flag_rule g v (l : Marker.node_label) (pc : Pieces.t) ~parent_flag =
    match roots_at l pc.level with
    | Labels.R1 -> Graph.id g v = pc.root_id
    | Labels.R0 -> parent_flag
    | Labels.RStar -> false

  (* levels a node must see per train (excluding the top level ell) *)
  let required_levels (l : Marker.node_label) which =
    let ell = l.strings.len - 1 in
    let mask = ref 0 in
    for j = 0 to min (ell - 1) 60 do
      if roots_at l j <> Labels.RStar then
        let top = j >= l.delim in
        if (which = `Top) = top then mask := !mask lor (1 lsl j)
    done;
    !mask

  (* levels iterated by the comparison module: all of J(v) below ell *)
  let cmp_levels (l : Marker.node_label) =
    let ell = l.strings.len - 1 in
    List.filter (fun j -> roots_at l j <> Labels.RStar) (List.init (max 0 ell) Fun.id)

  let next_level (l : Marker.node_label) j =
    match cmp_levels l with
    | [] -> -1
    | ls -> (
        match List.find_opt (fun x -> x > j) ls with
        | Some x -> x
        | None -> List.hd ls)

  (* the piece currently on display at node u for level j, if any: the
     member-filtered broadcast buffer of either of u's trains (its Show) *)
  let show_at (su : state) j =
    let of_train member (ts : Train.state) =
      match ts.bc with
      | Some c when c.piece.Pieces.level = j && member c.piece ~flag:c.flag -> Some c.piece
      | _ -> None
    in
    match of_train (member_top su.label) su.train_top with
    | Some p -> Some p
    | None -> of_train (member_bot su.label) su.train_bot

  (* ---------------- the comparison checks ---------------- *)

  (* C2 for the edge (v,u): the claimed minimum outgoing weight must not
     exceed the edge's actual ω′ weight. *)
  let c2_ok g v u (ask : Pieces.t) ~in_tree =
    let w =
      Weight.make ~base:(Graph.base_weight g v u) ~in_tree ~id_u:(Graph.id g v)
        ~id_v:(Graph.id g u)
    in
    Weight.(ask.Pieces.weight <= w)

  (* whether the (claimed) tree neighbour shares v's level-j fragment *)
  let tree_same_frag (l : Marker.node_label) (lu : Marker.node_label) ~u_is_parent j =
    if u_is_parent then roots_at l j = Labels.R0 else roots_at lu j = Labels.R0

  (* compare the Ask piece against one neighbour; returns [`Ok]/[`Alarm] or
     [`Wait] when the needed piece is not on display *)
  let compare_with g v (l : Marker.node_label) (ask : Pieces.t) u (su : state)
      ~(parent : int option) ~(children : int list) =
    let j = ask.Pieces.level in
    let lu = su.label in
    let in_tree =
      (match parent with Some p -> p = u | None -> false) || List.mem u children
    in
    if in_tree then begin
      let u_is_parent = parent = Some u in
      if tree_same_frag l lu ~u_is_parent j then
        (* same fragment: pieces must agree whenever u's is on display *)
        match show_at su j with
        | Some pu -> if Pieces.equal ask pu then `Ok else `Alarm
        | None -> `Ok (* u's own cycle-set check forces it to appear *)
      else if
        (* outgoing tree edge: C2 *)
        c2_ok g v u ask ~in_tree:true
      then `Ok
      else `Alarm
    end
    else if roots_at lu j = Labels.RStar then
      (* u belongs to no level-j fragment: outgoing for sure *)
      if c2_ok g v u ask ~in_tree:false then `Ok else `Alarm
    else
      match show_at su j with
      | Some pu ->
          if pu.Pieces.root_id = ask.Pieces.root_id then
            (* same fragment across a non-tree edge: pieces must agree *)
            if Pieces.equal ask pu then `Ok else `Alarm
          else if c2_ok g v u ask ~in_tree:false then `Ok
          else `Alarm
      | None -> `Wait

  (* C1: if v is the endpoint of its level-j candidate, the edge must leave
     the fragment and carry exactly the claimed weight. *)
  let c1_ok g v (l : Marker.node_label) (ask : Pieces.t) ~(parent : int option)
      ~(children : int list) (labels : int -> Marker.node_label) =
    let j = ask.Pieces.level in
    if j >= l.strings.len then true
    else
      match l.strings.endp.(j) with
      | Labels.ENone | Labels.EStar -> true
      | Labels.Up | Labels.Down -> (
          let target =
            match l.strings.endp.(j) with
            | Labels.Up -> parent
            | Labels.Down ->
                List.find_opt
                  (fun c ->
                    let lc = labels c in
                    j < lc.strings.len && lc.strings.parents.(j))
                  children
            | Labels.ENone | Labels.EStar -> None
          in
          match target with
          | None -> false
          | Some u ->
              let lu = labels u in
              let u_is_parent = parent = Some u in
              (not (tree_same_frag l lu ~u_is_parent j))
              && Weight.equal ask.Pieces.weight
                   (Weight.make ~base:(Graph.base_weight g v u) ~in_tree:true
                      ~id_u:(Graph.id g v) ~id_v:(Graph.id g u)))

  (* ---------------- one activation ---------------- *)

  let step g v (s : state) read =
    let l = s.label in
    let labels u = (read u).label in
    let struct_bad, parent, children, _is_root = structural_ok g v l labels in
    let struct_ok = struct_bad = [] in
    (* --- trains --- *)
    let peer_of which u =
      let su = read u in
      match which with
      | `Top -> { Train.lbl = su.label.top; st = su.train_top }
      | `Bottom -> { Train.lbl = su.label.bot; st = su.train_bot }
    in
    let train_ctx which =
      let my_pl = if which = `Top then l.top else l.bot in
      let parent_peer =
        match parent with
        | Some p ->
            let pr = peer_of which p in
            if pr.Train.lbl.part_root_id = my_pl.part_root_id then Some pr else None
        | None -> None
      in
      let child_peers =
        List.filter_map
          (fun c ->
            let pr = peer_of which c in
            if pr.Train.lbl.part_root_id = my_pl.part_root_id then Some pr else None)
          children
      in
      (my_pl, parent_peer, child_peers)
    in
    (* handshake: hold the train while a neighbour requests the level
       currently on display *)
    let held which (ts : Train.state) =
      C.mode = Handshake
      &&
      match ts.bc with
      | Some c ->
          let memb =
            if which = `Top then member_top l c.piece ~flag:c.flag
            else member_bot l c.piece ~flag:c.flag
          in
          memb
          && Graph.exists_ports g v (fun _ u ->
                 match (read u).cmp.want with
                 | Some (srv, j) -> srv = Graph.id g v && j = c.piece.Pieces.level
                 | None -> false)
      | None -> false
    in
    let step_train which (ts : Train.state) =
      let my_pl, parent_peer, child_peers = train_ctx which in
      Train.step ~lbl:my_pl ~parent:parent_peer ~children:child_peers
        ~flag_rule:(flag_rule g v l)
        ~member:(if which = `Top then member_top l else member_bot l)
        ~required:(required_levels l which)
        ~ordered:(which = `Top)
        ~hold:(held which ts) ts
    in
    let train_top = step_train `Top s.train_top in
    let train_bot = step_train `Bottom s.train_bot in
    (* --- comparison --- *)
    let alarm = ref (s.alarm || (not struct_ok) || train_top.alarm || train_bot.alarm) in
    let cmp = ref s.cmp in
    let w = window_bound l in
    (match cmp_levels l with
    | [] -> cmp := cmp_init
    | levels ->
        (* (re)initialize the level when out of range *)
        if not (List.mem !cmp.ask_level levels) then
          cmp := { cmp_init with ask_level = List.hd levels; window = w };
        let c = !cmp in
        (* capture the Ask piece from the own trains *)
        let c =
          match c.ask with
          | Some _ -> c
          | None -> (
              let own_show =
                let of_train member (ts : Train.state) =
                  match ts.bc with
                  | Some car
                    when car.piece.Pieces.level = c.ask_level
                         && member car.piece ~flag:car.flag ->
                      Some car.piece
                  | _ -> None
                in
                match of_train (member_top l) train_top with
                | Some p -> Some p
                | None -> of_train (member_bot l) train_bot
              in
              match own_show with Some p -> { c with ask = p |> Option.some } | None -> c)
        in
        (* run checks *)
        let c =
          match c.ask with
          | None ->
              (* waiting for own train; bounded by the window *)
              if c.window <= 0 then
                { c with ask_level = next_level l c.ask_level; ask = None; window = w }
              else { c with window = c.window - 1 }
          | Some ask -> (
              if not (c1_ok g v l ask ~parent ~children labels) then alarm := true;
              (* Claim 8.3 root check for top pieces *)
              (if roots_at l ask.Pieces.level = Labels.R1 && ask.Pieces.root_id <> Graph.id g v
               then alarm := true);
              match C.mode with
              | Passive ->
                  Graph.iter_ports g v (fun _ u ->
                      match compare_with g v l ask u (read u) ~parent ~children with
                      | `Alarm -> alarm := true
                      | `Ok | `Wait -> ());
                  if c.window <= 0 then
                    { c with ask_level = next_level l c.ask_level; ask = None; window = w }
                  else { c with window = c.window - 1 }
              | Handshake ->
                  let deg = Graph.degree g v in
                  let advance c =
                    if c.port + 1 >= deg then
                      {
                        ask_level = next_level l c.ask_level;
                        ask = None;
                        port = 0;
                        want = None;
                        window = w;
                      }
                    else { c with port = c.port + 1; want = None; window = w }
                  in
                  let u = Graph.peer_at g v (min c.port (deg - 1)) in
                  (match compare_with g v l ask u (read u) ~parent ~children with
                  | `Alarm ->
                      alarm := true;
                      advance c
                  | `Ok -> advance c
                  | `Wait ->
                      if c.window <= 0 then advance c
                      else
                        {
                          c with
                          want = Some (Graph.id g u, ask.Pieces.level);
                          window = c.window - 1;
                        }))
        in
        cmp := c);
    { label = l; train_top; train_bot; cmp = !cmp; alarm = !alarm }

  let alarm s = s.alarm

  (* the register is pure data (label + trains + comparison module), so
     structural equality is register equality.  Compare the frequently
     changing working state first and the large, almost always physically
     shared label last, with physical-equality fast paths ([=] alone would
     deep-compare the whole label every activation). *)
  let equal (a : state) (b : state) =
    a == b
    || (a.alarm = b.alarm && a.cmp = b.cmp && a.train_top = b.train_top
       && a.train_bot = b.train_bot
       && (a.label == b.label || a.label = b.label))

  (* Names of the structural checks node [v] currently violates (diagnostic
     aid for tests and the CLI). *)
  let diagnose g v (s : state) read =
    let bad, _, _, _ = structural_ok g v s.label (fun u -> (read u).label) in
    bad

  let bits s =
    Marker.label_bits s.label + Train.bits s.train_top + Train.bits s.train_bot
    + Memory.of_int s.cmp.ask_level
    + Memory.of_option Pieces.bits s.cmp.ask
    + Memory.of_nat s.cmp.port
    + Memory.of_option (fun (a, b) -> Memory.of_int a + Memory.of_nat b) s.cmp.want
    + Memory.of_nat s.cmp.window + 1

  (* A purely *semantic* fault for detection-time experiments: perturb the
     weight of one stored piece so that every 1-round structural check still
     passes and only the train-borne checks (agreement, C1, C2) can expose
     it.  Returns [None] when the node stores no piece. *)
  let corrupt_piece_weight st (s : state) =
    let l = s.label in
    let fix (pl : Partition.node_part_label) =
      if Array.length pl.own = 0 then None
      else begin
        let own = Array.copy pl.own in
        (* corrupt the highest-level stored piece: the worst case for the
           detection time, since the Ask cycle reaches high levels last *)
        let i = ref 0 in
        Array.iteri (fun k pc -> if pc.Pieces.level > own.(!i).Pieces.level then i := k) own;
        let i = !i in
        let w = own.(i).Pieces.weight in
        own.(i) <-
          {
            (own.(i)) with
            Pieces.weight = { w with Weight.base = w.Weight.base + 1 + Random.State.int st 7 };
          };
        Some { pl with own }
      end
    in
    let label =
      if Random.State.bool st then
        match fix l.top with
        | Some top -> Some { l with top }
        | None -> Option.map (fun bot -> { l with bot }) (fix l.bot)
      else
        match fix l.bot with
        | Some bot -> Some { l with bot }
        | None -> Option.map (fun top -> { l with top }) (fix l.top)
    in
    Option.map (fun label -> { s with label; cmp = cmp_init; alarm = false }) label

  (* Adversarial fault: corrupt the persistent label data (and possibly the
     transient verifier state).  The alarm latch is cleared so detection
     time is measured from scratch. *)
  let corrupt st g v (s : state) =
    let l = s.label in
    let mutate () =
      let pick = Random.State.int st 6 in
      match pick with
      | 0 ->
          (* corrupt a stored piece's weight or identity *)
          let fix (pl : Partition.node_part_label) =
            if Array.length pl.own = 0 then pl
            else begin
              let own = Array.copy pl.own in
              let i = Random.State.int st (Array.length own) in
              own.(i) <-
                (if Random.State.bool st then Pieces.random st
                 else
                   {
                     (own.(i)) with
                     Pieces.weight =
                       Weight.make
                         ~base:(1 + Random.State.int st 4)
                         ~in_tree:false ~id_u:0 ~id_v:1;
                   });
              { pl with own }
            end
          in
          if Random.State.bool st then { l with top = fix l.top } else { l with bot = fix l.bot }
      | 1 ->
          (* corrupt a string entry *)
          let strings =
            {
              l.strings with
              Labels.roots = Array.copy l.strings.Labels.roots;
              endp = Array.copy l.strings.Labels.endp;
            }
          in
          let j = Random.State.int st strings.Labels.len in
          if Random.State.bool st then
            strings.Labels.roots.(j) <-
              [| Labels.R1; Labels.R0; Labels.RStar |].(Random.State.int st 3)
          else
            strings.Labels.endp.(j) <-
              [| Labels.Up; Labels.Down; Labels.ENone; Labels.EStar |].(Random.State.int st 4);
          { l with strings }
      | 2 ->
          (* corrupt the component pointer *)
          let deg = Graph.degree g v in
          let comp_port =
            if Random.State.bool st then None else Some (Random.State.int st deg)
          in
          { l with comp_port }
      | 3 -> { l with sp_depth = Random.State.int st (2 * Graph.n g); sp_root = Random.State.int st (2 * Graph.n g) }
      | 4 -> { l with nk_sub = Random.State.int st (2 * Graph.n g) }
      | _ -> (
          (* flip the top/bottom classification of a real level of the node;
             values in the gap between the classes are semantically inert *)
          match cmp_levels l with
          | [] -> l
          | levels ->
              let j = List.nth levels (Random.State.int st (List.length levels)) in
              { l with delim = (if j >= l.delim then j + 1 else j) })
    in
    (* a fault that does not change the persistent label is no fault at all:
       retry until the label actually differs *)
    let rec pick_label tries =
      if tries = 0 then { l with sp_depth = l.sp_depth + 1 }
      else
        let l' = mutate () in
        if l' = l then pick_label (tries - 1) else l'
    in
    let label = pick_label 16 in
    {
      label;
      train_top = (if Random.State.bool st then Train.corrupt st s.train_top else s.train_top);
      train_bot = (if Random.State.bool st then Train.corrupt st s.train_bot else s.train_bot);
      cmp = cmp_init;
      alarm = false;
    }

  (* Targeted-field fault (the {!Fault.Bit_flip} severity): perturb exactly
     one scalar of the persistent label — one stored piece's weight, one
     string symbol, or one of the Example SP/NumK counters — leaving the
     trains and every other field untouched.  The surgical counterpart of
     [corrupt]'s multi-field scrambling. *)
  let corrupt_field st _g _v (s : state) =
    let l = s.label in
    let bump_piece (pl : Partition.node_part_label) =
      if Array.length pl.Partition.own = 0 then None
      else begin
        let own = Array.copy pl.Partition.own in
        let i = Random.State.int st (Array.length own) in
        let w = own.(i).Pieces.weight in
        own.(i) <-
          {
            (own.(i)) with
            Pieces.weight = { w with Weight.base = w.Weight.base + 1 + Random.State.int st 7 };
          };
        Some { pl with Partition.own = own }
      end
    in
    let label =
      match Random.State.int st 4 with
      | 0 -> (
          match bump_piece l.Marker.top with
          | Some top -> { l with Marker.top }
          | None -> { l with Marker.sp_depth = l.Marker.sp_depth + 1 })
      | 1 -> (
          match bump_piece l.Marker.bot with
          | Some bot -> { l with Marker.bot }
          | None -> { l with Marker.nk_sub = l.Marker.nk_sub + 1 })
      | 2 ->
          let strings = { l.Marker.strings with Labels.roots = Array.copy l.Marker.strings.Labels.roots } in
          let j = Random.State.int st strings.Labels.len in
          strings.Labels.roots.(j) <-
            (match strings.Labels.roots.(j) with
            | Labels.R1 -> Labels.R0
            | Labels.R0 -> Labels.RStar
            | Labels.RStar -> Labels.R1);
          { l with Marker.strings }
      | _ -> { l with Marker.sp_depth = l.Marker.sp_depth + 1 + Random.State.int st 7 }
    in
    { s with label; cmp = cmp_init; alarm = false }

  let field_names = [| "label"; "train_top"; "train_bot"; "cmp"; "alarm" |]

  (* compound fields are fingerprinted; the deep-sampling [hash_field]
     keeps single-piece label perturbations visible in the encoding *)
  let encode (s : state) =
    [|
      Protocol.hash_field s.label;
      Protocol.hash_field s.train_top;
      Protocol.hash_field s.train_bot;
      Protocol.hash_field s.cmp;
      Bool.to_int s.alarm;
    |]

  (* ---------------- packed codec ----------------

     Fixed per-instance word budget, computed once from the marker: the
     dynamic life of a register never changes the lengths of its arrays
     ([corrupt]/[corrupt_field] copy them entry-for-entry), so every
     reachable state of every node fits the instance-wide maxima below. *)

  let packed_own_slots =
    Array.fold_left
      (fun m (l : Marker.node_label) ->
        max m
          (max
             (Array.length l.top.Partition.own)
             (Array.length l.bot.Partition.own)))
      1 C.marker.labels

  let packed_max_len =
    Array.fold_left
      (fun m (l : Marker.node_label) -> max m l.strings.Labels.len)
      1 C.marker.labels

  let part_slice = Partition.packed_label_words ~own_slots:packed_own_slots

  (* 6 scalars + strings len + one word per level + the two part labels *)
  let label_slice = 7 + packed_max_len + (2 * part_slice)

  (* ask_level + ask option/piece + port + want option/pair + window *)
  let cmp_slice = 1 + (1 + Pieces.packed_words) + 1 + 3 + 1

  let words _g = label_slice + (2 * Train.packed_words) + cmp_slice + 1

  let field_offsets _g =
    [|
      0;
      label_slice;
      label_slice + Train.packed_words;
      label_slice + (2 * Train.packed_words);
      label_slice + (2 * Train.packed_words) + cmp_slice;
    |]

  let rtag = function Labels.R1 -> 0 | Labels.R0 -> 1 | Labels.RStar -> 2
  let rsym_of = [| Labels.R1; Labels.R0; Labels.RStar |]

  let etag = function
    | Labels.Up -> 0
    | Labels.Down -> 1
    | Labels.ENone -> 2
    | Labels.EStar -> 3

  let esym_of = [| Labels.Up; Labels.Down; Labels.ENone; Labels.EStar |]

  let pack_label (l : Marker.node_label) buf off =
    buf.(off) <- (match l.comp_port with None -> -1 | Some p -> p);
    buf.(off + 1) <- l.sp_root;
    buf.(off + 2) <- l.sp_depth;
    buf.(off + 3) <- l.nk_n;
    buf.(off + 4) <- l.nk_sub;
    buf.(off + 5) <- l.delim;
    let s = l.strings in
    buf.(off + 6) <- s.Labels.len;
    for j = 0 to packed_max_len - 1 do
      buf.(off + 7 + j) <-
        (if j < s.Labels.len then
           rtag s.Labels.roots.(j)
           lor (etag s.Labels.endp.(j) lsl 4)
           lor (Bool.to_int s.Labels.parents.(j) lsl 8)
           lor (s.Labels.cnt.(j) lsl 12)
         else 0)
    done;
    let po = off + 7 + packed_max_len in
    Partition.pack_label ~own_slots:packed_own_slots l.top buf po;
    Partition.pack_label ~own_slots:packed_own_slots l.bot buf (po + part_slice)

  let unpack_label buf off : Marker.node_label =
    let len = buf.(off + 6) in
    let strings =
      {
        Labels.len;
        roots = Array.init len (fun j -> rsym_of.(buf.(off + 7 + j) land 0xf));
        endp = Array.init len (fun j -> esym_of.((buf.(off + 7 + j) lsr 4) land 0xf));
        parents = Array.init len (fun j -> (buf.(off + 7 + j) lsr 8) land 0xf = 1);
        cnt = Array.init len (fun j -> (buf.(off + 7 + j) lsr 12) land 0xf);
      }
    in
    let po = off + 7 + packed_max_len in
    {
      comp_port = (if buf.(off) < 0 then None else Some buf.(off));
      sp_root = buf.(off + 1);
      sp_depth = buf.(off + 2);
      nk_n = buf.(off + 3);
      nk_sub = buf.(off + 4);
      delim = buf.(off + 5);
      strings;
      top = Partition.unpack_label buf po;
      bot = Partition.unpack_label buf (po + part_slice);
    }

  let pack_cmp (c : cmp_state) buf off =
    buf.(off) <- c.ask_level;
    (match c.ask with
    | None -> Array.fill buf (off + 1) (1 + Pieces.packed_words) 0
    | Some p ->
        buf.(off + 1) <- 1;
        Pieces.pack p buf (off + 2));
    let b = off + 2 + Pieces.packed_words in
    buf.(b) <- c.port;
    (match c.want with
    | None -> Array.fill buf (b + 1) 3 0
    | Some (srv, lvl) ->
        buf.(b + 1) <- 1;
        buf.(b + 2) <- srv;
        buf.(b + 3) <- lvl);
    buf.(b + 4) <- c.window

  let unpack_cmp buf off =
    let b = off + 2 + Pieces.packed_words in
    {
      ask_level = buf.(off);
      ask = (if buf.(off + 1) = 0 then None else Some (Pieces.unpack buf (off + 2)));
      port = buf.(b);
      want = (if buf.(b + 1) = 0 then None else Some (buf.(b + 2), buf.(b + 3)));
      window = buf.(b + 4);
    }

  let pack _g _v (s : state) buf off =
    pack_label s.label buf off;
    Train.pack s.train_top buf (off + label_slice);
    Train.pack s.train_bot buf (off + label_slice + Train.packed_words);
    pack_cmp s.cmp buf (off + label_slice + (2 * Train.packed_words));
    buf.(off + label_slice + (2 * Train.packed_words) + cmp_slice) <- Bool.to_int s.alarm

  let unpack _g _v buf off =
    {
      label = unpack_label buf off;
      train_top = Train.unpack buf (off + label_slice);
      train_bot = Train.unpack buf (off + label_slice + Train.packed_words);
      cmp = unpack_cmp buf (off + label_slice + (2 * Train.packed_words));
      alarm = buf.(off + label_slice + (2 * Train.packed_words) + cmp_slice) = 1;
    }
end
