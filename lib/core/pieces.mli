(** The pieces of information I(F) = ID(F) ∘ ω(F) (Section 6): a fragment's
    identity (root identity and level) with the weight of its minimum
    outgoing edge.  O(log n) bits each. *)

type t = {
  root_id : int;  (** identity of the fragment root *)
  level : int;
  weight : Ssmst_graph.Weight.t;  (** ω(F), under ω′ *)
}

val equal : t -> t -> bool

val bits : t -> int

val pp : Format.formatter -> t -> unit

val of_fragment :
  Ssmst_graph.Graph.t -> weight_fn:Ssmst_graph.Mst.weight_fn -> Fragment.t -> t option
(** The piece of a fragment ([None] for the whole tree, which has no
    candidate).  The recorded weight is the candidate's; on correct
    instances this is the minimum outgoing edge, which the verifier
    re-checks via C1/C2. *)

val random : Random.State.t -> t
(** An arbitrary piece, for fault injection. *)

val packed_words : int
(** Fixed packed image size: 6 words (identity, level, the four weight
    components). *)

val pack : t -> int array -> int -> unit
(** [pack p buf off] writes the [packed_words]-word image at [off]. *)

val unpack : int array -> int -> t
(** Exact inverse of [pack]. *)
