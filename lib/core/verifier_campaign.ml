open Ssmst_graph
open Ssmst_sim

(* The verifier instantiation of {!Campaign} (see the interface).  An
   [instance] caches the settled register snapshot so that a whole grid of
   (fault count x model) trials reuses one settling run; every trial then
   restores the snapshot into a fresh network, injects per the model and
   drives to the first alarm. *)

let family_names = [ "random"; "path"; "ring"; "grid"; "complete"; "star"; "hypertree" ]

let graph_of_family family st n =
  match family with
  | "random" -> Gen.random_connected st n
  | "path" -> Gen.path st n
  | "ring" -> Gen.ring st n
  | "grid" ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Gen.grid st side side
  | "complete" -> Gen.complete st n
  | "star" -> Gen.star st n
  | "hypertree" ->
      (* the §9 lower-bound family; n is rounded down to the nearest
         complete-binary-tree size 2^(h+1)-1 (h >= 2). *)
      let h = ref 2 in
      while (1 lsl (!h + 2)) - 1 <= n do incr h done;
      fst (Gen.hypertree_like st !h)
  | _ -> invalid_arg (Fmt.str "Verifier_campaign.graph_of_family: unknown family %S" family)

type instance = {
  graph : Graph.t;
  marker : Marker.t;
  settled : Verifier.state array;  (* registers after the settling run *)
}

let graph t = t.graph
let root t = Tree.root t.marker.Marker.tree

let prepare ?(domains = 1) ~family ~n ~seed () =
  let g = graph_of_family family (Gen.rng seed) n in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create ~domains g in
  Net.run net Scheduler.Sync ~rounds:(8 * Verifier.window_bound m.Marker.labels.(0));
  { graph = g; marker = m; settled = Array.copy (Net.states net) }

let run_trial ?(domains = 1) t ~model ~inject_seed ~max_rounds =
  (* one [campaign.trial] telemetry frame per trial, so [msst profile
     campaign] can apportion wall time between settling and the trials *)
  Ssmst_parallel.Probe.with_ "campaign.trial" @@ fun () ->
  let module C = struct
    let marker = t.marker
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create ~domains t.graph in
  (* metrics/trace-neutral rewind: [set_state] would funnel n writes
     through the engine's write path, inflating [register_writes],
     stamping [last_write] on every node and emitting spurious Init
     events — [restore] installs the snapshot as pure bookkeeping *)
  Net.restore net t.settled;
  let rng = Gen.rng inject_seed in
  Campaign.drive ~rng ~model ~max_rounds
    ~round:(fun () -> Net.round net Scheduler.Sync)
    ~any_alarm:(fun () -> Net.any_alarm net)
    ~inject:(fun st m -> Net.inject net st m)
    ~distance:(fun ~faults -> Net.detection_distance net ~faults)

(* One instance's full (fault count x model) trial block, in grid order.
   The shard is self-contained — family, requested size and instance seed
   fully determine the settling run and every trial — which is exactly
   what makes it safe to farm out to a {!Ssmst_parallel.Pool} worker: the
   settling [prepare] (the expensive part) runs inside the shard and so
   parallelizes with its trials, and the rows come back as marshallable
   plain data. *)
let run_instance ~fault_counts ~models ~max_rounds (family, requested_n, instance_seed) =
  let inst = prepare ~family ~n:requested_n ~seed:instance_seed () in
  (* grid/hypertree round the requested size: record what was actually
     built, so downstream c·f·⌈log n⌉ analysis reads the right n *)
  let actual_n = Graph.n inst.graph in
  let r = root inst in
  let trials = ref [] in
  List.iteri
    (fun fi f ->
      List.iteri
        (fun mi name ->
          let model = Campaign.resolve_model name ~n:actual_n ~root:r ~count:f in
          let inject_seed = (instance_seed * 31) + (97 * fi) + mi + 1 in
          let outcome = run_trial inst ~model ~inject_seed ~max_rounds in
          let spec =
            {
              Campaign.family;
              n = actual_n;
              requested_n;
              faults = f;
              model = name;
              seed = instance_seed;
            }
          in
          trials := { Campaign.spec; outcome } :: !trials)
        models)
    fault_counts;
  List.rev !trials

let sweep ?(jobs = 1) ~families ~sizes ~fault_counts ~models ~seeds ~seed ~max_rounds () =
  (* the instance grid in deterministic (family, size, seed index) order;
     each instance is one pool shard, and reassembly in submission order
     makes the trial list — and every CSV/JSONL byte derived from it —
     identical for every [jobs] *)
  let instances =
    List.concat_map
      (fun family ->
        List.concat_map
          (fun n -> List.init seeds (fun i -> (family, n, seed + (7919 * i))))
          sizes)
      families
  in
  Ssmst_parallel.Pool.map ~jobs (run_instance ~fault_counts ~models ~max_rounds) instances
  |> List.concat
