(* The train (Section 7.1): per part, a pipelined convergecast brings the
   pieces stored along the part's DFS order to the part root, and a gated
   pipelined broadcast shows every piece to every member, cyclically.

   Registers per node (per train), all O(log n) bits:

   - [up]: the convergecast car, carrying (global piece index, piece);
   - [want_idx]: the index this node currently seeks from its children (the
     "wake-up" signal of the Train Convergecast Protocol);
   - [bc]: the broadcast buffer (index, piece, membership flag);
   - [cursor] (part root only): the next index to broadcast;
   - [seen]/[complete]/[last_lvl]: the Section 8 cycle-set bookkeeping;
   - [alarm]: raised when a completed cycle misses a required level, or when
     a Top train delivers levels out of order.

   Within one cycle a node's index range [lo, hi) is visited in plain
   increasing order (the cyclic order wraps only at the root), so all
   comparisons are linear.  The broadcast is gated: a node replaces its [bc]
   only after every part-child has copied it, so no member ever skips a
   piece; the convergecast prefetches one index ahead of the parent's
   progress, so the root consumes one piece per O(1) rounds after an O(D)
   warm-up — a cycle takes O(k + D) = O(log n) ideal time (Theorem 7.1). *)

type car = { idx : int; piece : Pieces.t; flag : bool; tag : bool }

type state = {
  up : car option;
  want_idx : int;  (* -1 when idle *)
  bc : car option;
  cursor : int;
  seen : int;  (* bitmask of member-piece levels observed this cycle *)
  complete : bool;  (* all indices observed consecutively this cycle *)
  last_lvl : int;  (* last member level (Top ordering check); -1 at cycle start *)
  alarm : bool;
}

let init =
  {
    up = None;
    want_idx = -1;
    bc = None;
    cursor = 0;
    seen = 0;
    complete = false;
    last_lvl = -1;
    alarm = false;
  }

let bits (s : state) =
  let car_bits = function
    | None -> 1
    | Some c -> 2 + Ssmst_sim.Memory.of_nat c.idx + Pieces.bits c.piece + 1
  in
  car_bits s.up + car_bits s.bc
  + Ssmst_sim.Memory.of_int s.want_idx
  + Ssmst_sim.Memory.of_nat s.cursor
  + Ssmst_sim.Memory.of_nat s.seen + 3
  + Ssmst_sim.Memory.of_int s.last_lvl

type peer = { lbl : Partition.node_part_label; st : state }

let lo (l : Partition.node_part_label) = min (2 * l.dfs_rank) l.k
let hi (l : Partition.node_part_label) = min (2 * (l.dfs_rank + l.subtree)) l.k

let own_piece (l : Partition.node_part_label) i =
  let base = 2 * l.dfs_rank in
  if i >= base && i - base < Array.length l.own then Some l.own.(i - base) else None

(* One activation.  [flag_rule piece ~parent_flag] computes the membership
   flag when loading the piece into [bc]; [member piece ~flag] decides
   whether the broadcast piece belongs to this node's own fragment at the
   piece's level; [required] is the level bitmask the cycle-set check must
   cover; [ordered] enables the strictly-increasing-levels check (Top
   trains); [hold] delays the broadcast while a neighbour's request is being
   served (Section 7.2, asynchronous mode). *)
let step ~(lbl : Partition.node_part_label) ~(parent : peer option) ~(children : peer list)
    ~flag_rule ~member ~required ~ordered ~hold (s : state) =
  let k = lbl.k in
  if k = 0 then
    (* nothing to carry: alarm iff some level is required anyway *)
    { init with alarm = s.alarm || required <> 0 }
  else begin
    let is_root = lbl.dfs_rank = 0 in
    let lo_v = lo lbl and hi_v = hi lbl in
    let in_range i = i >= lo_v && i < hi_v in
    let cursor = ((s.cursor mod k) + k) mod k in
    (* ---- convergecast: compute the demanded index ---- *)
    let demand =
      if is_root then Some cursor
      else
        match parent with
        | None -> None
        | Some p -> (
            match p.st.up with
            | Some c when in_range c.idx -> if in_range (c.idx + 1) then Some (c.idx + 1) else None
            | Some _ | None ->
                let w = p.st.want_idx in
                if w >= 0 && in_range w then Some w else None)
    in
    let up =
      match demand with
      | None -> None
      | Some e -> (
          match s.up with
          | Some c when c.idx = e -> Some c
          | _ -> (
              match own_piece lbl e with
              | Some pc -> Some { idx = e; piece = pc; flag = false; tag = false }
              | None -> (
                  match
                    List.find_opt (fun ch -> e >= lo ch.lbl && e < hi ch.lbl) children
                  with
                  | Some ch -> (
                      match ch.st.up with
                      | Some c when c.idx = e -> Some { c with flag = false }
                      | _ -> None)
                  | None -> None)))
    in
    let want_idx = match demand with Some e -> e | None -> -1 in
    (* ---- broadcast ---- *)
    (* the parity tag distinguishes successive deliveries of the same index
       (k = 1 parts and post-fault recovery) *)
    let child_acked (target : car) =
      List.for_all
        (fun ch ->
          match ch.st.bc with
          | Some c -> c.idx = target.idx && c.tag = target.tag
          | None -> false)
        children
    in
    let incoming =
      if is_root then
        (* consume the staged car when every child copied the current one *)
        match s.bc with
        | Some c when not (child_acked c) -> None
        | _ -> (
            if hold then None
            else
              let tag = match s.bc with Some c -> not c.tag | None -> false in
              match up with
              | Some u when u.idx = cursor ->
                  Some { u with flag = flag_rule u.piece ~parent_flag:false; tag }
              | _ -> None)
      else
        match parent with
        | None -> None
        | Some p -> (
            match p.st.bc with
            | Some pc
              when (match s.bc with
                   | Some c -> c.idx <> pc.idx || c.tag <> pc.tag
                   | None -> true)
                   && (match s.bc with Some c -> child_acked c | None -> true)
                   && not hold ->
                Some { pc with flag = flag_rule pc.piece ~parent_flag:pc.flag }
            | _ -> None)
    in
    match incoming with
    | None -> { s with up; want_idx; cursor; alarm = s.alarm }
    | Some car ->
        (* cycle bookkeeping on each newly observed index *)
        let wrapped = car.idx = 0 in
        let consecutive =
          match s.bc with
          | Some old -> car.idx = old.idx + 1 || (wrapped && old.idx = k - 1)
          | None -> false
        in
        let alarm_cycle =
          (* a completed cycle must have covered all required levels *)
          wrapped && s.complete
          && (match s.bc with Some old -> old.idx = k - 1 | None -> false)
          && s.seen land required <> required
        in
        let is_member = member car.piece ~flag:car.flag in
        let alarm_order =
          ordered && is_member && (not wrapped) && s.last_lvl >= 0
          && car.piece.Pieces.level <= s.last_lvl
        in
        let seen0 = if wrapped then 0 else s.seen in
        let last0 = if wrapped then -1 else s.last_lvl in
        let seen =
          if is_member then seen0 lor (1 lsl min car.piece.Pieces.level 60) else seen0
        in
        let last_lvl = if is_member then car.piece.Pieces.level else last0 in
        let complete = if wrapped then consecutive else s.complete && consecutive in
        let cursor = if is_root then (cursor + 1) mod k else cursor in
        let up = if is_root then None else up in
        {
          up;
          want_idx;
          bc = Some car;
          cursor;
          seen;
          complete;
          last_lvl;
          alarm = s.alarm || alarm_cycle || alarm_order;
        }
  end

(* Arbitrary corruption for fault injection. *)
let corrupt st (s : state) =
  let rnd_car () =
    if Random.State.bool st then None
    else
      Some
        {
          idx = Random.State.int st 64;
          piece = Pieces.random st;
          flag = Random.State.bool st;
          tag = Random.State.bool st;
        }
  in
  {
    s with
    up = rnd_car ();
    bc = rnd_car ();
    cursor = Random.State.int st 64;
    want_idx = Random.State.int st 64 - 1;
    seen = Random.State.int st 4096;
    complete = Random.State.bool st;
    last_lvl = Random.State.int st 12 - 1;
  }

(* ---------------- packed codec (Network.Flat) ---------------- *)

(* presence + idx + piece + flag + tag *)
let car_words = 4 + Pieces.packed_words

let pack_car c buf off =
  match c with
  | None -> Array.fill buf off car_words 0
  | Some c ->
      buf.(off) <- 1;
      buf.(off + 1) <- c.idx;
      Pieces.pack c.piece buf (off + 2);
      buf.(off + 2 + Pieces.packed_words) <- Bool.to_int c.flag;
      buf.(off + 3 + Pieces.packed_words) <- Bool.to_int c.tag

let unpack_car buf off =
  if buf.(off) = 0 then None
  else
    Some
      {
        idx = buf.(off + 1);
        piece = Pieces.unpack buf (off + 2);
        flag = buf.(off + 2 + Pieces.packed_words) = 1;
        tag = buf.(off + 3 + Pieces.packed_words) = 1;
      }

let packed_words = (2 * car_words) + 6

let pack (s : state) buf off =
  pack_car s.up buf off;
  buf.(off + car_words) <- s.want_idx;
  pack_car s.bc buf (off + car_words + 1);
  let b = off + (2 * car_words) + 1 in
  buf.(b) <- s.cursor;
  buf.(b + 1) <- s.seen;
  buf.(b + 2) <- Bool.to_int s.complete;
  buf.(b + 3) <- s.last_lvl;
  buf.(b + 4) <- Bool.to_int s.alarm

let unpack buf off =
  let b = off + (2 * car_words) + 1 in
  {
    up = unpack_car buf off;
    want_idx = buf.(off + car_words);
    bc = unpack_car buf (off + car_words + 1);
    cursor = buf.(b);
    seen = buf.(b + 1);
    complete = buf.(b + 2) = 1;
    last_lvl = buf.(b + 3);
    alarm = buf.(b + 4) = 1;
  }
