open Ssmst_graph
open Ssmst_sim

(* The enhanced Awerbuch-Varghese resynchronizer (Section 10, Theorems 10.1
   and 10.3): compose a non-stabilizing construction algorithm with a
   self-stabilizing checker to obtain a self-stabilizing algorithm whose
   time is O(T_construct + n) and whose detection time and distance are
   those of the checker.

   The runtime alternates two regimes:

   - CONSTRUCT: a self-stabilizing leader election / BFS spanning tree
     ([1, 28]-style, see {!Ssmst_protocols.Ss_bfs}) provides the reset
     backbone and the size/diameter bounds the original transformer assumed
     known; SYNC_MST then recomputes the MST and the marker re-assigns all
     labels.  Charged at its measured ideal-time cost, O(n).
   - VERIFY: the Section 7-8 verifier runs forever as the checker.  Any
     alarm at any node triggers a reset wave (O(n)) back to CONSTRUCT.

   Faults that corrupt the output after stabilization are detected within
   the verifier's detection time — O(log² n) synchronous rounds or
   O(Δ log³ n) asynchronous ones — at distance O(f log n) from the faults,
   and repaired by one reconstruction.

   The observatory rides along when a {!observatory} config is supplied:
   each construct-verify-repair cycle becomes an [Epoch] span (with
   SYNC_MST's fragment-level spans nested under its [Construct] phase and
   a [Detect] span covering each injection-to-alarm window), and the live
   verification network carries the online invariant monitors through the
   engine's round hook.  Monitor verdicts latch across epochs: a violation
   in any epoch survives the reconstruction that discards the network it
   was observed on. *)

type event =
  | Constructed of int  (* rounds charged for election + SYNC_MST + marker *)
  | Detected of { rounds : int; distance : int option }  (* verification-phase detection *)
  | Quiescent of int  (* verification rounds with no alarm *)

(* Cheap read-only accessors into the live verification network, re-bound at
   every [install]: the observatory's report drivers read per-node register
   sizes and last-write rounds without the network's module escaping. *)
type probe = {
  net_metrics : Metrics.t;
  net_last_write : int -> int;
  net_bits : int -> int;
  net_rounds : unit -> int;
}

type observatory = {
  span : Ssmst_obs.Span.t option;
  monitor_trace : Trace.t option;  (* violations land here *)
  monitors : bool;
  compact_c : int;
  distance_c : int;
}

let observatory ?span ?monitor_trace ?(monitors = true)
    ?(compact_c = Ssmst_obs.Monitor.default_compact_c)
    ?(distance_c = Ssmst_obs.Monitor.default_distance_c) () =
  { span; monitor_trace; monitors; compact_c; distance_c }

let no_observatory =
  { span = None; monitor_trace = None; monitors = false; compact_c = 0; distance_c = 0 }

type t = {
  graph : Graph.t;
  mode : Verifier.mode;
  daemon : Scheduler.t;
  domains : int;  (* sync-round worker domains on the verification network *)
  obs : observatory;
  mutable marker : Marker.t;
  mutable total_rounds : int;
  mutable reconstructions : int;
  mutable history : event list;
  mutable peak_bits : int;
  (* the live verification network, existentially packed *)
  mutable run_verify : int -> [ `Alarm of int * int option | `Quiet ];
  mutable inject : Random.State.t -> Fault.t -> int list;
  mutable monitor : Ssmst_obs.Monitor.t option;  (* on the live network *)
  mutable monitor_verdicts : (string * Ssmst_obs.Monitor.verdict) list;  (* latched *)
  mutable probe : probe option;
}

(* Cost of one construction epoch: leader election + bounds (O(n)), then
   SYNC_MST + marker (O(n), measured). *)
let construction_cost (g : Graph.t) (m : Marker.t) =
  (4 * Graph.n g) + m.construction_rounds

(* ---------------- observatory plumbing ---------------- *)

let span_charge (t : t) ?rounds ?peak_bits () =
  match t.obs.span with
  | Some sp -> Ssmst_obs.Span.charge sp ?rounds ?peak_bits ()
  | None -> ()

(* One construction, under a [Construct] span when profiled: SYNC_MST and
   the marker charge their own timetable rounds; the election's O(n) and
   the label high-water are settled here. *)
let construct_marker_with span (g : Graph.t) =
  (* the wall-clock twin of the [Construct] span: charged whether or not
     the logical observatory is attached *)
  Ssmst_parallel.Probe.with_ "transformer.construct" @@ fun () ->
  match span with
  | None -> Marker.run g
  | Some sp ->
      Ssmst_obs.Span.with_ sp Ssmst_obs.Span.Construct (fun () ->
          let m = Marker.run ~span:sp g in
          Ssmst_obs.Span.charge sp ~rounds:(4 * Graph.n g) ~peak_bits:m.Marker.label_bits ();
          m)

let construct_marker (t : t) = construct_marker_with t.obs.span t.graph

(* Latch [fresh] monitor verdicts over the accumulated ones: the first
   violation per monitor wins, across epochs. *)
let merge_verdicts latched fresh =
  List.map2
    (fun (name, old) (_, now) ->
      (name, match old with Ssmst_obs.Monitor.Violation _ -> old | Ok -> now))
    latched fresh

let flush_monitor (t : t) =
  match t.monitor with
  | None -> ()
  | Some mon ->
      t.monitor_verdicts <- merge_verdicts t.monitor_verdicts (Ssmst_obs.Monitor.results mon);
      t.monitor <- None

let monitor_results (t : t) =
  match t.monitor with
  | None -> t.monitor_verdicts
  | Some mon -> merge_verdicts t.monitor_verdicts (Ssmst_obs.Monitor.results mon)

let monitors_ok (t : t) =
  List.for_all (fun (_, v) -> Ssmst_obs.Monitor.verdict_ok v) (monitor_results t)

(* ---------------- the regimes ---------------- *)

let install (t : t) =
  let m = t.marker in
  let module C = struct
    let marker = m
    let mode = t.mode
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create ~domains:t.domains t.graph in
  t.probe <-
    Some
      {
        net_metrics = Net.metrics net;
        net_last_write = Net.last_write_round net;
        net_bits = (fun v -> P.bits (Net.state net v));
        net_rounds = (fun () -> Net.rounds net);
      };
  flush_monitor t;
  if t.obs.monitors then begin
    let view =
      {
        Ssmst_obs.Monitor.graph = t.graph;
        parent = Tree.parent m.Marker.tree;
        bits = (fun v -> P.bits (Net.state net v));
        alarm = (fun v -> P.alarm (Net.state net v));
        peak_bits = (fun () -> Net.peak_bits net);
        any_alarm = (fun () -> Net.any_alarm net);
        change_counter =
          (fun () ->
            let mm = Net.metrics net in
            mm.Metrics.register_writes + mm.Metrics.faults_injected);
      }
    in
    let mon =
      Ssmst_obs.Monitor.create ?trace:t.obs.monitor_trace ~metrics:(Net.metrics net)
        ~compact_c:t.obs.compact_c ~distance_c:t.obs.distance_c view
    in
    t.monitor <- Some mon;
    Net.set_round_hook net (fun () -> Ssmst_obs.Monitor.check mon ~round:(Net.rounds net))
  end;
  let run_with_faults faults budget =
    let executed, reached = Net.run_until net t.daemon ~max_rounds:budget Net.any_alarm in
    t.peak_bits <- max t.peak_bits (Net.peak_bits net);
    if reached then `Alarm (executed, Net.detection_distance net ~faults) else `Quiet
  in
  t.run_verify <- run_with_faults [];
  t.inject <-
    (fun st model ->
      let faults = Net.inject net st model in
      (match t.monitor with
      | Some mon -> Ssmst_obs.Monitor.note_injection mon ~round:(Net.rounds net) ~faults
      | None -> ());
      t.run_verify <- run_with_faults faults;
      faults)

(* Start from an arbitrary initial configuration: the transformer's first
   act is a reconstruction. *)
let create ?(mode = Verifier.Passive) ?(daemon = Scheduler.Sync) ?(domains = 1)
    ?(obs = no_observatory) g =
  (match obs.span with
  | Some sp -> Ssmst_obs.Span.open_ sp (Ssmst_obs.Span.Epoch 0)
  | None -> ());
  let marker = construct_marker_with obs.span g in
  let t =
    {
      graph = g;
      mode;
      daemon;
      domains = max 1 domains;
      obs;
      marker;
      total_rounds = 0;
      reconstructions = 0;
      history = [];
      peak_bits = 0;
      run_verify = (fun _ -> `Quiet);
      inject = (fun _ _ -> []);
      monitor = None;
      monitor_verdicts =
        List.map (fun n -> (n, Ssmst_obs.Monitor.Ok)) Ssmst_obs.Monitor.names;
      probe = None;
    }
  in
  let cost = construction_cost g t.marker in
  t.total_rounds <- cost;
  t.reconstructions <- 1;
  t.history <- [ Constructed cost ];
  install t;
  t

let reconstruct (t : t) =
  (* one [transformer.epoch] telemetry frame per construct-verify-repair
     cycle, the wall-clock twin of the [Epoch] span below *)
  Ssmst_parallel.Probe.with_ "transformer.epoch" @@ fun () ->
  (match t.monitor with
  | Some mon -> Ssmst_obs.Monitor.note_reset mon ~round:t.total_rounds
  | None -> ());
  (* one construct-verify-repair cycle per [Epoch] span *)
  (match t.obs.span with
  | Some sp ->
      Ssmst_obs.Span.close sp;
      Ssmst_obs.Span.open_ sp (Ssmst_obs.Span.Epoch t.reconstructions)
  | None -> ());
  t.marker <- construct_marker t;
  let cost = construction_cost t.graph t.marker in
  t.total_rounds <- t.total_rounds + cost;
  t.reconstructions <- t.reconstructions + 1;
  t.history <- Constructed cost :: t.history;
  install t

(* Run the verification regime for [rounds]; on detection, reconstruct. *)
let advance (t : t) ~rounds =
  Ssmst_parallel.Probe.with_ "transformer.advance" @@ fun () ->
  match t.run_verify rounds with
  | `Quiet ->
      t.total_rounds <- t.total_rounds + rounds;
      span_charge t ~rounds ();
      t.history <- Quiescent rounds :: t.history
  | `Alarm (dt, dist) ->
      (match t.obs.span with
      | Some sp ->
          Ssmst_obs.Span.with_ sp Ssmst_obs.Span.Detect (fun () ->
              Ssmst_obs.Span.charge sp ~rounds:dt ())
      | None -> ());
      span_charge t ~rounds:(2 * Graph.n t.graph) ();  (* the reset wave *)
      t.total_rounds <- t.total_rounds + dt + (2 * Graph.n t.graph);
      t.history <- Detected { rounds = dt; distance = dist } :: t.history;
      reconstruct t

(* Apply a typed fault model to the running verification network: the
   epoch re-injection path shares the campaign subsystem's models. *)
let inject_model (t : t) st model = t.inject st model

(* Inject [count] uniformly placed faults (the historical model). *)
let inject_faults (t : t) st ~count = inject_model t st (Fault.uniform ~count)

(* The current output. *)
let tree (t : t) = t.marker.tree

(* Total stabilization time from an arbitrary configuration: the first
   reconstruction (Theorem 10.2: O(n)). *)
let stabilization_rounds (t : t) =
  List.fold_left
    (fun acc e -> match e with Constructed c -> acc + c | Detected _ | Quiescent _ -> acc)
    0
    (List.filteri (fun i _ -> i = List.length t.history - 1) t.history)

let memory_bits (t : t) = max t.peak_bits t.marker.label_bits
