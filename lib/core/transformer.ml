open Ssmst_graph
open Ssmst_sim

(* The enhanced Awerbuch-Varghese resynchronizer (Section 10, Theorems 10.1
   and 10.3): compose a non-stabilizing construction algorithm with a
   self-stabilizing checker to obtain a self-stabilizing algorithm whose
   time is O(T_construct + n) and whose detection time and distance are
   those of the checker.

   The runtime alternates two regimes:

   - CONSTRUCT: a self-stabilizing leader election / BFS spanning tree
     ([1, 28]-style, see {!Ssmst_protocols.Ss_bfs}) provides the reset
     backbone and the size/diameter bounds the original transformer assumed
     known; SYNC_MST then recomputes the MST and the marker re-assigns all
     labels.  Charged at its measured ideal-time cost, O(n).
   - VERIFY: the Section 7-8 verifier runs forever as the checker.  Any
     alarm at any node triggers a reset wave (O(n)) back to CONSTRUCT.

   Faults that corrupt the output after stabilization are detected within
   the verifier's detection time — O(log² n) synchronous rounds or
   O(Δ log³ n) asynchronous ones — at distance O(f log n) from the faults,
   and repaired by one reconstruction. *)

type event =
  | Constructed of int  (* rounds charged for election + SYNC_MST + marker *)
  | Detected of { rounds : int; distance : int option }  (* verification-phase detection *)
  | Quiescent of int  (* verification rounds with no alarm *)

type t = {
  graph : Graph.t;
  mode : Verifier.mode;
  daemon : Scheduler.t;
  mutable marker : Marker.t;
  mutable total_rounds : int;
  mutable reconstructions : int;
  mutable history : event list;
  mutable peak_bits : int;
  (* the live verification network, existentially packed *)
  mutable run_verify : int -> [ `Alarm of int * int option | `Quiet ];
  mutable inject : Random.State.t -> Fault.t -> int list;
}

(* Cost of one construction epoch: leader election + bounds (O(n)), then
   SYNC_MST + marker (O(n), measured). *)
let construction_cost (g : Graph.t) (m : Marker.t) =
  (4 * Graph.n g) + m.construction_rounds

let install (t : t) =
  let m = t.marker in
  let module C = struct
    let marker = m
    let mode = t.mode
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create t.graph in
  let run_with_faults faults budget =
    let executed, reached = Net.run_until net t.daemon ~max_rounds:budget Net.any_alarm in
    t.peak_bits <- max t.peak_bits (Net.peak_bits net);
    if reached then `Alarm (executed, Net.detection_distance net ~faults) else `Quiet
  in
  t.run_verify <- run_with_faults [];
  t.inject <-
    (fun st model ->
      let faults = Net.inject net st model in
      t.run_verify <- run_with_faults faults;
      faults)

(* Start from an arbitrary initial configuration: the transformer's first
   act is a reconstruction. *)
let create ?(mode = Verifier.Passive) ?(daemon = Scheduler.Sync) (g : Graph.t) =
  let marker = Marker.run g in
  let t =
    {
      graph = g;
      mode;
      daemon;
      marker;
      total_rounds = 0;
      reconstructions = 0;
      history = [];
      peak_bits = 0;
      run_verify = (fun _ -> `Quiet);
      inject = (fun _ _ -> []);
    }
  in
  let cost = construction_cost g marker in
  t.total_rounds <- cost;
  t.reconstructions <- 1;
  t.history <- [ Constructed cost ];
  install t;
  t

let reconstruct (t : t) =
  t.marker <- Marker.run t.graph;
  let cost = construction_cost t.graph t.marker in
  t.total_rounds <- t.total_rounds + cost;
  t.reconstructions <- t.reconstructions + 1;
  t.history <- Constructed cost :: t.history;
  install t

(* Run the verification regime for [rounds]; on detection, reconstruct. *)
let advance (t : t) ~rounds =
  match t.run_verify rounds with
  | `Quiet ->
      t.total_rounds <- t.total_rounds + rounds;
      t.history <- Quiescent rounds :: t.history
  | `Alarm (dt, dist) ->
      t.total_rounds <- t.total_rounds + dt + (2 * Graph.n t.graph);
      t.history <- Detected { rounds = dt; distance = dist } :: t.history;
      reconstruct t

(* Apply a typed fault model to the running verification network: the
   epoch re-injection path shares the campaign subsystem's models. *)
let inject_model (t : t) st model = t.inject st model

(* Inject [count] uniformly placed faults (the historical model). *)
let inject_faults (t : t) st ~count = inject_model t st (Fault.uniform ~count)

(* The current output. *)
let tree (t : t) = t.marker.tree

(* Total stabilization time from an arbitrary configuration: the first
   reconstruction (Theorem 10.2: O(n)). *)
let stabilization_rounds (t : t) =
  List.fold_left
    (fun acc e -> match e with Constructed c -> acc + c | Detected _ | Quiescent _ -> acc)
    0
    (List.filteri (fun i _ -> i = List.length t.history - 1) t.history)

let memory_bits (t : t) = max t.peak_bits t.marker.label_bits
