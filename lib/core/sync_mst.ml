open Ssmst_graph
open Ssmst_protocols

(* SYNC_MST (Section 4): the synchronous MST construction with O(log n) bits
   per node and O(n) ideal time.

   The engine follows the paper's exact phase timetable.  Phase i starts at
   round 11*2^i; Procedure Count_Size (a Wave&Echo with time-to-live
   2^{i+1}-1) decides activity: a root is active iff its count completed and
   |F| <= 2^{i+1}-1 (Definition 4.1).  At round (11+4)*2^i active fragments
   run Find_Min_Out_Edge (all edges tested simultaneously, fragment
   membership decided by comparing root-ID estimates); at round (11+8)*2^i
   active fragments re-orient towards the candidate endpoint and perform the
   pivot handshake; the hooking lands exactly at round (11+11)*2^i - 1.

   Intra-phase waves are executed as tree traversals over the per-node
   bounded state (parent pointer, root-ID estimate, level) and charged the
   rounds the timetable allocates, which is what the complexity experiments
   measure.  The per-node state never exceeds the O(log n)-bit record the
   paper specifies; [peak_bits] reports its actual size. *)

type result = {
  tree : Tree.t;
  hierarchy : Fragment.hierarchy;
  rounds : int;  (* ideal time per the paper's timetable *)
  phases : int;  (* number of phases executed (= final level) *)
  peak_bits : int;  (* max per-node state size in bits *)
}

(* Per-node bounded state: exactly the variables Section 4.2 lists. *)
type node_state = {
  mutable parent : int;  (* node index of the parent; -1 at a root *)
  mutable root_id : int;  (* estimate of the fragment root's identity *)
  mutable level : int;  (* estimate (lower bound) of the fragment level *)
}

let state_bits g s =
  Ssmst_sim.Memory.of_int s.parent
  + Ssmst_sim.Memory.of_int s.root_id
  + Ssmst_sim.Memory.of_int s.level
  + Ssmst_sim.Memory.of_int (Graph.max_degree g)  (* candidate-child pointer *)
  + 4 (* stage flags: counting / searching / wave / echoed *)

let run ?span (g : Graph.t) =
  (* observatory attribution: one [Fragment_level] span per phase with
     [Wave_sweep] sub-spans for Count_Size and Find_Min_Out_Edge, charged
     the rounds the timetable allocates and the nodes the waves visit *)
  let span_open tag = match span with Some sp -> Ssmst_obs.Span.open_ sp tag | None -> () in
  let span_close () = match span with Some sp -> Ssmst_obs.Span.close sp | None -> () in
  let span_charge ?rounds ?activations ?peak_bits () =
    match span with
    | Some sp -> Ssmst_obs.Span.charge sp ?rounds ?activations ?peak_bits ()
    | None -> ()
  in
  let n = Graph.n g in
  let w = Graph.plain_weight_fn g in
  let states = Array.init n (fun v -> { parent = -1; root_id = Graph.id g v; level = 0 }) in
  let peak_bits = ref 0 in
  let note_memory () =
    Array.iter (fun s -> peak_bits := max !peak_bits (state_bits g s)) states
  in
  let children_of v =
    let acc = ref [] in
    for u = n - 1 downto 0 do
      if states.(u).parent = v then acc := u :: !acc
    done;
    !acc
  in
  (* membership via the forest, equivalent at search time to comparing
     root-ID estimates (see Lemma 4.1's discussion) *)
  let root_of v =
    let rec go u = if states.(u).parent < 0 then u else go states.(u).parent in
    go v
  in
  let records = ref [] in
  let done_ = ref false in
  let phase = ref 0 in
  let final_round = ref 0 in
  note_memory ();
  while not !done_ do
    let i = !phase in
    let ttl = (1 lsl (i + 1)) - 1 in
    let roots = ref [] in
    for v = n - 1 downto 0 do
      if states.(v).parent < 0 then roots := v :: !roots
    done;
    span_open (Ssmst_obs.Span.Fragment_level i);
    (* --- Count_Size at round 11*2^i --- *)
    span_open Ssmst_obs.Span.Wave_sweep;
    let wave_work = ref 0 in
    let active = ref [] in
    List.iter
      (fun r ->
        let cnt = Wave_echo.count ~children:children_of ~ttl r in
        wave_work := !wave_work + List.length cnt.visited;
        if (not cnt.truncated) && cnt.value <= ttl then begin
          (* active: refresh ID estimates and level through the wave *)
          List.iter
            (fun v ->
              states.(v).root_id <- Graph.id g r;
              states.(v).level <- i)
            cnt.visited;
          active := (r, cnt.visited) :: !active
        end
        else states.(r).level <- i + 1;
        (* spanning detection at the echo: complete count covering all *)
        if (not cnt.truncated) && cnt.value = n then begin
          done_ := true;
          final_round := ((11 + 4) * (1 lsl i));
          records := (i, r, cnt.visited, None) :: !records
        end)
      !roots;
    span_charge ~rounds:(4 * (1 lsl i)) ~activations:!wave_work ();
    span_close ();
    if not !done_ then begin
      (* --- Find_Min_Out_Edge at round (11+4)*2^i --- *)
      span_open Ssmst_obs.Span.Wave_sweep;
      let search_work = ref 0 in
      let plans = ref [] in
      List.iter
        (fun (r, members) ->
          let candidate v =
            let best = ref None in
            Graph.iter_ports g v (fun _ u ->
                if root_of u <> r then
                  let cand = w v u in
                  match !best with
                  | Some (_, _, bw) when Weight.(bw <= cand) -> ()
                  | _ -> best := Some (v, u, cand));
            !best
          in
          let cmp (_, _, a) (_, _, b) = Weight.compare a b in
          let search = Wave_echo.minimum ~children:children_of ~candidate ~compare:cmp r in
          search_work := !search_work + List.length search.visited;
          match search.value with
          | None ->
              (* no outgoing edge: the fragment spans the graph; it will be
                 recorded by the count of a later phase — cannot happen for
                 an active fragment that passed the spanning test above *)
              ()
          | Some (wv, x, _) ->
              records := (i, r, members, Some (wv, x)) :: !records;
              plans := (r, wv, x) :: !plans)
        !active;
      span_charge ~rounds:(4 * (1 lsl i)) ~activations:!search_work ();
      span_close ();
      (* --- merging at round (11+8)*2^i: re-root at w, then hook --- *)
      let is_planned_pivot x wv =
        (* does x's fragment plan the same edge from the other side? *)
        List.exists (fun (_, w', x') -> w' = x && x' = wv) !plans
      in
      let hooks = ref [] in
      List.iter
        (fun (_, wv, x) ->
          (* re-root the fragment at wv: flip pointers on the root path *)
          let rec path v acc = if states.(v).parent < 0 then v :: acc else path states.(v).parent (v :: acc) in
          let chain = path wv [] in
          (* chain = [root; ...; wv]; flip so each points at its successor *)
          let rec flip = function
            | a :: (b :: _ as rest) ->
                states.(a).parent <- b;
                flip rest
            | [ last ] -> states.(last).parent <- -1
            | [] -> ()
          in
          flip chain;
          let same_edge_back = is_planned_pivot x wv in
          let keep_root = same_edge_back && Graph.id g x < Graph.id g wv in
          if not keep_root then hooks := (wv, x) :: !hooks)
        !plans;
      List.iter (fun (wv, x) -> states.(wv).parent <- x) !hooks;
      note_memory ();
      span_charge ~rounds:(3 * (1 lsl i)) ~peak_bits:!peak_bits ();
      final_round := 11 * (1 lsl (i + 1));
      incr phase;
      if !phase > 2 * Ssmst_sim.Memory.of_nat n + 4 then
        raise (Graph.Malformed "SYNC_MST: did not converge")
    end;
    span_close () (* the phase's Fragment_level span *)
  done;
  note_memory ();
  (* the timetable starts phase 0 at round 11; the per-phase charges sum to
     [final_round - 11], so settle the warm-up here *)
  span_charge ~rounds:11 ~peak_bits:!peak_bits ();
  let parent = Array.map (fun s -> s.parent) states in
  let tree = Tree.of_parents g parent in
  let records =
    List.map (fun (lvl, r, members, cand) -> (lvl, r, members, cand)) !records
  in
  let hierarchy = Fragment.build tree records in
  { tree; hierarchy; rounds = !final_round; phases = !phase; peak_bits = !peak_bits }
