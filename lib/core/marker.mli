open Ssmst_graph

(** The end-to-end marker M (Corollary 6.11): SYNC_MST, the Section 5
    strings, the two partitions and the train initialization, assembled
    into one label per node.  O(n) construction time, O(log n) bits per
    node. *)

(** Everything one node stores persistently: its component (parent port),
    the Example SP and NumK fields, the Section 5 strings, its two part
    labels with the at most two pieces each, and the Top/Bottom level
    delimiter. *)
type node_label = {
  comp_port : int option;
  sp_root : int;
  sp_depth : int;
  nk_n : int;
  nk_sub : int;
  strings : Labels.t;
  top : Partition.node_part_label;
  bot : Partition.node_part_label;
  delim : int;
}

type t = {
  graph : Graph.t;
  tree : Tree.t;
  hierarchy : Fragment.hierarchy;
  assignment : Partition.assignment;
  labels : node_label array;
  construction_rounds : int;  (** measured ideal time of the marker *)
  label_bits : int;  (** max label size over the nodes *)
}

val label_bits : node_label -> int

val partition_rounds : Fragment.hierarchy -> int
(** Round cost of the Multi_Wave-based partition construction and train
    initialization (Sections 6.3.1–6.3.8); O(n). *)

val of_hierarchy : ?construction_rounds:int -> ?threshold:int -> Fragment.hierarchy -> t
(** Assemble the labels for a given (already validated) hierarchy. *)

val run : ?span:Ssmst_obs.Span.t -> ?threshold:int -> Graph.t -> t
(** The honest marker: SYNC_MST + all labels.  [threshold] overrides the
    Θ(log n) top/bottom cut-off (the ablation experiment).  [span] receives
    SYNC_MST's phase spans plus a ["marker-assembly"] span charged the
    partition-construction rounds. *)

val forge : Graph.t -> Tree.t -> t
(** The strongest adversary for tests and lower-bound experiments: labels an
    honest marker would compute {e if the given spanning tree were the MST};
    every structural check passes and only the minimality checks C1/C2 can
    (and, by Lemma 8.4, must) expose a non-MST. *)

val components : t -> Tree.component
(** The component array the marker leaves in the network. *)

val linear_bound : t -> bool
(** Whether the measured construction time is within the O(n) envelope. *)
