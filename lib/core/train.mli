(** The train (Section 7.1): per partition part, a pipelined convergecast
    brings the pieces stored along the part's DFS order to the part root,
    and a gated pipelined broadcast shows every piece to every member,
    cyclically — a full cycle in O(k + D) = O(log n) ideal time
    (Theorem 7.1).  All registers are O(log n) bits.

    The step function is driven by the verifier, which supplies the
    membership flag rule (Section 7.1's on/off refinement for Bottom
    trains), the member decision, the required level set for the Section 8
    cycle-set check, the Top-train ordering check, and the asynchronous
    hold signal of Section 7.2. *)

type car = {
  idx : int;  (** global piece index within the part's cyclic order *)
  piece : Pieces.t;
  flag : bool;  (** membership flag (Bottom trains) *)
  tag : bool;  (** delivery parity: distinguishes revisits of an index *)
}

type state = {
  up : car option;  (** convergecast car *)
  want_idx : int;  (** index sought from the children; -1 when idle *)
  bc : car option;  (** broadcast buffer (the node's Show feed) *)
  cursor : int;  (** part root only: next index to broadcast *)
  seen : int;  (** bitmask of member-piece levels observed this cycle *)
  complete : bool;  (** whether all indices arrived consecutively *)
  last_lvl : int;  (** ordering check (Top trains) *)
  alarm : bool;
}

val init : state

val bits : state -> int

type peer = { lbl : Partition.node_part_label; st : state }

val lo : Partition.node_part_label -> int
(** First global piece index owned by the node's subtree. *)

val hi : Partition.node_part_label -> int

val own_piece : Partition.node_part_label -> int -> Pieces.t option

val step :
  lbl:Partition.node_part_label ->
  parent:peer option ->
  children:peer list ->
  flag_rule:(Pieces.t -> parent_flag:bool -> bool) ->
  member:(Pieces.t -> flag:bool -> bool) ->
  required:int ->
  ordered:bool ->
  hold:bool ->
  state ->
  state
(** One activation. *)

val corrupt : Random.State.t -> state -> state
(** Arbitrary register corruption, for fault injection. *)

val packed_words : int
(** Fixed packed image size of a train register (26 words). *)

val pack : state -> int array -> int -> unit
(** [pack s buf off] writes the [packed_words]-word image at [off];
    deterministic (absent cars zero their slots). *)

val unpack : int array -> int -> state
(** Exact inverse of [pack]. *)
