open Ssmst_graph
open Ssmst_sim

(** The enhanced Awerbuch–Varghese resynchronizer (Section 10, Theorems
    10.1–10.3): alternate a construction regime (self-stabilizing leader
    election + SYNC_MST + marker, charged at its measured O(n) cost) with a
    verification regime (the Section 7–8 verifier running as a live network
    protocol); any alarm triggers a reset and a reconstruction.  The result
    is a self-stabilizing MST construction with O(log n) bits per node and
    O(n) time, inheriting the verifier's detection time and distance. *)

type event =
  | Constructed of int  (** rounds charged for election + SYNC_MST + marker *)
  | Detected of { rounds : int; distance : int option }
  | Quiescent of int

type t = {
  graph : Graph.t;
  mode : Verifier.mode;
  daemon : Scheduler.t;
  mutable marker : Marker.t;
  mutable total_rounds : int;
  mutable reconstructions : int;
  mutable history : event list;  (** most recent first *)
  mutable peak_bits : int;
  mutable run_verify : int -> [ `Alarm of int * int option | `Quiet ];
  mutable inject : Random.State.t -> Fault.t -> int list;
}

val construction_cost : Graph.t -> Marker.t -> int

val create : ?mode:Verifier.mode -> ?daemon:Scheduler.t -> Graph.t -> t
(** Start from an arbitrary configuration: the first act is a
    reconstruction (Theorem 10.2: O(n) stabilization). *)

val reconstruct : t -> unit

val advance : t -> rounds:int -> unit
(** Run the verification regime for [rounds]; reconstruct on detection. *)

val inject_model : t -> Random.State.t -> Fault.t -> int list
(** Apply a typed fault model to the running verification network (the
    epoch re-injection path of the campaign subsystem). *)

val inject_faults : t -> Random.State.t -> count:int -> int list
(** Corrupt [count] uniformly placed nodes: [inject_model] under
    {!Fault.uniform}. *)

val tree : t -> Tree.t
(** The current output. *)

val stabilization_rounds : t -> int
(** Cost of the initial stabilization. *)

val memory_bits : t -> int
(** Peak per-node register size across regimes. *)
