open Ssmst_graph
open Ssmst_sim

(** The enhanced Awerbuch–Varghese resynchronizer (Section 10, Theorems
    10.1–10.3): alternate a construction regime (self-stabilizing leader
    election + SYNC_MST + marker, charged at its measured O(n) cost) with a
    verification regime (the Section 7–8 verifier running as a live network
    protocol); any alarm triggers a reset and a reconstruction.  The result
    is a self-stabilizing MST construction with O(log n) bits per node and
    O(n) time, inheriting the verifier's detection time and distance. *)

type event =
  | Constructed of int  (** rounds charged for election + SYNC_MST + marker *)
  | Detected of { rounds : int; distance : int option }
  | Quiescent of int

(** Cheap read-only accessors into the live verification network, re-bound
    at every reconstruction: the observatory's report drivers read per-node
    register sizes and last-write rounds through these without the
    network's first-class module escaping. *)
type probe = {
  net_metrics : Metrics.t;
  net_last_write : int -> int;
  net_bits : int -> int;
  net_rounds : unit -> int;
}

(** The observatory ride-along: an optional span profiler (each
    construct-verify-repair cycle becomes an [Epoch] span, with SYNC_MST's
    fragment-level spans under its [Construct] phase and a [Detect] span
    per injection-to-alarm window) and the online invariant monitors
    attached to the live verification network through the engine's round
    hook. *)
type observatory = {
  span : Ssmst_obs.Span.t option;
  monitor_trace : Trace.t option;  (** violations land here *)
  monitors : bool;
  compact_c : int;
  distance_c : int;
}

val observatory :
  ?span:Ssmst_obs.Span.t ->
  ?monitor_trace:Trace.t ->
  ?monitors:bool ->
  ?compact_c:int ->
  ?distance_c:int ->
  unit ->
  observatory
(** Monitors default on, with {!Ssmst_obs.Monitor}'s default constants. *)

val no_observatory : observatory

type t = {
  graph : Graph.t;
  mode : Verifier.mode;
  daemon : Scheduler.t;
  domains : int;
      (** sync-round worker domains on the live verification network
          (see {!Network.Make.create}); 1 = sequential *)
  obs : observatory;
  mutable marker : Marker.t;
  mutable total_rounds : int;
  mutable reconstructions : int;
  mutable history : event list;  (** most recent first *)
  mutable peak_bits : int;
  mutable run_verify : int -> [ `Alarm of int * int option | `Quiet ];
  mutable inject : Random.State.t -> Fault.t -> int list;
  mutable monitor : Ssmst_obs.Monitor.t option;  (** on the live network *)
  mutable monitor_verdicts : (string * Ssmst_obs.Monitor.verdict) list;
      (** latched across epochs; read via {!monitor_results} *)
  mutable probe : probe option;
}

val construction_cost : Graph.t -> Marker.t -> int

val create :
  ?mode:Verifier.mode ->
  ?daemon:Scheduler.t ->
  ?domains:int ->
  ?obs:observatory ->
  Graph.t ->
  t
(** Start from an arbitrary configuration: the first act is a
    reconstruction (Theorem 10.2: O(n) stabilization).  [domains]
    (default 1) fans each verification sync round across that many OCaml 5
    domains — byte-identical states and metrics at every count. *)

val monitor_results : t -> (string * Ssmst_obs.Monitor.verdict) list
(** Latched across every epoch so far: the first violation per monitor
    survives the reconstructions that discard the network it was seen on. *)

val monitors_ok : t -> bool

val reconstruct : t -> unit

val advance : t -> rounds:int -> unit
(** Run the verification regime for [rounds]; reconstruct on detection. *)

val inject_model : t -> Random.State.t -> Fault.t -> int list
(** Apply a typed fault model to the running verification network (the
    epoch re-injection path of the campaign subsystem). *)

val inject_faults : t -> Random.State.t -> count:int -> int list
(** Corrupt [count] uniformly placed nodes: [inject_model] under
    {!Fault.uniform}. *)

val tree : t -> Tree.t
(** The current output. *)

val stabilization_rounds : t -> int
(** Cost of the initial stabilization. *)

val memory_bits : t -> int
(** Peak per-node register size across regimes. *)
