open Ssmst_graph
open Ssmst_sim

(** The verifier instantiation of {!Ssmst_sim.Campaign}: build an instance
    (graph + marker + settled verifier network), then sweep fault models
    over it, measuring detection time and detection distance per trial.
    Shared by [msst campaign] and the [bench CAMPAIGN] experiment. *)

val family_names : string list
(** ["random"; "path"; "ring"; "grid"; "complete"; "star"; "hypertree"] *)

val graph_of_family : string -> Random.State.t -> int -> Graph.t
(** Note that two families round the requested size: ["grid"] builds a
    side² grid with side = [max 2 (sqrt n)], and ["hypertree"] rounds down
    to the nearest complete-binary-tree size [2^(h+1)-1] with h ≥ 2 (so
    requests below 7 still yield 7 nodes).  Campaign rows record both the
    actual ([Campaign.spec.n]) and the requested size.
    @raise Invalid_argument on an unknown family name. *)

type instance
(** A settled verifier instance: the graph, its marker, and the register
    snapshot after the settling run — trials restart from the snapshot, so
    the O(window_bound) settling cost is paid once per instance, not once
    per (f, model) grid point. *)

val prepare : ?domains:int -> family:string -> n:int -> seed:int -> unit -> instance
(** [domains] (default 1) fans the settling run's sync rounds across
    worker domains; the settled snapshot is byte-identical either way. *)

val graph : instance -> Graph.t
val root : instance -> int
(** The MST root: the anchor of the ["near-root"] placement. *)

val run_trial :
  ?domains:int ->
  instance ->
  model:Fault.t ->
  inject_seed:int ->
  max_rounds:int ->
  Campaign.outcome
(** One trial on a fresh network rewound to the instance snapshot via the
    engine's metrics/trace-neutral [restore] (so [register_writes] counts
    protocol work only — 0 until the injection); deterministic in the
    instance and [inject_seed] at every [domains].  Each trial runs under
    a ["campaign.trial"] telemetry frame when a {!Ssmst_parallel.Probe}
    sink is installed. *)

val sweep :
  ?jobs:int ->
  families:string list ->
  sizes:int list ->
  fault_counts:int list ->
  models:string list ->
  seeds:int ->
  seed:int ->
  max_rounds:int ->
  unit ->
  Campaign.trial list
(** The full campaign grid, in deterministic order: for each family x n x
    instance-seed, one {!prepare}, then every fault count x model.  The
    [seed] is the base; instance seed i uses [seed + 7919 * i].

    [jobs] (default 1) shards the instance grid across that many forked
    worker processes ({!Ssmst_parallel.Pool.map}); per-instance seeds make
    every shard self-contained, so the trial list is identical — byte for
    byte once serialized — for every [jobs]. *)
