open Ssmst_graph
open Ssmst_sim

(** The verifier instantiation of {!Ssmst_sim.Campaign}: build an instance
    (graph + marker + settled verifier network), then sweep fault models
    over it, measuring detection time and detection distance per trial.
    Shared by [msst campaign] and the [bench CAMPAIGN] experiment. *)

val family_names : string list
(** ["random"; "path"; "ring"; "grid"; "complete"; "star"] *)

val graph_of_family : string -> Random.State.t -> int -> Graph.t
(** @raise Invalid_argument on an unknown family name. *)

type instance
(** A settled verifier instance: the graph, its marker, and the register
    snapshot after the settling run — trials restart from the snapshot, so
    the O(window_bound) settling cost is paid once per instance, not once
    per (f, model) grid point. *)

val prepare : family:string -> n:int -> seed:int -> instance
val graph : instance -> Graph.t
val root : instance -> int
(** The MST root: the anchor of the ["near-root"] placement. *)

val run_trial : instance -> model:Fault.t -> inject_seed:int -> max_rounds:int -> Campaign.outcome
(** One trial on a fresh network restored from the instance snapshot;
    deterministic in the instance and [inject_seed]. *)

val sweep :
  families:string list ->
  sizes:int list ->
  fault_counts:int list ->
  models:string list ->
  seeds:int ->
  seed:int ->
  max_rounds:int ->
  Campaign.trial list
(** The full campaign grid, in deterministic order: for each family x n x
    instance-seed, one {!prepare}, then every fault count x model.  The
    [seed] is the base; instance seed i uses [seed + 7919 * i]. *)
