(** The Top and Bottom partitions of Section 6.1 and the distribution of
    pieces over their parts (Section 6.2).

    Fragments of at least [threshold] = Θ(log n) nodes are {e top}; leaves
    of the induced hierarchy subtree are {e red}, internal ones {e large},
    non-top children of large fragments {e blue}.  Procedure Merge grows
    each red fragment into a P″ group (Claim 6.3: at most one top fragment
    per level), split into Top parts of size ≥ threshold and diameter
    O(log n) (Lemma 6.4).  Bottom parts are the blue fragments and the
    children of red fragments (Lemma 6.5).  Each part's pieces are laid out
    along its DFS order, at most one pair per node. *)

type part = {
  id : int;
  kind : [ `Top | `Bottom ];
  root : int;  (** highest node of the part *)
  members : int list;
  pieces : Pieces.t array;  (** the part's train cargo, in cyclic order *)
  diameter : int;  (** along tree edges *)
}

(** The per-node part label the verifier checks: part root identity, DFS
    rank and subtree size within the part (NumK-style verifiable), the
    train length [k], EDIAM-style depth/diameter bounds, and the at most
    two pieces stored here. *)
type node_part_label = {
  part_root_id : int;
  dfs_rank : int;
  subtree : int;
  k : int;
  depth_in_part : int;
  dbound : int;
  own : Pieces.t array;
}

type assignment = {
  threshold : int;
  parts : part array;
  top_of : int array;  (** per node: its Top part index *)
  bot_of : int array;
  top_label : node_part_label array;
  bot_label : node_part_label array;
  delim : int array;  (** per node: lowest top level (levels ≥ delim are top) *)
}

val threshold_for : int -> int

val compute : ?threshold:int -> Fragment.hierarchy -> assignment
val lemma_6_4 : assignment -> n:int -> bool
(** Top parts: size ≥ threshold, diameter O(log n), ≤ one piece per level. *)

val lemma_6_5 : assignment -> bool
(** Bottom parts: size < threshold, at most 2|P| pieces. *)

val packed_label_words : own_slots:int -> int
(** Packed image size of a {!node_part_label} whose [own] array is bounded
    by [own_slots] entries: [7 + own_slots * Pieces.packed_words]. *)

val pack_label : own_slots:int -> node_part_label -> int array -> int -> unit
(** [pack_label ~own_slots l buf off] writes the fixed-size image at [off];
    deterministic (unused piece slots are zeroed).  Requires
    [Array.length l.own <= own_slots]. *)

val unpack_label : int array -> int -> node_part_label
(** Exact inverse of [pack_label]. *)
