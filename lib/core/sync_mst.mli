open Ssmst_graph

(** SYNC_MST (Section 4): synchronous MST construction in O(n) ideal time
    with O(log n) bits per node.

    Phase i starts at round 11·2ⁱ.  Count_Size (a Wave&Echo with
    time-to-live 2ⁱ⁺¹−1) decides activity (Definition 4.1: a root is active
    iff its complete count is ≤ 2ⁱ⁺¹−1); Find_Min_Out_Edge runs at round
    (11+4)·2ⁱ with all edges tested simultaneously; re-orientation, pivot
    handshake and hooking land at round (11+11)·2ⁱ−1.  The result records
    the hierarchy of active fragments that the marker labels. *)

type result = {
  tree : Tree.t;  (** the MST *)
  hierarchy : Fragment.hierarchy;  (** active fragments, per phase *)
  rounds : int;  (** ideal time per the paper's timetable *)
  phases : int;
  peak_bits : int;  (** max per-node state size (Observation 4.3) *)
}

val run : ?span:Ssmst_obs.Span.t -> Graph.t -> result
(** [span] receives one [Fragment_level] span per phase with [Wave_sweep]
    sub-spans for Count_Size and Find_Min_Out_Edge, charged per the
    timetable; the per-phase round charges sum to [result.rounds].
    @raise Graph.Malformed on disconnected inputs. *)
