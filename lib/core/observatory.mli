open Ssmst_obs

(** Scenario drivers for [msst report]: run one of the standard scenarios
    — construct, verify, stabilize, campaign — with the full observatory
    attached (span profiler, log-bucketed histograms, online invariant
    monitors) and return one {!Report.t} combining engine metrics,
    histograms, the span tree and the monitor verdicts. *)

type params = {
  family : string;
  n : int;
  seed : int;
  faults : int;
  async : bool;
  epochs : int;  (** stabilize: fault-injection epochs *)
  trials : int;  (** campaign: seeds per fault model *)
  max_rounds : int;  (** detection budget *)
  domains : int;
      (** sync-round worker domains for verify/stabilize/campaign; results
          are byte-identical at every value, only telemetry sees it *)
  compact_c : int;
  distance_c : int;
}

val default_params : params

val scenario_names : string list
(** ["construct"; "verify"; "stabilize"; "campaign"] *)

val construct : params -> Report.t
val verify : params -> Report.t
val stabilize : params -> Report.t
val campaign : params -> Report.t

val run : scenario:string -> params -> Report.t
(** Dispatch by name.  @raise Invalid_argument on an unknown scenario. *)
