open Ssmst_graph

(* The end-to-end marker M (Corollary 6.11): run SYNC_MST, derive the
   Section 5 strings, the two partitions, and the placement of pieces, and
   assemble each node's complete label.  Construction time is O(n)
   (Theorem 4.4 for the construction itself; Section 6.3's Multi_Wave
   implementation for the partitions and the train initialization), and
   every label is O(log n) bits. *)

type node_label = {
  comp_port : int option;  (* the component: port towards the parent *)
  sp_root : int;  (* Example SP: identity of the root of T *)
  sp_depth : int;  (* Example SP: tree depth *)
  nk_n : int;  (* Example NumK: claimed number of nodes *)
  nk_sub : int;  (* Example NumK: subtree size *)
  strings : Labels.t;  (* Roots / EndP / Parents / cnt *)
  top : Partition.node_part_label;
  bot : Partition.node_part_label;
  delim : int;  (* lowest top level *)
}

type t = {
  graph : Graph.t;
  tree : Tree.t;
  hierarchy : Fragment.hierarchy;
  assignment : Partition.assignment;
  labels : node_label array;
  construction_rounds : int;  (* ideal time of the distributed marker *)
  label_bits : int;  (* max label size over the nodes *)
}

let label_bits (l : node_label) =
  let part_bits (p : Partition.node_part_label) =
    Ssmst_sim.Memory.of_int p.part_root_id
    + Ssmst_sim.Memory.of_nat p.dfs_rank
    + Ssmst_sim.Memory.of_nat p.subtree
    + Ssmst_sim.Memory.of_nat p.k
    + Ssmst_sim.Memory.of_nat p.depth_in_part
    + Ssmst_sim.Memory.of_nat p.dbound
    + Ssmst_sim.Memory.of_array Pieces.bits p.own
  in
  Ssmst_sim.Memory.of_option Ssmst_sim.Memory.of_nat l.comp_port
  + Ssmst_sim.Memory.of_int l.sp_root
  + Ssmst_sim.Memory.of_nat l.sp_depth
  + Ssmst_sim.Memory.of_nat l.nk_n
  + Ssmst_sim.Memory.of_nat l.nk_sub
  + Labels.bits l.strings
  + part_bits l.top + part_bits l.bot
  + Ssmst_sim.Memory.of_nat l.delim

(* Round cost of the Multi_Wave-based partition construction and train
   initialization (Sections 6.3.1-6.3.8): six multi-wave passes (identify
   red / blue / large fragments, Procedure Merge, the Top split, the Bottom
   notification, and the two piece distributions), each O(n) by
   Observation 6.8, plus O(n) for the per-part DFS placements. *)
let partition_rounds (h : Fragment.hierarchy) =
  let one_pass = (Multi_wave.run h ~command:(fun f _ -> Fragment.size f)).Multi_wave.rounds in
  (6 * one_pass) + (2 * Tree.n h.tree)

(* Assemble the node labels for a given hierarchy (over its own tree and
   graph).  Shared by the honest marker and by [forge]. *)
let of_hierarchy ?(construction_rounds = 0) ?threshold (h : Fragment.hierarchy) =
  let tree = h.tree in
  let g = Tree.graph tree in
  let strings = Labels.of_hierarchy h in
  let a = Partition.compute ?threshold h in
  let sizes = Tree.subtree_sizes tree in
  let n = Graph.n g in
  let labels =
    Array.init n (fun v ->
        {
          comp_port =
            (match Tree.parent tree v with
            | None -> None
            | Some p -> Some (Graph.port_to g v p));
          sp_root = Graph.id g (Tree.root tree);
          sp_depth = Tree.depth tree v;
          nk_n = n;
          nk_sub = sizes.(v);
          strings = strings.(v);
          top = a.top_label.(v);
          bot = a.bot_label.(v);
          delim = a.delim.(v);
        })
  in
  let label_bits = Array.fold_left (fun acc l -> max acc (label_bits l)) 0 labels in
  { graph = g; tree; hierarchy = h; assignment = a; labels; construction_rounds; label_bits }

let run ?span ?threshold (g : Graph.t) =
  let r = Sync_mst.run ?span g in
  let pr = partition_rounds r.hierarchy in
  let m = of_hierarchy ~construction_rounds:(r.rounds + pr) ?threshold r.hierarchy in
  (* charge the Multi_Wave partition construction + train initialization and
     the final label high-water to the observatory *)
  (match span with
  | Some sp ->
      Ssmst_obs.Span.with_ sp (Ssmst_obs.Span.Named "marker-assembly") (fun () ->
          Ssmst_obs.Span.charge sp ~rounds:pr ~peak_bits:m.label_bits ())
  | None -> ());
  m

(* The strongest-adversary pipeline for tests and lower-bound experiments:
   given an arbitrary spanning tree [bad] of [g], produce the labels an
   honest marker would compute *if that tree were the MST*: the fragment
   hierarchy is grown over [bad]'s edges, but all pieces carry the real ω′
   weights of [g].  Every purely structural check passes; only the
   minimality checks C1/C2 can (and must, by Lemma 8.4) expose a non-MST. *)
let forge (g : Graph.t) (bad : Tree.t) =
  let n = Graph.n g in
  let ids = Array.init n (Graph.id g) in
  (* keep the real weights on the claimed tree and push every other edge
     above them: SYNC_MST then grows the claimed tree with the best
     consistent candidates (the real-weight minimum outgoing *tree* edges),
     so rejection can only come from a genuine minimality violation —
     forging the true MST is accepted *)
  let heavy = 1 + Graph.fold_edges (fun acc _ _ w -> max acc w) 0 g in
  let edges' =
    List.map
      (fun (u, v, w) -> (u, v, if Tree.is_tree_edge bad u v then w else w + heavy))
      (Graph.edges g)
  in
  let g' = Graph.of_edges ~ids ~n edges' in
  let r = Sync_mst.run g' in
  (* transplant the structure onto the real graph *)
  let parents =
    Array.init n (fun v -> match Tree.parent r.tree v with None -> -1 | Some p -> p)
  in
  let tree_g = Tree.of_parents g parents in
  let records =
    Array.to_list r.hierarchy.frags
    |> List.map (fun (f : Fragment.t) -> (f.level, f.root, Array.to_list f.members, f.candidate))
  in
  of_hierarchy (Fragment.build tree_g records)

(* The components array the marker leaves in the network. *)
let components (m : t) = Tree.to_components m.tree

(* Hook for Wave_echo-based cost sanity: the marker's cost must stay linear. *)
let linear_bound (m : t) = m.construction_rounds <= 80 * Graph.n m.graph + 200
