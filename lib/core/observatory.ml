open Ssmst_graph
open Ssmst_sim
open Ssmst_obs

(* Scenario drivers for [msst report]: run one of the repo's standard
   scenarios — construct, verify, stabilize, campaign — with the full
   observatory attached (span profiler, log-bucketed histograms, online
   invariant monitors) and return one {!Report.t} combining everything.

   This is the only module that knows both the protocol stack and the
   observatory; {!Ssmst_obs} itself stays below the protocols so the engine
   can feed it. *)

type params = {
  family : string;
  n : int;
  seed : int;
  faults : int;
  async : bool;
  epochs : int;  (* stabilize: fault-injection epochs *)
  trials : int;  (* campaign: seeds per fault model *)
  max_rounds : int;  (* detection budget *)
  domains : int;  (* sync-round worker domains (verify/stabilize/campaign) *)
  compact_c : int;
  distance_c : int;
}

let default_params =
  {
    family = "random";
    n = 64;
    seed = 42;
    faults = 1;
    async = false;
    epochs = 3;
    trials = 3;
    max_rounds = 20000;
    domains = 1;
    compact_c = Monitor.default_compact_c;
    distance_c = Monitor.default_distance_c;
  }

let scenario_names = [ "construct"; "verify"; "stabilize"; "campaign" ]

let graph_of p = Verifier_campaign.graph_of_family p.family (Gen.rng p.seed) p.n

let base_scenario name p =
  [
    ("scenario", name);
    ("family", p.family);
    ("n", string_of_int p.n);
    ("seed", string_of_int p.seed);
    ("daemon", if p.async then "async-random" else "sync");
  ]

let report name p extra =
  Report.create
    ~title:(Fmt.str "msst report — %s (%s, n = %d)" name p.family p.n)
    ~scenario:(base_scenario name p @ extra)
    ()

(* ---------------- construct ---------------- *)

(* The marker pipeline under the span profiler; the monitors run once over
   the static output (alarms are vacuous — nothing executes afterwards). *)
let construct p =
  let g = graph_of p in
  let span = Span.create () in
  let m =
    Ssmst_parallel.Probe.with_ "construct.marker" (fun () ->
        Span.with_ span Span.Construct (fun () -> Marker.run ~span g))
  in
  let label_hist = Hist.create () in
  Array.iter (fun l -> Hist.record label_hist (Marker.label_bits l)) m.Marker.labels;
  let depth_hist = Hist.create () in
  for v = 0 to Graph.n g - 1 do
    Hist.record depth_hist (Tree.depth m.Marker.tree v)
  done;
  let version = ref 0 in
  let view =
    {
      Monitor.graph = g;
      parent = Tree.parent m.Marker.tree;
      bits = (fun v -> Marker.label_bits m.Marker.labels.(v));
      alarm = (fun _ -> false);
      peak_bits = (fun () -> m.Marker.label_bits);
      any_alarm = (fun () -> false);
      change_counter =
        (fun () ->
          incr version;
          !version);
    }
  in
  let mon = Monitor.create ~compact_c:p.compact_c ~distance_c:p.distance_c view in
  Monitor.check mon ~round:m.Marker.construction_rounds;
  let r = report "construct" p [ ("threshold", string_of_int m.Marker.assignment.Partition.threshold) ] in
  Report.add_hist r "per-node label bits" label_hist;
  Report.add_hist r "node depth in the MST" depth_hist;
  Report.set_spans r (Span.finish span);
  Report.set_monitors r (Monitor.results mon);
  Report.add_note r
    (Fmt.str "MST weight %d (matches Kruskal: %b); %d fragments, hierarchy height %d"
       (Tree.total_base_weight m.Marker.tree)
       (Mst.is_mst g (Graph.plain_weight_fn g) m.Marker.tree)
       (Array.length m.Marker.hierarchy.Fragment.frags)
       m.Marker.hierarchy.Fragment.height);
  Report.add_note r
    (Fmt.str "construction: %d charged rounds; max label %d bits (ceil(log2 n) = %d)"
       m.Marker.construction_rounds m.Marker.label_bits (Memory.of_nat p.n));
  r

(* ---------------- verify ---------------- *)

(* Settle the verifier under the engine sampler, inject a burst, run to
   detection; the monitors ride the engine's round hook the whole way. *)
let verify p =
  let g = graph_of p in
  let m = Marker.run g in
  let mode = if p.async then Verifier.Handshake else Verifier.Passive in
  let daemon = if p.async then Scheduler.Async_random (Gen.rng (p.seed + 1)) else Scheduler.Sync in
  let module C = struct
    let marker = m
    let mode = mode
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let tr = Trace.create () in
  let net = Net.create ~domains:p.domains g in
  let span = Span.create ~trace:tr ~sample:(Span.sampler_of_metrics (Net.metrics net)) () in
  let view =
    {
      Monitor.graph = g;
      parent = Tree.parent m.Marker.tree;
      bits = (fun v -> P.bits (Net.state net v));
      alarm = (fun v -> P.alarm (Net.state net v));
      peak_bits = (fun () -> Net.peak_bits net);
      any_alarm = (fun () -> Net.any_alarm net);
      change_counter =
        (fun () ->
          let mm = Net.metrics net in
          mm.Metrics.register_writes + mm.Metrics.faults_injected);
    }
  in
  let mon =
    Monitor.create ~trace:tr ~metrics:(Net.metrics net) ~compact_c:p.compact_c
      ~distance_c:p.distance_c view
  in
  Net.set_round_hook net (fun () -> Monitor.check mon ~round:(Net.rounds net));
  let settle_budget = 8 * Verifier.window_bound m.Marker.labels.(0) in
  Span.with_ span Span.Settle (fun () -> Net.run net daemon ~rounds:settle_budget);
  let r =
    report "verify" p
      [ ("mode", if p.async then "handshake" else "passive");
        ("faults", string_of_int p.faults) ]
  in
  Report.add_note r
    (Fmt.str "settled after %d rounds; alarms after settling: %b (must be false)"
       (Net.rounds net) (Net.any_alarm net));
  let conv = Hist.create () and bits_h = Hist.create () and alarm_lat = Hist.create () in
  for v = 0 to Graph.n g - 1 do
    Hist.record conv (Net.last_write_round net v);
    Hist.record bits_h (P.bits (Net.state net v))
  done;
  if p.faults > 0 then begin
    let fs =
      Span.with_ span Span.Inject (fun () ->
          Net.inject_faults net (Gen.rng (p.seed + 2)) ~count:p.faults)
    in
    Monitor.note_injection mon ~round:(Net.rounds net) ~faults:fs;
    match Span.with_ span Span.Detect (fun () ->
              Net.detection_time net daemon ~max_rounds:p.max_rounds)
    with
    | Some dt ->
        Hist.record alarm_lat dt;
        Report.add_note r
          (Fmt.str "injected %d fault(s); detected after %d rounds at distance %s"
             (List.length fs) dt
             (match Net.detection_distance net ~faults:fs with
             | Some d -> string_of_int d
             | None -> "?"))
    | None ->
        Report.add_note r
          (Fmt.str "injected %d fault(s); no detection within %d rounds (semantically null \
                    corruption)"
             (List.length fs) p.max_rounds)
  end;
  Report.add_metrics r "verifier network" (Net.metrics net);
  Report.add_hist r "per-node register bits" bits_h;
  Report.add_hist r "per-node convergence round (last write)" conv;
  Report.add_hist r "alarm latency after injection (rounds)" alarm_lat;
  Report.set_spans r (Span.finish span);
  Report.set_monitors r (Monitor.results mon);
  r

(* ---------------- stabilize ---------------- *)

let stabilize p =
  let g = graph_of p in
  let tr = Trace.create () in
  let span = Span.create ~trace:tr () in
  let obs =
    Transformer.observatory ~span ~monitor_trace:tr ~compact_c:p.compact_c
      ~distance_c:p.distance_c ()
  in
  let mode = if p.async then Verifier.Handshake else Verifier.Passive in
  let daemon = if p.async then Scheduler.Async_random (Gen.rng (p.seed + 1)) else Scheduler.Sync in
  let t = Transformer.create ~mode ~daemon ~domains:p.domains ~obs g in
  let r =
    report "stabilize" p
      [ ("faults per epoch", string_of_int p.faults); ("epochs", string_of_int p.epochs) ]
  in
  Report.add_note r
    (Fmt.str "stabilized in %d charged rounds" (Transformer.stabilization_rounds t));
  let rng = Gen.rng (p.seed + 2) in
  for _ = 1 to p.epochs do
    Transformer.advance t ~rounds:200;
    if p.faults > 0 then
      Span.with_ span Span.Inject (fun () ->
          let fs = Transformer.inject_faults t rng ~count:p.faults in
          Span.charge span ~writes:(List.length fs) ());
    Transformer.advance t ~rounds:p.max_rounds
  done;
  (* the last detection installed a fresh verification network: settle it so
     the probe snapshots a live epoch (per-node convergence, register bits) *)
  Transformer.advance t ~rounds:200;
  let alarm_lat = Hist.create () in
  List.iter
    (function
      | Transformer.Detected { rounds; _ } -> Hist.record alarm_lat rounds
      | Transformer.Constructed _ | Transformer.Quiescent _ -> ())
    t.Transformer.history;
  let conv = Hist.create () and bits_h = Hist.create () in
  (match t.Transformer.probe with
  | Some pr ->
      for v = 0 to Graph.n g - 1 do
        Hist.record conv (pr.Transformer.net_last_write v);
        Hist.record bits_h (pr.Transformer.net_bits v)
      done;
      Report.add_metrics r "verifier network (final epoch)" pr.Transformer.net_metrics
  | None -> ());
  Report.add_hist r "per-node register bits" bits_h;
  Report.add_hist r "per-node convergence round (last write)" conv;
  Report.add_hist r "alarm latency after injection (rounds)" alarm_lat;
  Report.set_spans r (Span.finish span);
  Report.set_monitors r (Transformer.monitor_results t);
  Report.add_note r
    (Fmt.str "%d reconstructions, %d total charged rounds, peak memory %d bits; output is \
              the MST: %b"
       t.Transformer.reconstructions t.Transformer.total_rounds (Transformer.memory_bits t)
       (Mst.is_mst g (Graph.plain_weight_fn g) (Transformer.tree t)));
  r

(* ---------------- campaign ---------------- *)

(* A compact sweep on one instance: every named fault model x [trials]
   injection seeds, one [Campaign_trial] span each; outcomes land in the
   detection-time/-distance histograms. *)
let campaign p =
  let inst =
    Verifier_campaign.prepare ~domains:p.domains ~family:p.family ~n:p.n ~seed:p.seed ()
  in
  let span = Span.create () in
  let dt_h = Hist.create () and dd_h = Hist.create () and rounds_h = Hist.create () in
  let detected = ref 0 and total = ref 0 in
  let idx = ref 0 in
  List.iter
    (fun model_name ->
      for k = 0 to p.trials - 1 do
        incr idx;
        let i = !idx in
        Span.with_ span (Span.Campaign_trial i) (fun () ->
            let model =
              Campaign.resolve_model model_name ~n:p.n ~root:(Verifier_campaign.root inst)
                ~count:p.faults
            in
            let o =
              Verifier_campaign.run_trial ~domains:p.domains inst ~model
                ~inject_seed:(p.seed + (7919 * i) + k)
                ~max_rounds:p.max_rounds
            in
            Span.charge span ~rounds:o.Campaign.rounds_run
              ~writes:o.Campaign.injections ();
            incr total;
            Hist.record rounds_h o.Campaign.rounds_run;
            match o.Campaign.detection_rounds with
            | Some dt ->
                incr detected;
                Hist.record dt_h dt;
                (match o.Campaign.detection_distance with
                | Some dd -> Hist.record dd_h dd
                | None -> ())
            | None -> ())
      done)
    Campaign.model_names;
  let r =
    report "campaign" p
      [
        ("models", String.concat "," Campaign.model_names);
        ("trials per model", string_of_int p.trials);
        ("faults", string_of_int p.faults);
      ]
  in
  Report.add_hist r "detection time (rounds)" dt_h;
  Report.add_hist r "detection distance (hops)" dd_h;
  Report.add_hist r "rounds run per trial" rounds_h;
  Report.set_spans r (Span.finish span);
  Report.add_note r (Fmt.str "%d/%d trials detected" !detected !total);
  Report.add_note r
    (Fmt.str "paper bound shape check: f * ceil(log2 n) = %d (dd_p99 observed: %d)"
       (p.faults * Memory.of_nat p.n) (Hist.p99 dd_h));
  r

let run ~scenario p =
  match scenario with
  | "construct" -> construct p
  | "verify" -> verify p
  | "stabilize" -> stabilize p
  | "campaign" -> campaign p
  | s -> invalid_arg (Fmt.str "Observatory.run: unknown scenario %S" s)
