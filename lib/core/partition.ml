open Ssmst_graph

(* The two partitions Top and Bottom of Section 6.1, plus the distribution
   of pieces over parts (Section 6.2) and the per-node part labels the
   verifier relies on.

   - Fragments with at least [threshold] = Θ(log n) nodes are *top*; they
     induce the subtree T_Top of the hierarchy-tree.  Leaves of T_Top are
     *red*, internal ones *large*; non-top children of large fragments are
     *blue*.  Red and blue fragments partition the nodes (Observation 6.1).
   - Procedure Merge grows each red fragment into a part P'' by repeatedly
     annexing blue fragments that touch it inside their common large
     ancestor; each P'' part meets at most one top fragment per level
     (Claim 6.3).  P'' parts are then split into Top parts of size >=
     threshold and diameter O(log n) (Lemma 6.4).
   - Bottom parts are the blue fragments together with the children of red
     fragments; each has < threshold nodes and meets at most 2|P| bottom
     fragments (Lemma 6.5).
   - The pieces a part is responsible for are placed along the part's DFS
     order, at most one pair per node (Section 6.2). *)

type part = {
  id : int;  (* index in the parts array *)
  kind : [ `Top | `Bottom ];
  root : int;  (* highest node of the part *)
  members : int list;
  pieces : Pieces.t array;  (* global cyclic order of the part's train *)
  diameter : int;  (* actual diameter of the part (tree hops) *)
}

type node_part_label = {
  part_root_id : int;  (* the Top-Root / Bottom-Root variable *)
  dfs_rank : int;  (* DFS rank within the part *)
  subtree : int;  (* size of the node's subtree within the part *)
  k : int;  (* number of pieces the part's train carries *)
  depth_in_part : int;
  dbound : int;  (* claimed diameter bound, verified EDIAM-style *)
  own : Pieces.t array;  (* the <= 2 pieces stored permanently here *)
}

type assignment = {
  threshold : int;
  parts : part array;
  top_of : int array;  (* per node: index of its Top part *)
  bot_of : int array;  (* per node: index of its Bottom part *)
  top_label : node_part_label array;
  bot_label : node_part_label array;
  delim : int array;  (* per node: lowest top level (levels >= delim are top) *)
}

let threshold_for n = max 2 (Ssmst_sim.Memory.of_nat n)

(* ------------------------------------------------------------------ *)

let compute ?threshold (h : Fragment.hierarchy) =
  let tree = h.tree in
  let g = Tree.graph tree in
  let n = Graph.n g in
  let t = match threshold with Some t -> max 2 t | None -> threshold_for n in
  let weight_fn =
    Graph.weight_fn g ~in_tree:(fun u v -> Tree.is_tree_edge tree u v)
  in
  let is_top (f : Fragment.t) = Fragment.size f >= t in
  (* red = leaf of T_Top: top with no top child; large = top with a top child *)
  let has_top_child (f : Fragment.t) =
    List.exists (fun c -> is_top h.frags.(c)) f.children
  in
  let is_red f = is_top f && not (has_top_child f) in
  let is_large f = is_top f && has_top_child f in
  let is_blue (f : Fragment.t) =
    (not (is_top f)) && f.parent >= 0 && is_large h.frags.(f.parent)
  in
  let is_green (f : Fragment.t) = f.parent >= 0 && is_red h.frags.(f.parent) in
  (* ---- partition P'' over red/blue fragments (Procedure Merge) ---- *)
  (* seed: per red fragment, a P'' group; each node's group via its red or
     blue fragment *)
  let group_of_node = Array.make n (-1) in
  let reds = Array.to_list h.frags |> List.filter is_red in
  let blues = Array.to_list h.frags |> List.filter is_blue in
  let red_of_group = Array.of_list (List.map (fun (f : Fragment.t) -> f.index) reds) in
  List.iteri
    (fun gi (f : Fragment.t) -> Array.iter (fun v -> group_of_node.(v) <- gi) f.members)
    reds;
  (* every node must be red or blue (Observation 6.1) *)
  let blue_of_node = Array.make n (-1) in
  List.iter
    (fun (f : Fragment.t) -> Array.iter (fun v -> blue_of_node.(v) <- f.index) f.members)
    blues;
  Array.iteri
    (fun v gi ->
      if gi < 0 && blue_of_node.(v) < 0 then
        raise (Graph.Malformed "partition: node neither red nor blue"))
    group_of_node;
  (* is fragment [anc] an ancestor (or equal) of fragment [d] in H? *)
  let rec is_ancestor anc d =
    if d = anc then true else if h.frags.(d).parent < 0 then false else is_ancestor anc h.frags.(d).parent
  in
  let unassigned = ref (List.filter (fun (f : Fragment.t) -> group_of_node.(f.members.(0)) < 0) blues) in
  let progress = ref true in
  while !unassigned <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (b : Fragment.t) ->
        let large = b.parent in
        (* candidate group: touches b by a tree edge, and its red seed is a
           descendant of b's large parent *)
        let found = ref (-1) in
        Array.iter
          (fun v ->
            if !found < 0 then
              List.iter
                (fun u ->
                  if !found < 0 && group_of_node.(u) >= 0 then
                    let gi = group_of_node.(u) in
                    if is_ancestor large red_of_group.(gi) then found := gi)
                (Tree.children tree v @ Option.to_list (Tree.parent tree v)))
          b.members;
        if !found >= 0 then begin
          Array.iter (fun v -> group_of_node.(v) <- !found) b.members;
          progress := true
        end
        else still := b :: !still)
      !unassigned;
    unassigned := !still
  done;
  if !unassigned <> [] then raise (Graph.Malformed "partition: Merge did not cover all blues");
  (* ---- split each P'' group into Top parts ---- *)
  (* A Top part is a subtree; split by accumulating subtree sizes in
     post-order and cutting pieces of size >= t. *)
  let top_of = Array.make n (-1) in
  let top_parts_members : int list list ref = ref [] in
  let top_part_group : int list ref = ref [] in
  let num_groups = Array.length red_of_group in
  for gi = 0 to num_groups - 1 do
    let in_group v = group_of_node.(v) = gi in
    (* the group's subtree root: the member whose tree parent is outside *)
    let roots =
      List.init n Fun.id
      |> List.filter (fun v ->
             in_group v
             && match Tree.parent tree v with Some p -> not (in_group p) | None -> true)
    in
    let groot = match roots with [ r ] -> r | _ -> raise (Graph.Malformed "partition: group not a subtree") in
    (* post-order split *)
    let fresh_parts = ref [] in
    let rec split v =
      (* returns the list of residual (uncut) nodes of v's subtree, v last *)
      let residual =
        List.concat_map (fun c -> if in_group c then split c else []) (Tree.children tree v)
        @ [ v ]
      in
      if List.length residual >= t && v <> groot then begin
        fresh_parts := residual :: !fresh_parts;
        []
      end
      else residual
    in
    let leftover = split groot in
    (match (leftover, !fresh_parts) with
    | [], _ -> ()
    | l, [] -> fresh_parts := [ l ]
    | l, p :: rest when List.length l < t ->
        (* merge the small root piece into an adjacent cut piece *)
        fresh_parts := (l @ p) :: rest
    | l, ps -> fresh_parts := l :: ps);
    List.iter
      (fun members ->
        top_parts_members := members :: !top_parts_members;
        top_part_group := gi :: !top_part_group)
      !fresh_parts
  done;
  let top_parts_members = Array.of_list (List.rev !top_parts_members) in
  let top_part_group = Array.of_list (List.rev !top_part_group) in
  Array.iteri
    (fun pi members -> List.iter (fun v -> top_of.(v) <- pi) members)
    top_parts_members;
  (* ---- Bottom parts: blue fragments + children of red fragments ---- *)
  let bot_frags = blues @ (Array.to_list h.frags |> List.filter is_green) in
  let bot_of = Array.make n (-1) in
  List.iteri
    (fun pi (f : Fragment.t) -> Array.iter (fun v -> bot_of.(v) <- pi) f.members)
    bot_frags;
  Array.iteri
    (fun v pi -> if pi < 0 then raise (Graph.Malformed (Fmt.str "partition: node %d in no Bottom part" v)))
    bot_of;
  (* ---- pieces ---- *)
  let piece_of f = Pieces.of_fragment g ~weight_fn f in
  (* Top part pieces: the red seed of the part's group and all its ancestors
     (all top), by increasing level *)
  let top_pieces gi =
    let rec anc acc i = if i < 0 then acc else anc (h.frags.(i) :: acc) h.frags.(i).parent in
    anc [] red_of_group.(gi)
    |> List.sort (fun (a : Fragment.t) b -> Int.compare a.level b.level)
    |> List.filter_map piece_of
    |> Array.of_list
  in
  (* Bottom part pieces: all fragments contained in the part's fragment *)
  let bot_pieces (f : Fragment.t) =
    let rec collect acc i =
      let fr = h.frags.(i) in
      let acc = List.fold_left collect acc fr.children in
      fr :: acc
    in
    collect [] f.index
    |> List.sort (fun (a : Fragment.t) b ->
           let c = Int.compare a.level b.level in
           if c <> 0 then c else Int.compare a.root b.root)
    |> List.filter_map piece_of
    |> Array.of_list
  in
  (* ---- assemble parts and per-node labels ---- *)
  let parts = ref [] in
  let next_part = ref 0 in
  let top_label = Array.make n None and bot_label = Array.make n None in
  let build_part kind members pieces label_slot index_slot =
    let member_set = Array.make n false in
    List.iter (fun v -> member_set.(v) <- true) members;
    let proot =
      List.filter
        (fun v -> match Tree.parent tree v with Some p -> not member_set.(p) | None -> true)
        members
      |> function
      | [ r ] -> r
      | _ -> raise (Graph.Malformed "partition: part not a subtree")
    in
    (* diameter along the part's tree edges (the train's routes) *)
    let diameter =
      let tree_bfs src =
        let d = Hashtbl.create 16 in
        let q = Queue.create () in
        Hashtbl.add d src 0;
        Queue.add src q;
        let worst = ref 0 in
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          let du = Hashtbl.find d u in
          if du > !worst then worst := du;
          let step w =
            if member_set.(w) && not (Hashtbl.mem d w) then begin
              Hashtbl.add d w (du + 1);
              Queue.add w q
            end
          in
          List.iter step (Tree.children tree u);
          Option.iter step (Tree.parent tree u)
        done;
        !worst
      in
      List.fold_left (fun acc v -> max acc (tree_bfs v)) 0 members
    in
    let id = !next_part in
    incr next_part;
    (* DFS ranks + subtree sizes within the part *)
    let rank = Hashtbl.create 16 and size = Hashtbl.create 16 in
    let counter = ref 0 in
    let rec dfs v =
      Hashtbl.add rank v !counter;
      incr counter;
      let s =
        List.fold_left
          (fun acc c -> if member_set.(c) then acc + dfs c else acc)
          1 (Tree.children tree v)
      in
      Hashtbl.add size v s;
      s
    in
    ignore (dfs proot);
    let k = Array.length pieces in
    let dbound = diameter in
    List.iter
      (fun v ->
        let d = Hashtbl.find rank v in
        let own =
          if 2 * d < k then Array.sub pieces (2 * d) (min 2 (k - (2 * d))) else [||]
        in
        label_slot.(v) <-
          Some
            {
              part_root_id = Graph.id g proot;
              dfs_rank = d;
              subtree = Hashtbl.find size v;
              k;
              depth_in_part = Tree.depth tree v - Tree.depth tree proot;
              dbound;
              own;
            };
        index_slot.(v) <- id)
      members;
    parts := { id; kind; root = proot; members; pieces; diameter } :: !parts
  in
  Array.iteri
    (fun pi members -> build_part `Top members (top_pieces top_part_group.(pi)) top_label top_of)
    top_parts_members;
  List.iter
    (fun (f : Fragment.t) ->
      build_part `Bottom (Array.to_list f.members) (bot_pieces f) bot_label bot_of)
    bot_frags;
  let parts = Array.of_list (List.rev !parts) in
  (* delimiter: lowest top level per node *)
  let delim =
    Array.init n (fun v ->
        let tops =
          List.filter (fun i -> is_top h.frags.(i)) h.of_node.(v)
          |> List.map (fun i -> h.frags.(i).level)
        in
        match tops with [] -> h.height + 1 | l :: _ -> l)
  in
  {
    threshold = t;
    parts;
    top_of;
    bot_of;
    top_label = Array.map Option.get top_label;
    bot_label = Array.map Option.get bot_label;
    delim;
  }

(* ------------------------------------------------------------------ *)
(* Structural facts the lemmas assert, used by the test-suite. *)

let lemma_6_4 (a : assignment) ~n =
  Array.for_all
    (fun p ->
      match p.kind with
      | `Bottom -> true
      | `Top ->
          List.length p.members >= a.threshold
          && p.diameter <= 4 * a.threshold + 4
          && Array.length p.pieces <= Ssmst_sim.Memory.of_nat n + 2)
    a.parts

let lemma_6_5 (a : assignment) =
  Array.for_all
    (fun p ->
      match p.kind with
      | `Top -> true
      | `Bottom ->
          List.length p.members < a.threshold
          && Array.length p.pieces <= 2 * List.length p.members)
    a.parts

(* ---------------- packed codec (Network.Flat) ---------------- *)

(* 6 scalar fields + own count + [own_slots] piece slots *)
let packed_label_words ~own_slots = 7 + (own_slots * Pieces.packed_words)

let pack_label ~own_slots (l : node_part_label) buf off =
  buf.(off) <- l.part_root_id;
  buf.(off + 1) <- l.dfs_rank;
  buf.(off + 2) <- l.subtree;
  buf.(off + 3) <- l.k;
  buf.(off + 4) <- l.depth_in_part;
  buf.(off + 5) <- l.dbound;
  let cnt = Array.length l.own in
  buf.(off + 6) <- cnt;
  for i = 0 to own_slots - 1 do
    let o = off + 7 + (i * Pieces.packed_words) in
    if i < cnt then Pieces.pack l.own.(i) buf o
    else Array.fill buf o Pieces.packed_words 0
  done

let unpack_label (buf : int array) off =
  {
    part_root_id = buf.(off);
    dfs_rank = buf.(off + 1);
    subtree = buf.(off + 2);
    k = buf.(off + 3);
    depth_in_part = buf.(off + 4);
    dbound = buf.(off + 5);
    own =
      Array.init buf.(off + 6) (fun i ->
          Pieces.unpack buf (off + 7 + (i * Pieces.packed_words)));
  }
