open Ssmst_graph
open Ssmst_sim
open Ssmst_replay

(* Flight-recorder scenario drivers for [msst explain] and [msst replay]
   (and the CI replay smoke test): run one of the repo's standard fault
   scenarios with the recorder attached and distil the recording into
   plain-data results the CLI can render in any format.

   Two drivers:

   - {!record_verify}: settle the full verifier, attach the recorder,
     inject a fault burst, run to detection, then walk the provenance DAG
     backwards from every alarming node to its originating injection —
     producing one printable witness per alarm whose hop count is checked
     against the [distance_c * f * ceil(log2 n)] detection-distance bound
     (the same formula the Section 2.4 monitor enforces).

   - {!replay_probe}: record the same ss-bfs stabilization run on both
     engines (event-driven via the write hook, naive via per-round
     diffing) and expose seek/step views plus the first-divergence
     bisector over the pair. *)

type params = {
  family : string;
  n : int;
  seed : int;
  faults : int;
  clustered : bool;  (* clustered placement (radius 2) instead of uniform *)
  interval : int;  (* checkpoint every <= interval rounds *)
  capacity : int;  (* delta-ring capacity *)
  max_rounds : int;  (* detection / stabilization budget *)
  distance_c : int;
}

let default_params =
  {
    family = "random";
    n = 64;
    seed = 42;
    faults = 2;
    clustered = true;
    interval = 64;
    capacity = Trace.default_capacity;
    max_rounds = 20000;
    distance_c = Ssmst_obs.Monitor.default_distance_c;
  }

(* ---------------- explain: fault -> alarm witnesses ---------------- *)

type witness = {
  alarm_node : int;
  alarm_round : int;  (* round of the alarm-raising write *)
  fault : Fault.id option;  (* [None]: the chain is broken *)
  hops : (int * int * string list) list;  (* (round, node, changed fields), fault first *)
  node_changes : int;  (* graph hops the corruption travelled *)
  bound : int;  (* distance_c * f * ceil(log2 n) *)
  within_bound : bool;
  error : string option;
}

type verify_run = {
  n : int;
  settled_round : int;
  victims : int list;
  detection : int option;  (* rounds from injection to the first alarm *)
  alarms : int list;
  witnesses : witness list;
  total_writes : int;
  dropped : int;
  checkpoints : int list;
  end_equal : bool;  (* replayed final state == live final state *)
}

let fault_model p =
  let placement =
    if p.clustered then Fault.Clustered { center = None; radius = 2 } else Fault.Uniform
  in
  Fault.make ~placement ~count:p.faults ()

(* [alarm = Some (node, round)] restricts the witness list to the one
   requested alarm (the node's first alarming write at or before [round]
   when given); the default explains every alarming node *)
let record_verify ?alarm p =
  let g = Verifier_campaign.graph_of_family p.family (Gen.rng p.seed) p.n in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let module R = Recorder.Make (P) in
  let net = Net.create g in
  let settle_budget = 8 * Verifier.window_bound m.Marker.labels.(0) in
  Net.run net Scheduler.Sync ~rounds:settle_budget;
  let settled_round = Net.rounds net in
  let rec_ =
    R.create ~interval:p.interval ~capacity:p.capacity ~round0:settled_round g (Net.states net)
  in
  Net.set_write_hook net (R.engine_hook rec_ (Net.states net));
  let victims = Net.inject net (Gen.rng (p.seed + 2)) (fault_model p) in
  let detection = Net.detection_time net Scheduler.Sync ~max_rounds:p.max_rounds in
  let alarms = List.sort Int.compare (Net.alarming_nodes net) in
  let f = max 1 (List.length victims) in
  let bound = p.distance_c * f * Memory.of_nat p.n in
  let witness_of ?round node =
    match R.explain rec_ ?round ~node () with
    | Ok (path : Provenance.path) ->
        let alarm_round =
          match List.rev path.hops with h :: _ -> h.Provenance.round | [] -> settled_round
        in
        {
          alarm_node = node;
          alarm_round;
          fault = Some path.fault;
          hops = List.map (fun (h : Provenance.hop) -> (h.round, h.node, h.fields)) path.hops;
          node_changes = path.node_changes;
          bound;
          within_bound = path.node_changes <= bound;
          error = None;
        }
    | Error e ->
        {
          alarm_node = node;
          alarm_round = R.last_round rec_;
          fault = None;
          hops = [];
          node_changes = -1;
          bound;
          within_bound = false;
          error = Some (Provenance.error_to_string e);
        }
  in
  let witnesses =
    match alarm with
    | None -> List.map (fun v -> witness_of v) alarms
    | Some (node, round) -> [ witness_of ?round node ]
  in
  let final = R.state_at rec_ (R.last_round rec_) in
  let end_equal =
    let live = Net.states net in
    let ok = ref true in
    Array.iteri (fun v s -> if not (P.equal s live.(v)) then ok := false) final.R.states;
    !ok
  in
  {
    n = p.n;
    settled_round;
    victims;
    detection;
    alarms;
    witnesses;
    total_writes = R.total_writes rec_;
    dropped = R.dropped rec_;
    checkpoints = R.checkpoint_rounds rec_;
    end_equal;
  }

(* every witness terminates at a fault and respects the bound *)
let all_witnessed r =
  r.witnesses <> []
  && List.for_all (fun w -> w.fault <> None && w.within_bound) r.witnesses

(* ---------------- replay: seek / step / diff ---------------- *)

type view = { round : int; exact : bool; changed : int }
(* [changed]: nodes whose register differs from the previous view *)

type replay_run = {
  start_round : int;
  last_round : int;
  total_writes : int;
  dropped : int;
  sound_from : int option;
  checkpoints : int list;
  views : view list;  (* the seek view first, then one per step *)
  divergence : (int * int * string) option;  (* engine vs naive *)
  end_equal : bool;
}

(* Record an ss-bfs stabilization (all nodes initially claim leadership,
   churn until the max-identity BFS tree wins) plus one mid-run fault
   burst; optionally record the naive engine's twin run for the bisector. *)
let replay_probe p ~seek ~steps ~diff =
  let module P = Ssmst_protocols.Ss_bfs.P in
  let module Net = Network.Make (P) in
  let module Nv = Network.Naive (P) in
  let module R = Recorder.Make (P) in
  let g = Verifier_campaign.graph_of_family p.family (Gen.rng p.seed) p.n in
  let net = Net.create g in
  let rec_ = R.create ~interval:p.interval ~capacity:p.capacity ~round0:0 g (Net.states net) in
  Net.set_write_hook net (R.engine_hook rec_ (Net.states net));
  let quiet budget =
    (* run until a write-free round, bounded *)
    let rec go left =
      if left > 0 then begin
        let before = (Net.metrics net).Metrics.register_writes in
        Net.round net Scheduler.Sync;
        if (Net.metrics net).Metrics.register_writes > before then go (left - 1)
      end
    in
    go budget
  in
  quiet p.max_rounds;
  if p.faults > 0 then ignore (Net.inject net (Gen.rng (p.seed + 2)) (fault_model p));
  quiet p.max_rounds;
  let rounds_run = Net.rounds net in
  let divergence, end_equal =
    if not diff then (None, true)
    else begin
      let nv = Nv.create g in
      let rec_nv = R.create ~interval:p.interval ~capacity:p.capacity ~round0:0 g (Nv.states nv) in
      let observe () = R.observe_round rec_nv ~round:(Nv.rounds nv) (Nv.states nv) in
      let fault_at = ref (-1) in
      (* twin run: same rounds, same injection round, twin RNG *)
      (match
         List.find_opt
           (fun (w : R.write) -> match w.cause with Trace.Fault _ -> true | _ -> false)
           (R.writes rec_)
       with
      | Some w -> fault_at := w.round
      | None -> ());
      while Nv.rounds nv < rounds_run do
        if Nv.rounds nv = !fault_at then begin
          ignore (Nv.inject nv (Gen.rng (p.seed + 2)) (fault_model p));
          (* fault writes belong to the injection round, before the next
             round executes — exactly how the engine records them *)
          observe ()
        end;
        Nv.round nv Scheduler.Sync;
        observe ()
      done;
      if Nv.rounds nv = !fault_at then begin
        ignore (Nv.inject nv (Gen.rng (p.seed + 2)) (fault_model p));
        observe ()
      end;
      let eq =
        let live = Net.states net and naive = Nv.states nv in
        let ok = ref true in
        Array.iteri (fun v s -> if not (P.equal s naive.(v)) then ok := false) live;
        !ok
      in
      (R.first_divergence rec_ rec_nv, eq)
    end
  in
  let views =
    let c = R.seek rec_ seek in
    let snapshot prev =
      let changed = ref 0 in
      (match prev with
      | None -> ()
      | Some old ->
          Array.iteri
            (fun v s -> if not (P.equal s old.(v)) then incr changed)
            (R.cursor_states c));
      ( { round = R.cursor_round c; exact = R.cursor_exact c; changed = !changed },
        Array.copy (R.cursor_states c) )
    in
    let v0, prev = snapshot None in
    let acc = ref [ v0 ] and prev = ref prev in
    (try
       for _ = 1 to steps do
         if not (R.step c) then raise Exit;
         let v, p' = snapshot (Some !prev) in
         acc := v :: !acc;
         prev := p'
       done
     with Exit -> ());
    List.rev !acc
  in
  {
    start_round = R.start_round rec_;
    last_round = R.last_round rec_;
    total_writes = R.total_writes rec_;
    dropped = R.dropped rec_;
    sound_from = R.sound_from rec_;
    checkpoints = R.checkpoint_rounds rec_;
    views;
    divergence;
    end_equal;
  }
