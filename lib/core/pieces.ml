open Ssmst_graph

(* The pieces of information I(F) = ID(F) ∘ ω(F) (Section 6): the fragment
   identity (root identity + level) together with the weight of its minimum
   outgoing edge, under the distinct weight function ω′.  O(log n) bits. *)

type t = {
  root_id : int;  (* identity of the fragment root *)
  level : int;
  weight : Weight.t;  (* ω(F): weight of the minimum outgoing edge *)
}

let equal a b = a.root_id = b.root_id && a.level = b.level && Weight.equal a.weight b.weight

let bits p =
  Ssmst_sim.Memory.of_int p.root_id + Ssmst_sim.Memory.of_nat p.level + Weight.bits p.weight

let pp ppf p = Fmt.pf ppf "I(%d@%d;%a)" p.root_id p.level Weight.pp p.weight

(* The piece of a fragment, as the marker computes it.  The weight recorded
   is that of the fragment's candidate edge; on correct instances this *is*
   the minimum outgoing edge (the verifier re-checks both C1 and C2). *)
let of_fragment (g : Graph.t) ~(weight_fn : Mst.weight_fn) (f : Fragment.t) =
  match f.candidate with
  | None -> None
  | Some (w, x) ->
      Some { root_id = Graph.id g f.root; level = f.level; weight = weight_fn w x }

(* An arbitrary piece for fault injection. *)
let random st =
  {
    root_id = Random.State.int st 1024;
    level = Random.State.int st 12;
    weight = Weight.make ~base:(Random.State.int st 1024) ~in_tree:(Random.State.bool st)
        ~id_u:(Random.State.int st 64) ~id_v:(Random.State.int st 64);
  }

(* ---------------- packed codec (Network.Flat) ---------------- *)

let packed_words = 6

let pack (p : t) buf off =
  buf.(off) <- p.root_id;
  buf.(off + 1) <- p.level;
  buf.(off + 2) <- p.weight.Weight.base;
  buf.(off + 3) <- p.weight.Weight.anti_tree;
  buf.(off + 4) <- p.weight.Weight.id_min;
  buf.(off + 5) <- p.weight.Weight.id_max

let unpack buf off =
  {
    root_id = buf.(off);
    level = buf.(off + 1);
    weight =
      {
        Weight.base = buf.(off + 2);
        anti_tree = buf.(off + 3);
        id_min = buf.(off + 4);
        id_max = buf.(off + 5);
      };
  }
