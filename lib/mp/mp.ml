open Ssmst_graph
open Ssmst_sim

(* Message passing over the shared-memory model (Section 2.2).

   The paper runs message-passing protocols (the Awerbuch-Varghese
   transformer, GHS) by emulating links with shared registers: the sender
   publishes (value, toggle) and waits for the receiver's acknowledgement,
   the toggle (mod 3) preventing duplication from arbitrary initial states —
   see {!Ssmst_protocols.Datalink}.  Sending a message costs O(1) ideal
   time, so message-passing time bounds carry over.

   This module provides the emulation as a {!Protocol.S} adapter: a
   message-passing protocol supplies per-node event handlers, and the
   adapter runs one datalink per direction per edge.  Queues make the
   emulation's memory proportional to the messages in flight; this layer is
   a substrate for non-stabilizing protocols (GHS, the transformer's inner
   algorithms), not itself a bounded-memory self-stabilizing protocol. *)

type 'm reaction = {
  sends : (int * 'm) list;  (** (port, message) to transmit *)
  defers : (int * 'm) list;  (** messages to re-deliver later, with ports *)
}

let nothing = { sends = []; defers = [] }
let send ps = { sends = ps; defers = [] }

module type MESSAGE_PROTOCOL = sig
  type state
  type message

  val init : Graph.t -> int -> state * (int * message) list
  (** Initial state and spontaneous sends, as [(port, message)] pairs. *)

  val on_message : Graph.t -> int -> state -> port:int -> message -> state * message reaction
  (** Handle one delivered message.  [defers] implements GHS's "place the
      message at the end of the queue": the message is re-delivered with its
      original port on a later activation. *)

  val message_bits : message -> int

  val state_bits : state -> int
end

module Emulate (M : MESSAGE_PROTOCOL) = struct
  (* one datalink per outgoing port: outbox + toggle, and an ack per
     incoming port *)
  type link = {
    outbox : M.message option;
    toggle : Ssmst_protocols.Datalink.toggle;
    queue : M.message list;  (* waiting to enter the outbox *)
  }

  type state = {
    inner : M.state;
    links : link array;  (* indexed by port *)
    acks : Ssmst_protocols.Datalink.toggle array;  (* last consumed, per port *)
    deferred : (int * M.message) list;  (* (port, msg) re-delivered later *)
    delivered : int;  (* messages consumed so far (diagnostics) *)
  }

  let fresh_link = { outbox = None; toggle = Ssmst_protocols.Datalink.T0; queue = [] }

  let enqueue links (port, msg) =
    links.(port) <- { (links.(port)) with queue = links.(port).queue @ [ msg ] }

  let init g v =
    let inner, sends = M.init g v in
    let links = Array.make (Graph.degree g v) fresh_link in
    List.iter (enqueue links) sends;
    {
      inner;
      links;
      acks = Array.make (Graph.degree g v) Ssmst_protocols.Datalink.T0;
      deferred = [];
      delivered = 0;
    }

  let step g v (s : state) read =
    let deg = Graph.degree g v in
    let links = Array.copy s.links in
    let acks = Array.copy s.acks in
    let inner = ref s.inner in
    let delivered = ref s.delivered in
    let new_defers = ref [] in
    let handle ~port msg =
      let inner', reaction = M.on_message g v !inner ~port msg in
      inner := inner';
      incr delivered;
      List.iter (enqueue links) reaction.sends;
      new_defers := !new_defers @ reaction.defers
    in
    (* 1. re-deliver deferred messages with their original ports; fresh
       deferrals accumulate for the *next* activation, so one activation
       cannot loop *)
    List.iter (fun (port, msg) -> handle ~port msg) s.deferred;
    (* 2. receive from every neighbour: consume its outbox toward us if the
       toggle moved *)
    for p = 0 to deg - 1 do
      let u = Graph.peer_at g v p in
      let su = read u in
      let their_port = Graph.port_to g u v in
      let link = su.links.(their_port) in
      (match link.outbox with
      | Some m when link.toggle <> acks.(p) ->
          acks.(p) <- link.toggle;
          handle ~port:p m
      | Some _ | None -> ())
    done;
    (* 3. advance our outgoing links: retire acknowledged messages, publish
       the next queued one *)
    for p = 0 to deg - 1 do
      let u = Graph.peer_at g v p in
      let su = read u in
      let their_port = Graph.port_to g u v in
      let their_ack = su.acks.(their_port) in
      let link = links.(p) in
      let link =
        match link.outbox with
        | Some _ when link.toggle <> their_ack -> link (* still in flight *)
        | _ -> (
            match link.queue with
            | [] -> { link with outbox = None }
            | m :: rest ->
                {
                  outbox = Some m;
                  toggle = Ssmst_protocols.Datalink.next link.toggle;
                  queue = rest;
                })
      in
      links.(p) <- link
    done;
    { inner = !inner; links; acks; deferred = !new_defers; delivered = !delivered }

  let alarm _ = false

  (* states are pure data (records, arrays, lists over M.state / M.message,
     which MESSAGE_PROTOCOL instantiations keep functional-value-free), so
     structural equality is register equality *)
  let equal (a : state) (b : state) = a = b

  let bits (s : state) =
    M.state_bits s.inner
    + Array.fold_left
        (fun acc l ->
          acc + 2
          + Memory.of_option M.message_bits l.outbox
          + Memory.of_list M.message_bits l.queue)
        0 s.links
    + (2 * Array.length s.acks)
    + Memory.of_list (fun (_, m) -> 4 + M.message_bits m) s.deferred

  let corrupt _ _ _ s = s (* the emulation hosts non-stabilizing protocols *)
  let corrupt_field _ _ _ s = s

  let field_names = [| "inner"; "links"; "acks"; "deferred"; "delivered" |]

  let encode (s : state) =
    [|
      Protocol.hash_field s.inner;
      Protocol.hash_field s.links;
      Protocol.hash_field s.acks;
      Protocol.hash_field s.deferred;
      s.delivered;
    |]

  (* no message queued, in flight, or deferred anywhere *)
  let quiescent_node (s : state) =
    s.deferred = []
    && Array.for_all (fun l -> l.outbox = None && l.queue = []) s.links

  let inner (s : state) = s.inner
end
