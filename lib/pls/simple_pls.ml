open Ssmst_graph

(* The warm-up 1-proof labeling schemes of Section 2.6, as standalone
   schemes: Example SP (a spanning tree), Example NumK (knowing n), and
   Example EDIAM (an upper bound on a tree's height).  The core verifier
   embeds equivalent checks; these standalone versions document the
   building blocks and are property-tested on their own. *)

(* ---------------- Example SP: H(G) is a spanning tree ---------------- *)

module Spanning = struct
  type label = { root_id : int; dist : int }

  let bits l = Ssmst_sim.Memory.of_int l.root_id + Ssmst_sim.Memory.of_nat l.dist

  let mark (t : Tree.t) =
    let g = Tree.graph t in
    Array.init (Graph.n g) (fun v ->
        { root_id = Graph.id g (Tree.root t); dist = Tree.depth t v })

  (* One-round verification of node [v] against a claimed component
     array. *)
  let check (g : Graph.t) (comp : Tree.component) (labels : label array) v =
    let l = labels.(v) in
    let ok = ref true in
    (* root identity agreement with all neighbours *)
    Graph.iter_ports g v (fun _ u -> if labels.(u).root_id <> l.root_id then ok := false);
    if l.dist = 0 then begin
      if l.root_id <> Graph.id g v then ok := false
    end
    else begin
      match comp.(v) with
      | None -> ok := false
      | Some p ->
          if p >= Graph.degree g v then ok := false
          else
            let u = Graph.peer_at g v p in
            if labels.(u).dist <> l.dist - 1 then ok := false
    end;
    !ok

  let accepts g comp labels =
    let rec go v = v >= Graph.n g || (check g comp labels v && go (v + 1)) in
    go 0
end

(* ---------------- Example NumK: every node knows n ---------------- *)

module Size = struct
  type label = { claimed_n : int; subcount : int }

  let bits l = Ssmst_sim.Memory.of_nat l.claimed_n + Ssmst_sim.Memory.of_nat l.subcount

  let mark (t : Tree.t) =
    let sizes = Tree.subtree_sizes t in
    Array.init (Tree.n t) (fun v -> { claimed_n = Tree.n t; subcount = sizes.(v) })

  (* [parent]/[children] come from a previously verified Example SP. *)
  let check (g : Graph.t) ~parent ~children (labels : label array) v =
    let l = labels.(v) in
    let ok = ref true in
    Graph.iter_ports g v (fun _ u -> if labels.(u).claimed_n <> l.claimed_n then ok := false);
    let sub = List.fold_left (fun acc c -> acc + labels.(c).subcount) 1 (children v) in
    if l.subcount <> sub then ok := false;
    if parent v = None && l.subcount <> l.claimed_n then ok := false;
    !ok

  let accepts g ~parent ~children labels =
    let rec go v = v >= Graph.n g || (check g ~parent ~children labels v && go (v + 1)) in
    go 0
end

(* -------- Example EDIAM: a common upper bound on the tree height -------- *)

module Height_bound = struct
  type label = { bound : int; dist : int }

  let bits l = Ssmst_sim.Memory.of_nat l.bound + Ssmst_sim.Memory.of_nat l.dist

  let mark (t : Tree.t) ~bound =
    Array.init (Tree.n t) (fun v -> { bound; dist = Tree.depth t v })

  let check (g : Graph.t) ~parent (labels : label array) v =
    let l = labels.(v) in
    let ok = ref true in
    Graph.iter_ports g v (fun _ u -> if labels.(u).bound <> l.bound then ok := false);
    (match parent v with
    | None -> if l.dist <> 0 then ok := false
    | Some p -> if labels.(p).dist <> l.dist - 1 then ok := false);
    if l.dist > l.bound then ok := false;
    !ok

  let accepts g ~parent labels =
    let rec go v = v >= Graph.n g || (check g ~parent labels v && go (v + 1)) in
    go 0
end
