open Ssmst_graph
open Ssmst_core

(* The Korman-Kutten 1-proof labeling scheme for MST ([54, 55]), the
   baseline this paper improves on: detection time exactly 1, memory
   Θ(log² n) bits per node.

   Each node stores, for *every* level j, the full piece I(F_j(v)) of the
   fragment containing it — Θ(log n) pieces of Θ(log n) bits — next to the
   Section 5 strings.  The verifier is a single-round check: structural
   legality (as in the compact scheme) plus, per level and per neighbour,
   the agreement and minimality conditions C1/C2, all answerable instantly
   because the pieces sit in the labels rather than on trains. *)

type label = {
  base : Marker.node_label;  (* strings, SP, NumK; part labels unused here *)
  pieces : Pieces.t option array;  (* pieces.(j) = I(F_j(v)), per level *)
}

type t = { marker : Marker.t; labels : label array }

let bits (l : label) =
  Labels.bits l.base.Marker.strings
  + Ssmst_sim.Memory.of_option Ssmst_sim.Memory.of_nat l.base.Marker.comp_port
  + Ssmst_sim.Memory.of_int l.base.Marker.sp_root
  + Ssmst_sim.Memory.of_nat l.base.Marker.sp_depth
  + Ssmst_sim.Memory.of_nat l.base.Marker.nk_n
  + Ssmst_sim.Memory.of_nat l.base.Marker.nk_sub
  + Ssmst_sim.Memory.of_array (Ssmst_sim.Memory.of_option Pieces.bits) l.pieces

let max_bits (t : t) = Array.fold_left (fun acc l -> max acc (bits l)) 0 t.labels

(* Marker: every node keeps all its pieces. *)
let mark (m : Marker.t) =
  let g = m.graph in
  let h = m.hierarchy in
  let weight_fn = Graph.weight_fn g ~in_tree:(fun u v -> Tree.is_tree_edge m.tree u v) in
  let len = h.height + 1 in
  let labels =
    Array.init (Graph.n g) (fun v ->
        let pieces = Array.make len None in
        List.iter
          (fun fi ->
            let f = h.frags.(fi) in
            pieces.(f.level) <- Pieces.of_fragment g ~weight_fn f)
          h.of_node.(v);
        { base = m.labels.(v); pieces })
  in
  { marker = m; labels }

(* One-round verifier at node [v]; returns the violated checks. *)
let check_node (t : t) v =
  let g = t.marker.graph in
  let l = t.labels.(v) in
  let bad = ref [] in
  let fail name = bad := name :: !bad in
  let strings = l.base.Marker.strings in
  let parent =
    match l.base.Marker.comp_port with
    | Some p when p < Graph.degree g v -> Some (Graph.peer_at g v p)
    | Some _ | None -> None
  in
  let children =
    Array.to_list (Graph.neighbours g v)
    |> List.filter (fun u ->
           match t.labels.(u).base.Marker.comp_port with
           | Some p when p < Graph.degree g u -> Graph.peer_at g u p = v
           | Some _ | None -> false)
  in
  let is_root = l.base.Marker.sp_depth = 0 in
  (* structural: SP + strings *)
  (if is_root then begin
     if l.base.Marker.sp_root <> Graph.id g v then fail "sp"
   end
   else
     match parent with
     | None -> fail "sp"
     | Some p -> if t.labels.(p).base.Marker.sp_depth <> l.base.Marker.sp_depth - 1 then fail "sp");
  let view : Labels.view =
    {
      label = (fun u -> t.labels.(u).base.Marker.strings);
      parent = (fun _ -> parent);
      children = (fun _ -> children);
      is_root = (fun _ -> is_root);
      ident = (fun u -> Graph.id g u);
    }
  in
  if Labels.check_node view v <> [] then fail "rs-eps";
  (* pieces present exactly where the strings say *)
  if Array.length l.pieces <> strings.Labels.len then fail "pieces-len"
  else
    for j = 0 to strings.Labels.len - 1 do
      let belongs = strings.Labels.roots.(j) <> Labels.RStar in
      let has = l.pieces.(j) <> None in
      let is_top_level = j = strings.Labels.len - 1 in
      if belongs && (not is_top_level) && not has then fail "piece-missing";
      if (not belongs) && has then fail "piece-spurious";
      (* root identity (Claim 8.3 analogue, instant here) *)
      match l.pieces.(j) with
      | Some pc ->
          if pc.Pieces.level <> j then fail "piece-level";
          if strings.Labels.roots.(j) = Labels.R1 && pc.Pieces.root_id <> Graph.id g v then
            fail "piece-root"
      | None -> ()
    done;
  (* per level: agreement, C1 and C2 against every neighbour, instantly *)
  let ell = strings.Labels.len - 1 in
  for j = 0 to ell - 1 do
    match (if j < Array.length l.pieces then l.pieces.(j) else None) with
    | None -> ()
    | Some ask ->
        (* C1 *)
        let endp = strings.Labels.endp.(j) in
        (match endp with
        | Labels.Up | Labels.Down -> (
            let target =
              match endp with
              | Labels.Up -> parent
              | Labels.Down ->
                  List.find_opt
                    (fun c ->
                      let sc = t.labels.(c).base.Marker.strings in
                      j < sc.Labels.len && sc.Labels.parents.(j))
                    children
              | Labels.ENone | Labels.EStar -> None
            in
            match target with
            | None -> fail "c1-endpoint"
            | Some u ->
                let w =
                  Weight.make ~base:(Graph.base_weight g v u) ~in_tree:true
                    ~id_u:(Graph.id g v) ~id_v:(Graph.id g u)
                in
                if not (Weight.equal ask.Pieces.weight w) then fail "c1-weight";
                let same =
                  match t.labels.(u).pieces.(j) with
                  | exception Invalid_argument _ -> false
                  | Some pu -> pu.Pieces.root_id = ask.Pieces.root_id
                  | None -> false
                in
                if same then fail "c1-not-outgoing")
        | Labels.ENone | Labels.EStar -> ());
        (* C2 + agreement with every neighbour *)
        Graph.iter_ports g v (fun _ u ->
            let lu = t.labels.(u) in
            let pu = if j < Array.length lu.pieces then lu.pieces.(j) else None in
            let in_tree = parent = Some u || List.mem u children in
            match pu with
            | Some pu when pu.Pieces.root_id = ask.Pieces.root_id ->
                if not (Pieces.equal pu ask) then fail "agreement"
            | Some _ | None ->
                let w =
                  Weight.make ~base:(Graph.base_weight g v u) ~in_tree
                    ~id_u:(Graph.id g v) ~id_v:(Graph.id g u)
                in
                if not Weight.(ask.Pieces.weight <= w) then fail "c2")
  done;
  List.rev !bad

let accepts t =
  let n = Graph.n t.marker.graph in
  let rec go v = v >= n || (check_node t v = [] && go (v + 1)) in
  go 0

let rejecting_nodes t =
  let n = Graph.n t.marker.graph in
  List.filter (fun v -> check_node t v <> []) (List.init n Fun.id)

(* The KKP side of the Section 9 trade-off experiment: label bits Θ(log² n),
   detection time 1 (a single round suffices on negative instances). *)
let measure_lower_bound ~seed ~h ~tau ~positive =
  let g, _, m = Lower_bound.instance ~seed ~h ~tau ~positive in
  let kkp = mark m in
  let rejected = not (accepts kkp) in
  ( {
      Lower_bound.h;
      tau;
      n = Graph.n g;
      label_bits = max_bits kkp;
      detection_rounds = (if positive then None else if rejected then Some 1 else None);
    },
    rejected )
