open Ssmst_graph
open Ssmst_core

(* The KKP 1-proof labeling scheme as a running network protocol: the
   checker the paper's Section 1 alternative plugs into the transformer —
   detection time exactly 1 and detection distance f, at the price of
   Θ(log² n) bits per node.

   Each activation re-runs the one-round check of {!Kkp_pls} against the
   neighbours' registers; no working state beyond the alarm latch. *)

type state = { label : Kkp_pls.label; alarm : bool }

module type CONFIG = sig
  val scheme : Kkp_pls.t
end

module Make (C : CONFIG) = struct
  type nonrec state = state

  let init _g v = { label = C.scheme.Kkp_pls.labels.(v); alarm = false }

  (* the one-round check of Kkp_pls.check_node, against live registers *)
  let check g v (l : Kkp_pls.label) (labels : int -> Kkp_pls.label) =
    (* reuse the library checker by building a transient scheme view *)
    let arr =
      Array.init (Graph.n g) (fun u ->
          if u = v then l
          else if Graph.has_edge g v u then labels u
          else C.scheme.Kkp_pls.labels.(u) (* never read by check_node *))
    in
    let t = { Kkp_pls.marker = C.scheme.Kkp_pls.marker; labels = arr } in
    Kkp_pls.check_node t v = []

  let step g v (s : state) read =
    let labels u = (read u).label in
    (* only the node's own neighbourhood is consulted by check_node; the
       transient array above defaults distant entries to the marker values,
       which check_node never reads *)
    let neighbourhood_ok = check g v s.label labels in
    { s with alarm = s.alarm || not neighbourhood_ok }

  let alarm s = s.alarm

  let equal (a : state) (b : state) = a = b

  let bits s = Kkp_pls.bits s.label + 1

  let corrupt st g v (s : state) =
    let l = s.label in
    let pieces = Array.copy l.Kkp_pls.pieces in
    if Array.length pieces > 0 then begin
      let with_piece =
        Array.to_list pieces
        |> List.mapi (fun j p -> (j, p))
        |> List.filter (fun (_, p) -> p <> None)
      in
      match with_piece with
      | [] -> ()
      | _ ->
          let j, _ = List.nth with_piece (Random.State.int st (List.length with_piece)) in
          pieces.(j) <- Some (Pieces.random st)
    end;
    ignore g;
    ignore v;
    { label = { l with Kkp_pls.pieces }; alarm = false }

  (* targeted-field fault: bump exactly one stored piece's weight (the
     whole-piece replacement above is the scrambling severity) *)
  let corrupt_field st g v (s : state) =
    let l = s.label in
    let with_piece =
      Array.to_list l.Kkp_pls.pieces
      |> List.mapi (fun j p -> (j, p))
      |> List.filter_map (fun (j, p) -> Option.map (fun pc -> (j, pc)) p)
    in
    match with_piece with
    | [] -> corrupt st g v s
    | _ ->
        let j, pc = List.nth with_piece (Random.State.int st (List.length with_piece)) in
        let pieces = Array.copy l.Kkp_pls.pieces in
        let w = pc.Pieces.weight in
        pieces.(j) <-
          Some
            {
              pc with
              Pieces.weight = { w with Weight.base = w.Weight.base + 1 + Random.State.int st 7 };
            };
        { label = { l with Kkp_pls.pieces }; alarm = false }

  let field_names = [| "label"; "alarm" |]
  let encode (s : state) = [| Ssmst_sim.Protocol.hash_field s.label; Bool.to_int s.alarm |]
end
