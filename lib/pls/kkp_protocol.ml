open Ssmst_graph
open Ssmst_core

(* The KKP 1-proof labeling scheme as a running network protocol: the
   checker the paper's Section 1 alternative plugs into the transformer —
   detection time exactly 1 and detection distance f, at the price of
   Θ(log² n) bits per node.

   Each activation re-runs the one-round check of {!Kkp_pls} against the
   neighbours' registers; no working state beyond the alarm latch. *)

type state = { label : Kkp_pls.label; alarm : bool }

module type CONFIG = sig
  val scheme : Kkp_pls.t
end

module Make (C : CONFIG) = struct
  type nonrec state = state

  let init _g v = { label = C.scheme.Kkp_pls.labels.(v); alarm = false }

  (* the one-round check of Kkp_pls.check_node, against live registers *)
  let check g v (l : Kkp_pls.label) (labels : int -> Kkp_pls.label) =
    (* reuse the library checker by building a transient scheme view *)
    let arr =
      Array.init (Graph.n g) (fun u ->
          if u = v then l
          else if Graph.has_edge g v u then labels u
          else C.scheme.Kkp_pls.labels.(u) (* never read by check_node *))
    in
    let t = { Kkp_pls.marker = C.scheme.Kkp_pls.marker; labels = arr } in
    Kkp_pls.check_node t v = []

  let step g v (s : state) read =
    let labels u = (read u).label in
    (* only the node's own neighbourhood is consulted by check_node; the
       transient array above defaults distant entries to the marker values,
       which check_node never reads *)
    let neighbourhood_ok = check g v s.label labels in
    { s with alarm = s.alarm || not neighbourhood_ok }

  let alarm s = s.alarm

  let equal (a : state) (b : state) = a = b

  let bits s = Kkp_pls.bits s.label + 1

  let corrupt st g v (s : state) =
    let l = s.label in
    let pieces = Array.copy l.Kkp_pls.pieces in
    if Array.length pieces > 0 then begin
      let with_piece =
        Array.to_list pieces
        |> List.mapi (fun j p -> (j, p))
        |> List.filter (fun (_, p) -> p <> None)
      in
      match with_piece with
      | [] -> ()
      | _ ->
          let j, _ = List.nth with_piece (Random.State.int st (List.length with_piece)) in
          pieces.(j) <- Some (Pieces.random st)
    end;
    ignore g;
    ignore v;
    { label = { l with Kkp_pls.pieces }; alarm = false }

  (* targeted-field fault: bump exactly one stored piece's weight (the
     whole-piece replacement above is the scrambling severity) *)
  let corrupt_field st g v (s : state) =
    let l = s.label in
    let with_piece =
      Array.to_list l.Kkp_pls.pieces
      |> List.mapi (fun j p -> (j, p))
      |> List.filter_map (fun (j, p) -> Option.map (fun pc -> (j, pc)) p)
    in
    match with_piece with
    | [] -> corrupt st g v s
    | _ ->
        let j, pc = List.nth with_piece (Random.State.int st (List.length with_piece)) in
        let pieces = Array.copy l.Kkp_pls.pieces in
        let w = pc.Pieces.weight in
        pieces.(j) <-
          Some
            {
              pc with
              Pieces.weight = { w with Weight.base = w.Weight.base + 1 + Random.State.int st 7 };
            };
        { label = { l with Kkp_pls.pieces }; alarm = false }

  let field_names = [| "label"; "alarm" |]
  let encode (s : state) = [| Ssmst_sim.Protocol.hash_field s.label; Bool.to_int s.alarm |]

  (* ---------------- packed codec ----------------

     Only the pieces array and the alarm latch are dynamic: [base] is
     written by [init] from the scheme and never touched again ([step]
     keeps the label, [corrupt]/[corrupt_field] replace only pieces), so
     unpack recovers it from [C.scheme] instead of storing Θ(log² n)
     bits of marker label per node. *)

  let slot_words = 1 + Pieces.packed_words (* presence + piece *)

  let max_pieces g =
    let m = ref 0 in
    for v = 0 to Graph.n g - 1 do
      m := max !m (Array.length C.scheme.Kkp_pls.labels.(v).Kkp_pls.pieces)
    done;
    !m

  let words g = 1 + (max_pieces g * slot_words) + 1

  let field_offsets g = [| 0; 1 + (max_pieces g * slot_words) |]

  let pack g _v (s : state) buf off =
    let pieces = s.label.Kkp_pls.pieces in
    let cnt = Array.length pieces in
    buf.(off) <- cnt;
    let slots = max_pieces g in
    for i = 0 to slots - 1 do
      let o = off + 1 + (i * slot_words) in
      match if i < cnt then pieces.(i) else None with
      | None -> Array.fill buf o slot_words 0
      | Some p ->
          buf.(o) <- 1;
          Pieces.pack p buf (o + 1)
    done;
    buf.(off + 1 + (slots * slot_words)) <- Bool.to_int s.alarm

  let unpack g v buf off =
    let pieces =
      Array.init buf.(off) (fun i ->
          let o = off + 1 + (i * slot_words) in
          if buf.(o) = 0 then None else Some (Pieces.unpack buf (o + 1)))
    in
    {
      label = { base = C.scheme.Kkp_pls.labels.(v).Kkp_pls.base; pieces };
      alarm = buf.(off + 1 + (max_pieces g * slot_words)) = 1;
    }
end
