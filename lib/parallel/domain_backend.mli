(** The build-time selected multicore backend behind {!Domain_pool}.

    Dune copies one of two implementations into [domain_backend.ml]:
    [domain_backend_ocaml5.ml.in] (real [Domain.spawn]/[join]) when the
    compiler is >= 5.0, or [domain_backend_seq.ml.in] (a plain sequential
    loop) on 4.14, where the [Domain] module does not exist.  Client code
    never branches on the OCaml version — it asks {!available} at run
    time. *)

val available : bool
(** [true] iff this binary was built against a multicore runtime and
    [parallel_run] actually spawns domains. *)

val parallel_run : int -> (int -> unit) -> unit
(** [parallel_run k f] runs [f 0 .. f (k-1)], each call exactly once, and
    returns only after all of them have finished (a full barrier).  On the
    multicore backend [f 1 .. f (k-1)] run on fresh domains while [f 0]
    runs on the calling domain; sequentially it is a plain ascending loop.
    If any call raises, the first exception in ascending-index order is
    re-raised (with its backtrace) after every domain has been joined. *)
