(** A shared-memory domain pool for intra-instance parallelism.

    Where {!Pool} forks worker {e processes} and marshals results back
    (instance-granular, copy-everything), [Domain_pool] fans a computation
    across OCaml 5 {e domains} in the same heap: workers read the shared
    pre-round snapshot freely and write only into disjoint slices they
    own, then the caller applies effects sequentially after the barrier.
    On OCaml 4.14 the backend (see {!Domain_backend}) degrades to a
    sequential loop and {!available} is [false]; callers keep working,
    just without speedup.

    The determinism discipline matches [Pool.map]: static contiguous
    sharding, all observable effects applied in ascending index order on
    the calling domain, so results are byte-identical at every domain
    count. *)

val available : bool
(** [true] iff this binary can actually run domains in parallel
    (multicore runtime).  When [false], every entry point below still
    works — sequentially. *)

val cpu_count : unit -> int
(** Cores genuinely usable by this process: {!Pool.cpu_count} (affinity
    mask and cgroup quota aware). *)

val domains_from_env : ?var:string -> ?default:int -> unit -> int
(** The domain count from the environment variable [var] (default
    ["MSST_DOMAINS"]); [default] (default 1) when unset or unparsable.
    Clamped to at least 1. *)

val slice : domains:int -> int -> int -> int * int
(** [slice ~domains n w] is worker [w]'s contiguous half-open range
    [(lo, hi)] of [0..n-1]: [lo = w*n/domains], [hi = (w+1)*n/domains].
    Slices tile [0..n-1] exactly, in ascending order, and differ in
    length by at most one. *)

val run : domains:int -> (int -> unit) -> unit
(** [run ~domains f] runs [f 0 .. f (domains-1)] — in parallel when the
    backend allows, worker 0 on the calling domain — and returns after
    all have finished.  [domains <= 1] calls [f 0] directly (no spawn).
    Exceptions re-raise in ascending worker order after the barrier.
    [f] must confine its writes to worker-disjoint state.

    With a {!Probe} sink installed, every worker's start/stop is stamped
    with [sink.now] and emitted as a per-worker [span ~tid:w "worker"]
    after the barrier — strictly out-of-band, so results stay
    byte-identical with and without telemetry. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f tasks] is [List.map f tasks] computed by [domains]
    domains over contiguous shards ({!slice}).  Order and content of the
    result are identical to [List.map] for every domain count; an
    exception raised by [f] propagates (first task in ascending order
    wins).  [domains <= 1], a short list, or a sequential backend all
    take the plain [List.map] path. *)
