(* A fork-based worker pool (see the interface).  Design constraints:

   - Determinism: worker [w] statically owns task indices congruent to [w]
     modulo the worker count and processes them in ascending order; the
     parent slots every result by its index, so the returned list is in
     submission order no matter how frames interleave on the wire.
   - No hang: the parent never writes to a worker (static sharding), so
     the only blocking edge is worker -> parent, which [select] drains as
     it becomes readable.  A dead worker closes its pipe; EOF releases the
     parent, and unfinished shards fall back to a sequential retry.
   - Portability: plain [Unix.fork] + pipes runs identically on OCaml 4.14
     and 5.1 (single-domain; no Thread/Domain dependency). *)

type error = { shard : int; worker : int; reason : string }

let default_on_error e =
  Fmt.epr "[pool] worker %d lost shard %d (%s); retrying sequentially@." e.worker e.shard
    e.reason

(* OCaml 5 permanently forbids [Unix.fork] once any domain has been
   spawned in the process ("Unix.fork may not be called while other
   domains were created").  [Domain_backend] latches this flag before its
   first spawn; [map] then degrades to the sequential path — same bytes,
   no workers — instead of raising mid-sweep. *)
let forking_blocked = ref false
let block_forking () = forking_blocked := true
let fork_available () = not !forking_blocked

(* ---------------- wire format ---------------- *)

(* One frame per completed shard: an 8-byte little-endian payload length,
   then the marshalled [(index, outcome)] pair.  The explicit prefix lets
   the parent buffer partial reads without peeking into Marshal headers. *)

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let send fd value =
  let payload = Marshal.to_bytes value [] in
  let header = Bytes.create 8 in
  Bytes.set_int64_le header 0 (Int64.of_int (Bytes.length payload));
  write_all fd header;
  write_all fd payload

(* ---------------- the parent's per-worker collector ---------------- *)

let chunk = 65536

type collector = {
  wi : int;
  pid : int;
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable filled : int;
  mutable eof : bool;
  mutable reaped : Unix.process_status option;
  mutable proto_error : string option;  (* corrupt frame: stream abandoned *)
}

(* Abandon a worker's stream (EOF or a corrupt frame): whatever is left in
   its buffer is a partial frame and is discarded; the shards it never
   delivered take the sequential-retry path. *)
let abandon c reason =
  if not c.eof then begin
    c.eof <- true;
    c.proto_error <- reason;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end

let parse_frames c slot =
  let pos = ref 0 in
  (try
     while c.filled - !pos >= 8 do
       let len = Int64.to_int (Bytes.get_int64_le c.buf !pos) in
       if len <= 0 then failwith "corrupt frame length";
       if c.filled - !pos - 8 < len then raise Exit;
       let i, outcome = Marshal.from_bytes c.buf (!pos + 8) in
       slot i outcome;
       pos := !pos + 8 + len
     done
   with
  | Exit -> ()
  | _ -> abandon c (Some "corrupt result frame"));
  if !pos > 0 && not c.eof then begin
    Bytes.blit c.buf !pos c.buf 0 (c.filled - !pos);
    c.filled <- c.filled - !pos
  end

let read_into c slot =
  if Bytes.length c.buf - c.filled < chunk then begin
    let nb = Bytes.create (max (2 * Bytes.length c.buf) (c.filled + chunk)) in
    Bytes.blit c.buf 0 nb 0 c.filled;
    c.buf <- nb
  end;
  match Unix.read c.fd c.buf c.filled (Bytes.length c.buf - c.filled) with
  | 0 -> abandon c None
  | k ->
      c.filled <- c.filled + k;
      parse_frames c slot
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let rec reap c =
  match c.reaped with
  | Some st -> st
  | None -> (
      match Unix.waitpid [] c.pid with
      | _, st ->
          c.reaped <- Some st;
          st
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap c)

let crash_reason c =
  match c.proto_error with
  | Some r -> r
  | None -> (
      match reap c with
      | Unix.WEXITED 0 -> "pipe closed before the shard was delivered"
      | Unix.WEXITED k -> Fmt.str "worker exited with code %d" k
      | Unix.WSIGNALED s -> Fmt.str "worker killed by signal %d" s
      | Unix.WSTOPPED s -> Fmt.str "worker stopped by signal %d" s)

(* ---------------- map ---------------- *)

let map (type a b) ?(jobs = 1) ?(on_error = default_on_error) (f : a -> b) (tasks : a list)
    : b list =
  let n = List.length tasks in
  if jobs <= 1 || n <= 1 || !forking_blocked then List.map f tasks
  else begin
    let tasks = Array.of_list tasks in
    let workers = min jobs n in
    (* the forked children inherit the stdio buffers: flush now so nothing
       pending is written twice *)
    flush stdout;
    flush stderr;
    let spawn wi =
      let rd, wr = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
          (* the worker: compute the statically-owned shards in ascending
             index order, stream one frame each, and leave via [_exit] so
             no inherited at_exit/flush machinery runs twice *)
          (try Unix.close rd with Unix.Unix_error _ -> ());
          let code =
            try
              let i = ref wi in
              while !i < n do
                let outcome : (b, string) result =
                  match f tasks.(!i) with
                  | v -> Ok v
                  | exception e -> Error (Printexc.to_string e)
                in
                send wr (!i, outcome);
                i := !i + workers
              done;
              (try Unix.close wr with Unix.Unix_error _ -> ());
              0
            with _ -> 2
          in
          Unix._exit code
      | pid ->
          Unix.close wr;
          {
            wi;
            pid;
            fd = rd;
            buf = Bytes.create chunk;
            filled = 0;
            eof = false;
            reaped = None;
            proto_error = None;
          }
    in
    (* spawn in index order with an explicit loop: each worker must fork
       after the parent has closed every earlier write end, or a child
       would inherit it and keep a sibling's stream from reaching EOF *)
    let cs =
      let acc = ref [] in
      for wi = 0 to workers - 1 do
        acc := spawn wi :: !acc
      done;
      Array.of_list (List.rev !acc)
    in
    let remote : (b, string) result option array = Array.make n None in
    let slot i outcome = if i >= 0 && i < n then remote.(i) <- Some outcome in
    Fun.protect
      ~finally:(fun () ->
        (* exceptional exits (on_error or a retry raising) must not leak
           fds, zombies, or still-running workers *)
        Array.iter
          (fun c ->
            if not c.eof then begin
              c.eof <- true;
              try Unix.close c.fd with Unix.Unix_error _ -> ()
            end;
            if c.reaped = None then begin
              (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (reap c)
            end)
          cs)
      (fun () ->
        (* collect frames out of order until every stream has ended *)
        let rec collect () =
          let live = Array.to_list cs |> List.filter (fun c -> not c.eof) in
          if live <> [] then begin
            (match Unix.select (List.map (fun c -> c.fd) live) [] [] (-1.) with
            | ready, _, _ ->
                List.iter (fun c -> if List.mem c.fd ready then read_into c slot) live
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            collect ()
          end
        in
        collect ();
        Array.iter (fun c -> ignore (reap c)) cs;
        (* reassemble in submission order; anything a worker failed to
           deliver — crash, EOF mid-frame, or a remote exception — is
           surfaced as a typed error and retried once, sequentially *)
        let result i =
          match remote.(i) with
          | Some (Ok v) -> v
          | Some (Error msg) ->
              on_error
                { shard = i; worker = i mod workers; reason = "task raised: " ^ msg };
              f tasks.(i)
          | None ->
              let c = cs.(i mod workers) in
              on_error { shard = i; worker = c.wi; reason = crash_reason c };
              f tasks.(i)
        in
        (* explicit ascending loop: retries (and their on_error calls) must
           run in submission order for deterministic output *)
        let acc = ref [] in
        for i = 0 to n - 1 do
          acc := result i :: !acc
        done;
        List.rev !acc)
  end

(* ---------------- environment probes ---------------- *)

(* [nproc] semantics, not hardware topology: a container pinned to two
   cores or quota-limited to 1.5 CPUs reports a small number here even
   when /proc/cpuinfo lists 64 processors.  The detection order is
   affinity mask and cgroup quota (take the min of whichever parse),
   then the legacy /proc/cpuinfo count, then getconf. *)

let count_of_mask s =
  (* popcount of a kernel hex cpumask, e.g. "ff" or "ff,ffffffff" *)
  let count = ref 0 and seen = ref false in
  match
    String.iter
      (fun c ->
        let digit =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | ',' -> -1
          | _ -> raise Exit
        in
        if digit >= 0 then begin
          seen := true;
          let d = ref digit in
          while !d > 0 do
            count := !count + (!d land 1);
            d := !d lsr 1
          done
        end)
      (String.trim s)
  with
  | () -> if !seen && !count > 0 then Some !count else None
  | exception Exit -> None

let count_of_quota s =
  (* one cgroup line "<quota> <period>" in microseconds ("max <period>"
     and v1's quota -1 both mean unlimited); ceil(quota/period) cores *)
  match
    String.split_on_char ' ' (String.trim s) |> List.filter (fun t -> t <> "")
  with
  | [ q; p ] -> (
      match (int_of_string_opt q, int_of_string_opt p) with
      | Some q, Some p when q > 0 && p > 0 -> Some (max 1 ((q + p - 1) / p))
      | _ -> None)
  | _ -> None

let first_line path =
  match open_in path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> match input_line ic with l -> Some l | exception End_of_file -> None)
  | exception Sys_error _ -> None

let affinity_cpus () =
  match open_in "/proc/self/status" with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let key = "Cpus_allowed:" in
          let kl = String.length key in
          let res = ref None in
          (try
             while !res = None do
               let line = input_line ic in
               if String.length line > kl && String.sub line 0 kl = key then
                 res := count_of_mask (String.sub line kl (String.length line - kl))
             done
           with End_of_file -> ());
          !res)
  | exception Sys_error _ -> None

let quota_cpus () =
  match first_line "/sys/fs/cgroup/cpu.max" with
  | Some line -> count_of_quota line (* cgroup v2 *)
  | None -> (
      (* cgroup v1 keeps quota and period in separate files *)
      match
        ( first_line "/sys/fs/cgroup/cpu/cpu.cfs_quota_us",
          first_line "/sys/fs/cgroup/cpu/cpu.cfs_period_us" )
      with
      | Some q, Some p -> count_of_quota (String.trim q ^ " " ^ String.trim p)
      | _ -> None)

let cpu_count () =
  let from_proc () =
    match open_in "/proc/cpuinfo" with
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let k = ref 0 in
            (try
               while true do
                 let line = input_line ic in
                 if String.length line >= 9 && String.sub line 0 9 = "processor" then incr k
               done
             with End_of_file -> ());
            if !k > 0 then Some !k else None)
    | exception Sys_error _ -> None
  in
  let from_getconf () =
    match Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" with
    | ic ->
        let line = try input_line ic with End_of_file -> "" in
        ignore (Unix.close_process_in ic);
        int_of_string_opt (String.trim line)
    | exception Unix.Unix_error _ -> None
  in
  match List.filter_map (fun f -> f ()) [ affinity_cpus; quota_cpus ] with
  | k :: ks -> List.fold_left min k ks
  | [] -> (
      match from_proc () with
      | Some k -> k
      | None -> ( match from_getconf () with Some k when k > 0 -> k | _ -> 1))

let jobs_from_env ?(var = "MSST_JOBS") ?(default = 1) () =
  match Sys.getenv_opt var with
  | None -> max 1 default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> k
      | _ -> max 1 default)
