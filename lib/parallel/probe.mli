(** The global telemetry hook: a single installable sink of named
    wall-clock probes that the hot paths ({!Domain_pool.run}, the engines'
    sync rounds, transformer epochs, campaign trials) call into when — and
    only when — a profiler is attached.

    This module lives at the bottom of the library graph on purpose: the
    simulator cannot depend on the observatory, so the full profiler
    ({!Ssmst_obs.Telemetry}) installs itself here and everything above
    reports through this narrow interface.  With nothing installed every
    probe call is one [ref] read and a branch — the disabled cost the
    [bench PROF] gate pins at ~0%.

    Threading contract: {!sink.enter}/{!sink.leave}/{!sink.span} are
    called only from the calling (main) domain; worker domains may call
    {!sink.now} concurrently and must hand the resulting timestamps back
    to the caller, which emits them as retroactive {!sink.span}s after
    the join barrier.  Telemetry is strictly out-of-band: no probe may
    influence registers, metrics, traces or scheduling. *)

type sink = {
  now : unit -> float;
      (** Monotonic-enough seconds ([Unix.gettimeofday] or a fake clock).
          The only field worker domains may call. *)
  enter : string -> unit;  (** Begin the named phase (main domain only). *)
  leave : string -> unit;
      (** End the innermost open phase; the name is a cross-check, the
          stack decides. *)
  span : tid:int -> string -> float -> float -> unit;
      (** [span ~tid name t0 t1]: a retroactive interval on logical track
          [tid] (a worker-domain index), stamped by that worker via
          {!now} and emitted by the caller after the barrier. *)
}

val null : sink
(** Swallows everything; [now] returns [0.]. *)

val install : sink -> unit
val uninstall : unit -> unit

val get : unit -> sink option
(** [None] iff nothing is installed — the zero-cost fast path; grab it
    once per round, not per probe. *)

val enter : string -> unit
val leave : string -> unit
(** Convenience wrappers over {!get} for cold call sites (epoch / trial
    granularity); hot loops should match on {!get} themselves. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside [enter name]/[leave name]
    (exception-safe); no-op framing when nothing is installed. *)
