(** A [Unix.fork]-based worker pool for deterministic parallel execution.

    {!map} shards an indexed task list across worker processes and
    reassembles the results in submission order, so for a pure task
    function the result — and anything serialized from it — is
    byte-identical to the sequential run for every job count.  Tasks must
    therefore be self-contained (carry their own seeds) and their results
    must be marshallable plain data (no closures, no custom blocks that
    [Marshal] rejects).

    The protocol: worker [w] owns every task index [i] with
    [i mod workers = w] and streams [(index, result)] frames back over its
    pipe, each frame length-prefixed and marshalled; the parent collects
    frames out of order with [select] and slots them by index.  A worker
    that crashes or closes its pipe mid-frame surfaces as a typed
    {!error} per unfinished shard (passed to [on_error]); the partial
    frame is discarded and each such shard is retried once, sequentially,
    in the parent — a pool failure can cost time but never a hang and
    never a wrong or reordered result. *)

type error = {
  shard : int;  (** index (in the submitted list) of the affected task *)
  worker : int;  (** which worker (0-based) owned the shard *)
  reason : string;  (** what happened: signal, exit code, EOF, task exception *)
}
(** The typed description of one shard that did not come back from a
    worker.  Surfaced through [on_error] just before the shard's
    sequential retry. *)

val map : ?jobs:int -> ?on_error:(error -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f tasks] is [List.map f tasks], computed by [jobs] forked
    workers.  [jobs <= 1] (the default) runs sequentially in-process — no
    fork, no marshalling.  Results come back in submission order for every
    [jobs].

    A task that raises inside a worker is reported as an {!error} and
    retried sequentially in the parent, so the exception (if it
    reproduces) propagates exactly as it would have under [List.map].
    [on_error] (default: a warning on stderr) observes every shard that
    crashed, died with the worker, or raised remotely. *)

val block_forking : unit -> unit
(** Latch: declare that [Unix.fork] is no longer safe in this process.
    OCaml 5 forbids fork once any domain has been spawned, so the domain
    backend calls this before its first [Domain.spawn]; every subsequent
    {!map} runs its sequential path (same bytes, no workers).  There is no
    unlatch — the runtime restriction is permanent. *)

val fork_available : unit -> bool
(** Whether {!map} may still fork workers ([true] until {!block_forking}
    is called).  Tests that assert on worker-crash semantics skip when
    this is [false]. *)

val cpu_count : unit -> int
(** Cores genuinely usable by this process, [nproc]-style: the minimum of
    the sched-affinity mask ([Cpus_allowed] in [/proc/self/status]) and
    the cgroup CPU quota (v2 [cpu.max], v1 [cpu.cfs_quota_us]/[period]),
    falling back to [/proc/cpuinfo] then [getconf _NPROCESSORS_ONLN] when
    neither is readable; at least 1.  Containers pinned or quota-limited
    below the hardware core count therefore no longer oversubscribe
    workers.  Scaling gates use this to decide whether a speedup target
    is physically meaningful. *)

val count_of_mask : string -> int option
(** Popcount of a kernel hex cpumask (["ff"], ["f,ffffffff"], …): the
    affinity-parser core of {!cpu_count}, exposed pure for tests.  [None]
    on malformed input or an empty mask. *)

val count_of_quota : string -> int option
(** Cores implied by one cgroup quota line ["<quota> <period>"] (µs):
    [ceil(quota/period)], at least 1.  ["max <period>"] and v1's
    [-1] quota mean unlimited — [None].  Exposed pure for tests. *)

val jobs_from_env : ?var:string -> ?default:int -> unit -> int
(** The job count from the environment variable [var] (default
    ["MSST_JOBS"]); [default] (default 1) when unset or unparsable.
    Clamped to at least 1. *)
