(* The global telemetry hook (see the interface).  One word of state: the
   currently installed sink, or nothing.  The disabled path — a ref read
   and a match — is what keeps always-compiled probes affordable in the
   engines' round loops. *)

type sink = {
  now : unit -> float;
  enter : string -> unit;
  leave : string -> unit;
  span : tid:int -> string -> float -> float -> unit;
}

let null =
  {
    now = (fun () -> 0.);
    enter = (fun _ -> ());
    leave = (fun _ -> ());
    span = (fun ~tid:_ _ _ _ -> ());
  }

let current : sink option ref = ref None
let install s = current := Some s
let uninstall () = current := None
let get () = !current

let enter name = match !current with None -> () | Some s -> s.enter name
let leave name = match !current with None -> () | Some s -> s.leave name

let with_ name f =
  match !current with
  | None -> f ()
  | Some s ->
      s.enter name;
      (match f () with
      | v ->
          s.leave name;
          v
      | exception e ->
          s.leave name;
          raise e)
