(* Shared-memory domain pool (see the interface).  The parallel/sequential
   split lives in Domain_backend, selected by dune at build time; this
   module owns the sharding discipline and the List.map-compatible
   wrapper. *)

let available = Domain_backend.available
let cpu_count = Pool.cpu_count

let domains_from_env ?(var = "MSST_DOMAINS") ?default () =
  Pool.jobs_from_env ~var ?default ()

let slice ~domains n w = (w * n / domains, (w + 1) * n / domains)

let run ~domains f =
  if domains <= 1 then f 0 else Domain_backend.parallel_run domains f

let map ?(domains = 1) f tasks =
  let n = List.length tasks in
  if domains <= 1 || n <= 1 || not available then List.map f tasks
  else begin
    let k = min domains n in
    let tasks = Array.of_list tasks in
    let out = Array.make n None in
    run ~domains:k (fun w ->
        let lo, hi = slice ~domains:k n w in
        for i = lo to hi - 1 do
          out.(i) <- Some (f tasks.(i))
        done);
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) out)
  end
