(* Shared-memory domain pool (see the interface).  The parallel/sequential
   split lives in Domain_backend, selected by dune at build time; this
   module owns the sharding discipline and the List.map-compatible
   wrapper. *)

let available = Domain_backend.available
let cpu_count = Pool.cpu_count

let domains_from_env ?(var = "MSST_DOMAINS") ?default () =
  Pool.jobs_from_env ~var ?default ()

let slice ~domains n w = (w * n / domains, (w + 1) * n / domains)

(* With a telemetry sink installed, each worker stamps its own start/stop
   (the only probe field workers may touch is [now]) into a slot pair it
   alone owns; the calling domain emits the per-worker spans after the
   barrier, so domain imbalance shows up as ragged track lengths in the
   Chrome trace without the workers ever sharing telemetry state. *)
let run ~domains f =
  match Probe.get () with
  | None -> if domains <= 1 then f 0 else Domain_backend.parallel_run domains f
  | Some s ->
      let k = if domains <= 1 then 1 else domains in
      let stamps = Array.make (2 * k) 0. in
      let stamped w =
        stamps.(2 * w) <- s.Probe.now ();
        Fun.protect
          ~finally:(fun () -> stamps.((2 * w) + 1) <- s.Probe.now ())
          (fun () -> f w)
      in
      let emit () =
        for w = 0 to k - 1 do
          s.Probe.span ~tid:w "worker" stamps.(2 * w) stamps.((2 * w) + 1)
        done
      in
      if k = 1 then (
        stamped 0;
        emit ())
      else (
        (match Domain_backend.parallel_run k stamped with
        | () -> ()
        | exception e ->
            emit ();
            raise e);
        emit ())

let map ?(domains = 1) f tasks =
  let n = List.length tasks in
  if domains <= 1 || n <= 1 || not available then List.map f tasks
  else begin
    let k = min domains n in
    let tasks = Array.of_list tasks in
    let out = Array.make n None in
    run ~domains:k (fun w ->
        let lo, hi = slice ~domains:k n w in
        for i = lo to hi - 1 do
          out.(i) <- Some (f tasks.(i))
        done);
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) out)
  end
