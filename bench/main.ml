(* The benchmark harness: one driver per table/figure of the paper (see
   DESIGN.md's experiment index), each printing the paper-shaped rows with
   measured values, followed by a Bechamel wall-clock suite with one
   Test.make per experiment driver.

   Run with: dune exec bench/main.exe            (all experiments)
             dune exec bench/main.exe -- T1 F-DT (a subset) *)

open Ssmst_graph
open Ssmst_sim
open Ssmst_core

let line () = Fmt.pr "%s@." (String.make 78 '-')

let header title =
  Fmt.pr "@.%s@." (String.make 78 '=');
  Fmt.pr "%s@." title;
  Fmt.pr "%s@." (String.make 78 '=')

let logn n = Memory.of_nat n

(* ==================================================================== *)
(* T1 — Table 1: self-stabilizing MST construction algorithms            *)
(* ==================================================================== *)

let table1 () =
  header
    "T1 / Table 1 — self-stabilizing MST construction: space (bits/node) x time (rounds)";
  Fmt.pr "%-28s %-6s %12s %14s %10s@." "algorithm" "n" "bits/node" "rounds" "rounds/n";
  line ();
  List.iter
    (fun n ->
      let st = Gen.rng (3000 + n) in
      let g = Gen.random_connected st n in
      let hl = Ssmst_baselines.Higham_liang.run g in
      Fmt.pr "%-28s %-6d %12d %14d %10.1f@." "Higham-Liang-style [48]" n
        hl.Ssmst_baselines.Higham_liang.memory_bits hl.Ssmst_baselines.Higham_liang.rounds
        (float_of_int hl.Ssmst_baselines.Higham_liang.rounds /. float_of_int n);
      let bl = Ssmst_baselines.Blin.run g in
      Fmt.pr "%-28s %-6d %12d %14d %10.1f@." "Blin et al.-style [17]" n
        bl.Ssmst_baselines.Blin.memory_bits bl.Ssmst_baselines.Blin.rounds
        (float_of_int bl.Ssmst_baselines.Blin.rounds /. float_of_int n);
      let t = Transformer.create g in
      Transformer.advance t ~rounds:50;
      Fmt.pr "%-28s %-6d %12d %14d %10.1f@." "this paper (transformer)" n
        (Transformer.memory_bits t)
        (Transformer.stabilization_rounds t)
        (float_of_int (Transformer.stabilization_rounds t) /. float_of_int n);
      line ())
    [ 32; 64; 128; 256 ];
  Fmt.pr
    "paper's claim: [48]-style O(log n) bits x Theta(n|E|) time; [17]-style O(log^2 n)\n\
     bits x Theta(n^2) time; this paper O(log n) bits x O(n) time.@."

(* ==================================================================== *)
(* T2 — Table 2 / Figure 1: the worked 18-node example                   *)
(* ==================================================================== *)

let fig1_graph () =
  (* A fixed 18-node tree in the spirit of Figure 1 (the exact topology of
     the figure is not recoverable from the paper's text; see
     EXPERIMENTS.md).  Node names a..r. *)
  let edges =
    [
      (0, 1, 2); (5, 6, 6); (1, 6, 18); (2, 6, 12); (3, 7, 10); (4, 8, 15);
      (7, 8, 11); (2, 7, 20); (9, 10, 4); (14, 15, 8); (10, 15, 16);
      (11, 16, 3); (12, 17, 7); (12, 13, 14); (11, 12, 17); (10, 11, 21);
      (6, 11, 22);
    ]
  in
  Graph.of_edges ~n:18 edges

let node_name v = String.make 1 (Char.chr (Char.code 'a' + v))

let table2 () =
  header "T2 / Table 2 + Figure 1 — Roots, EndP, Parents, Or-EndP strings";
  let g = fig1_graph () in
  let m = Marker.run g in
  let labels = Labels.of_hierarchy m.hierarchy in
  let len = labels.(0).Labels.len in
  let pr_table name cell =
    Fmt.pr "@.%-8s" name;
    for j = 0 to len - 1 do
      Fmt.pr "%-6d" j
    done;
    Fmt.pr "@.";
    for v = 0 to 17 do
      Fmt.pr "%-8s" (node_name v);
      for j = 0 to len - 1 do
        Fmt.pr "%-6s" (cell v j)
      done;
      Fmt.pr "@."
    done
  in
  Fmt.pr "hierarchy height: %d (levels 0..%d); MST weight %d@." m.hierarchy.height
    m.hierarchy.height (Tree.total_base_weight m.tree);
  pr_table "Roots" (fun v j -> Fmt.str "%a" Labels.pp_rsym labels.(v).Labels.roots.(j));
  pr_table "EndP" (fun v j -> Fmt.str "%a" Labels.pp_esym labels.(v).Labels.endp.(j));
  pr_table "Parents" (fun v j -> if labels.(v).Labels.parents.(j) then "1" else "0");
  pr_table "Or-EndP" (fun v j -> if labels.(v).Labels.cnt.(j) > 0 then "1" else "0");
  (* machine-check legality, as the paper's Table 2 is claimed legal *)
  let vw = Labels.view_of_tree m.tree labels in
  let ok = List.for_all (fun v -> Labels.check_node vw v = []) (List.init 18 Fun.id) in
  Fmt.pr "@.RS0-RS5 and EPS0-EPS5 legality of all strings: %b@." ok

(* ==================================================================== *)
(* F-DT — detection time vs n (Theorem 8.5)                              *)
(* ==================================================================== *)

let live_piece_targets (m : Marker.t) =
  (* (node, which part, own-index, level) of every *live* stored piece: one
     whose fragment actually intersects the part carrying it.  Corrupting a
     dead-cargo piece (an ancestor of a split part's red seed that misses
     the part entirely) is semantically null and correctly ignored by the
     verifier. *)
  let g = m.Marker.graph in
  let fragment_of (pc : Pieces.t) =
    Array.to_list m.Marker.hierarchy.Fragment.frags
    |> List.find_opt (fun (f : Fragment.t) ->
           f.Fragment.level = pc.Pieces.level && Graph.id g f.Fragment.root = pc.Pieces.root_id)
  in
  let acc = ref [] in
  Array.iteri
    (fun v (_ : Marker.node_label) ->
      let l = m.Marker.labels.(v) in
      let consider which (pl : Partition.node_part_label) part_ix =
        let part = m.Marker.assignment.Partition.parts.(part_ix) in
        Array.iteri
          (fun k (pc : Pieces.t) ->
            match fragment_of pc with
            | Some f
              when List.exists (fun u -> Fragment.mem f u) part.Partition.members ->
                acc := (v, which, k, pc.Pieces.level) :: !acc
            | Some _ | None -> ())
          pl.Partition.own
      in
      consider `Top l.Marker.top m.Marker.assignment.Partition.top_of.(v);
      consider `Bottom l.Marker.bot m.Marker.assignment.Partition.bot_of.(v))
    m.Marker.labels;
  !acc

let semantic_fault_at rng (m : Marker.t) =
  (* prefer the highest-level live piece: the Ask cycle reaches it last *)
  match live_piece_targets m with
  | [] -> None
  | targets ->
      let best = List.fold_left (fun acc (_, _, _, l) -> max acc l) (-1) targets in
      let top_targets = List.filter (fun (_, _, _, l) -> l >= max 1 (best - 1)) targets in
      let pick = if top_targets = [] then targets else top_targets in
      Some (List.nth pick (Random.State.int rng (List.length pick)))

let corrupt_live_piece rng (s : Verifier.state) which k =
  let bump (pl : Partition.node_part_label) =
    let own = Array.copy pl.Partition.own in
    let w = own.(k).Pieces.weight in
    own.(k) <-
      {
        (own.(k)) with
        Pieces.weight = { w with Weight.base = w.Weight.base + 1 + Random.State.int rng 7 };
      };
    { pl with Partition.own = own }
  in
  let label =
    match which with
    | `Top -> { s.Verifier.label with Marker.top = bump s.Verifier.label.Marker.top }
    | `Bottom -> { s.Verifier.label with Marker.bot = bump s.Verifier.label.Marker.bot }
  in
  { s with Verifier.label; cmp = Verifier.cmp_init; alarm = false }

let detection_sample ~mode ~daemon ~seed n =
  let st = Gen.rng seed in
  let g = Gen.random_connected st n in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = mode
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  Net.run net daemon ~rounds:(8 * Verifier.window_bound m.labels.(0));
  if Net.any_alarm net then None
  else
    let rng = Gen.rng (seed + 1) in
    match semantic_fault_at rng m with
    | None -> None
    | Some (v, which, k, _) -> (
        Net.set_state net v (corrupt_live_piece rng (Net.state net v) which k);
        match Net.detection_time net daemon ~max_rounds:200000 with
        | Some dt -> Some (dt, Net.detection_distance net ~faults:[ v ])
        | None -> None)

let fig_detection_time () =
  header "F-DT — detection time after a semantic fault (sync O(log^2 n); Thm 8.5)";
  Fmt.pr "%-6s %-8s %8s %8s %14s %10s@." "n" "log2 n" "avg" "max" "max/log^2n" "samples";
  line ();
  List.iter
    (fun n ->
      let samples =
        List.filter_map
          (fun i -> detection_sample ~mode:Verifier.Passive ~daemon:Scheduler.Sync ~seed:(4000 + n + i) n)
          [ 0; 1; 2; 3; 4 ]
      in
      match samples with
      | [] -> Fmt.pr "%-6d (no detectable semantic fault found)@." n
      | _ ->
          let dts = List.map (fun (dt, _) -> dt) samples in
          let avg = float_of_int (List.fold_left ( + ) 0 dts) /. float_of_int (List.length dts) in
          let worst = List.fold_left max 0 dts in
          let l = float_of_int (logn n) in
          Fmt.pr "%-6d %-8d %8.0f %8d %14.1f %10d@." n (logn n) avg worst
            (float_of_int worst /. (l *. l))
            (List.length samples))
    [ 16; 32; 64; 128; 256; 512 ];
  Fmt.pr "shape check: rounds/log^2 n should stay bounded as n grows.@."

(* ==================================================================== *)
(* F-ASY — sync vs async detection (Lemmas 7.5 / 7.6)                    *)
(* ==================================================================== *)

let ask_cycle_time ~mode ~daemon ~seed n =
  (* rounds for the maximum-degree node to complete one full Ask cycle:
     the quantity bounded by O(log^2 n) sync / O(Delta log^3 n) async *)
  let st = Gen.rng seed in
  let g = Gen.random_connected st n in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = mode
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  (* highest-degree node that iterates at least two comparison levels (a
     single-level node never changes ask_level, so no cycle is observable) *)
  let levels_of u =
    let l = m.Marker.labels.(u).Marker.strings in
    let ell = l.Labels.len - 1 in
    List.length
      (List.filter (fun j -> l.Labels.roots.(j) <> Labels.RStar) (List.init (max 0 ell) Fun.id))
  in
  let v = ref (-1) in
  for u = 0 to n - 1 do
    if levels_of u >= 2 && (!v < 0 || Graph.degree g u > Graph.degree g !v) then v := u
  done;
  if !v < 0 then None
  else begin
  let v = !v in
  Net.run net daemon ~rounds:(4 * Verifier.window_bound m.labels.(0));
  let first_level = (Net.state net v).Verifier.cmp.Verifier.ask_level in
  if first_level < 0 then None
  else begin
    (* wait to leave the level, then time the return to it *)
    let budget = ref 300_000 and phase = ref `Leave and start = ref 0 and answer = ref None in
    while !answer = None && !budget > 0 do
      Net.round net daemon;
      decr budget;
      let lvl = (Net.state net v).Verifier.cmp.Verifier.ask_level in
      match !phase with
      | `Leave -> if lvl <> first_level then (phase := `Return; start := Net.rounds net)
      | `Return -> if lvl = first_level then answer := Some (Net.rounds net - !start)
    done;
    !answer
  end
  end

let fig_async_gap () =
  header "F-ASY — Ask-cycle time: synchronous passive vs asynchronous handshake";
  Fmt.pr "%-6s %-6s %-8s %12s %14s %12s@." "n" "Delta" "log2 n" "sync cycle" "async cycle"
    "async/sync";
  line ();
  List.iter
    (fun n ->
      let st = Gen.rng (4600 + n) in
      let delta = Graph.max_degree (Gen.random_connected st n) in
      let sync = ask_cycle_time ~mode:Verifier.Passive ~daemon:Scheduler.Sync ~seed:(4600 + n) n in
      let async =
        ask_cycle_time ~mode:Verifier.Handshake
          ~daemon:(Scheduler.Async_random (Gen.rng (4700 + n)))
          ~seed:(4600 + n) n
      in
      match (sync, async) with
      | Some s, Some a ->
          Fmt.pr "%-6d %-6d %-8d %12d %14d %12.1f@." n delta (logn n) s a
            (float_of_int a /. float_of_int s)
      | _ -> Fmt.pr "%-6d (no cycle observed)@." n)
    [ 16; 32; 64; 128 ];
  Fmt.pr
    "bounds: sync O(log^2 n) (Lemma 7.5) vs async O(Delta log^3 n) (Lemma 7.6).\n\
     The sync passive mode pays its bound up front (fixed full-cycle windows\n\
     guarantee passive observation); the async handshake confirms each comparison\n\
     actively and advances early, so its *typical* cycle is shorter while its\n\
     worst case is a Delta*log n factor above the synchronous one.@."

(* ==================================================================== *)
(* F-DD — detection distance vs number of faults f (O(f log n))          *)
(* ==================================================================== *)

let fig_detection_distance () =
  header "F-DD — detection distance vs number of faults (O(f log n) locality)";
  Fmt.pr "%-6s %-6s %14s %14s@." "n" "f" "max distance" "f*log n";
  line ();
  let n = 128 in
  List.iter
    (fun f ->
      let st = Gen.rng (4800 + f) in
      let g = Gen.random_connected st n in
      let m = Marker.run g in
      let module C = struct
        let marker = m
        let mode = Verifier.Passive
      end in
      let module P = Verifier.Make (C) in
      let module Net = Network.Make (P) in
      let net = Net.create g in
      Net.run net Scheduler.Sync ~rounds:600;
      let faults = Net.inject_faults net (Gen.rng (4900 + f)) ~count:f in
      (match Net.detection_time net Scheduler.Sync ~max_rounds:100000 with
      | Some _ ->
          let d = Net.detection_distance net ~faults in
          Fmt.pr "%-6d %-6d %14s %14d@." n f
            (match d with Some x -> string_of_int x | None -> "?")
            (f * logn n)
      | None -> Fmt.pr "%-6d %-6d (faults semantically null)@." n f))
    [ 1; 2; 4; 8; 16 ];
  Fmt.pr "shape check: the distance column stays below (and scales no faster than) f*log n.@."

(* ==================================================================== *)
(* F-CT — construction time (Theorem 4.4: SYNC_MST is O(n))              *)
(* ==================================================================== *)

let fig_construction_time () =
  header "F-CT — construction time: SYNC_MST (O(n)) vs GHS (O(n log n)), marker included";
  Fmt.pr "%-6s %14s %10s %14s %10s %14s@." "n" "SYNC_MST" "/n" "GHS" "/n" "marker total";
  line ();
  List.iter
    (fun n ->
      let st = Gen.rng (5000 + n) in
      let g = Gen.random_connected st n in
      let r = Sync_mst.run g in
      let ghs = Ssmst_baselines.Ghs.run g in
      let m = Marker.run g in
      Fmt.pr "%-6d %14d %10.1f %14d %10.1f %14d@." n r.rounds
        (float_of_int r.rounds /. float_of_int n)
        ghs.Ssmst_baselines.Ghs.rounds
        (float_of_int ghs.Ssmst_baselines.Ghs.rounds /. float_of_int n)
        m.construction_rounds)
    [ 32; 64; 128; 256; 512; 1024 ];
  Fmt.pr "shape check: SYNC_MST and marker columns stay linear (bounded /n).@."

(* ==================================================================== *)
(* F-MEM — memory: compact scheme O(log n) vs KKP 1-PLS Theta(log^2 n)   *)
(* ==================================================================== *)

let fig_memory () =
  header "F-MEM — label memory: this paper's O(log n) vs the 1-round PLS Omega(log^2 n)";
  Fmt.pr "%-6s %-8s %14s %12s %14s %12s@." "n" "log2 n" "compact bits" "/log n" "KKP bits"
    "/log^2 n";
  line ();
  List.iter
    (fun n ->
      let st = Gen.rng (5100 + n) in
      let g = Gen.random_connected st n in
      let m = Marker.run g in
      let kkp = Ssmst_pls.Kkp_pls.mark m in
      let l = float_of_int (logn n) in
      Fmt.pr "%-6d %-8d %14d %12.1f %14d %12.1f@." n (logn n) m.label_bits
        (float_of_int m.label_bits /. l)
        (Ssmst_pls.Kkp_pls.max_bits kkp)
        (float_of_int (Ssmst_pls.Kkp_pls.max_bits kkp) /. (l *. l)))
    [ 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ];
  Fmt.pr "shape check: compact/log n bounded; KKP/log^2 n bounded while KKP/compact grows.@."

(* ==================================================================== *)
(* F-LB — the Section 9 lower-bound trade-off                            *)
(* ==================================================================== *)

let fig_lower_bound () =
  header "F-LB — Section 9: time x memory trade-off on (subdivided) hypertree instances";
  Fmt.pr "%-4s %-4s %-6s | %-26s | %-26s@." "h" "tau" "n" "compact: bits, det. rounds"
    "KKP 1-PLS: bits, det. rounds";
  line ();
  List.iter
    (fun (h, tau) ->
      let c = Lower_bound.measure ~seed:(5200 + h + tau) ~h ~tau ~positive:false in
      let k, _ =
        Ssmst_pls.Kkp_pls.measure_lower_bound ~seed:(5200 + h + tau) ~h ~tau ~positive:false
      in
      Fmt.pr "%-4d %-4d %-6d | %10d bits, %a rounds | %10d bits, %a rounds@." h tau
        c.Lower_bound.n c.Lower_bound.label_bits
        Fmt.(option ~none:(any "-") int)
        c.Lower_bound.detection_rounds k.Lower_bound.label_bits
        Fmt.(option ~none:(any "-") int)
        k.Lower_bound.detection_rounds)
    [ (3, 0); (4, 0); (5, 0); (6, 0); (3, 1); (4, 1); (3, 2) ];
  Fmt.pr
    "Lemma 9.1: tau-round verification with l-bit labels on G' gives a 1-round scheme\n\
     with O(tau*l)-bit labels on G, and [54] forces tau*l = Omega(log^2 n): compact\n\
     labels cannot detect in O(1) rounds.@."

(* ==================================================================== *)
(* ABL — ablations of the two design knobs DESIGN.md calls out            *)
(* ==================================================================== *)

(* A1: the top/bottom threshold.  The paper sets it to log n; smaller
   thresholds make more, smaller top parts (longer piece lists relative to
   part size); larger ones grow part diameters and bottom parts. *)
let ablation_threshold () =
  header "ABL-1 — partition threshold sensitivity (paper: threshold = log2 n)";
  Fmt.pr "%-12s %-8s %10s %12s %12s %12s@." "threshold" "parts" "max |P|" "max diam" "max k"
    "label bits";
  line ();
  let n = 128 in
  let st = Gen.rng 7000 in
  let g = Gen.random_connected st n in
  List.iter
    (fun t ->
      let m = Marker.run ~threshold:t g in
      let parts = m.Marker.assignment.Partition.parts in
      let maxp =
        Array.fold_left (fun acc (p : Partition.part) -> max acc (List.length p.Partition.members)) 0 parts
      in
      let maxd = Array.fold_left (fun acc (p : Partition.part) -> max acc p.Partition.diameter) 0 parts in
      let maxk =
        Array.fold_left (fun acc (p : Partition.part) -> max acc (Array.length p.Partition.pieces)) 0 parts
      in
      Fmt.pr "%-12d %-8d %10d %12d %12d %12d@." t (Array.length parts) maxp maxd maxk
        m.Marker.label_bits)
    [ 2; 4; logn n; 2 * logn n; 4 * logn n ];
  Fmt.pr
    "the paper's threshold balances part diameter (Top detection latency) against\n\
     bottom-part train length; both extremes inflate one of the columns.@."

(* A2: the comparison window factor.  Windows shorter than a train cycle
   miss comparisons (semantic faults go undetected); longer windows only
   stretch the Ask cycle linearly. *)
let ablation_window () =
  header "ABL-2 — comparison window factor (paper: a full train cycle per level)";
  Fmt.pr "%-10s %14s %18s@." "factor" "detected" "avg detection rounds";
  line ();
  let n = 32 in
  (* the window factor is a module-level knob: restore it even if a sweep
     step raises, or the ablation value leaks into every later experiment *)
  let saved = !Verifier.window_factor in
  Fun.protect
    ~finally:(fun () -> Verifier.window_factor := saved)
    (fun () ->
      List.iter
        (fun factor ->
          Verifier.window_factor := factor;
          let samples =
            List.filter_map
              (fun i ->
                detection_sample ~mode:Verifier.Passive ~daemon:Scheduler.Sync ~seed:(7100 + i) n)
              [ 0; 1; 2; 3; 4 ]
          in
          let dts = List.map fst samples in
          let avg =
            match dts with
            | [] -> Float.nan
            | _ -> float_of_int (List.fold_left ( + ) 0 dts) /. float_of_int (List.length dts)
          in
          Fmt.pr "%-10d %10d / 5 %18.0f@." factor (List.length samples) avg)
        [ 2; 5; 10; 20; 40; 80 ]);
  Fmt.pr
    "too-small windows end a level before the neighbours' trains complete a cycle,\n\
     so semantic faults can escape comparison; beyond one full cycle, larger\n\
     factors only slow the Ask rotation (and hence detection) linearly.@."

(* ==================================================================== *)
(* ENGINE — event-driven engine vs naive re-step engine                  *)
(* ==================================================================== *)

(* Metrics sink: rows accumulate here and are printed as CSV at the end of
   the experiment; with SSMST_METRICS_JSONL set they are also appended to
   that file as JSONL. *)
let metrics_rows : (string * Metrics.t) list ref = ref []

let sink_metrics label (m : Metrics.t) = metrics_rows := (label, m) :: !metrics_rows

let flush_metrics () =
  let rows = List.rev !metrics_rows in
  metrics_rows := [];
  Fmt.pr "@.metrics (CSV):@.label,%s@." Metrics.csv_header;
  List.iter (fun (label, m) -> Fmt.pr "%s,%s@." label (Metrics.to_csv_row m)) rows;
  match Sys.getenv_opt "SSMST_METRICS_JSONL" with
  | None -> ()
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      List.iter (fun (label, m) -> output_string oc (Metrics.to_json ~label m ^ "\n")) rows;
      close_out oc;
      Fmt.pr "(metrics appended to %s)@." path

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* W1: a silent protocol (self-stabilizing BFS / leader election).  After a
   single fault the network is quiescent almost everywhere, so the
   dirty-set engine does work proportional to the fault's footprint while
   the naive engine re-steps all n nodes every round. *)
let engine_w1 () =
  let n = 256 and settle = 600 and after = 4096 in
  let st = Gen.rng 6200 in
  let g = Gen.random_connected st n in
  let module P = Ssmst_protocols.Ss_bfs.P in
  let module Naive = Network.Naive (P) in
  let module Engine = Network.Make (P) in
  (* settle both engines to the stabilized configuration (untimed), then
     time the post-fault convergence window only *)
  let naive = Naive.create g and engine = Engine.create g in
  Naive.run naive Scheduler.Sync ~rounds:settle;
  Engine.run engine Scheduler.Sync ~rounds:settle;
  Metrics.reset (Engine.metrics engine);
  let (), naive_s =
    wall (fun () ->
        ignore (Naive.inject_faults naive (Gen.rng 6201) ~count:1);
        Naive.run naive Scheduler.Sync ~rounds:after)
  in
  let (), engine_s =
    wall (fun () ->
        ignore (Engine.inject_faults engine (Gen.rng 6201) ~count:1);
        Engine.run engine Scheduler.Sync ~rounds:after)
  in
  (* the two engines agree bit-for-bit *)
  let agree = Array.for_all2 P.equal (Naive.states naive) (Engine.states engine) in
  let m = Engine.metrics engine in
  sink_metrics "ENGINE-W1:ss-bfs-n256-1-fault" m;
  Fmt.pr "%-34s %10.4fs %10.4fs %9.1fx %8b@."
    (Fmt.str "W1 ss-bfs: 1 fault + %d rounds" after)
    naive_s engine_s (naive_s /. engine_s) agree;
  Fmt.pr "    naive steps %d vs engine activations %d (writes %d, wasted %d, skipped %d)@."
    (after * n) m.Metrics.activations m.Metrics.register_writes m.Metrics.wasted_steps
    m.Metrics.skipped_activations

(* W2: the acceptance workload — run_until of the verifier on a 256-node
   random graph after 1 fault.  The verifier's trains rotate forever, so
   the dirty set stays populated; the gains here come from the O(1)
   neighbour index, the O(1) alarm predicate and the removal of the
   per-round O(n) allocations and rescans. *)
let engine_w2 () =
  let n = 256 in
  let st = Gen.rng 6210 in
  let g = Gen.random_connected st n in
  let m = Marker.run g in
  let module C = struct
    let marker = m
    let mode = Verifier.Passive
  end in
  let module P = Verifier.Make (C) in
  let module Naive = Network.Naive (P) in
  let module Engine = Network.Make (P) in
  let settle = 2 * Verifier.window_bound m.labels.(0) in
  let run_naive () =
    let net = Naive.create g in
    Naive.run net Scheduler.Sync ~rounds:settle;
    ignore (Naive.inject_faults net (Gen.rng 6211) ~count:1);
    Naive.detection_time net Scheduler.Sync ~max_rounds:20000
  in
  let run_engine () =
    let net = Engine.create g in
    Engine.run net Scheduler.Sync ~rounds:settle;
    ignore (Engine.inject_faults net (Gen.rng 6211) ~count:1);
    let dt = Engine.detection_time net Scheduler.Sync ~max_rounds:20000 in
    sink_metrics "ENGINE-W2:verifier-n256-1-fault" (Engine.metrics net);
    dt
  in
  let naive_dt, naive_s = wall run_naive in
  let engine_dt, engine_s = wall run_engine in
  Fmt.pr "%-34s %10.3fs %10.3fs %9.1fx %8b@."
    (Fmt.str "W2 verifier run_until detection" )
    naive_s engine_s (naive_s /. engine_s) (naive_dt = engine_dt);
  Fmt.pr "    detection after %a rounds (both engines agree on the round)@."
    Fmt.(option ~none:(any "-") int)
    engine_dt

let fig_engine () =
  header "ENGINE — event-driven engine vs naive re-step engine (same semantics)";
  Fmt.pr "%-34s %11s %11s %10s %8s@." "workload" "naive" "engine" "speedup" "agree";
  line ();
  engine_w1 ();
  engine_w2 ();
  flush_metrics ();
  Fmt.pr
    "the differential suite (test/test_engine_diff.ml) asserts state-array and\n\
     round-count equality of the two engines on 240+ random instances.@."

(* ==================================================================== *)
(* CAMPAIGN — typed fault-model campaign on the verifier                 *)
(* ==================================================================== *)

(* A compact instance of the msst-campaign sweep: per-trial detection time
   and distance for every fault model, aggregated min/median/p95 across
   seeds, with the per-trial rows emitted as CSV (and JSONL through the
   same env-var sink convention as the engine metrics). *)
let fig_campaign () =
  header "CAMPAIGN — fault models x f: detection time / distance vs O(f log n)";
  let families = [ "random"; "grid" ] and sizes = [ 64 ] in
  let fault_counts = [ 1; 2; 4; 8 ] and models = [ "uniform"; "clustered"; "near-root" ] in
  let trials =
    Verifier_campaign.sweep ~families ~sizes ~fault_counts ~models ~seeds:3 ~seed:9000
      ~max_rounds:20000 ()
  in
  Fmt.pr "%a" Campaign.pp_agg_table (Campaign.aggregate trials);
  Fmt.pr "@.f*log n reference: %a@."
    Fmt.(list ~sep:comma string)
    (List.map (fun f -> Fmt.str "f=%d -> %d" f (f * logn 64)) fault_counts);
  Fmt.pr "@.per-trial rows (CSV):@.%s@." Campaign.csv_header;
  List.iter (fun t -> Fmt.pr "%s@." (Campaign.trial_to_csv t)) trials;
  (match Sys.getenv_opt "SSMST_CAMPAIGN_JSONL" with
  | None -> ()
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Campaign.write_jsonl oc trials;
      close_out oc;
      Fmt.pr "(campaign trials appended to %s)@." path);
  Fmt.pr
    "shape check: dd columns stay within a constant factor of f*log n for the random\n\
     placements and shrink for the clustered/near-root ones (faults share a ball).@."

(* ==================================================================== *)
(* OBS — runtime observatory overhead                                    *)
(* ==================================================================== *)

(* The observability tentpole's cost contract: running with the full
   observatory attached (online invariant monitors on the engine's round
   hook plus a sampling span profiler) must stay within 15% of the bare
   engine.  The monitors' change-counter caching carries the quiescent
   workload; the verifier workload is the worst case (every node writes
   every round, so the monitors re-evaluate every round). *)
let obs_budget = 0.15

let fig_obs () =
  header "OBS — runtime observatory overhead: probes on vs off (budget: 15%)";
  let reps = 7 in
  let time f =
    ignore (f ());
    (* best-of-reps: the minimum is the least scheduler-noise-polluted *)
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let failures = ref [] in
  Fmt.pr "%-38s %12s %12s %10s@." "workload" "probes off" "probes on" "overhead";
  line ();
  let report name t_off t_on =
    let ov = (t_on -. t_off) /. t_off in
    Fmt.pr "%-38s %9.2f ms %9.2f ms %+9.1f%%@." name (1000. *. t_off) (1000. *. t_on)
      (100. *. ov);
    if ov > obs_budget then failures := Fmt.str "%s (%+.1f%%)" name (100. *. ov) :: !failures
  in
  (* churning workload: the BFS election re-converges after each periodic
     fault burst (a pure quiescent tail would compare the monitors' O(1)
     cached check against near-free skipped rounds, measuring only timer
     noise; the cache itself is unit-tested in test_obs) *)
  let g1 = Gen.random_connected (Gen.rng 8100) 256 in
  let bfs_run probes () =
    let module P = Ssmst_protocols.Ss_bfs.P in
    let module Net = Network.Make (P) in
    let net = Net.create g1 in
    let drive () =
      for k = 0 to 7 do
        ignore (Net.inject_faults net (Gen.rng (8110 + k)) ~count:4);
        Net.run net Scheduler.Sync ~rounds:128
      done
    in
    if probes then (
      let view =
        {
          Ssmst_obs.Monitor.graph = g1;
          parent = (fun _ -> None);
          bits = (fun v -> P.bits (Net.state net v));
          alarm = (fun v -> P.alarm (Net.state net v));
          peak_bits = (fun () -> Net.peak_bits net);
          any_alarm = (fun () -> Net.any_alarm net);
          change_counter =
            (fun () ->
              let m = Net.metrics net in
              m.Metrics.register_writes + m.Metrics.faults_injected);
        }
      in
      let mon = Ssmst_obs.Monitor.create ~metrics:(Net.metrics net) view in
      Net.set_round_hook net (fun () -> Ssmst_obs.Monitor.check mon ~round:(Net.rounds net));
      let sp =
        Ssmst_obs.Span.create ~sample:(Ssmst_obs.Span.sampler_of_metrics (Net.metrics net)) ()
      in
      Ssmst_obs.Span.with_ sp Ssmst_obs.Span.Settle drive;
      ignore (Ssmst_obs.Span.finish sp))
    else drive ()
  in
  report "ss-bfs + faults n=256, 1024 rounds" (time (bfs_run false)) (time (bfs_run true));
  (* write-heavy workload: the verifier rewrites every register every
     round, so every monitored round pays a full re-evaluation *)
  let g2 = Gen.random_connected (Gen.rng 8200) 128 in
  let m2 = Marker.run g2 in
  let module VC = struct
    let marker = m2
    let mode = Verifier.Passive
  end in
  let module VP = Verifier.Make (VC) in
  let verifier_run probes () =
    let module Net = Network.Make (VP) in
    let net = Net.create g2 in
    if probes then (
      let view =
        {
          Ssmst_obs.Monitor.graph = g2;
          parent = Tree.parent m2.Marker.tree;
          bits = (fun v -> VP.bits (Net.state net v));
          alarm = (fun v -> VP.alarm (Net.state net v));
          peak_bits = (fun () -> Net.peak_bits net);
          any_alarm = (fun () -> Net.any_alarm net);
          change_counter =
            (fun () ->
              let m = Net.metrics net in
              m.Metrics.register_writes + m.Metrics.faults_injected);
        }
      in
      let mon = Ssmst_obs.Monitor.create ~metrics:(Net.metrics net) view in
      Net.set_round_hook net (fun () -> Ssmst_obs.Monitor.check mon ~round:(Net.rounds net));
      let sp =
        Ssmst_obs.Span.create ~sample:(Ssmst_obs.Span.sampler_of_metrics (Net.metrics net)) ()
      in
      Ssmst_obs.Span.with_ sp Ssmst_obs.Span.Settle (fun () ->
          Net.run net Scheduler.Sync ~rounds:600);
      ignore (Ssmst_obs.Span.finish sp))
    else Net.run net Scheduler.Sync ~rounds:600
  in
  report "verifier n=128, 600 rounds"
    (time (verifier_run false))
    (time (verifier_run true));
  match !failures with
  | [] -> Fmt.pr "observatory overhead within the %.0f%% budget.@." (100. *. obs_budget)
  | fs ->
      Fmt.pr "OBS overhead budget (%.0f%%) exceeded: %a@." (100. *. obs_budget)
        Fmt.(list ~sep:comma string)
        fs;
      exit 1

(* ==================================================================== *)
(* REPLAY — flight recorder overhead + BENCH_PR4.json                    *)
(* ==================================================================== *)

(* The flight recorder's cost contract: running the ENGINE workloads with
   the recorder attached (checkpoint interval k=64, every register write
   mirrored + pushed to the delta ring) must stay within 20% of the bare
   engine.  Results are also written as one machine-readable JSON object
   (BENCH_PR4.json, or $SSMST_BENCH_JSON) for the CI artifact. *)
let replay_budget = 0.20

let fig_replay () =
  header "REPLAY — flight recorder overhead: k=64 checkpoints (budget: 20%)";
  (* each workload times its own measured window (returning the elapsed
     seconds along with the window's round/write counts); the off/on
     repetitions are interleaved so slow drift in machine load biases both
     sides equally.  The reported figure is the *median* of the reps: a
     best-of compares the two luckiest runs, which makes the overhead
     ratio flap under machine noise, while the median is stable.  [reps]
     is per-workload: short windows need more repetitions to converge. *)
  let time2 ~reps run =
    ignore (run false ());
    ignore (run true ());
    let off = Array.make reps 0. and on_ = Array.make reps 0. in
    for i = 0 to reps - 1 do
      off.(i) <- fst (run false ());
      on_.(i) <- fst (run true ())
    done;
    let median a =
      Array.sort compare a;
      a.(Array.length a / 2)
    in
    (median off, median on_)
  in
  Fmt.pr "%-38s %12s %12s %10s@." "workload" "recorder off" "recorder on" "overhead";
  line ();
  let rows = ref [] in
  let measure ?(gated = true) ~reps name run =
    let t_off, t_on = time2 ~reps run in
    let _, (rounds, writes) = run true () in
    let ov = (t_on -. t_off) /. t_off in
    Fmt.pr "%-38s %9.2f ms %9.2f ms %+9.1f%%%s@." name (1000. *. t_off) (1000. *. t_on)
      (100. *. ov)
      (if gated then "" else "  (info)");
    Fmt.pr "    %d rounds, %d recorded write(s), %.0f events/sec while recording@." rounds
      writes
      (float_of_int writes /. t_on);
    rows := (name, t_off, t_on, rounds, writes, ov, gated) :: !rows
  in
  (* W1 mirrors ENGINE-W1 exactly: settle the ss-bfs network (untimed, the
     recorder attached and recording throughout), then time the post-fault
     convergence window of 4096 mostly-quiescent rounds. *)
  let g1 = Gen.random_connected (Gen.rng 8300) 256 in
  let bfs_run record () =
    let module P = Ssmst_protocols.Ss_bfs.P in
    let module Net = Network.Make (P) in
    let module R = Ssmst_replay.Recorder.Make (P) in
    let net = Net.create g1 in
    if record then begin
      let rec_ = R.create ~interval:64 ~round0:0 g1 (Net.states net) in
      Net.set_write_hook net (R.engine_hook rec_ (Net.states net))
    end;
    Net.run net Scheduler.Sync ~rounds:600;
    Metrics.reset (Net.metrics net);
    let t0 = Unix.gettimeofday () in
    ignore (Net.inject_faults net (Gen.rng 8311) ~count:1);
    Net.run net Scheduler.Sync ~rounds:4096;
    let dt = Unix.gettimeofday () -. t0 in
    let m = Net.metrics net in
    (dt, (m.Metrics.rounds, m.Metrics.register_writes + m.Metrics.faults_injected))
  in
  measure ~reps:31 "ENGINE-W1 ss-bfs n=256, 1 fault" bfs_run;
  (* W2 mirrors ENGINE-W2: verifier run-until-detection after 1 fault.  The
     verifier rewrites every register every round, so every write is
     mirrored, cause-tagged and ring-pushed — the recorder's dense case. *)
  let g2 = Gen.random_connected (Gen.rng 8400) 256 in
  let m2 = Marker.run g2 in
  let module VC = struct
    let marker = m2
    let mode = Verifier.Passive
  end in
  let module VP = Verifier.Make (VC) in
  let settle2 = 2 * Verifier.window_bound m2.labels.(0) in
  let verifier_run record () =
    let module Net = Network.Make (VP) in
    let module R = Ssmst_replay.Recorder.Make (VP) in
    let t0 = Unix.gettimeofday () in
    let net = Net.create g2 in
    if record then begin
      let rec_ = R.create ~interval:64 ~round0:0 g2 (Net.states net) in
      Net.set_write_hook net (R.engine_hook rec_ (Net.states net))
    end;
    Net.run net Scheduler.Sync ~rounds:settle2;
    ignore (Net.inject_faults net (Gen.rng 8411) ~count:1);
    ignore (Net.detection_time net Scheduler.Sync ~max_rounds:20000);
    let dt = Unix.gettimeofday () -. t0 in
    let m = Net.metrics net in
    (dt, (m.Metrics.rounds, m.Metrics.register_writes))
  in
  measure ~reps:5 "ENGINE-W2 verifier n=256, detection" verifier_run;
  (* informational stress row: fault bursts keep the dirty set saturated so
     nearly every activation is a recorded write — deliberately harsher
     than the gated ENGINE workloads *)
  let churn_run record () =
    let module P = Ssmst_protocols.Ss_bfs.P in
    let module Net = Network.Make (P) in
    let module R = Ssmst_replay.Recorder.Make (P) in
    let t0 = Unix.gettimeofday () in
    let net = Net.create g1 in
    if record then begin
      let rec_ = R.create ~interval:64 ~round0:0 g1 (Net.states net) in
      Net.set_write_hook net (R.engine_hook rec_ (Net.states net))
    end;
    for k = 0 to 7 do
      ignore (Net.inject_faults net (Gen.rng (8310 + k)) ~count:4);
      Net.run net Scheduler.Sync ~rounds:128
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let m = Net.metrics net in
    (dt, (m.Metrics.rounds, m.Metrics.register_writes + m.Metrics.faults_injected))
  in
  measure ~gated:false ~reps:9 "churn ss-bfs n=256, 8x4 faults" churn_run;
  let rows = List.rev !rows in
  (* the machine-readable sink for CI *)
  let json_path =
    Option.value ~default:"BENCH_PR4.json" (Sys.getenv_opt "SSMST_BENCH_JSON")
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    {|{"pr":4,"checkpoint_interval":64,"budget_pct":%.1f,"workloads":[%s],"within_budget":%b}
|}
    (100. *. replay_budget)
    (String.concat ","
       (List.map
          (fun (name, t_off, t_on, rounds, writes, ov, gated) ->
            Printf.sprintf
              {|{"name":"%s","wall_off_s":%.6f,"wall_on_s":%.6f,"rounds":%d,"writes":%d,"events_per_sec":%.0f,"overhead_pct":%.2f,"gated":%b}|}
              (Ssmst_sim.Trace.json_escape name)
              t_off t_on rounds writes
              (float_of_int writes /. t_on)
              (100. *. ov) gated)
          rows))
    (List.for_all (fun (_, _, _, _, _, ov, gated) -> (not gated) || ov <= replay_budget) rows);
  close_out oc;
  Fmt.pr "@.(machine-readable results written to %s)@." json_path;
  match List.filter (fun (_, _, _, _, _, ov, gated) -> gated && ov > replay_budget) rows with
  | [] -> Fmt.pr "recorder overhead within the %.0f%% budget.@." (100. *. replay_budget)
  | fs ->
      Fmt.pr "REPLAY overhead budget (%.0f%%) exceeded: %a@." (100. *. replay_budget)
        Fmt.(list ~sep:comma string)
        (List.map (fun (n, _, _, _, _, ov, _) -> Fmt.str "%s (%+.1f%%)" n (100. *. ov)) fs);
      exit 1

(* The minimal JSON reader for the bench artifacts lives in
   [Ssmst_obs.Json_lite] since PR 9 (the trend report, the perf-trajectory
   section and the unit tests share it); the alias keeps the call sites
   below unchanged. *)
module Json = Ssmst_obs.Json_lite

(* Never let an un-gated run (too few cores for the scaling gate) clobber
   an artifact that records a gated one: REPORT would then chart the
   degraded speedups as if they were measured on real parallelism — the
   PR 5 blind spot, where a 1-core container's 0.88x @ -j 4 sat in the
   trend table as an apparent regression.  SSMST_PAR_FORCE=1 overrides.
   Returns whether the artifact was written. *)
let write_artifact_guarded ~json_path ~gated contents =
  let existing_gated =
    match open_in json_path with
    | exception Sys_error _ -> None
    | ic ->
        let body = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (match Json.parse body with
        | j -> Json.bool_opt (Json.mem "gated" j)
        | exception Json.Bad _ -> None)
  in
  let force = Sys.getenv_opt "SSMST_PAR_FORCE" = Some "1" in
  match existing_gated with
  | Some true when (not gated) && not force ->
      Fmt.pr
        "NOT overwriting %s: it records a gated (>= 4 cores) run and this run is un-gated; \
         set SSMST_PAR_FORCE=1 to overwrite anyway.@."
        json_path;
      false
  | _ ->
      let oc = open_out json_path in
      output_string oc contents;
      close_out oc;
      Fmt.pr "(machine-readable results written to %s)@." json_path;
      true

(* ==================================================================== *)
(* PROF — telemetry overhead gate + BENCH_PR9.json                       *)
(* ==================================================================== *)

(* The telemetry layer's cost contract, measured on the same ENGINE
   workloads the flight recorder is gated on: installing a Telemetry
   profiler on the global Probe hook must stay within 5% of the bare run
   (median of interleaved reps, like REPLAY).  The disabled side needs no
   separate gate: with no sink installed every probe is one ref read and
   a branch — the bare baseline measured here IS the disabled path.
   Alongside the overhead gate the run asserts out-of-band-ness cheaply:
   the profiled run's metrics CSV row must equal the bare run's byte for
   byte (the full seven-observable identity suite at -d 1/2/4 lives in
   test_domains).  Results land in BENCH_PR9.json (or
   $SSMST_BENCH_PR9_JSON); noisy runners can soften the budget via
   SSMST_PROF_BUDGET (percent). *)
let prof_budget () =
  match Sys.getenv_opt "SSMST_PROF_BUDGET" with
  | Some s -> ( try float_of_string s /. 100. with Failure _ -> 0.05)
  | None -> 0.05

let fig_prof () =
  let budget = prof_budget () in
  header
    (Printf.sprintf "PROF — telemetry overhead: probes on the ENGINE workloads (budget: %.0f%%)"
       (100. *. budget));
  let time2 ~reps run =
    ignore (run false ());
    ignore (run true ());
    let off = Array.make reps 0. and on_ = Array.make reps 0. in
    for i = 0 to reps - 1 do
      off.(i) <- fst (run false ());
      on_.(i) <- fst (run true ())
    done;
    let median a =
      Array.sort compare a;
      a.(Array.length a / 2)
    in
    (median off, median on_)
  in
  Fmt.pr "%-38s %12s %12s %10s %9s@." "workload" "probes off" "probes on" "overhead" "identical";
  line ();
  let rows = ref [] in
  let measure ?(gated = true) ~reps name run =
    let t_off, t_on = time2 ~reps run in
    let _, csv_off = run false () in
    let _, csv_on = run true () in
    let identical = csv_off = csv_on in
    let ov = (t_on -. t_off) /. t_off in
    Fmt.pr "%-38s %9.2f ms %9.2f ms %+9.1f%% %9s%s@." name (1000. *. t_off) (1000. *. t_on)
      (100. *. ov)
      (if identical then "yes" else "NO")
      (if gated then "" else "  (info)");
    rows := (name, t_off, t_on, ov, identical, gated) :: !rows
  in
  let profiled telemetry f =
    if not telemetry then f ()
    else begin
      let tel = Ssmst_obs.Telemetry.create () in
      Ssmst_obs.Telemetry.install tel;
      Fun.protect ~finally:Ssmst_obs.Telemetry.uninstall f
    end
  in
  (* W1/W2 mirror REPLAY's ENGINE workloads exactly (same graphs, seeds
     and windows), so the bare wall_off_s columns of BENCH_PR4.json and
     BENCH_PR9.json chart the same experiment across PRs — the
     perf-trajectory section keys on that. *)
  let g1 = Gen.random_connected (Gen.rng 8300) 256 in
  let bfs_run telemetry () =
    let module P = Ssmst_protocols.Ss_bfs.P in
    let module Net = Network.Make (P) in
    let net = Net.create g1 in
    Net.run net Scheduler.Sync ~rounds:600;
    Metrics.reset (Net.metrics net);
    let dt =
      profiled telemetry (fun () ->
          let t0 = Unix.gettimeofday () in
          ignore (Net.inject_faults net (Gen.rng 8311) ~count:1);
          Net.run net Scheduler.Sync ~rounds:4096;
          Unix.gettimeofday () -. t0)
    in
    (dt, Metrics.to_csv_row (Net.metrics net))
  in
  measure ~reps:31 "ENGINE-W1 ss-bfs n=256, 1 fault" bfs_run;
  let g2 = Gen.random_connected (Gen.rng 8400) 256 in
  let m2 = Marker.run g2 in
  let module VC = struct
    let marker = m2
    let mode = Verifier.Passive
  end in
  let module VP = Verifier.Make (VC) in
  let settle2 = 2 * Verifier.window_bound m2.labels.(0) in
  let verifier_run telemetry () =
    let module Net = Network.Make (VP) in
    let dt, m =
      profiled telemetry (fun () ->
          let t0 = Unix.gettimeofday () in
          let net = Net.create g2 in
          Net.run net Scheduler.Sync ~rounds:settle2;
          ignore (Net.inject_faults net (Gen.rng 8411) ~count:1);
          ignore (Net.detection_time net Scheduler.Sync ~max_rounds:20000);
          (Unix.gettimeofday () -. t0, Net.metrics net))
    in
    (dt, Metrics.to_csv_row m)
  in
  measure ~reps:5 "ENGINE-W2 verifier n=256, detection" verifier_run;
  (* the flat engine's probe set (frontier/compute/apply), informational:
     the packed election at n=4096 exercises flat.* and, under -d, the
     per-worker spans — but its wall time breathes with the allocator *)
  let g3 = Gen.random_connected (Gen.rng 8500) 4096 in
  let flat_run telemetry () =
    let module P = Ssmst_protocols.Ss_bfs.P in
    let module F = Network.Flat (P) in
    let net = F.create g3 in
    let dt =
      profiled telemetry (fun () ->
          let t0 = Unix.gettimeofday () in
          F.run net Scheduler.Sync ~rounds:200;
          Unix.gettimeofday () -. t0)
    in
    (dt, Metrics.to_csv_row (F.metrics net))
  in
  measure ~gated:false ~reps:5 "flat ss-bfs n=4096, election" flat_run;
  (* ---- per-phase breakdown at scale (informational) -------------------
     The measured table EXPERIMENTS.md quotes: the DOMAINS workload (grid
     n ~= 250k, 12 sync rounds, a fault burst every 4) with a live
     profiler attached, at -d min(4, cores) — flat.frontier vs
     flat.compute vs flat.apply is exactly the wrote-tag scan /
     scratch-blit cost split ROADMAP asks about.  SSMST_PROF_BREAKDOWN_N
     shrinks it for smoke runs; 0 skips it. *)
  let breakdown_n =
    match Sys.getenv_opt "SSMST_PROF_BREAKDOWN_N" with
    | Some s -> ( try int_of_string s with _ -> 250_000)
    | None -> 250_000
  in
  (* The dense-frontier budget (PR 10): the flat.frontier phase must stay
     under this share of the flat.* round wall time at scale.  The list
     frontier sat at ~42%; the dense frontier's contract is < 25%.
     SSMST_PROF_FRONTIER_BUDGET (percent) softens it for noisy runners. *)
  let frontier_budget =
    match Sys.getenv_opt "SSMST_PROF_FRONTIER_BUDGET" with
    | Some s -> ( try float_of_string s with Failure _ -> 25.)
    | None -> 25.
  in
  let frontier_fail = ref None in
  if breakdown_n > 0 then begin
    let module P = Ssmst_protocols.Ss_bfs.P in
    let module F = Network.Flat (P) in
    let side = max 2 (int_of_float (sqrt (float_of_int breakdown_n))) in
    let g = Gen.stream_grid ~seed:7700 side side in
    let d = min 4 (Ssmst_parallel.Pool.cpu_count ()) in
    let rounds = 12 in
    let tel = Ssmst_obs.Telemetry.create () in
    Ssmst_obs.Telemetry.install tel;
    Fun.protect ~finally:Ssmst_obs.Telemetry.uninstall (fun () ->
        let net = F.create ~domains:d g in
        for r = 1 to rounds do
          if r mod 4 = 1 then
            ignore (F.inject net (Gen.rng (9000 + r)) (Fault.uniform ~count:64));
          F.round net Scheduler.Sync
        done);
    Fmt.pr "@.per-phase breakdown — flat parallel round, grid n=%d, -d %d:@.@.%s@."
      (Graph.n g) d
      (Ssmst_obs.Telemetry.to_markdown tel);
    (* distil the two trajectory metrics the REPORT regression flag keys
       on: frontier's share of the flat.* round wall, and allocation per
       round summed over the flat.* phases *)
    let flat_phase (p : Ssmst_obs.Telemetry.phase) =
      String.length p.name > 5 && String.sub p.name 0 5 = "flat."
    in
    let phases = List.filter flat_phase (Ssmst_obs.Telemetry.phases tel) in
    let sum f = List.fold_left (fun acc p -> acc +. f p) 0. phases in
    let wall = sum (fun p -> p.Ssmst_obs.Telemetry.wall_s) in
    let frontier_wall =
      sum (fun p -> if p.Ssmst_obs.Telemetry.name = "flat.frontier" then p.wall_s else 0.)
    in
    let share = if wall > 0. then 100. *. frontier_wall /. wall else 0. in
    let minor_per_round =
      sum (fun p -> p.Ssmst_obs.Telemetry.minor_words) /. float_of_int rounds
    in
    Fmt.pr "frontier share of round wall: %.1f%% (budget < %.0f%%)@." share frontier_budget;
    Fmt.pr "minor words per round (flat.* phases): %.3e@." minor_per_round;
    if share >= frontier_budget then
      frontier_fail :=
        Some (Fmt.str "frontier share %.1f%% >= budget %.0f%%" share frontier_budget);
    let json_path =
      Option.value ~default:"BENCH_PR10.json" (Sys.getenv_opt "SSMST_BENCH_PR10_JSON")
    in
    let contents =
      Printf.sprintf
        {|{"pr":10,"gated":true,"frontier_budget_pct":%.1f,"workloads":[{"name":"flat grid n=%d -d %d breakdown","frontier_share_pct":%.2f,"minor_words_per_round":%.1f,"wall_s":%.6f}],"within_budget":%b}
|}
        frontier_budget (Graph.n g) d share minor_per_round wall
        (share < frontier_budget)
    in
    ignore (write_artifact_guarded ~json_path ~gated:true contents)
  end;
  let rows = List.rev !rows in
  let identity_ok = List.for_all (fun (_, _, _, _, id, _) -> id) rows in
  let within =
    List.for_all (fun (_, _, _, ov, _, gated) -> (not gated) || ov <= budget) rows
  in
  let json_path =
    Option.value ~default:"BENCH_PR9.json" (Sys.getenv_opt "SSMST_BENCH_PR9_JSON")
  in
  let contents =
    Printf.sprintf
      {|{"pr":9,"budget_pct":%.1f,"gated":true,"identity_ok":%b,"workloads":[%s],"within_budget":%b}
|}
      (100. *. budget) identity_ok
      (String.concat ","
         (List.map
            (fun (name, t_off, t_on, ov, identical, gated) ->
              Printf.sprintf
                {|{"name":"%s","wall_off_s":%.6f,"wall_on_s":%.6f,"overhead_pct":%.2f,"identical":%b,"gated":%b}|}
                (Ssmst_sim.Trace.json_escape name)
                t_off t_on (100. *. ov) identical gated)
            rows))
      within
  in
  ignore (write_artifact_guarded ~json_path ~gated:true contents);
  if not identity_ok then begin
    Fmt.pr "PROF: telemetry leaked into the metrics CSV — out-of-band contract broken.@.";
    exit 1
  end;
  (match List.filter (fun (_, _, _, ov, _, gated) -> gated && ov > budget) rows with
  | [] -> Fmt.pr "telemetry overhead within the %.0f%% budget.@." (100. *. budget)
  | fs ->
      Fmt.pr "PROF overhead budget (%.0f%%) exceeded: %a@." (100. *. budget)
        Fmt.(list ~sep:comma string)
        (List.map (fun (n, _, _, ov, _, _) -> Fmt.str "%s (%+.1f%%)" n (100. *. ov)) fs);
      exit 1);
  match !frontier_fail with
  | None -> ()
  | Some msg ->
      Fmt.pr "PROF frontier budget exceeded: %s@." msg;
      exit 1

(* ==================================================================== *)
(* PAR — parallel campaign scaling + byte-determinism + BENCH_PR5.json   *)
(* ==================================================================== *)

(* The fork pool's two contracts, measured on the real campaign sweep:
   (1) the CSV/JSONL bytes are identical for every -j (checked here on
   every run, unconditionally), and (2) -j 4 is at least 2.5x faster than
   sequential — a physical claim that only means something with >= 4
   cores, so the speedup gate is core-aware: on smaller machines the row
   is informational and BENCH_PR5.json records gated=false.  CI (and
   noisy shared runners) can soften the target via SSMST_PAR_MIN_SPEEDUP.
   Results land in BENCH_PR5.json (or $SSMST_BENCH_PR5_JSON). *)
let par_min_speedup () =
  match Sys.getenv_opt "SSMST_PAR_MIN_SPEEDUP" with
  | Some s -> (try max 1.0 (float_of_string s) with _ -> 2.5)
  | None -> 2.5

let fig_par () =
  header "PAR — parallel campaign sweep: fork-pool scaling vs sequential";
  let families = [ "random"; "grid" ] and sizes = [ 48; 64 ] in
  let fault_counts = [ 1; 2; 4 ] and models = [ "uniform"; "clustered"; "near-root" ] in
  let sweep jobs =
    Verifier_campaign.sweep ~jobs ~families ~sizes ~fault_counts ~models ~seeds:3 ~seed:9500
      ~max_rounds:20000 ()
  in
  (* the exact bytes msst campaign would write: CSV document + JSONL *)
  let doc trials =
    String.concat "\n" (Campaign.csv_header :: List.map Campaign.trial_to_csv trials)
    ^ "\n"
    ^ String.concat "\n" (List.map Campaign.trial_to_json trials)
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let trials = sweep jobs in
    (Unix.gettimeofday () -. t0, trials)
  in
  let t1, seq = time 1 in
  let base = doc seq in
  Fmt.pr "%d instances x %d trials each; %d trials total@."
    (List.length families * List.length sizes * 3)
    (List.length fault_counts * List.length models)
    (List.length seq);
  Fmt.pr "%-10s %12s %10s %10s@." "jobs" "wall" "speedup" "identical";
  line ();
  Fmt.pr "%-10d %9.3f s %10s %10s@." 1 t1 "1.00x" "-";
  let rows =
    List.map
      (fun jobs ->
        let tj, trials = time jobs in
        let same = String.equal (doc trials) base in
        Fmt.pr "%-10d %9.3f s %9.2fx %10b@." jobs tj (t1 /. tj) same;
        (jobs, tj, t1 /. tj, same))
      [ 2; 4 ]
  in
  let cores = Ssmst_parallel.Pool.cpu_count () in
  let min_speedup = par_min_speedup () in
  let gated = cores >= 4 in
  let identical = List.for_all (fun (_, _, _, same) -> same) rows in
  let speedup4 =
    match List.find_opt (fun (j, _, _, _) -> j = 4) rows with
    | Some (_, _, s, _) -> s
    | None -> 0.
  in
  let within = identical && ((not gated) || speedup4 >= min_speedup) in
  let json_path =
    Option.value ~default:"BENCH_PR5.json" (Sys.getenv_opt "SSMST_BENCH_PR5_JSON")
  in
  let contents =
    Printf.sprintf
      {|{"pr":5,"cores":%d,"min_speedup":%.2f,"gated":%b,"trials":%d,"workloads":[%s],"identical":%b,"within_budget":%b}
|}
      cores min_speedup gated (List.length seq)
      (String.concat ","
         ((Printf.sprintf {|{"jobs":1,"wall_s":%.6f,"speedup":1.0,"identical":true}|} t1)
         :: List.map
              (fun (jobs, tj, s, same) ->
                Printf.sprintf {|{"jobs":%d,"wall_s":%.6f,"speedup":%.3f,"identical":%b}|} jobs
                  tj s same)
              rows))
      identical within
  in
  Fmt.pr "@.%d core(s); speedup gate (>= %.2fx at -j 4) %s@." cores min_speedup
    (if gated then "enforced" else "informational (needs >= 4 cores)");
  if not gated then Fmt.pr "gate skipped: %d cores (scaling gate needs >= 4)@." cores;
  ignore (write_artifact_guarded ~json_path ~gated contents);
  if not identical then begin
    Fmt.pr "PAR determinism violated: parallel CSV/JSONL differ from sequential.@.";
    exit 1
  end;
  if gated && speedup4 < min_speedup then begin
    Fmt.pr "PAR scaling budget missed: %.2fx at -j 4 (target %.2fx).@." speedup4 min_speedup;
    exit 1
  end

(* ==================================================================== *)
(* SCALE — the million-node unlock: flat engine over streamed CSR graphs *)
(* ==================================================================== *)

(* The flat-core acceptance experiment: stream-build n ∈ {10^4, 10^5, 10^6}
   instances of each family directly into CSR (no intermediate edge list),
   run the packed ss-bfs election on {!Network.Flat} and gate

   - measured bytes/node: [8 * words] must stay within 64·⌈log2 n⌉ bits
     (the Section 2.4 memory-size claim, in whole 64-bit words);
   - throughput: at least $SSMST_SCALE_MIN_RPS rounds/sec (default 1.0 —
     a liveness floor, not a performance claim; the printed numbers are
     the claim);
   - residency: the VmHWM high-water delta of each instance must stay
     within 6x its accounted storage (CSR arrays + register file) plus a
     fixed GC slack — the "memory is the register file" honesty check.

   CI trims the sweep with SSMST_SCALE_MAX_N (the smoke job runs 10^5).
   Results land in BENCH_PR6.json (or $SSMST_BENCH_PR6_JSON). *)

let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            acc
        | line ->
            let acc =
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                try
                  Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
                    (fun k -> Some k)
                with Scanf.Scan_failure _ | Failure _ | End_of_file -> acc
              else acc
            in
            go acc
      in
      go None

let scale_max_n () =
  match Sys.getenv_opt "SSMST_SCALE_MAX_N" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1_000_000)
  | None -> 1_000_000

let scale_min_rps () =
  match Sys.getenv_opt "SSMST_SCALE_MIN_RPS" with
  | Some s -> ( try float_of_string s with _ -> 0.25)
  | None -> 0.25

(* the streamed instance of each family closest to the target size *)
let scale_instance family target seed =
  match family with
  | "grid" ->
      let side = int_of_float (sqrt (float_of_int target)) in
      Gen.stream_grid ~seed side side
  | "random" -> Gen.stream_random ~seed target
  | "hypertree" ->
      (* n = 2^(h+1) - 1: the height whose size is nearest the target *)
      let size h = (1 lsl (h + 1)) - 1 in
      let rec fit h = if size h >= target then h else fit (h + 1) in
      let h = fit 1 in
      let h = if h > 1 && target - size (h - 1) < size h - target then h - 1 else h in
      Gen.stream_hypertree ~seed h
  | f -> invalid_arg ("scale_instance: unknown family " ^ f)

let fig_scale () =
  header "SCALE — flat engine over streamed CSR instances (packed ss-bfs election)";
  let module P = Ssmst_protocols.Ss_bfs.P in
  let module F = Network.Flat (P) in
  let max_n = scale_max_n () and min_rps = scale_min_rps () in
  let sizes = List.filter (fun n -> n <= max_n) [ 10_000; 100_000; 1_000_000 ] in
  let rounds = 20 in
  (* SSMST_DOMAINS > 1 runs every instance's sync rounds domain-parallel;
     states/metrics are byte-identical, only rounds/s moves *)
  let domains = Ssmst_parallel.Domain_pool.domains_from_env ~var:"SSMST_DOMAINS" ~default:1 () in
  if domains > 1 then
    Fmt.pr "sync rounds sharded across %d domains (multicore runtime: %b)@." domains
      Ssmst_parallel.Domain_pool.available;
  Fmt.pr "%-10s %-9s %8s %6s %9s %9s %10s %9s %8s@." "family" "n" "build" "B/node" "budget"
    "run" "rounds/s" "rss MB" "rss ok";
  line ();
  let rows = ref [] in
  List.iter
    (fun target ->
      List.iter
        (fun family ->
          let hwm0 = Option.value ~default:0 (vm_hwm_kb ()) in
          let g, build_s = wall (fun () -> scale_instance family target (6400 + target)) in
          let n = Graph.n g in
          let net, create_s = wall (fun () -> F.create ~domains g) in
          let (), run_s = wall (fun () -> F.run net Scheduler.Sync ~rounds) in
          let rps = float_of_int rounds /. run_s in
          let bytes_per_node = F.measured_bytes_per_node net in
          let budget_ok = Memory.within_log_budget ~c:64 ~n ~words:(F.words net) in
          let hwm1 = Option.value ~default:0 (vm_hwm_kb ()) in
          let rss_delta_mb = float_of_int (hwm1 - hwm0) /. 1024. in
          let accounted_mb =
            float_of_int ((8 * Graph.storage_words g) + (bytes_per_node * n))
            /. (1024. *. 1024.)
          in
          (* 6x accounted + 256 MB GC slack; only meaningful when this
             instance actually raised the high-water mark *)
          let rss_ok = rss_delta_mb <= (6. *. accounted_mb) +. 256. in
          Fmt.pr "%-10s %-9d %7.2fs %6d %9s %8.2fs %10.2f %9.1f %8b@." family n
            (build_s +. create_s) bytes_per_node
            (if budget_ok then "ok" else "OVER")
            run_s rps rss_delta_mb rss_ok;
          rows :=
            (family, n, build_s +. create_s, bytes_per_node, budget_ok, run_s, rps,
             rss_delta_mb, accounted_mb, rss_ok)
            :: !rows)
        [ "grid"; "random"; "hypertree" ])
    sizes;
  let rows = List.rev !rows in
  let within =
    List.for_all
      (fun (_, _, _, _, budget_ok, _, rps, _, _, rss_ok) ->
        budget_ok && rss_ok && rps >= min_rps)
      rows
  in
  let json_path =
    Option.value ~default:"BENCH_PR6.json" (Sys.getenv_opt "SSMST_BENCH_PR6_JSON")
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    {|{"pr":6,"engine":"flat","protocol":"ss-bfs","rounds":%d,"max_n":%d,"domains":%d,"min_rounds_per_sec":%.2f,"workloads":[%s],"within_budget":%b}
|}
    rounds max_n domains min_rps
    (String.concat ","
       (List.map
          (fun (family, n, build_s, bpn, budget_ok, run_s, rps, rss, acc, rss_ok) ->
            Printf.sprintf
              {|{"family":"%s","n":%d,"build_s":%.3f,"bytes_per_node":%d,"log_budget_ok":%b,"run_s":%.3f,"rounds_per_sec":%.1f,"rss_delta_mb":%.1f,"accounted_mb":%.1f,"rss_ok":%b}|}
              family n build_s bpn budget_ok run_s rps rss acc rss_ok)
          rows))
    within;
  close_out oc;
  Fmt.pr "@.modeled bound: 64 * ceil(log2 n) bits/node; measured: 8 * words bytes/node.@.";
  Fmt.pr "(machine-readable results written to %s)@." json_path;
  if not within then begin
    Fmt.pr "SCALE gates missed (see the budget/rss columns above).@.";
    exit 1
  end

(* ==================================================================== *)
(* DOMAINS — intra-instance scaling: Flat sync rounds across domains     *)
(* ==================================================================== *)

(* The tentpole acceptance experiment: one large Flat instance, its sync
   rounds sharded across -d 1/2/4 domains.  Byte-identity of the register
   file and the metrics CSV row across every domain count is checked
   unconditionally on every run; the >= 2x @ -d 4 speedup gate is
   core-aware — enforced only on >= 4 cores AND a multicore runtime
   (SSMST_DOMAIN_MIN_SPEEDUP overrides the target).  Periodic
   deterministic fault bursts keep the frontier wide: a converged election
   is quiescent and has nothing to parallelize.  Results land in
   BENCH_PR7.json (or $SSMST_BENCH_PR7_JSON), written through the same
   gated-artifact guard as PAR. *)

let domains_min_speedup () =
  match Sys.getenv_opt "SSMST_DOMAIN_MIN_SPEEDUP" with
  | Some s -> ( try max 1.0 (float_of_string s) with _ -> 2.0)
  | None -> 2.0

let domains_target_n () =
  match Sys.getenv_opt "SSMST_DOMAINS_N" with
  | Some s -> ( try max 1024 (int_of_string s) with _ -> 250_000)
  | None -> 250_000

let fig_domains () =
  header "DOMAINS — domain-parallel sync rounds on one Network.Flat instance";
  let module P = Ssmst_protocols.Ss_bfs.P in
  let module F = Network.Flat (P) in
  let target = domains_target_n () in
  let side = max 2 (int_of_float (sqrt (float_of_int target))) in
  let g = Gen.stream_grid ~seed:7700 side side in
  let rounds = 12 in
  let run d =
    let net = F.create ~domains:d g in
    let (), s =
      wall (fun () ->
          for r = 1 to rounds do
            (* a burst every 4 rounds, same seeds at every -d *)
            if r mod 4 = 1 then
              ignore (F.inject net (Gen.rng (9000 + r)) (Fault.uniform ~count:64));
            F.round net Scheduler.Sync
          done)
    in
    (s, F.registers net, Metrics.to_csv_row (F.metrics net))
  in
  Fmt.pr "grid n=%d, %d sync rounds with fault bursts; multicore runtime: %b@." (Graph.n g)
    rounds Ssmst_parallel.Domain_pool.available;
  Fmt.pr "%-10s %12s %10s %10s@." "domains" "wall" "speedup" "identical";
  line ();
  let t1, regs1, csv1 = run 1 in
  Fmt.pr "%-10d %9.3f s %10s %10s@." 1 t1 "1.00x" "-";
  let rows =
    List.map
      (fun d ->
        let td, regs, csv = run d in
        let same = regs = regs1 && String.equal csv csv1 in
        Fmt.pr "%-10d %9.3f s %9.2fx %10b@." d td (t1 /. td) same;
        (d, td, t1 /. td, same))
      [ 2; 4 ]
  in
  let cores = Ssmst_parallel.Pool.cpu_count () in
  let min_speedup = domains_min_speedup () in
  let gated = cores >= 4 && Ssmst_parallel.Domain_pool.available in
  let identical = List.for_all (fun (_, _, _, same) -> same) rows in
  let speedup4 =
    match List.find_opt (fun (d, _, _, _) -> d = 4) rows with
    | Some (_, _, s, _) -> s
    | None -> 0.
  in
  let within = identical && ((not gated) || speedup4 >= min_speedup) in
  let json_path =
    Option.value ~default:"BENCH_PR7.json" (Sys.getenv_opt "SSMST_BENCH_PR7_JSON")
  in
  let contents =
    Printf.sprintf
      {|{"pr":7,"engine":"flat","protocol":"ss-bfs","n":%d,"rounds":%d,"cores":%d,"min_speedup":%.2f,"gated":%b,"workloads":[%s],"identical":%b,"within_budget":%b}
|}
      (Graph.n g) rounds cores min_speedup gated
      (String.concat ","
         ((Printf.sprintf {|{"domains":1,"wall_s":%.6f,"speedup":1.0,"identical":true}|} t1)
         :: List.map
              (fun (d, td, s, same) ->
                Printf.sprintf {|{"domains":%d,"wall_s":%.6f,"speedup":%.3f,"identical":%b}|} d
                  td s same)
              rows))
      identical within
  in
  Fmt.pr "@.%d core(s); speedup gate (>= %.2fx at -d 4) %s@." cores min_speedup
    (if gated then "enforced"
     else if not Ssmst_parallel.Domain_pool.available then
       "informational (sequential runtime — OCaml < 5.0)"
     else "informational (needs >= 4 cores)");
  if not gated then Fmt.pr "gate skipped: %d cores (scaling gate needs >= 4)@." cores;
  ignore (write_artifact_guarded ~json_path ~gated contents);
  if not identical then begin
    Fmt.pr "DOMAINS determinism violated: registers/metrics differ from -d 1.@.";
    exit 1
  end;
  if gated && speedup4 < min_speedup then begin
    Fmt.pr "DOMAINS scaling budget missed: %.2fx at -d 4 (target %.2fx).@." speedup4
      min_speedup;
    exit 1
  end

(* ==================================================================== *)
(* REPORT — merge every BENCH_*.json into one trend table                *)
(* ==================================================================== *)

(* One line summarizing a workload entry, tolerant of each PR's shape.
   [gated]/[cores] come from the enclosing artifact: a speedup measured on
   an un-gated run (too few cores for the parallelism to be physical) is
   NOT a measurement and must not read like one — render it SKIPPED
   instead of charting a 1-core 0.88x as a regression. *)
let workload_headline ~gated ~cores (w : Json.t) =
  let name =
    match (Json.str_opt (Json.mem "name" w), Json.str_opt (Json.mem "family" w)) with
    | Some n, _ -> n
    | None, Some f -> (
        match Json.num_opt (Json.mem "n" w) with
        | Some n -> Printf.sprintf "%s n=%.0f" f n
        | None -> f)
    | None, None -> (
        match
          (Json.num_opt (Json.mem "jobs" w), Json.num_opt (Json.mem "domains" w))
        with
        | Some j, _ -> Printf.sprintf "-j %.0f" j
        | None, Some d -> Printf.sprintf "-d %.0f" d
        | None, None -> "?")
  in
  let speedup =
    match Json.num_opt (Json.mem "speedup" w) with
    | None -> None
    | Some s when gated -> Some (Printf.sprintf "speedup %.2fx" s)
    | Some _ -> Some (Printf.sprintf "speedup SKIPPED (%.0f core(s))" cores)
  in
  let metrics =
    List.filter_map
      (fun (key, fmt) ->
        Option.map (fun v -> Printf.sprintf fmt v) (Json.num_opt (Json.mem key w)))
      [
        ("overhead_pct", "overhead %+.1f%%");
        ("rounds_per_sec", "%.1f rounds/s");
        ("bytes_per_node", "%.0f B/node");
        ("rss_delta_mb", "rss %.1f MB");
      ]
  in
  (name, String.concat ", " (Option.to_list speedup @ metrics))

let fig_report () =
  header "REPORT — merged bench artifacts (BENCH_*.json)";
  let files =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json"
           && f <> "BENCH_REPORT.json")
    |> List.sort compare
  in
  if files = [] then Fmt.pr "no BENCH_*.json artifacts in the current directory.@."
  else begin
    let reports =
      List.filter_map
        (fun file ->
          let ic = open_in file in
          let len = in_channel_length ic in
          let body = really_input_string ic len in
          close_in ic;
          match Json.parse body with
          | j -> Some (file, j)
          | exception Json.Bad msg ->
              Fmt.pr "(skipping %s: %s)@." file msg;
              None)
        files
    in
    let b = Buffer.create 4096 in
    let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    out "# Bench trend report";
    out "";
    (* cores + gating status first: a speedup row from a 2-core container
       and one from a 16-core workstation are different experiments *)
    List.iter
      (fun (file, j) ->
        match Json.num_opt (Json.mem "cores" j) with
        | Some cores ->
            let gated = Option.value ~default:true (Json.bool_opt (Json.mem "gated" j)) in
            out "Parallel gate (%s): %.0f core(s), scaling gate %s." file cores
              (if gated then "ENFORCED"
               else Printf.sprintf "SKIPPED — %.0f cores (needs >= 4)" cores)
        | None -> ())
      reports;
    out "";
    out "| artifact | pr | workloads | cores | gated | within budget |";
    out "|---|---|---|---|---|---|";
    List.iter
      (fun (file, j) ->
        let num k = match Json.num_opt (Json.mem k j) with Some f -> Printf.sprintf "%.0f" f | None -> "-" in
        let bool k =
          match Json.bool_opt (Json.mem k j) with
          | Some true -> "yes"
          | Some false -> "NO"
          | None -> "-"
        in
        out "| %s | %s | %d | %s | %s | %s |" file (num "pr")
          (List.length (Json.arr (Json.mem "workloads" j)))
          (num "cores") (bool "gated") (bool "within_budget"))
      reports;
    out "";
    out "## Workloads";
    out "";
    List.iter
      (fun (file, j) ->
        out "### %s" file;
        out "";
        (* artifacts without a cores field predate the parallel gates and
           report no speedups; treat them as gated so nothing is hidden *)
        let gated = Option.value ~default:true (Json.bool_opt (Json.mem "gated" j)) in
        let cores = Option.value ~default:1. (Json.num_opt (Json.mem "cores" j)) in
        List.iter
          (fun w ->
            let name, metrics = workload_headline ~gated ~cores w in
            out "- %s%s" name (if metrics = "" then "" else ": " ^ metrics))
          (Json.arr (Json.mem "workloads" j));
        out "")
      reports;
    (* ---- perf trajectory ----------------------------------------------
       Chart every numeric gate metric per (workload, metric) across the
       per-PR artifacts, delta against the previous PR that recorded it,
       and flag a regression when a *gated* metric worsens by more than
       10%.  The wall_off_s series is the backbone: PROF's ENGINE
       workloads replay the same graphs/seeds/windows PR after PR, so the
       telemetry-off wall time is one experiment measured repeatedly. *)
    let worse_if_up =
      [
        "overhead_pct"; "wall_s"; "wall_on_s"; "wall_off_s"; "run_s"; "build_s";
        "bytes_per_node"; "rss_delta_mb"; "frontier_share_pct"; "minor_words_per_round";
      ]
    and worse_if_down = [ "rounds_per_sec"; "speedup"; "events_per_sec" ] in
    let series = Hashtbl.create 32 and keys_rev = ref [] in
    let add key pt =
      match Hashtbl.find_opt series key with
      | None ->
          keys_rev := key :: !keys_rev;
          Hashtbl.add series key [ pt ]
      | Some pts -> Hashtbl.replace series key (pt :: pts)
    in
    List.iter
      (fun (_file, j) ->
        match Json.num_opt (Json.mem "pr" j) with
        | None -> ()
        | Some pr ->
            let art_gated =
              Option.value ~default:true (Json.bool_opt (Json.mem "gated" j))
            in
            let cores = Option.value ~default:1. (Json.num_opt (Json.mem "cores" j)) in
            List.iter
              (fun w ->
                let name, _ = workload_headline ~gated:art_gated ~cores w in
                let w_gated =
                  Option.value ~default:art_gated (Json.bool_opt (Json.mem "gated" w))
                in
                List.iter
                  (fun key ->
                    match Json.num_opt (Json.mem key w) with
                    | Some v -> add (name, key) (pr, v, w_gated)
                    | None -> ())
                  (worse_if_up @ worse_if_down))
              (Json.arr (Json.mem "workloads" j)))
      reports;
    let traj_rows =
      List.rev_map
        (fun ((wname, metric) as key) ->
          let pts =
            List.sort
              (fun (a, _, _) (b, _, _) -> compare (a : float) b)
              (List.rev (Hashtbl.find series key))
          in
          let chart =
            String.concat " -> "
              (List.map (fun (pr, v, _) -> Printf.sprintf "%.0f:%.4g" pr v) pts)
          in
          let delta, regression =
            match List.rev pts with
            | (_, last, g_last) :: (_, prev, _) :: _ when prev <> 0. ->
                let pct = 100. *. (last -. prev) /. Float.abs prev in
                let worsened = if List.mem metric worse_if_down then -.pct else pct in
                (Some pct, g_last && worsened > 10.)
            | _ -> (None, false)
          in
          (wname, metric, pts, chart, delta, regression))
        !keys_rev
    in
    out "## Perf trajectory";
    out "";
    if traj_rows = [] then out "(no per-PR numeric series yet)"
    else begin
      out "| workload | metric | trajectory (pr:value) | delta vs prev | flag |";
      out "|---|---|---|---|---|";
      List.iter
        (fun (wname, metric, _, chart, delta, regression) ->
          out "| %s | %s | %s | %s | %s |" wname metric chart
            (match delta with Some d -> Printf.sprintf "%+.1f%%" d | None -> "-")
            (if regression then "REGRESSION"
             else match delta with Some _ -> "ok" | None -> "-"))
        traj_rows;
      match List.filter (fun (_, _, _, _, _, r) -> r) traj_rows with
      | [] -> ()
      | rs ->
          out "";
          out "%d gated metric(s) regressed > 10%% vs the previous PR." (List.length rs)
    end;
    out "";
    let md = Buffer.contents b in
    print_string md;
    let write path contents =
      let oc = open_out path in
      output_string oc contents;
      close_out oc
    in
    write "BENCH_REPORT.md" md;
    write "BENCH_REPORT.json"
      (Json.to_string
         (Json.Obj
            [
              ("merged_from", Json.Arr (List.map (fun (f, _) -> Json.Str f) reports));
              ( "trajectory",
                Json.Arr
                  (List.map
                     (fun (wname, metric, pts, _, delta, regression) ->
                       Json.Obj
                         [
                           ("workload", Json.Str wname);
                           ("metric", Json.Str metric);
                           ( "points",
                             Json.Arr
                               (List.map
                                  (fun (pr, v, _) ->
                                    Json.Obj
                                      [ ("pr", Json.Num pr); ("value", Json.Num v) ])
                                  pts) );
                           ( "delta_pct",
                             match delta with Some d -> Json.Num d | None -> Json.Null );
                           ("regression", Json.Bool regression);
                         ])
                     traj_rows) );
              ("reports", Json.Arr (List.map snd reports));
            ])
       ^ "\n");
    Fmt.pr "@.(written to BENCH_REPORT.md and BENCH_REPORT.json)@."
  end

(* ==================================================================== *)
(* Bechamel wall-clock suite: one Test.make per experiment driver        *)
(* ==================================================================== *)

let bechamel_suite () =
  header "wall-clock micro-benchmarks (Bechamel; ns per driver run)";
  let open Bechamel in
  let open Toolkit in
  let quick_graph n seed =
    let st = Gen.rng seed in
    Gen.random_connected st n
  in
  let g64 = quick_graph 64 6000 in
  let m64 = Marker.run g64 in
  let tests =
    [
      Test.make ~name:"T1:higham-liang-n64"
        (Staged.stage (fun () -> ignore (Ssmst_baselines.Higham_liang.run g64)));
      Test.make ~name:"T1:blin-n64" (Staged.stage (fun () -> ignore (Ssmst_baselines.Blin.run g64)));
      Test.make ~name:"T2:marker-fig1" (Staged.stage (fun () -> ignore (Marker.run (fig1_graph ()))));
      Test.make ~name:"F-CT:sync-mst-n64" (Staged.stage (fun () -> ignore (Sync_mst.run g64)));
      Test.make ~name:"F-CT:ghs-n64"
        (Staged.stage (fun () -> ignore (Ssmst_baselines.Ghs.run g64)));
      Test.make ~name:"F-MEM:kkp-mark-n64"
        (Staged.stage (fun () -> ignore (Ssmst_pls.Kkp_pls.mark m64)));
      Test.make ~name:"F-DT:verifier-100-rounds-n64"
        (Staged.stage (fun () ->
             let module C = struct
               let marker = m64
               let mode = Verifier.Passive
             end in
             let module P = Verifier.Make (C) in
             let module Net = Network.Make (P) in
             let net = Net.create g64 in
             Net.run net Scheduler.Sync ~rounds:100));
      Test.make ~name:"F-LB:hypertree-instance"
        (Staged.stage (fun () ->
             ignore (Lower_bound.measure ~seed:6001 ~h:4 ~tau:0 ~positive:false)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
          let ols =
            Analyze.one
              (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
              Instance.monotonic_clock raw
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "%-36s %14.0f ns/run@." (Test.Elt.name elt) est
          | _ -> Fmt.pr "%-36s (no estimate)@." (Test.Elt.name elt))
        (Test.elements test))
    tests

(* ==================================================================== *)

let all_experiments =
  [
    ("T1", table1);
    ("T2", table2);
    ("F-DT", fig_detection_time);
    ("F-ASY", fig_async_gap);
    ("F-DD", fig_detection_distance);
    ("F-CT", fig_construction_time);
    ("F-MEM", fig_memory);
    ("F-LB", fig_lower_bound);
    ("ENGINE", fig_engine);
    ("CAMPAIGN", fig_campaign);
    ("ABL", (fun () -> ablation_threshold (); ablation_window ()));
    ("OBS", fig_obs);
    ("REPLAY", fig_replay);
    ("PAR", fig_par);
    ("SCALE", fig_scale);
    ("DOMAINS", fig_domains);
    ("PROF", fig_prof);
    ("REPORT", fig_report);
    ("BENCH", bechamel_suite);
  ]

let () =
  let requested = Array.to_list Sys.argv |> List.tl in
  let to_run =
    if requested = [] then all_experiments
    else List.filter (fun (name, _) -> List.mem name requested) all_experiments
  in
  List.iter (fun (_, f) -> f ()) to_run;
  Fmt.pr "@.all experiments completed.@."
