open Ssmst_graph
open Ssmst_sim
open Ssmst_replay

(* Repro: writes recorded at round == round0 (the creation checkpoint's
   round) are skipped by state_at, which still reports exact=true. *)
module P = Ssmst_protocols.Ss_bfs.P
module Net = Network.Make (P)
module R = Recorder.Make (P)

let () =
  let g = Gen.random_connected (Gen.rng 7) 16 in
  let net = Net.create g in
  Net.run net Scheduler.Sync ~rounds:100;
  let r0 = Net.rounds net in
  let rec_ = R.create ~interval:64 ~round0:r0 g (Net.states net) in
  Net.set_write_hook net (R.engine_hook rec_ (Net.states net));
  (* inject at the current round, like Flight.record_verify does *)
  let victims = Net.inject_faults net (Gen.rng 9) ~count:2 in
  Printf.printf "round0=%d victims=%s\n" r0
    (String.concat "," (List.map string_of_int victims));
  let v = R.state_at rec_ r0 in
  Printf.printf "state_at(round0): exact=%b\n" v.R.exact;
  let live = Net.states net in
  List.iter
    (fun n ->
      Printf.printf "victim %d: replayed=live? %b\n" n (P.equal v.R.states.(n) live.(n)))
    victims;
  (* now also check a later round before the next checkpoint *)
  Net.run net Scheduler.Sync ~rounds:1;
  let v1 = R.state_at rec_ (r0 + 1) in
  let live = Net.states net in
  let bad = ref 0 in
  Array.iteri (fun i s -> if not (P.equal s live.(i)) then incr bad) v1.R.states;
  Printf.printf "state_at(round0+1): exact=%b mismatching_nodes=%d\n" v1.R.exact !bad
