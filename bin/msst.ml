(* msst — command-line driver for the self-stabilizing MST library.

   Subcommands:
     construct  build the MST + proof labels for a generated network
     verify     run the self-stabilizing verifier, optionally inject faults
     stabilize  run the transformer scenario (construct/verify/repair loop)
     trace      fault-injection run emitting a JSONL event trace
     campaign   sweep fault models x sizes x fault counts; measure detection
     profile    run a scenario under the wall-clock/allocation profiler
     labels     print the Roots/EndP/Parents/Or-EndP strings of an instance
     compare    compare construction algorithms on one instance *)

open Cmdliner
open Ssmst_graph
open Ssmst_sim
open Ssmst_core

(* ---------------- shared arguments ---------------- *)

let n_arg =
  Arg.(value & opt int 32 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let family_arg =
  Arg.(
    value
    & opt (enum [ ("random", `Random); ("path", `Path); ("ring", `Ring); ("grid", `Grid);
                  ("complete", `Complete); ("star", `Star); ("hypertree", `Hypertree) ])
        `Random
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:"Graph family: random, path, ring, grid, complete, star, hypertree.")

let faults_arg =
  Arg.(value & opt int 1 & info [ "faults" ] ~docv:"F" ~doc:"Number of faults to inject.")

(* the one output-format selector shared by trace / report / explain / replay *)
type fmt = Json | Csv | Md

let fmt_conv = Arg.enum [ ("json", Json); ("csv", Csv); ("md", Md) ]

let format_arg default =
  Arg.(
    value & opt fmt_conv default
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,json), $(b,csv) or $(b,md).")

let md_cell s = String.concat "\\|" (String.split_on_char '|' s)

let async_arg =
  Arg.(value & flag & info [ "async" ] ~doc:"Use the asynchronous daemon and handshake mode.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "d"; "domains" ] ~docv:"N"
        ~doc:
          "Worker domains per synchronous round (intra-instance parallelism; OCaml 5 \
           runtimes only — ignored on 4.14).  0 (the default) reads $(b,MSST_DOMAINS), \
           falling back to 1 (sequential).  States, traces and metrics are byte-identical \
           at every count.")

(* the effective domain count: the flag wins, else MSST_DOMAINS, else 1 *)
let resolve_domains d =
  if d > 0 then d else Ssmst_parallel.Domain_pool.domains_from_env ~default:1 ()

(* n rounded down to the nearest complete-binary-tree size 2^(h+1)-1 *)
let hypertree_height n =
  let h = ref 2 in
  while (1 lsl (!h + 2)) - 1 <= n do incr h done;
  !h

(* At and above this size the O(1)-memory streamed CSR builders take over
   for the families that have them (same topology, a different — still
   seed-deterministic — weight draw).  Below it the Random.State builders
   keep every historical instance byte-identical. *)
let stream_threshold = 50_000

let make_graph family n seed =
  let st = Gen.rng seed in
  match family with
  | `Random -> if n >= stream_threshold then Gen.stream_random ~seed n else Gen.random_connected st n
  | `Path -> Gen.path st n
  | `Ring -> Gen.ring st n
  | `Grid ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      if n >= stream_threshold then Gen.stream_grid ~seed side side else Gen.grid st side side
  | `Complete -> Gen.complete st n
  | `Star -> Gen.star st n
  | `Hypertree ->
      let h = hypertree_height n in
      if n >= stream_threshold then Gen.stream_hypertree ~seed h
      else fst (Gen.hypertree_like st h)

(* ---------------- construct ---------------- *)

let construct family n seed =
  let g = make_graph family n seed in
  let m = Marker.run g in
  Fmt.pr "graph: %d nodes, %d edges, max degree %d@." (Graph.n g) (Graph.num_edges g)
    (Graph.max_degree g);
  Fmt.pr "MST weight: %d (verified against Kruskal: %b)@." (Tree.total_base_weight m.tree)
    (Mst.is_mst g (Graph.plain_weight_fn g) m.tree);
  Fmt.pr "hierarchy: %d fragments, height %d@." (Array.length m.hierarchy.frags)
    m.hierarchy.height;
  Fmt.pr "construction: %d charged rounds (%.1f per node)@." m.construction_rounds
    (float_of_int m.construction_rounds /. float_of_int (Graph.n g));
  Fmt.pr "labels: max %d bits per node (log2 n = %d)@." m.label_bits (Memory.of_nat n);
  Fmt.pr "partitions: %d parts (Top+Bottom), threshold %d@."
    (Array.length m.assignment.Partition.parts) m.assignment.Partition.threshold;
  0

(* ---------------- verify ---------------- *)

let verify family n seed faults async_ domains =
  let g = make_graph family n seed in
  let m = Marker.run g in
  let mode = if async_ then Verifier.Handshake else Verifier.Passive in
  let daemon = if async_ then Scheduler.Async_random (Gen.rng (seed + 1)) else Scheduler.Sync in
  let module C = struct
    let marker = m
    let mode = mode
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create ~domains:(resolve_domains domains) g in
  Net.run net daemon ~rounds:(8 * Verifier.window_bound m.labels.(0));
  Fmt.pr "settled after %d rounds; alarms: %b (must be false)@." (Net.rounds net)
    (Net.any_alarm net);
  if faults > 0 then begin
    let fs = Net.inject_faults net (Gen.rng (seed + 2)) ~count:faults in
    Fmt.pr "injected %d fault(s) at %a@." (List.length fs) Fmt.(list ~sep:comma int) fs;
    match Net.detection_time net daemon ~max_rounds:200000 with
    | Some dt ->
        Fmt.pr "detected after %d rounds; alarming nodes: %a; detection distance: %a@." dt
          Fmt.(list ~sep:comma int)
          (Net.alarming_nodes net)
          Fmt.(option ~none:(any "?") int)
          (Net.detection_distance net ~faults:fs)
    | None -> Fmt.pr "no detection (the corruption was semantically null)@."
  end;
  0

(* ---------------- stabilize ---------------- *)

let stabilize family n seed faults async_ domains =
  let g = make_graph family n seed in
  let mode = if async_ then Verifier.Handshake else Verifier.Passive in
  let daemon = if async_ then Scheduler.Async_random (Gen.rng (seed + 1)) else Scheduler.Sync in
  let t = Transformer.create ~mode ~daemon ~domains:(resolve_domains domains) g in
  Fmt.pr "stabilized in %d rounds; output weight %d@."
    (Transformer.stabilization_rounds t)
    (Tree.total_base_weight (Transformer.tree t));
  let rng = Gen.rng (seed + 2) in
  for epoch = 1 to 3 do
    Transformer.advance t ~rounds:200;
    let fs = Transformer.inject_faults t rng ~count:faults in
    Fmt.pr "epoch %d: faults at %a@." epoch Fmt.(list ~sep:comma int) fs;
    Transformer.advance t ~rounds:20000;
    Fmt.pr "  output is the MST: %b@."
      (Mst.is_mst g (Graph.plain_weight_fn g) (Transformer.tree t))
  done;
  Fmt.pr "reconstructions: %d, charged rounds: %d, peak memory: %d bits@."
    t.Transformer.reconstructions t.Transformer.total_rounds (Transformer.memory_bits t);
  0

(* ---------------- trace ---------------- *)

(* Settle the verifier (untraced), attach a trace, inject faults, run to
   detection; emit the events as JSONL.  The trace therefore opens at the
   injection and is guaranteed to retain the fault-injected and
   alarm-raised events of the run. *)
let trace_run family n seed faults async_ out capacity fmt =
  if capacity <= 0 then begin
    Fmt.epr "msst trace: --capacity must be positive (got %d)@." capacity;
    exit 2
  end;
  let g = make_graph family n seed in
  let m = Marker.run g in
  let mode = if async_ then Verifier.Handshake else Verifier.Passive in
  let daemon = if async_ then Scheduler.Async_random (Gen.rng (seed + 1)) else Scheduler.Sync in
  let module C = struct
    let marker = m
    let mode = mode
  end in
  let module P = Verifier.Make (C) in
  let module Net = Network.Make (P) in
  let net = Net.create g in
  Net.run net daemon ~rounds:(8 * Verifier.window_bound m.labels.(0));
  Fmt.epr "settled after %d rounds; alarms: %b (must be false)@." (Net.rounds net)
    (Net.any_alarm net);
  let tr = Trace.create ~capacity () in
  Net.attach_trace net tr;
  let fs = Net.inject_faults net (Gen.rng (seed + 2)) ~count:faults in
  Fmt.epr "injected %d fault(s) at %a@." (List.length fs) Fmt.(list ~sep:comma int) fs;
  (match Net.detection_time net daemon ~max_rounds:200000 with
  | Some dt -> Fmt.epr "detected after %d rounds@." dt
  | None -> Fmt.epr "no detection (the corruption was semantically null)@.");
  let oc, close = match out with None -> (stdout, false) | Some f -> (open_out f, true) in
  (match fmt with
  | Json -> Trace.write_jsonl oc tr
  | Csv -> Trace.write_csv oc tr
  | Md ->
      output_string oc "| # | event |\n|---|---|\n";
      let i = ref 0 in
      Trace.iter
        (fun e ->
          Printf.fprintf oc "| %d | %s |\n" !i (md_cell (Fmt.str "%a" Trace.pp_event e));
          incr i)
        tr);
  if close then close_out oc else flush oc;
  Fmt.epr "trace: %d events emitted (%d recorded, %d dropped by the ring buffer)@."
    (Trace.length tr) (Trace.total tr) (Trace.dropped tr);
  Fmt.epr "metrics: %a@." Metrics.pp (Net.metrics net);
  0

(* ---------------- campaign ---------------- *)

(* Sweep family x n x fault count x model over [seeds] instances each;
   print the min/median/p95 aggregate and optionally write the per-trial
   rows as CSV / JSONL.  Fully deterministic in --seed: identical seeds
   yield byte-identical campaign files. *)
let campaign families sizes fault_counts models seeds seed max_rounds jobs csv_out jsonl_out =
  let unknown = List.filter (fun m -> not (List.mem m Campaign.model_names)) models in
  if unknown <> [] then begin
    Fmt.epr "msst campaign: unknown model(s) %a (known: %a)@."
      Fmt.(list ~sep:comma string)
      unknown
      Fmt.(list ~sep:comma string)
      Campaign.model_names;
    exit 2
  end;
  let unknown = List.filter (fun f -> not (List.mem f Verifier_campaign.family_names)) families in
  if unknown <> [] then begin
    Fmt.epr "msst campaign: unknown family(s) %a (known: %a)@."
      Fmt.(list ~sep:comma string)
      unknown
      Fmt.(list ~sep:comma string)
      Verifier_campaign.family_names;
    exit 2
  end;
  if seeds <= 0 then begin
    Fmt.epr "msst campaign: --seeds must be positive (got %d)@." seeds;
    exit 2
  end;
  (* -j 0 (the default) defers to MSST_JOBS, so CI and scripts can set a
     machine-wide degree without threading a flag through every call *)
  let jobs =
    if jobs > 0 then jobs
    else Ssmst_parallel.Pool.jobs_from_env ~var:"MSST_JOBS" ~default:1 ()
  in
  let trials =
    Verifier_campaign.sweep ~jobs ~families ~sizes ~fault_counts ~models ~seeds ~seed
      ~max_rounds ()
  in
  let aggs = Campaign.aggregate trials in
  Fmt.pr "campaign: %d trials (%d families x %d sizes x %d fault counts x %d models x %d \
          seeds)@.@."
    (List.length trials) (List.length families) (List.length sizes)
    (List.length fault_counts) (List.length models) seeds;
  Fmt.pr "%a" Campaign.pp_agg_table aggs;
  (* the paper's locality bound, as a shape check on the aggregate *)
  let logn n = Ssmst_sim.Memory.of_nat n in
  List.iter
    (fun (a : Campaign.agg) ->
      if a.Campaign.model = "uniform" && a.Campaign.dd_p95 >= 0 then
        Fmt.pr "  bound: %s n=%d f=%d: dd_p95 %d vs f*log n = %d@." a.Campaign.family
          a.Campaign.n a.Campaign.faults a.Campaign.dd_p95
          (a.Campaign.faults * logn a.Campaign.n))
    aggs;
  (match csv_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Campaign.write_csv oc trials;
      close_out oc;
      Fmt.pr "@.per-trial CSV written to %s@." path);
  (match jsonl_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Campaign.write_jsonl oc trials;
      close_out oc;
      Fmt.pr "per-trial JSONL written to %s@." path);
  0

(* ---------------- report ---------------- *)

(* Run any scenario with the full observatory attached and render the
   combined report (metrics + histograms + span tree + monitor verdicts)
   as markdown, optionally mirroring the JSON form to a second file. *)
let report scenario family n seed faults async_ epochs trials max_rounds md_out json_out fmt =
  if not (List.mem scenario Observatory.scenario_names) then begin
    Fmt.epr "msst report: unknown scenario %s (known: %a)@." scenario
      Fmt.(list ~sep:comma string)
      Observatory.scenario_names;
    exit 2
  end;
  if not (List.mem family Verifier_campaign.family_names) then begin
    Fmt.epr "msst report: unknown family %s (known: %a)@." family
      Fmt.(list ~sep:comma string)
      Verifier_campaign.family_names;
    exit 2
  end;
  let p =
    {
      Observatory.default_params with
      Observatory.family;
      n;
      seed;
      faults;
      async = async_;
      epochs;
      trials;
      max_rounds;
    }
  in
  let r = Observatory.run ~scenario p in
  let rendered =
    match fmt with
    | Md -> Ssmst_obs.Report.to_markdown r
    | Json -> Ssmst_obs.Report.to_json r ^ "\n"
    | Csv -> Ssmst_obs.Report.to_csv r
  in
  (match md_out with
  | None -> print_string rendered
  | Some path ->
      let oc = open_out path in
      output_string oc rendered;
      close_out oc;
      Fmt.epr "report written to %s@." path);
  (match json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Ssmst_obs.Report.to_json r);
      output_char oc '\n';
      close_out oc;
      Fmt.epr "JSON report written to %s@." path);
  if Ssmst_obs.Report.all_monitors_ok r then 0
  else begin
    Fmt.epr "msst report: invariant monitor violation (see the report)@.";
    1
  end

(* ---------------- profile ---------------- *)

(* The wall-clock twin of [report]: run the same scenario with a
   Telemetry profiler installed on the global probe hook, then render the
   per-phase table (md/csv) or the full report JSON with the telemetry
   block folded in.  Telemetry is out-of-band, so the scenario's
   registers, metrics and monitor verdicts are exactly [report]'s. *)
let profile scenario family n seed faults async_ epochs trials max_rounds domains fmt chrome
    fake =
  if not (List.mem scenario Observatory.scenario_names) then begin
    Fmt.epr "msst profile: unknown scenario %s (known: %a)@." scenario
      Fmt.(list ~sep:comma string)
      Observatory.scenario_names;
    exit 2
  end;
  if not (List.mem family Verifier_campaign.family_names) then begin
    Fmt.epr "msst profile: unknown family %s (known: %a)@." family
      Fmt.(list ~sep:comma string)
      Verifier_campaign.family_names;
    exit 2
  end;
  let d = resolve_domains domains in
  let tel = if fake then Ssmst_obs.Telemetry.fake () else Ssmst_obs.Telemetry.create () in
  let p =
    {
      Observatory.default_params with
      Observatory.family;
      n;
      seed;
      faults;
      async = async_;
      epochs;
      trials;
      max_rounds;
      domains = d;
    }
  in
  Ssmst_obs.Telemetry.install tel;
  let r =
    Fun.protect ~finally:Ssmst_obs.Telemetry.uninstall (fun () -> Observatory.run ~scenario p)
  in
  Ssmst_obs.Report.set_telemetry r (Ssmst_obs.Telemetry.to_json tel);
  (match chrome with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Ssmst_obs.Telemetry.to_chrome_trace tel);
      output_char oc '\n';
      close_out oc;
      Fmt.epr "chrome trace written to %s (load in chrome://tracing or Perfetto)@." path);
  (match fmt with
  | Md ->
      Fmt.pr "# msst profile — %s (%s, n = %d, -d %d%s)@.@." scenario family n d
        (if fake then ", fake clock" else "");
      print_string (Ssmst_obs.Telemetry.to_markdown tel)
  | Csv -> print_string (Ssmst_obs.Telemetry.to_csv tel)
  | Json ->
      print_string (Ssmst_obs.Report.to_json r);
      print_newline ());
  0

(* ---------------- explain ---------------- *)

let parse_alarm s =
  let int_of part =
    match int_of_string_opt part with
    | Some v when v >= 0 -> v
    | _ ->
        Fmt.epr "msst explain: bad --alarm %S (expected NODE or NODE@ROUND)@." s;
        exit 2
  in
  match String.index_opt s '@' with
  | None -> (int_of s, None)
  | Some i ->
      ( int_of (String.sub s 0 i),
        Some (int_of (String.sub s (i + 1) (String.length s - i - 1))) )

let flight_params cmd family n seed faults clustered interval capacity max_rounds
    distance_c =
  if not (List.mem family Verifier_campaign.family_names) then begin
    Fmt.epr "msst %s: unknown family %s (known: %a)@." cmd family
      Fmt.(list ~sep:comma string)
      Verifier_campaign.family_names;
    exit 2
  end;
  if interval <= 0 || capacity <= 0 then begin
    Fmt.epr "msst %s: --interval and --capacity must be positive@." cmd;
    exit 2
  end;
  { Flight.family; n; seed; faults; clustered; interval; capacity; max_rounds; distance_c }

let with_out out f =
  match out with
  | None ->
      f stdout;
      flush stdout
  | Some path ->
      let oc = open_out path in
      f oc;
      close_out oc;
      Fmt.epr "written to %s@." path

let witness_json (w : Flight.witness) =
  let hops =
    String.concat ","
      (List.map
         (fun (r, v, fields) ->
           Fmt.str {|{"round":%d,"node":%d,"fields":[%s]}|} r v
             (String.concat ","
                (List.map (fun f -> Fmt.str {|"%s"|} (Trace.json_escape f)) fields)))
         w.Flight.hops)
  in
  Fmt.str
    {|{"alarm_node":%d,"alarm_round":%d,"fault":%s,"node_changes":%d,"bound":%d,"within_bound":%b,"error":%s,"path":[%s]}|}
    w.Flight.alarm_node w.Flight.alarm_round
    (match w.Flight.fault with None -> "null" | Some f -> string_of_int f)
    w.Flight.node_changes w.Flight.bound w.Flight.within_bound
    (match w.Flight.error with
    | None -> "null"
    | Some e -> Fmt.str {|"%s"|} (Trace.json_escape e))
    hops

let witness_path_string (w : Flight.witness) =
  String.concat " "
    (List.map
       (fun (r, v, fields) -> Fmt.str "%d:%d:%s" r v (String.concat "+" fields))
       w.Flight.hops)

(* Re-run a seeded verifier fault scenario with the flight recorder
   attached and walk each alarm's provenance chain back to its injection;
   the witness hop count is checked against the Section 2.4 bound. *)
let explain_run family n seed faults clustered interval capacity max_rounds distance_c
    alarm fmt out =
  let p =
    flight_params "explain" family n seed faults clustered interval capacity max_rounds
      distance_c
  in
  let alarm = Option.map parse_alarm alarm in
  let r = Flight.record_verify ?alarm p in
  if r.Flight.dropped > 0 then
    Fmt.epr
      "msst explain: warning: the delta ring dropped %d write(s); chains crossing the \
       drop horizon will report as broken@."
      r.Flight.dropped;
  let int_list l = String.concat "," (List.map string_of_int l) in
  with_out out (fun oc ->
      match fmt with
      | Json ->
          Printf.fprintf oc
            {|{"family":"%s","n":%d,"seed":%d,"faults":%d,"settled_round":%d,"victims":[%s],"detection":%s,"alarms":[%s],"total_writes":%d,"dropped":%d,"checkpoints":[%s],"end_equal":%b,"witnesses":[%s]}|}
            (Trace.json_escape family) r.Flight.n seed faults r.Flight.settled_round
            (int_list r.Flight.victims)
            (match r.Flight.detection with None -> "null" | Some d -> string_of_int d)
            (int_list r.Flight.alarms) r.Flight.total_writes r.Flight.dropped
            (int_list r.Flight.checkpoints) r.Flight.end_equal
            (String.concat "," (List.map witness_json r.Flight.witnesses));
          output_char oc '\n'
      | Csv ->
          output_string oc
            "alarm_node,alarm_round,fault,node_changes,bound,within_bound,error,path\n";
          List.iter
            (fun (w : Flight.witness) ->
              Printf.fprintf oc "%d,%d,%s,%d,%d,%b,%s,%s\n" w.Flight.alarm_node
                w.Flight.alarm_round
                (match w.Flight.fault with None -> "" | Some f -> string_of_int f)
                w.Flight.node_changes w.Flight.bound w.Flight.within_bound
                (Trace.csv_escape (Option.value ~default:"" w.Flight.error))
                (Trace.csv_escape (witness_path_string w)))
            r.Flight.witnesses
      | Md ->
          Printf.fprintf oc "# msst explain — fault → alarm witnesses\n\n";
          Printf.fprintf oc "- **instance**: %s, n=%d, seed=%d, faults=%d (%s)\n" family
            r.Flight.n seed faults
            (if clustered then "clustered" else "uniform");
          Printf.fprintf oc "- **settled round**: %d; **victims**: %s\n"
            r.Flight.settled_round (int_list r.Flight.victims);
          Printf.fprintf oc "- **detection**: %s; **alarms**: %s\n"
            (match r.Flight.detection with
            | None -> "none"
            | Some d -> Fmt.str "%d round(s)" d)
            (int_list r.Flight.alarms);
          Printf.fprintf oc
            "- **recorder**: %d write(s), %d dropped, checkpoints at %s; replayed end \
             state equals live: %b\n"
            r.Flight.total_writes r.Flight.dropped (int_list r.Flight.checkpoints)
            r.Flight.end_equal;
          List.iter
            (fun (w : Flight.witness) ->
              Printf.fprintf oc "\n## alarm at node %d (round %d)\n\n" w.Flight.alarm_node
                w.Flight.alarm_round;
              match w.Flight.error with
              | Some e -> Printf.fprintf oc "no witness: %s\n" (md_cell e)
              | None ->
                  Printf.fprintf oc
                    "fault #%s reached the alarm in %d graph hop(s) over %d write(s) — \
                     detection-distance bound %d: %s\n\n"
                    (match w.Flight.fault with None -> "?" | Some f -> string_of_int f)
                    w.Flight.node_changes
                    (List.length w.Flight.hops)
                    w.Flight.bound
                    (if w.Flight.within_bound then "ok" else "VIOLATED");
                  Printf.fprintf oc "| round | node | changed fields |\n|---|---|---|\n";
                  List.iter
                    (fun (rd, v, fields) ->
                      Printf.fprintf oc "| %d | %d | %s |\n" rd v
                        (md_cell (String.concat "," fields)))
                    w.Flight.hops)
            r.Flight.witnesses);
  if r.Flight.witnesses = [] then begin
    Fmt.epr "msst explain: no alarms were raised (nothing to explain)@.";
    0
  end
  else if
    List.exists
      (fun (w : Flight.witness) -> w.Flight.error <> None || w.Flight.fault = None)
      r.Flight.witnesses
  then begin
    Fmt.epr "msst explain: at least one provenance chain is broken@.";
    3
  end
  else if
    List.exists (fun (w : Flight.witness) -> not w.Flight.within_bound) r.Flight.witnesses
    || not r.Flight.end_equal
  then begin
    Fmt.epr "msst explain: witness outside the detection-distance bound@.";
    1
  end
  else 0

(* ---------------- replay ---------------- *)

let replay_run family n seed faults clustered interval capacity max_rounds seek steps diff
    fmt out =
  let p =
    flight_params "replay" family n seed faults clustered interval capacity max_rounds
      Ssmst_obs.Monitor.default_distance_c
  in
  let r = Flight.replay_probe p ~seek ~steps ~diff in
  if r.Flight.dropped > 0 then
    Fmt.epr
      "msst replay: warning: the delta ring dropped %d write(s); rounds before %s replay \
       inexactly@."
      r.Flight.dropped
      (match r.Flight.sound_from with
      | None -> "the end of the recording"
      | Some s -> Fmt.str "round %d" s);
  let int_list l = String.concat "," (List.map string_of_int l) in
  with_out out (fun oc ->
      match fmt with
      | Json ->
          Printf.fprintf oc
            {|{"family":"%s","n":%d,"seed":%d,"start_round":%d,"last_round":%d,"total_writes":%d,"dropped":%d,"sound_from":%s,"checkpoints":[%s],"divergence":%s,"end_equal":%b,"views":[%s]}|}
            (Trace.json_escape family) n seed r.Flight.start_round r.Flight.last_round
            r.Flight.total_writes r.Flight.dropped
            (match r.Flight.sound_from with None -> "null" | Some s -> string_of_int s)
            (int_list r.Flight.checkpoints)
            (match r.Flight.divergence with
            | None -> "null"
            | Some (rd, v, f) ->
                Fmt.str {|{"round":%d,"node":%d,"field":"%s"}|} rd v (Trace.json_escape f))
            r.Flight.end_equal
            (String.concat ","
               (List.map
                  (fun (v : Flight.view) ->
                    Fmt.str {|{"round":%d,"exact":%b,"changed":%d}|} v.Flight.round
                      v.Flight.exact v.Flight.changed)
                  r.Flight.views));
          output_char oc '\n'
      | Csv ->
          output_string oc "round,exact,changed\n";
          List.iter
            (fun (v : Flight.view) ->
              Printf.fprintf oc "%d,%b,%d\n" v.Flight.round v.Flight.exact v.Flight.changed)
            r.Flight.views
      | Md ->
          Printf.fprintf oc "# msst replay — checkpointed time travel\n\n";
          Printf.fprintf oc "- **instance**: %s, n=%d, seed=%d, faults=%d\n" family n seed
            faults;
          Printf.fprintf oc
            "- **recording**: rounds %d..%d, %d write(s), %d dropped, checkpoints at %s\n"
            r.Flight.start_round r.Flight.last_round r.Flight.total_writes r.Flight.dropped
            (int_list r.Flight.checkpoints);
          (if diff then
             match r.Flight.divergence with
             | None ->
                 Printf.fprintf oc
                   "- **bisector**: event-driven and naive recordings agree (end states \
                    equal: %b)\n"
                   r.Flight.end_equal
             | Some (rd, v, f) ->
                 Printf.fprintf oc
                   "- **bisector**: first divergence at round %d, node %d, field %s\n" rd v
                   (md_cell f));
          Printf.fprintf oc "\n| round | exact | changed nodes |\n|---|---|---|\n";
          List.iter
            (fun (v : Flight.view) ->
              Printf.fprintf oc "| %d | %b | %d |\n" v.Flight.round v.Flight.exact
                v.Flight.changed)
            r.Flight.views);
  if diff && (r.Flight.divergence <> None || not r.Flight.end_equal) then begin
    Fmt.epr "msst replay: the two engines diverged@.";
    1
  end
  else 0

(* ---------------- labels ---------------- *)

let labels family n seed =
  let g = make_graph family n seed in
  let m = Marker.run g in
  let labels = Labels.of_hierarchy m.hierarchy in
  let len = labels.(0).Labels.len in
  Fmt.pr "%-6s %-*s %-*s %-*s %s@." "node" ((len * 2) + 2) "Roots" ((len * 5) + 2) "EndP"
    ((len * 2) + 2) "Parents" "Or-EndP";
  for v = 0 to min (n - 1) (Graph.n g - 1) do
    let l = labels.(v) in
    let roots = Fmt.str "%a" Fmt.(array ~sep:(any " ") Labels.pp_rsym) l.Labels.roots in
    let endp =
      Fmt.str "%a"
        Fmt.(array ~sep:(any " ") (fun ppf e -> Fmt.pf ppf "%-4s" (Fmt.str "%a" Labels.pp_esym e)))
        l.Labels.endp
    in
    let parents =
      Fmt.str "%a"
        Fmt.(array ~sep:(any " ") (fun ppf b -> Fmt.string ppf (if b then "1" else "0")))
        l.Labels.parents
    in
    let orep =
      Fmt.str "%a"
        Fmt.(array ~sep:(any " ") (fun ppf c -> Fmt.string ppf (if c > 0 then "1" else "0")))
        l.Labels.cnt
    in
    Fmt.pr "%-6d %-*s %-*s %-*s %s@." v ((len * 2) + 2) roots ((len * 5) + 2) endp
      ((len * 2) + 2) parents orep
  done;
  0

(* ---------------- compare ---------------- *)

let compare_cmd family n seed =
  let g = make_graph family n seed in
  let w = Graph.plain_weight_fn g in
  let sm = Sync_mst.run g in
  let ghs = Ssmst_baselines.Ghs.run g in
  let hl = Ssmst_baselines.Higham_liang.run g in
  let bl = Ssmst_baselines.Blin.run g in
  Fmt.pr "%-24s %-10s %-8s@." "algorithm" "rounds" "is MST";
  Fmt.pr "%-24s %-10d %-8b@." "SYNC_MST (this paper)" sm.Sync_mst.rounds
    (Mst.is_mst g w sm.Sync_mst.tree);
  Fmt.pr "%-24s %-10d %-8b@." "GHS" ghs.Ssmst_baselines.Ghs.rounds
    (Mst.is_mst g w ghs.Ssmst_baselines.Ghs.tree);
  let mp = Ssmst_mp.Ghs_mp.run g in
  Fmt.pr "%-24s %-10d %-8b@." "GHS (message passing)" mp.Ssmst_mp.Ghs_mp.rounds
    (Mst.is_mst g w mp.Ssmst_mp.Ghs_mp.tree);
  Fmt.pr "%-24s %-10d %-8b@." "Higham-Liang-style" hl.Ssmst_baselines.Higham_liang.rounds
    (Mst.is_mst g w hl.Ssmst_baselines.Higham_liang.tree);
  Fmt.pr "%-24s %-10d %-8b@." "Blin-et-al-style" bl.Ssmst_baselines.Blin.rounds
    (Mst.is_mst g w bl.Ssmst_baselines.Blin.tree);
  0

(* ---------------- command wiring ---------------- *)

let construct_cmd =
  Cmd.v
    (Cmd.info "construct" ~doc:"Build the MST and its proof labels.")
    Term.(const construct $ family_arg $ n_arg $ seed_arg)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Run the self-stabilizing verifier; optionally inject faults.")
    Term.(const verify $ family_arg $ n_arg $ seed_arg $ faults_arg $ async_arg $ domains_arg)

let stabilize_cmd =
  Cmd.v
    (Cmd.info "stabilize" ~doc:"Run the transformer-based self-stabilizing MST scenario.")
    Term.(const stabilize $ family_arg $ n_arg $ seed_arg $ faults_arg $ async_arg $ domains_arg)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the JSONL trace to $(docv) instead of stdout.")

let capacity_arg =
  Arg.(
    value
    & opt int Trace.default_capacity
    & info [ "capacity" ] ~docv:"K" ~doc:"Ring-buffer capacity (oldest events are dropped beyond it).")

let max_rounds_arg =
  Arg.(
    value & opt int 20000
    & info [ "max-rounds" ] ~docv:"R"
        ~doc:
          "Per-trial detection budget in rounds.  Benign faults (e.g. crash-reset of a \
           settled verifier node) never alarm and run the whole budget, so this bounds \
           the cost of undetected trials.")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a fault-injection scenario on the verifier and emit the engine's event trace \
          as JSON lines (one event per line); diagnostics go to stderr.")
    Term.(const trace_run $ family_arg $ n_arg $ seed_arg $ faults_arg $ async_arg $ out_arg
          $ capacity_arg $ format_arg Json)

(* ---------------- explain / replay wiring ---------------- *)

let interval_arg =
  Arg.(
    value & opt int 64
    & info [ "interval" ] ~docv:"K" ~doc:"Checkpoint every at most $(docv) rounds.")

let flight_family_arg =
  Arg.(
    value
    & opt string "random"
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:
          "Graph family: random, path, ring, grid, complete, star, hypertree (the \
           Section 9 lower-bound instances; n rounds down to 2^(h+1)-1).")

let clustered_arg =
  Arg.(
    value & flag
    & info [ "clustered" ] ~doc:"Clustered fault placement (radius 2) instead of uniform.")

let distance_c_arg =
  Arg.(
    value
    & opt int Ssmst_obs.Monitor.default_distance_c
    & info [ "distance-c" ] ~docv:"C"
        ~doc:"Constant in the detection-distance bound C*f*ceil(log2 n).")

let alarm_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "alarm" ] ~docv:"NODE[@ROUND]"
        ~doc:
          "Explain only this alarm: the node's first alarming write (at or before ROUND \
           when given).  Default: every alarming node.")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Record a verifier fault scenario with the flight recorder attached and walk the \
          causal provenance of each alarm backwards — register write by register write — \
          to the fault injection that seeded it.  Each witness's graph-hop count is \
          checked against the detection-distance bound C*f*ceil(log2 n) (Section 2.4).  \
          Exits 3 when a provenance chain is broken, 1 when a witness violates the bound.")
    Term.(
      const explain_run $ flight_family_arg $ n_arg $ seed_arg $ faults_arg $ clustered_arg
      $ interval_arg $ capacity_arg $ max_rounds_arg $ distance_c_arg $ alarm_arg
      $ format_arg Md $ out_arg)

let seek_arg =
  Arg.(
    value & opt int 0
    & info [ "seek" ] ~docv:"R" ~doc:"Reconstruct the state at round $(docv) first.")

let steps_arg =
  Arg.(
    value & opt int 10
    & info [ "steps" ] ~docv:"K" ~doc:"Step $(docv) recorded rounds forward from the seek point.")

let diff_arg =
  Arg.(
    value & flag
    & info [ "diff" ]
        ~doc:
          "Also record the naive reference engine's twin run and bisect for the first \
           (round, node, field) divergence.")

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Record an ss-bfs stabilization run (plus one fault burst) with the checkpointed \
          flight recorder, then time-travel: seek to any round in O(interval + writes), \
          step forward, and optionally bisect the event-driven engine against the naive \
          reference for the first diverging (round, node, field).  Exits 1 when --diff \
          finds a divergence.")
    Term.(
      const replay_run $ flight_family_arg $ n_arg $ seed_arg $ faults_arg $ clustered_arg
      $ interval_arg $ capacity_arg $ max_rounds_arg $ seek_arg $ steps_arg $ diff_arg
      $ format_arg Md $ out_arg)

let families_arg =
  Arg.(
    value
    & opt (list string) [ "random"; "grid" ]
    & info [ "families" ] ~docv:"FAMILY,..."
        ~doc:"Graph families to sweep (random, path, ring, grid, complete, star).")

let sizes_arg =
  Arg.(
    value
    & opt (list int) [ 32; 64 ]
    & info [ "sizes" ] ~docv:"N,..." ~doc:"Network sizes to sweep.")

let fault_counts_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 8 ]
    & info [ "fault-counts" ] ~docv:"F,..." ~doc:"Fault counts f to sweep.")

let models_arg =
  Arg.(
    value
    & opt (list string) [ "uniform"; "clustered"; "near-root"; "crash"; "bit-flip" ]
    & info [ "models" ] ~docv:"MODEL,..."
        ~doc:
          "Fault models to sweep: uniform, clustered, near-root, targeted, crash, bit-flip, \
           intermittent.")

let seeds_arg =
  Arg.(
    value & opt int 3
    & info [ "seeds" ] ~docv:"K" ~doc:"Instances (seeds) per family x size grid point.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run the sweep across $(docv) forked worker processes.  Output is byte-identical \
           to a sequential run for any value.  0 (the default) reads \\$MSST_JOBS, falling \
           back to 1.")

let campaign_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the per-trial rows as CSV to $(docv).")

let campaign_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE" ~doc:"Write the per-trial rows as JSONL to $(docv).")

let campaign_cmd =
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a deterministic fault-injection campaign on the verifier: sweep graph family x \
          size x fault count x fault model over several seeded instances, measure detection \
          time and detection distance per trial, print min/median/p95 aggregates and \
          optionally emit the per-trial rows as CSV/JSONL.")
    Term.(
      const campaign $ families_arg $ sizes_arg $ fault_counts_arg $ models_arg $ seeds_arg
      $ seed_arg $ max_rounds_arg $ jobs_arg $ campaign_csv_arg $ campaign_jsonl_arg)

let scenario_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario to report on: construct, verify, stabilize, campaign.")

let report_family_arg =
  Arg.(
    value
    & opt string "random"
    & info [ "family" ] ~docv:"FAMILY" ~doc:"Graph family: random, path, ring, grid, complete, star.")

let epochs_arg =
  Arg.(
    value & opt int 3
    & info [ "epochs" ] ~docv:"E" ~doc:"Fault-injection epochs (stabilize scenario).")

let trials_arg =
  Arg.(
    value & opt int 3
    & info [ "trials" ] ~docv:"K" ~doc:"Injection seeds per fault model (campaign scenario).")

let report_md_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the markdown report to $(docv) instead of stdout.")

let report_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as one JSON object to $(docv).")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a scenario with the runtime observatory attached — phase-span profiler, \
          log-bucketed histograms, online invariant monitors — and render one combined \
          report as markdown (and optionally JSON).  Exits non-zero if any invariant \
          monitor reports a violation.")
    Term.(
      const report $ scenario_arg $ report_family_arg $ n_arg $ seed_arg $ faults_arg $ async_arg
      $ epochs_arg $ trials_arg $ max_rounds_arg $ report_md_arg $ report_json_arg
      $ format_arg Md)

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:"Also write a chrome://tracing-loadable JSON trace (one track per worker domain) \
              to $(docv).")

let fake_clock_arg =
  Arg.(
    value & flag
    & info [ "fake-clock" ]
        ~doc:"Replace the wall clock with a deterministic 1 ms-per-reading counter and zero \
              the GC sampler, making the profile output byte-reproducible (single-domain \
              runs only; used by the determinism tests).")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a scenario (verify, stabilize, campaign, construct) with the wall-clock + \
          allocation profiler attached and print the per-phase table — time, %, minor/major \
          words, calls — plus optionally a Chrome-trace JSON.  Telemetry is strictly \
          out-of-band: registers, metrics and monitors are byte-identical to an unprofiled \
          run at every -d.")
    Term.(
      const profile $ scenario_arg $ report_family_arg $ n_arg $ seed_arg $ faults_arg
      $ async_arg $ epochs_arg $ trials_arg $ max_rounds_arg $ domains_arg $ format_arg Md
      $ chrome_arg $ fake_clock_arg)

let labels_cmd =
  Cmd.v
    (Cmd.info "labels" ~doc:"Print the Section 5 label strings of an instance.")
    Term.(const labels $ family_arg $ n_arg $ seed_arg)

let compare_cmdliner =
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare MST construction algorithms on one instance.")
    Term.(const compare_cmd $ family_arg $ n_arg $ seed_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "msst" ~version:"1.0.0"
      ~doc:"Fast and compact self-stabilizing verification, computation and fault detection of an MST"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ construct_cmd; verify_cmd; stabilize_cmd; trace_cmd; campaign_cmd; report_cmd;
            profile_cmd; explain_cmd; replay_cmd; labels_cmd; compare_cmdliner ]))
